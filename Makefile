.PHONY: install test bench examples verify clean

install:
	python setup.py develop || pip install -e .

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

examples:
	@for f in examples/*.py; do \
		echo "== $$f"; python $$f > /dev/null || exit 1; \
	done; echo "all examples ran"

verify:
	python -c "from repro.testing import run_differential_trials as r; \
	           rep = r(trials=500); assert rep.passed, rep.summary(); \
	           print(rep.summary())"

clean:
	rm -rf build dist src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
