#!/usr/bin/env python3
"""Searching a document-centric corpus: a mini literature survey.

The scenario the paper's introduction motivates: long, non-schematic
documents (a thesis, a technical book) where the right answer unit is a
subsection, not the smallest node.  This example:

* searches the bundled book and thesis corpora,
* contrasts the algebra's answers with the SLCA baseline,
* shows overlap handling (§5's overlapping answers discussion).

Run with::

    python examples/literature_search.py
"""

from __future__ import annotations

import repro
from repro.baselines.slca import slca_nodes
from repro.baselines.smallest import smallest_fragments
from repro.workloads.corpora import book_corpus, thesis_corpus


def survey(document, *terms: str, max_size: int = 5) -> None:
    print(f"\n--- {document.name}: query {terms}, size<={max_size} ---")
    index = repro.InvertedIndex(document)
    for term in terms:
        print(f"  '{term}' occurs at nodes "
              f"{index.postings(term)}")

    query = repro.Query.of(*terms, predicate=repro.SizeAtMost(max_size))
    result = repro.evaluate(document, query, index=index)

    print(f"\nalgebra: {len(result)} answers "
          f"({result.stats['fragment_joins']} joins)")
    for fragment in result.non_overlapping():
        print(f"\n  maximal answer {fragment.label()}:")
        for line in repro.fragment_outline(fragment).splitlines():
            print(f"    {line}")

    overlapping = len(result) - len(result.non_overlapping())
    if overlapping:
        print(f"\n  (+ {overlapping} overlapping sub-answers hidden — "
              "the §5 presentation choice)")

    slca = slca_nodes(document, list(terms), index=index)
    baseline = smallest_fragments(document, list(terms), index=index)
    print(f"\nbaseline SLCA nodes: {[f'n{v}' for v in slca]}")
    print(f"baseline smallest fragments: "
          f"{[f.label() for f in baseline]}")


def main() -> None:
    book = book_corpus()
    print(f"book corpus: {book.size} nodes")
    survey(book, "fragment", "join")
    survey(book, "pushdown", "optimization", max_size=6)

    thesis = thesis_corpus()
    print(f"\nthesis corpus: {thesis.size} nodes")
    survey(thesis, "keyword", "search", max_size=4)
    survey(thesis, "join", "predicate", max_size=6)


if __name__ == "__main__":
    main()
