#!/usr/bin/env python3
"""Persisting a corpus in a relational database (paper ref [13]).

Shreds a document into sqlite3, pokes at the relational primitives
(keyword selection, interval-encoded descendant tests, recursive-CTE
root paths), and answers queries through the relational engine —
verifying against the in-memory evaluator.

Run with::

    python examples/relational_backend.py [db-path]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

import repro
from repro.workloads.corpora import book_corpus


def main() -> None:
    if len(sys.argv) > 1:
        db_path = sys.argv[1]
    else:
        db_path = str(Path(tempfile.mkdtemp()) / "book.db")

    doc = book_corpus()
    print(f"shredding '{doc.name}' ({doc.size} nodes) into {db_path}")

    with repro.RelationalStore(db_path) as store:
        store.save(doc)
        print(f"stored {store.node_count} node rows")

        print("\n=== SQL primitives ===")
        hits = store.keyword_nodes("join")
        print(f"σ_keyword=join via SQL           → nodes {hits}")
        print(f"descendants of node 1 (interval) → "
              f"{store.descendants_sql(1)[:8]}...")
        deepest = max(doc.node_ids(), key=doc.depth)
        print(f"root path of n{deepest} (recursive CTE) → "
              f"{store.root_path_sql(deepest)}")
        spanning = store.spanning_nodes_sql(hits[:2])
        print(f"spanning subtree of first two hits → "
              f"{sorted(spanning)}")

    # Reopen the database: documents persist across connections.
    with repro.RelationalStore(db_path) as store:
        engine = repro.RelationalQueryEngine(store)
        query = repro.Query.of("fragment", "join",
                               predicate=repro.SizeAtMost(5))
        relational = engine.evaluate(query)
        in_memory = repro.evaluate(doc, query)

        print(f"\n=== query through the relational engine ===")
        print(f"{relational.strategy}: {len(relational)} answers in "
              f"{relational.elapsed * 1000:.2f} ms")
        for fragment in relational.top(3):
            print(f"\n{fragment.label()}")
            print(repro.fragment_outline(fragment))

        same = ({f.nodes for f in relational.fragments}
                == {f.nodes for f in in_memory.fragments})
        print(f"\nmatches the in-memory evaluator: {same}")


if __name__ == "__main__":
    main()
