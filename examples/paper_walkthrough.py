#!/usr/bin/env python3
"""The paper's running example, executed end to end.

Reproduces Section 4 of Pradhan (VLDB 2006) on the reconstructed
Figure 1 document: the keyword sets F1/F2, the brute-force powerset
join (Table 1), the set-reduction rewrite (Theorems 1–2), and the
anti-monotonic push-down (Theorem 3) — printing the paper's numbers at
every step.

Run with::

    python examples/paper_walkthrough.py
"""

from __future__ import annotations

from repro import (Query, SizeAtMost, Strategy, evaluate,
                   fragment_outline)
from repro.core.algebra import pairwise_join, powerset_join
from repro.core.query import keyword_fragments
from repro.core.reduce import (fixed_point_bounded, reduction_count,
                               set_reduce)
from repro.workloads.figure1 import build_figure1_document


def show(title: str) -> None:
    print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))


def main() -> None:
    doc = build_figure1_document()
    print(f"Figure 1 document: {doc.size} nodes (n0..n{doc.size - 1})")

    show("Keyword selection (Definition 3)")
    F1 = keyword_fragments(doc, "xquery")
    F2 = keyword_fragments(doc, "optimization")
    print(f"F1 = σ_keyword=XQuery       = "
          f"{{{', '.join(sorted(f.label() for f in F1))}}}")
    print(f"F2 = σ_keyword=optimization = "
          f"{{{', '.join(sorted(f.label() for f in F2))}}}")

    show("4.1 Brute force: powerset fragment join")
    candidates = powerset_join(F1, F2)
    print(f"F1 ⋈* F2 produced {len(candidates)} unique fragments "
          "(Table 1 rows 1-7):")
    for fragment in sorted(candidates, key=lambda f: (f.size,
                                                      sorted(f.nodes))):
        marker = "" if fragment.size <= 3 else "   <- irrelevant (size>3)"
        print(f"  {fragment.label()}{marker}")

    show("4.2 Set reduction (Theorems 1 and 2)")
    print(f"⊖(F1) keeps {reduction_count(F1)} of {len(F1)} fragments "
          f"(already reduced)")
    reduced = set_reduce(F2)
    print(f"⊖(F2) = {{{', '.join(sorted(f.label() for f in reduced))}}}"
          f" — so F2+ needs only {len(reduced)} join rounds")
    F1p = fixed_point_bounded(F1)
    F2p = fixed_point_bounded(F2)
    print(f"|F1+| = {len(F1p)}, |F2+| = {len(F2p)}")
    rewritten = pairwise_join(F1p, F2p)
    print(f"F1+ ⋈ F2+ = F1 ⋈* F2 holds: {rewritten == candidates}")

    show("4.3 Anti-monotonic push-down (Theorem 3)")
    query = Query.of("xquery", "optimization", predicate=SizeAtMost(3))
    for strategy in (Strategy.BRUTE_FORCE, Strategy.SET_REDUCTION,
                     Strategy.PUSHDOWN):
        result = evaluate(doc, query, strategy=strategy)
        print(f"{strategy.value:>14}: {len(result.fragments)} answers, "
              f"{result.stats['fragment_joins']:>3} joins, "
              f"{result.stats['fragments_discarded']:>3} discarded "
              f"early, {result.elapsed * 1000:6.2f} ms")

    show("The fragment of interest (Figure 8 b)")
    result = evaluate(doc, query)
    target = next(f for f in result.fragments
                  if f.nodes == frozenset([16, 17, 18]))
    print(fragment_outline(target))
    print("\nThis self-contained unit is exactly what the smallest-"
          "subtree semantics cannot return (it stops at n17).")


if __name__ == "__main__":
    main()
