#!/usr/bin/env python3
"""Searching a whole collection of XML documents.

The paper's §7 claims the model "can accommodate a very large
collection of XML documents".  This example builds an INEX-like
synthetic collection of articles, searches it with one query
(including the textual query language), ranks answers across
documents, and round-trips the collection through the multi-document
sqlite3 store.

Run with::

    python examples/collection_search.py
"""

from __future__ import annotations

import repro
from repro.storage.multistore import CollectionStore
from repro.workloads.inexlike import InexSpec, generate_collection
from repro.xmltree.treestats import document_stats


def main() -> None:
    # 1. A 15-article synthetic collection; the terms 'needle' and
    #    'thread' are planted into overlapping subsets of the articles.
    collection = generate_collection(InexSpec(
        articles=15, nodes_per_article=250,
        planted_terms=("needle", "thread"),
        planted_fraction=0.4, occurrences=4, clustering=0.6, seed=23))
    print(f"{collection!r}")
    sample = collection.document(collection.names()[0])
    print("\nshape of one article:")
    print(document_stats(sample).describe())

    # 2. Collection-wide term statistics.
    for term in ("needle", "thread"):
        print(f"\n'{term}' occurs in "
              f"{collection.document_frequency(term)} of "
              f"{len(collection)} articles")

    # 3. One query over everything — written in the query language.
    query = repro.parse_query("needle thread [size<=8 & height<=3]")
    result = collection.search(query)
    print(f"\n{len(result)} answers from "
          f"{len(result.matched_documents)} matching articles "
          f"({result.total_elapsed * 1000:.1f} ms total); documents "
          "lacking either term were skipped without evaluation.")
    for hit in result.hits[:5]:
        print(f"  {hit.label()} (size {hit.fragment.size})")

    # 4. Rank across documents (scores are normalised per document).
    print("\ntop 5 ranked across the collection:")
    for name, scored in collection.ranked_search(query, limit=5):
        print(f"  {scored.score:.3f}  {name}:"
              f"{scored.fragment.label()}")

    # 5. Persist the whole collection relationally and query it in SQL.
    with CollectionStore() as store:
        store.add_collection(collection)
        hits = store.keyword_nodes("needle")
        print(f"\nsqlite3: one SQL query found {len(hits)} 'needle' "
              f"occurrences across {len(store)} stored articles")
        reloaded = store.load_collection()
        print(f"reloaded collection: {len(reloaded)} articles, "
              f"{reloaded.total_nodes} nodes — matches original: "
              f"{reloaded.total_nodes == collection.total_nodes}")


if __name__ == "__main__":
    main()
