#!/usr/bin/env python3
"""Choosing an evaluation strategy: plans, costs and the RF threshold.

For query-engine developers: this example generates a synthetic
document-centric corpus, inspects logical plans before and after
optimisation, estimates costs, measures the reduction factor of the
keyword sets, and races the strategies — the §5 optimizer workflow,
driven by the public API.

Run with::

    python examples/strategy_tuning.py
"""

from __future__ import annotations

import time

import repro
from repro.core.query import keyword_fragments
from repro.core.statistics import (estimate_reduction_factor,
                                   reduction_factor)
from repro.workloads.generator import (DocumentSpec, generate_document,
                                       plant_keyword)


def main() -> None:
    # A 1000-node synthetic article with two planted query terms:
    # 'needle' clustered inside one subtree (high RF), 'thread'
    # scattered document-wide (low RF).
    doc = generate_document(DocumentSpec(nodes=1000, seed=5))
    doc = plant_keyword(doc, "needle", occurrences=8, clustering=1.0,
                        seed=6)
    doc = plant_keyword(doc, "thread", occurrences=8, clustering=0.0,
                        seed=7)
    index = repro.InvertedIndex(doc)
    query = repro.Query.of("needle", "thread",
                           predicate=repro.SizeAtMost(6))

    print("=== logical plans ===")
    naive = repro.initial_plan(query)
    print("canonical plan (Definition 8):")
    print(repro.explain(naive, indent="  "))
    optimised = repro.optimize(query)
    print("\noptimised plan (Theorem 2 rewrite + Theorem 3 push-down):")
    print(repro.explain(optimised, indent="  "))

    print("\n=== cost estimates ===")
    model = repro.CostModel(doc, index=index)
    for label, plan in (("canonical", naive), ("optimised", optimised)):
        estimate = model.estimate(plan)
        print(f"  {label:>10}: est. cardinality "
              f"{estimate.cardinality:10.1f}, est. cost "
              f"{estimate.cost:12.1f}")

    print("\n=== reduction factors (§5) ===")
    for term in query.terms:
        frags = sorted(keyword_fragments(doc, term, index=index),
                       key=lambda f: f.root)
        exact = reduction_factor(frags)
        sampled = estimate_reduction_factor(frags, sample_size=6)
        decision = ("reduce" if model.prefer_bounded_fixed_point(term)
                    else "skip ⊖")
        print(f"  {term:>7}: |F| = {len(frags)}, exact RF = "
              f"{exact:.2f}, sampled RF = {sampled:.2f} → {decision}")

    print("\n=== explain analyze (per-operator measurements) ===")
    from repro.core.profile import profile_plan
    profiled = profile_plan(doc, optimised, index=index)
    print(profiled.render(model))

    print("\n=== strategy race ===")
    for strategy in repro.Strategy:
        started = time.perf_counter()
        result = repro.evaluate(doc, query, strategy=strategy,
                                index=index)
        elapsed = (time.perf_counter() - started) * 1000
        print(f"  {strategy.value:>14}: {len(result):>3} answers  "
              f"{result.stats['fragment_joins']:>6} joins  "
              f"{elapsed:8.2f} ms")

    print("\nall strategies agree on the answer set; pick pushdown "
          "unless your filter lacks the anti-monotonic property.")


if __name__ == "__main__":
    main()
