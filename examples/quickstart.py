#!/usr/bin/env python3
"""Quickstart: keyword search for XML fragments in five minutes.

Walks the essential API surface:

1. parse an XML document,
2. run a filtered keyword query,
3. inspect the answer fragments,
4. serialise the best answer back to XML.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import repro

ARTICLE = """\
<article>
  <title>A Tour of Fragment Retrieval</title>
  <section>
    <title>Why keyword search</title>
    <par>Users prefer typing keywords over learning query syntax.</par>
    <par>The hard part is deciding which fragment to return.</par>
  </section>
  <section>
    <title>Scoring and filtering</title>
    <subsection>
      <title>Filters</title>
      <par>A size filter keeps answers compact.</par>
      <par>A height filter keeps answers shallow and focused.</par>
    </subsection>
    <subsection>
      <title>Keyword placement</title>
      <par>Keywords may sit in one paragraph or spread across a
      subsection.</par>
    </subsection>
  </section>
</article>
"""


def main() -> None:
    # 1. Parse. Node ids are preorder ranks; keywords(n) is derived
    #    from each node's own text, tag and attributes.
    doc = repro.parse(ARTICLE, name="tour")
    print(f"parsed {doc.size} nodes, depth {doc.max_depth}")

    # 2. Query: both keywords must appear; fragments larger than four
    #    nodes are filtered out by an anti-monotonic size filter, which
    #    the evaluator pushes below the joins (Theorem 3).
    result = repro.answer(doc, "size", "filter",
                          predicate=repro.SizeAtMost(4))
    print(f"\n{len(result)} answers for {result.query.describe()} "
          f"in {result.elapsed * 1000:.2f} ms "
          f"({result.stats['fragment_joins']} joins)")

    # 3. Inspect. Answers are deduplicated fragments, smallest first.
    for rank, fragment in enumerate(result.sorted_fragments(), 1):
        print(f"\n#{rank} {fragment.label()} size={fragment.size} "
              f"height={fragment.height}")
        print(repro.fragment_outline(fragment))

    # 4. Serialise the best answer as a standalone XML unit.
    best = result.sorted_fragments()[0]
    print("\nbest answer as XML:")
    print(repro.fragment_to_xml(best))

    # Bonus: keywords split across distant sections generate large,
    # barely-related fragments unless a filter reins them in.
    unfiltered = repro.answer(doc, "keywords", "filter")
    filtered = repro.answer(doc, "keywords", "filter",
                            predicate=repro.SizeAtMost(4))
    print(f"'keywords' + 'filter' sit in different sections: "
          f"{len(unfiltered)} unfiltered answers (up to "
          f"{max(f.size for f in unfiltered.fragments)} nodes each), "
          f"{len(filtered)} after size<=4 — filters keep results "
          "manageable (the paper's second challenge).")


if __name__ == "__main__":
    main()
