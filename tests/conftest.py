"""Shared fixtures: paper fixtures, canned corpora, tiny documents.

Also provides a ``timeout`` marker so pool-resilience tests cannot hang
the whole suite: when the ``pytest-timeout`` plugin is installed it
owns the marker; otherwise a stdlib :mod:`faulthandler` fallback dumps
all thread stacks and aborts the process after the deadline.
"""

from __future__ import annotations

import faulthandler

import pytest

from repro.index.inverted import InvertedIndex
from repro.workloads.corpora import book_corpus, thesis_corpus
from repro.workloads.figure1 import build_figure1_document
from repro.workloads.papertrees import (build_figure3_tree,
                                        build_figure4_tree,
                                        build_figure7_tree)
from repro.xmltree.builder import DocumentBuilder
from repro.xmltree.parser import parse


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "timeout(seconds): abort the test if it runs longer than "
        "SECONDS (handled by pytest-timeout when installed, else by a "
        "faulthandler fallback that dumps stacks and exits)")


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_protocol(item):
    """Arm a hard deadline for ``@pytest.mark.timeout(N)`` tests.

    ``pytest-timeout`` takes precedence when present.  The fallback is
    deliberately blunt — ``faulthandler.dump_traceback_later(exit=True)``
    kills the whole process — because a hung ProcessPoolExecutor wait
    cannot be interrupted from Python; a loud crash with stacks beats a
    silently wedged CI job.
    """
    marker = item.get_closest_marker("timeout")
    use_fallback = (
        marker is not None and marker.args
        and not item.config.pluginmanager.hasplugin("timeout"))
    if use_fallback:
        faulthandler.dump_traceback_later(float(marker.args[0]),
                                          exit=True)
    try:
        yield
    finally:
        if use_fallback:
            faulthandler.cancel_dump_traceback_later()


@pytest.fixture(scope="session")
def figure1():
    """The reconstructed Figure 1 document (82 nodes)."""
    return build_figure1_document()


@pytest.fixture(scope="session")
def figure1_index(figure1):
    return InvertedIndex(figure1)


@pytest.fixture(scope="session")
def figure3():
    """Figure 3's labelled 9-node tree."""
    return build_figure3_tree()


@pytest.fixture(scope="session")
def figure4():
    """Figure 4's labelled reduction tree."""
    return build_figure4_tree()


@pytest.fixture(scope="session")
def figure7():
    """Figure 7's equal-depth counterexample tree."""
    return build_figure7_tree()


@pytest.fixture(scope="session")
def book():
    return book_corpus()


@pytest.fixture(scope="session")
def thesis():
    return thesis_corpus()


@pytest.fixture()
def tiny_doc():
    """A 6-node hand-built document used across unit tests.

    Topology (ids are preorder)::

        0:article ── 1:section ── 2:par "red apple"
                  │            └─ 3:par "green pear"
                  └─ 4:section ── 5:par "red pear"
    """
    b = DocumentBuilder(name="tiny")
    root = b.add_root("article", "fruit report")
    s1 = b.add_child(root, "section", "colours")
    b.add_child(s1, "par", "red apple")
    b.add_child(s1, "par", "green pear")
    s2 = b.add_child(root, "section", "more colours")
    b.add_child(s2, "par", "red pear")
    return b.build()


@pytest.fixture()
def chain_doc():
    """A 5-node chain 0-1-2-3-4 (each node the only child)."""
    b = DocumentBuilder(name="chain")
    node = b.add_root("a", "zero")
    for i, word in enumerate(("one", "two", "three", "four")):
        node = b.add_child(node, "b", word)
    return b.build()


@pytest.fixture()
def parsed_doc():
    """A small parsed XML document with attributes and nesting."""
    return parse(
        "<doc id='d1'>"
        "<sec><title>Alpha topics</title><par>alpha beta</par></sec>"
        "<sec><par>gamma only</par><par>alpha gamma</par></sec>"
        "</doc>", name="parsed")
