"""Unit tests for multi-document collections."""

from __future__ import annotations

import pytest

from repro.collection.collection import DocumentCollection
from repro.core.filters import SizeAtMost
from repro.core.query import Query
from repro.core.strategies import Strategy, evaluate
from repro.errors import DocumentError
from repro.workloads.corpora import BOOK_XML, THESIS_XML


@pytest.fixture()
def collection(figure1):
    coll = DocumentCollection(name="library")
    coll.add_xml(BOOK_XML, name="book")
    coll.add_xml(THESIS_XML, name="thesis")
    coll.add(figure1)
    return coll


class TestPopulation:
    def test_counts(self, collection):
        assert len(collection) == 3
        assert collection.names() == ["book", "thesis", "figure1"]
        assert "book" in collection
        assert "unknown" not in collection

    def test_duplicate_name_rejected(self, collection, figure1):
        with pytest.raises(DocumentError, match="already contains"):
            collection.add(figure1)

    def test_total_nodes(self, collection):
        assert collection.total_nodes == sum(
            collection.document(n).size for n in collection)

    def test_from_directory(self, tmp_path):
        (tmp_path / "a.xml").write_text("<a><b>alpha</b></a>")
        (tmp_path / "b.xml").write_text("<a><b>beta</b></a>")
        (tmp_path / "notes.txt").write_text("not xml")
        coll = DocumentCollection.from_directory(tmp_path)
        assert len(coll) == 2
        assert coll.names() == ["a.xml", "b.xml"]

    def test_repr(self, collection):
        assert "library" in repr(collection)


class TestStatistics:
    def test_document_frequency(self, collection):
        # 'fragment' occurs in book and thesis (as a word) but the
        # count is over documents, not nodes.
        df = collection.document_frequency("fragment")
        assert 1 <= df <= 3

    def test_document_frequency_absent(self, collection):
        assert collection.document_frequency("zebra") == 0

    def test_vocabulary_is_union(self, collection):
        vocab = collection.vocabulary()
        for name in collection:
            assert collection.index(name).vocabulary() <= vocab

    def test_index_cached(self, collection):
        assert collection.index("book") is collection.index("book")


class TestSearch:
    def test_search_matches_per_document_evaluation(self, collection,
                                                    figure1):
        query = Query.of("xquery", "optimization",
                         predicate=SizeAtMost(3))
        result = collection.search(query)
        assert result.matched_documents == ["figure1"]
        direct = evaluate(figure1, query)
        assert result.per_document["figure1"].fragments == \
            direct.fragments

    def test_documents_missing_terms_skipped(self, collection):
        query = Query.of("xquery", "optimization")
        result = collection.search(query)
        assert "book" not in result.per_document

    def test_search_subset(self, collection):
        query = Query.of("fragment", predicate=SizeAtMost(2))
        result = collection.search(query, documents=["book"])
        assert set(result.per_document) <= {"book"}

    def test_hits_sorted_smallest_first(self, collection):
        query = Query.of("fragment", predicate=SizeAtMost(3))
        hits = collection.search(query).hits
        sizes = [h.fragment.size for h in hits]
        assert sizes == sorted(sizes)

    def test_hit_labels(self, collection):
        query = Query.of("xquery", "optimization",
                         predicate=SizeAtMost(3))
        labels = [h.label() for h in collection.search(query).hits]
        assert any(label.startswith("figure1:") for label in labels)

    def test_len_and_elapsed(self, collection):
        query = Query.of("fragment", predicate=SizeAtMost(2))
        result = collection.search(query)
        assert len(result) >= 0
        assert result.total_elapsed >= 0.0

    def test_strategy_passthrough(self, collection):
        query = Query.of("xquery", "optimization",
                         predicate=SizeAtMost(3))
        brute = collection.search(query, strategy=Strategy.BRUTE_FORCE)
        pushed = collection.search(query, strategy=Strategy.PUSHDOWN)
        assert {n: r.fragments for n, r in brute.per_document.items()} \
            == {n: r.fragments for n, r in pushed.per_document.items()}


class TestRankedSearch:
    def test_ranked_across_documents(self, collection):
        query = Query.of("keyword", "search", predicate=SizeAtMost(5))
        ranked = collection.ranked_search(query, limit=5)
        assert len(ranked) <= 5
        scores = [scored.score for _, scored in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_limit_respected(self, collection):
        query = Query.of("fragment", predicate=SizeAtMost(4))
        assert len(collection.ranked_search(query, limit=2)) <= 2


class TestFromDirectoryOnError:
    def test_default_still_raises(self, tmp_path):
        (tmp_path / "good.xml").write_text("<a><b>alpha</b></a>")
        (tmp_path / "bad.xml").write_text("<broken>")
        from repro.errors import DocumentError
        with pytest.raises(DocumentError):
            DocumentCollection.from_directory(tmp_path)

    def test_on_error_skips_and_reports(self, tmp_path):
        (tmp_path / "good.xml").write_text("<a><b>alpha</b></a>")
        (tmp_path / "bad.xml").write_text("<broken>")
        seen = []
        coll = DocumentCollection.from_directory(
            tmp_path, on_error=lambda path, exc: seen.append((path, exc)))
        assert coll.names() == ["good.xml"]
        assert len(seen) == 1
        assert seen[0][0].endswith("bad.xml")
        assert isinstance(seen[0][1], Exception)

    def test_on_error_all_bad_yields_empty_collection(self, tmp_path):
        (tmp_path / "one.xml").write_text("<broken>")
        seen = []
        coll = DocumentCollection.from_directory(
            tmp_path, on_error=lambda path, exc: seen.append(path))
        assert len(coll) == 0
        assert len(seen) == 1
