"""Tests for the metrics time-series store (``repro.obs.history``).

Sketch correctness first — insert/merge/compress must keep the
advertised rank-error bound honest — then the sampler: counter deltas
and rates, gauge last-values, histogram folding into per-interval
sketches, ring bounds, restart detection, and the windowed readers
that back ``/timeseries``.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.obs import (HISTORY_SAMPLES, HISTORY_SERIES, MetricsHistory,
                       MetricsRegistry, QuantileSketch)


def _true_rank_error(sketch, values, q):
    """Observed rank error of the sketch's ``q``-quantile against the
    sorted ground truth."""
    values = sorted(values)
    reported = sketch.query(q)
    at_or_below = sum(1 for v in values if v <= reported)
    return abs(at_or_below / len(values) - q)


class TestQuantileSketch:
    def test_empty_sketch(self):
        sketch = QuantileSketch()
        assert sketch.query(0.5) is None
        assert sketch.count == 0
        assert len(sketch) == 0
        assert sketch.rank_error_bound == sketch.epsilon

    def test_exact_on_small_input(self):
        sketch = QuantileSketch()
        for v in [5.0, 1.0, 3.0, 2.0, 4.0]:
            sketch.insert(v)
        assert sketch.query(0.0) == 1.0
        assert sketch.query(1.0) == 5.0
        assert 2.0 <= sketch.query(0.5) <= 3.0
        assert sketch.count == 5

    def test_duplicate_values_coalesce(self):
        sketch = QuantileSketch()
        for _ in range(1000):
            sketch.insert(7.0)
        assert len(sketch) == 1
        assert sketch.count == 1000
        assert sketch.query(0.5) == 7.0

    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            QuantileSketch(epsilon=0.0)
        with pytest.raises(ValueError):
            QuantileSketch(epsilon=0.7)
        with pytest.raises(ValueError):
            QuantileSketch().query(1.5)

    def test_bounded_memory_and_honest_bound_on_raw_stream(self):
        rng = random.Random(42)
        sketch = QuantileSketch(epsilon=0.01)
        values = [rng.gauss(100.0, 25.0) for _ in range(50_000)]
        for v in values:
            sketch.insert(v)
        sketch.compress()
        # Memory stays near capacity (2x amortisation slack at most).
        assert len(sketch) <= 2 * max(8, int(3 / 0.01))
        bound = sketch.rank_error_bound
        for q in (0.01, 0.1, 0.5, 0.9, 0.95, 0.99):
            assert _true_rank_error(sketch, values, q) <= bound + 1e-9
        # The honest bound must stay useful, not collapse to ~1.
        assert bound < 0.1

    def test_merge_preserves_bound(self):
        rng = random.Random(7)
        all_values = []
        sketches = []
        for _ in range(10):
            sketch = QuantileSketch(epsilon=0.01)
            chunk = [rng.expovariate(0.01) for _ in range(2000)]
            for v in chunk:
                sketch.insert(v)
            all_values.extend(chunk)
            sketches.append(sketch)
        merged = QuantileSketch.merged(sketches)
        assert merged.count == len(all_values)
        bound = merged.rank_error_bound
        for q in (0.5, 0.9, 0.99):
            assert _true_rank_error(merged, all_values, q) \
                <= bound + 1e-9

    def test_bucket_fed_sketch_stays_exact(self):
        bounds = (0.01, 0.05, 0.1, 0.5, 1.0)
        sketch = QuantileSketch(epsilon=0.005)
        for _ in range(500):  # 500 intervals of identical deltas
            sketch.observe_buckets(bounds, (10, 5, 3, 1, 0, 1))
        # Fixed value domain: one representative per bucket.
        assert len(sketch) <= len(bounds) + 1
        assert sketch.rank_error_bound == 0.005
        assert sketch.count == 500 * 20
        # Half the mass is in the first bucket: p25 below its bound.
        assert sketch.query(0.25) <= 0.01

    def test_bucket_tail_uses_last_finite_bound(self):
        sketch = QuantileSketch()
        sketch.observe_buckets((1.0, 2.0), (0, 0, 5))
        assert sketch.query(0.99) == 2.0

    def test_roundtrip_serialisation(self):
        sketch = QuantileSketch(epsilon=0.01)
        for v in (1.0, 2.0, 2.0, 3.0, 10.0):
            sketch.insert(v)
        clone = QuantileSketch.from_dict(sketch.to_dict())
        assert clone.count == sketch.count
        assert clone.epsilon == sketch.epsilon
        for q in (0.1, 0.5, 0.9):
            assert clone.query(q) == sketch.query(q)


class _Clock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now

    def tick(self, seconds):
        self.now += seconds
        return self.now


@pytest.fixture()
def clocked():
    registry = MetricsRegistry()
    clock = _Clock()
    history = MetricsHistory(registry, interval_s=5.0, capacity=8,
                             clock=clock)
    return registry, history, clock


class TestMetricsHistorySampling:
    def test_first_sample_is_baseline_for_counters(self, clocked):
        registry, history, clock = clocked
        registry.counter("c_total", "d").inc(10)
        history.sample_once()
        # Counters need movement: no points yet.
        assert history.delta("c_total") == 0.0
        clock.tick(5)
        registry.counter("c_total", "d").inc(3)
        history.sample_once()
        assert history.delta("c_total") == 3.0

    def test_counter_rate_and_windowing(self, clocked):
        registry, history, clock = clocked
        counter = registry.counter("qps_total", "d")
        history.sample_once()
        for _ in range(4):
            clock.tick(5)
            counter.inc(10)
            history.sample_once()
        doc = history.window("qps_total", window_s=10.0)
        assert doc["samples"] == 2
        assert doc["sum"] == 20.0
        assert doc["rate"] == pytest.approx(2.0)
        assert history.delta("qps_total") == 40.0

    def test_counter_reset_detected(self, clocked):
        registry, history, clock = clocked
        registry.counter("r_total", "d").inc(100)
        history.sample_once()
        clock.tick(5)
        registry.counter("r_total", "d").inc(1)
        history.sample_once()
        # Simulate a restart: replace the registry contents.
        fresh = MetricsRegistry()
        fresh.counter("r_total", "d").inc(4)
        history.registry = fresh
        clock.tick(5)
        history.sample_once()
        # 101 -> 4 went backwards; the new value is the delta.
        assert history.delta("r_total") == 1.0 + 4.0

    def test_gauge_last_min_max(self, clocked):
        registry, history, clock = clocked
        gauge = registry.gauge("level", "d")
        for value in (3.0, 9.0, 5.0):
            gauge.set(value)
            history.sample_once()
            clock.tick(5)
        doc = history.window("level")
        assert doc["last"] == 5.0
        assert doc["min"] == 3.0
        assert doc["max"] == 9.0
        assert history.last("level") == 5.0
        assert history.last("level", window_s=60.0) == 9.0

    def test_histogram_folds_to_window_quantiles(self, clocked):
        registry, history, clock = clocked
        hist = registry.histogram("lat", "d",
                                  buckets=(0.01, 0.1, 1.0))
        history.sample_once()
        for _ in range(3):
            clock.tick(5)
            for _ in range(90):
                hist.observe(0.005)
            for _ in range(10):
                hist.observe(0.5)
            history.sample_once()
        doc = history.window("lat")
        assert doc["count"] == 300
        assert doc["quantiles"]["p50"] <= 0.01
        assert 0.1 <= doc["quantiles"]["p99"] <= 1.0
        assert history.quantile("lat", 0.5) <= 0.01
        # Sum/mean come from the histogram's exact sum.
        assert doc["mean"] == pytest.approx((90 * 0.005 + 10 * 0.5)
                                            / 100)

    def test_ring_capacity_bounds_memory(self, clocked):
        registry, history, clock = clocked
        counter = registry.counter("ring_total", "d")
        for _ in range(30):
            counter.inc()
            history.sample_once()
            clock.tick(5)
        series = history.series("ring_total")[0]
        assert series["samples"] == 8  # capacity=8
        # The ring holds the newest points.
        assert series["points"][-1][0] == pytest.approx(
            clock.now - 5)

    def test_labelled_series_are_distinct_and_aggregated(self, clocked):
        registry, history, clock = clocked
        history.sample_once()
        clock.tick(5)
        registry.counter("lab_total", "d", labels={"k": "a"}).inc(2)
        registry.counter("lab_total", "d", labels={"k": "b"}).inc(5)
        history.sample_once()
        assert history.delta("lab_total", labels={"k": "a"}) == 2.0
        assert history.delta("lab_total", labels={"k": "b"}) == 5.0
        assert history.delta("lab_total") == 7.0  # both label sets

    def test_max_series_drops_and_counts(self):
        registry = MetricsRegistry()
        clock = _Clock()
        history = MetricsHistory(registry, interval_s=5.0, capacity=4,
                                 max_series=3, clock=clock)
        for i in range(6):
            registry.gauge(f"g{i}", "d").set(i)
        history.sample_once()
        stats = history.stats()
        assert stats["series"] == 3
        assert stats["series_dropped"] >= 3

    def test_missing_series_reads_return_none(self, clocked):
        _registry, history, _clock = clocked
        assert history.window("nope") is None
        assert history.quantile("nope", 0.99) is None
        assert history.delta("nope") is None
        assert history.last("nope") is None
        assert history.series("nope") == []

    def test_sampler_self_reports(self, clocked):
        registry, history, clock = clocked
        history.sample_once()
        clock.tick(5)
        history.sample_once()
        assert registry.get(HISTORY_SAMPLES).value == 2
        assert registry.get(HISTORY_SERIES).value >= 1

    def test_listener_runs_after_fold(self, clocked):
        _registry, history, clock = clocked
        seen = []
        history.add_listener(lambda h, now: seen.append(now))
        history.sample_once()
        clock.tick(5)
        history.sample_once()
        assert seen == [1000.0, 1005.0]

    def test_timeseries_doc_catalog_and_named(self, clocked):
        registry, history, clock = clocked
        registry.gauge("g", "d").set(1)
        history.sample_once()
        catalog = history.timeseries_doc()
        assert {"stats", "series"} <= set(catalog)
        assert any(s["name"] == "g" for s in catalog["series"])
        named = history.timeseries_doc("g", window_s=60.0)
        assert named["name"] == "g"
        assert named["window"]["last"] == 1

    def test_constructor_validation(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            MetricsHistory(registry, interval_s=0)
        with pytest.raises(ValueError):
            MetricsHistory(registry, capacity=1)
        with pytest.raises(ValueError):
            MetricsHistory(registry, max_series=0)


class TestSamplerThread:
    def test_start_stop_and_context_manager(self):
        registry = MetricsRegistry()
        registry.counter("t_total", "d").inc()
        history = MetricsHistory(registry, interval_s=0.01)
        with history as running:
            assert running is history
            assert history.running
            assert history._thread.daemon
            deadline = threading.Event()
            for _ in range(200):
                if history.stats()["samples"] >= 3:
                    break
                deadline.wait(0.01)
        assert not history.running
        assert history.stats()["samples"] >= 3
        # Idempotent stop, restartable start.
        history.stop()
        history.start()
        assert history.running
        history.stop()

    def test_sampler_survives_registry_errors(self):
        registry = MetricsRegistry()
        history = MetricsHistory(registry, interval_s=0.01)

        class Boom:
            def to_json(self):
                raise RuntimeError("boom")

        history.registry = Boom()
        history.start()
        try:
            done = threading.Event()
            for _ in range(200):
                if history._sample_errors >= 2:
                    break
                done.wait(0.01)
        finally:
            history.stop()
        assert history._sample_errors >= 2
        assert history.stats()["sample_errors"] >= 2
