"""Unit tests for the span tracer."""

from __future__ import annotations

import json
import sys

from repro.core.stats import OperationStats
from repro.obs.tracer import (NULL_SPAN, NULL_TRACER, NullTracer,
                              SpanTracer)


class TestSpanNesting:
    def test_single_root(self):
        tracer = SpanTracer()
        with tracer.span("root"):
            pass
        assert [s.name for s in tracer.roots] == ["root"]

    def test_children_attach_to_innermost_open_span(self):
        tracer = SpanTracer()
        with tracer.span("root"):
            with tracer.span("child"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("sibling"):
                pass
        root = tracer.roots[0]
        assert [c.name for c in root.children] == ["child", "sibling"]
        assert [c.name for c in root.children[0].children] \
            == ["grandchild"]

    def test_sequential_roots(self):
        tracer = SpanTracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [s.name for s in tracer.roots] == ["first", "second"]

    def test_walk_preorder_with_depths(self):
        tracer = SpanTracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                with tracer.span("d"):
                    pass
        walked = [(span.name, depth) for span, depth in tracer.walk()]
        assert walked == [("a", 0), ("b", 1), ("c", 1), ("d", 2)]

    def test_current(self):
        tracer = SpanTracer()
        assert tracer.current() is None
        with tracer.span("outer") as outer:
            assert tracer.current() is outer
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None

    def test_exception_closes_span_and_marks_error(self):
        tracer = SpanTracer()
        try:
            with tracer.span("root"):
                with tracer.span("failing"):
                    raise ValueError("boom")
        except ValueError:
            pass
        assert tracer.current() is None
        failing = tracer.roots[0].children[0]
        assert failing.attributes["error"] == "ValueError"

    def test_clear(self):
        tracer = SpanTracer()
        with tracer.span("x"):
            pass
        tracer.clear()
        assert tracer.roots == []


class TestAttributesAndWork:
    def test_attribute_capture(self):
        tracer = SpanTracer()
        with tracer.span("execute", strategy="pushdown") as span:
            span.set(answers=4)
        assert tracer.roots[0].attributes == {"strategy": "pushdown",
                                              "answers": 4}

    def test_duration_positive_and_nested_bounded(self):
        tracer = SpanTracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                sum(range(1000))
        outer, inner = tracer.roots[0], tracer.roots[0].children[0]
        assert inner.duration > 0.0
        assert inner.duration <= outer.duration

    def test_stats_delta_captured(self):
        tracer = SpanTracer()
        stats = OperationStats()
        stats.fragment_joins = 5
        with tracer.span("work", stats=stats):
            stats.fragment_joins += 3
            stats.predicate_checks += 2
        assert tracer.roots[0].work == {"fragment_joins": 3,
                                        "predicate_checks": 2}

    def test_stats_delta_zero_counters_omitted(self):
        tracer = SpanTracer()
        stats = OperationStats()
        with tracer.span("idle", stats=stats):
            pass
        assert tracer.roots[0].work == {}


class TestExporters:
    def _traced(self):
        tracer = SpanTracer()
        stats = OperationStats()
        with tracer.span("execute", strategy="pushdown", stats=stats):
            with tracer.span("scan"):
                stats.fragment_joins += 7
        return tracer

    def test_render_tree_shape(self):
        rendered = self._traced().render()
        lines = rendered.splitlines()
        assert lines[0].startswith("execute strategy=pushdown")
        assert lines[1].startswith("  scan")
        assert "ms" in lines[0]
        assert "fragment_joins=7" in lines[0]

    def test_to_dicts_nested(self):
        dicts = self._traced().to_dicts()
        assert dicts[0]["name"] == "execute"
        assert dicts[0]["children"][0]["name"] == "scan"
        assert dicts[0]["work"] == {"fragment_joins": 7}

    def test_to_jsonl_one_valid_object_per_span(self):
        lines = self._traced().to_jsonl().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["name"] for r in records] == ["execute", "scan"]
        assert [r["depth"] for r in records] == [0, 1]
        assert all("duration_ms" in r for r in records)


class TestNullTracer:
    def test_span_is_shared_singleton(self):
        assert NULL_TRACER.span("a") is NULL_SPAN
        assert NULL_TRACER.span("b", x=1) is NULL_SPAN

    def test_null_span_context_manager(self):
        with NULL_TRACER.span("anything") as span:
            assert span.set(key="value") is span

    def test_disabled_flag_and_empty_exports(self):
        assert not NullTracer.enabled
        assert NULL_TRACER.render() == ""
        assert NULL_TRACER.to_jsonl() == ""
        assert NULL_TRACER.to_dicts() == []
        assert NULL_TRACER.current() is None
        assert list(NULL_TRACER.walk()) == []

    def test_no_allocations_per_span(self):
        """The disabled path must not allocate per span."""
        span = NULL_TRACER.span
        for _ in range(3):  # warm up any lazy caches
            with span("warmup"):
                pass
        before = sys.getallocatedblocks()
        for _ in range(1000):
            with span("hot"):
                pass
        grown = sys.getallocatedblocks() - before
        assert grown <= 2
