"""CLI smoke tests for the observability flags and metrics subcommand."""

from __future__ import annotations

import json

import pytest

from repro.cli import main, metrics_main
from repro.workloads.corpora import BOOK_XML

LIFECYCLE = ("query", "parse", "plan", "optimize", "execute", "scan")


@pytest.fixture()
def book_file(tmp_path):
    path = tmp_path / "book.xml"
    path.write_text(BOOK_XML)
    return str(path)


class TestTraceFlag:
    def test_trace_prints_lifecycle_spans(self, book_file, capsys):
        code = main([book_file, "fragment", "join", "--max-size", "4",
                     "--trace"])
        out = capsys.readouterr().out
        assert code == 0
        assert "trace:" in out
        for phase in LIFECYCLE:
            assert phase in out

    def test_trace_with_rank_adds_rank_span(self, book_file, capsys):
        code = main([book_file, "fragment", "join", "--max-size", "4",
                     "--trace", "--rank"])
        out = capsys.readouterr().out
        assert code == 0
        assert "rank" in out

    def test_no_trace_prints_no_tree(self, book_file, capsys):
        code = main([book_file, "fragment", "--max-size", "2"])
        assert code == 0
        assert "trace:" not in capsys.readouterr().out


class TestMetricsOut:
    def test_json_dump(self, book_file, capsys, tmp_path):
        out_path = tmp_path / "metrics.json"
        code = main([book_file, "fragment", "join", "--max-size", "4",
                     "--metrics-out", str(out_path)])
        assert code == 0
        payload = json.loads(out_path.read_text())
        names = {metric["name"] for metric in payload["metrics"]}
        assert "repro_queries_total" in names
        assert "repro_query_latency_seconds" in names

    def test_prom_dump(self, book_file, capsys, tmp_path):
        out_path = tmp_path / "metrics.prom"
        code = main([book_file, "fragment", "join", "--max-size", "4",
                     "--metrics-out", str(out_path)])
        assert code == 0
        text = out_path.read_text()
        assert "# TYPE repro_queries_total counter" in text
        assert "repro_query_latency_seconds_bucket" in text
        assert "repro_join_cache_hits_total" in text


class TestSlowQueriesAndLog:
    def test_slow_query_reported_on_stderr(self, book_file, capsys):
        # threshold 0ms: every query counts as slow
        code = main([book_file, "fragment", "join", "--max-size", "4",
                     "--slow-query-ms", "0"])
        captured = capsys.readouterr()
        assert code == 0
        assert "slow-query:" in captured.err
        record = json.loads(
            captured.err.split("slow-query:", 1)[1].splitlines()[0])
        assert record["slow"] is True
        assert record["strategy"] == "pushdown"

    def test_high_threshold_stays_quiet(self, book_file, capsys):
        code = main([book_file, "fragment", "--max-size", "2",
                     "--slow-query-ms", "60000"])
        assert code == 0
        assert "slow-query:" not in capsys.readouterr().err

    def test_query_log_file(self, book_file, capsys, tmp_path):
        log_path = tmp_path / "queries.jsonl"
        code = main([book_file, "fragment", "join", "--max-size", "4",
                     "--query-log", str(log_path)])
        assert code == 0
        lines = log_path.read_text().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["terms"] == ["fragment", "join"]
        assert record["answers"] >= 1


class TestMetricsSubcommand:
    @pytest.fixture()
    def dump(self, book_file, capsys, tmp_path):
        path = tmp_path / "metrics.json"
        main([book_file, "fragment", "join", "--max-size", "4",
              "--metrics-out", str(path)])
        capsys.readouterr()  # swallow the search output
        return str(path)

    def test_summary_format(self, dump, capsys):
        assert metrics_main([dump]) == 0
        out = capsys.readouterr().out
        assert "metrics from" in out
        assert "repro_queries_total" in out

    def test_prom_format(self, dump, capsys):
        assert metrics_main([dump, "--format", "prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_queries_total counter" in out

    def test_json_format_roundtrips(self, dump, capsys):
        assert metrics_main([dump, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert any(metric["name"] == "repro_queries_total"
                   for metric in payload["metrics"])

    def test_reachable_through_main(self, dump, capsys):
        assert main(["metrics", dump]) == 0
        assert "repro_queries_total" in capsys.readouterr().out

    def test_missing_file_is_an_error(self, tmp_path, capsys):
        assert metrics_main([str(tmp_path / "absent.json")]) == 2

    def test_malformed_file_is_an_error(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{\"metrics\": [{\"kind\": \"mystery\"}]}")
        assert metrics_main([str(path)]) == 2


class TestCollectionObs:
    def test_trace_over_a_directory(self, tmp_path, capsys):
        for name in ("one", "two"):
            (tmp_path / f"{name}.xml").write_text(BOOK_XML)
        code = main([str(tmp_path), "fragment", "join",
                     "--max-size", "4", "--trace"])
        out = capsys.readouterr().out
        assert code == 0
        assert "collection-search" in out
        assert "execute" in out
