"""CLI smoke tests for the observability flags and metrics subcommand."""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main, metrics_main
from repro.workloads.corpora import BOOK_XML

LIFECYCLE = ("query", "parse", "plan", "optimize", "execute", "scan")


@pytest.fixture()
def book_file(tmp_path):
    path = tmp_path / "book.xml"
    path.write_text(BOOK_XML)
    return str(path)


class TestTraceFlag:
    def test_trace_prints_lifecycle_spans(self, book_file, capsys):
        code = main([book_file, "fragment", "join", "--max-size", "4",
                     "--trace"])
        out = capsys.readouterr().out
        assert code == 0
        assert "trace:" in out
        for phase in LIFECYCLE:
            assert phase in out

    def test_trace_with_rank_adds_rank_span(self, book_file, capsys):
        code = main([book_file, "fragment", "join", "--max-size", "4",
                     "--trace", "--rank"])
        out = capsys.readouterr().out
        assert code == 0
        assert "rank" in out

    def test_no_trace_prints_no_tree(self, book_file, capsys):
        code = main([book_file, "fragment", "--max-size", "2"])
        assert code == 0
        assert "trace:" not in capsys.readouterr().out


class TestMetricsOut:
    def test_json_dump(self, book_file, capsys, tmp_path):
        out_path = tmp_path / "metrics.json"
        code = main([book_file, "fragment", "join", "--max-size", "4",
                     "--metrics-out", str(out_path)])
        assert code == 0
        payload = json.loads(out_path.read_text())
        names = {metric["name"] for metric in payload["metrics"]}
        assert "repro_queries_total" in names
        assert "repro_query_latency_seconds" in names

    def test_prom_dump(self, book_file, capsys, tmp_path):
        out_path = tmp_path / "metrics.prom"
        code = main([book_file, "fragment", "join", "--max-size", "4",
                     "--metrics-out", str(out_path)])
        assert code == 0
        text = out_path.read_text()
        assert "# TYPE repro_queries_total counter" in text
        assert "repro_query_latency_seconds_bucket" in text
        assert "repro_join_cache_hits_total" in text


class TestSlowQueriesAndLog:
    def test_slow_query_reported_on_stderr(self, book_file, capsys):
        # threshold 0ms: every query counts as slow
        code = main([book_file, "fragment", "join", "--max-size", "4",
                     "--slow-query-ms", "0"])
        captured = capsys.readouterr()
        assert code == 0
        assert "slow-query:" in captured.err
        record = json.loads(
            captured.err.split("slow-query:", 1)[1].splitlines()[0])
        assert record["slow"] is True
        assert record["strategy"] == "pushdown"

    def test_high_threshold_stays_quiet(self, book_file, capsys):
        code = main([book_file, "fragment", "--max-size", "2",
                     "--slow-query-ms", "60000"])
        assert code == 0
        assert "slow-query:" not in capsys.readouterr().err

    def test_query_log_file(self, book_file, capsys, tmp_path):
        log_path = tmp_path / "queries.jsonl"
        code = main([book_file, "fragment", "join", "--max-size", "4",
                     "--query-log", str(log_path)])
        assert code == 0
        lines = log_path.read_text().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["terms"] == ["fragment", "join"]
        assert record["answers"] >= 1


class TestMetricsSubcommand:
    @pytest.fixture()
    def dump(self, book_file, capsys, tmp_path):
        path = tmp_path / "metrics.json"
        main([book_file, "fragment", "join", "--max-size", "4",
              "--metrics-out", str(path)])
        capsys.readouterr()  # swallow the search output
        return str(path)

    def test_summary_format(self, dump, capsys):
        assert metrics_main([dump]) == 0
        out = capsys.readouterr().out
        assert "metrics from" in out
        assert "repro_queries_total" in out

    def test_prom_format(self, dump, capsys):
        assert metrics_main([dump, "--format", "prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_queries_total counter" in out

    def test_json_format_roundtrips(self, dump, capsys):
        assert metrics_main([dump, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert any(metric["name"] == "repro_queries_total"
                   for metric in payload["metrics"])

    def test_reachable_through_main(self, dump, capsys):
        assert main(["metrics", dump]) == 0
        assert "repro_queries_total" in capsys.readouterr().out

    def test_missing_file_is_an_error(self, tmp_path, capsys):
        assert metrics_main([str(tmp_path / "absent.json")]) == 2

    def test_malformed_file_is_an_error(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{\"metrics\": [{\"kind\": \"mystery\"}]}")
        assert metrics_main([str(path)]) == 2


class TestCollectionObs:
    def test_trace_over_a_directory(self, tmp_path, capsys):
        for name in ("one", "two"):
            (tmp_path / f"{name}.xml").write_text(BOOK_XML)
        code = main([str(tmp_path), "fragment", "join",
                     "--max-size", "4", "--trace"])
        out = capsys.readouterr().out
        assert code == 0
        assert "collection-search" in out
        assert "execute" in out


class TestServeProfileQueries:
    def _serve(self, book_file, *extra, queries="fragment join\n"):
        from repro.cli import serve_main
        return serve_main([book_file, *extra],
                          stdin=io.StringIO(queries))

    def test_profile_dump_written_and_summarised(self, book_file,
                                                 tmp_path, capsys):
        dump = tmp_path / "recorder.jsonl"
        code = self._serve(book_file, "--profile-queries",
                           "--profile-sample-rate", "1.0",
                           "--profile-slow-ms", "0",
                           "--profile-dump", str(dump),
                           queries="fragment join\nfragment\n")
        err = capsys.readouterr().err
        assert code == 0
        lines = [json.loads(line) for line in
                 dump.read_text().splitlines()]
        assert any(record.get("type") == "profile" for record in lines)
        assert any(record.get("type") == "trace" for record in lines)
        assert "flight recorder: wrote" in err
        assert "p50=" in err and "p99=" in err
        assert "calibration[pushdown]" in err

    def test_profile_queries_without_dump_still_summarises(
            self, book_file, capsys):
        code = self._serve(book_file, "--profile-queries")
        err = capsys.readouterr().err
        assert code == 0
        assert "flight recorder: 1 profile(s)" in err
        assert "wrote" not in err

    def test_no_profile_flag_keeps_quiet(self, book_file, capsys):
        code = self._serve(book_file)
        assert code == 0
        assert "flight recorder" not in capsys.readouterr().err

    def test_bad_sample_rate_is_an_error(self, book_file, capsys):
        code = self._serve(book_file, "--profile-queries",
                           "--profile-sample-rate", "2.0")
        assert code == 2
        assert "sample_rate" in capsys.readouterr().err


class TestFlightRecorderSubcommand:
    @pytest.fixture()
    def dump(self, book_file, tmp_path, capsys):
        from repro.cli import serve_main
        path = tmp_path / "recorder.jsonl"
        serve_main([book_file, "--profile-queries",
                    "--profile-sample-rate", "1.0",
                    "--profile-slow-ms", "0",
                    "--profile-dump", str(path)],
                   stdin=io.StringIO("fragment join\nfragment\n"))
        capsys.readouterr()  # swallow the serve output
        return str(path)

    def test_summary_format(self, dump, capsys):
        from repro.cli import flightrecorder_main
        assert flightrecorder_main([dump]) == 0
        out = capsys.readouterr().out
        assert "2 profile(s)" in out
        assert "outcomes: ok=2" in out
        assert "latency: p50=" in out
        assert "calibration[pushdown]" in out
        assert "--trace <id>" in out

    def test_json_summary_roundtrips(self, dump, capsys):
        from repro.cli import flightrecorder_main
        assert flightrecorder_main([dump, "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["profiles"] == 2
        assert summary["outcomes"] == {"ok": 2}
        assert summary["latency"]["samples"] == 2
        assert "pushdown" in summary["calibration"]
        assert len(summary["trace_ids"]) == 2

    def test_trace_export_to_file(self, dump, capsys, tmp_path):
        from repro.cli import flightrecorder_main
        flightrecorder_main([dump, "--json"])
        trace_id = json.loads(capsys.readouterr().out)["trace_ids"][0]
        out_path = tmp_path / "trace.json"
        code = flightrecorder_main([dump, "--trace", trace_id,
                                    "--out", str(out_path)])
        assert code == 0
        assert "wrote" in capsys.readouterr().err
        trace = json.loads(out_path.read_text())
        assert trace["displayTimeUnit"] == "ms"
        assert trace["metadata"]["trace_id"] == trace_id
        events = trace["traceEvents"]
        assert events and all(event["ph"] == "X" for event in events)
        assert {event["name"] for event in events} >= {"execute"}

    def test_trace_export_to_stdout(self, dump, capsys):
        from repro.cli import flightrecorder_main
        flightrecorder_main([dump, "--json"])
        trace_id = json.loads(capsys.readouterr().out)["trace_ids"][0]
        assert flightrecorder_main([dump, "--trace", trace_id]) == 0
        trace = json.loads(capsys.readouterr().out)
        assert trace["traceEvents"]

    def test_unknown_trace_is_an_error(self, dump, capsys):
        from repro.cli import flightrecorder_main
        assert flightrecorder_main([dump, "--trace", "q0-nope"]) == 2
        err = capsys.readouterr().err
        assert "no trace" in err and "retained:" in err

    def test_missing_file_is_an_error(self, tmp_path, capsys):
        from repro.cli import flightrecorder_main
        path = str(tmp_path / "absent.jsonl")
        assert flightrecorder_main([path]) == 2
        assert "error:" in capsys.readouterr().err

    def test_reachable_through_main(self, dump, capsys):
        assert main(["flightrecorder", dump]) == 0
        assert "profile(s)" in capsys.readouterr().out


class TestServeSamplerAndSlo:
    def _serve(self, book_file, *extra, queries="fragment join\n"):
        from repro.cli import serve_main
        return serve_main([book_file, *extra],
                          stdin=io.StringIO(queries))

    def test_sampler_and_slo_serve_and_announce_top(self, book_file,
                                                    capsys):
        code = self._serve(
            book_file, "--sample-interval", "0.05",
            "--slo", "p99(repro_query_latency_seconds) < 10",
            "--slo", "errors: ratio(repro_guard_budget_exceeded_total/"
                     "repro_queries_total) < 0.5")
        captured = capsys.readouterr()
        assert code == 0
        assert "repro-search top" in captured.err

    def test_bad_slo_spec_is_an_error(self, book_file, capsys):
        code = self._serve(book_file, "--slo", "latency below 2s")
        assert code == 2
        assert "unparseable SLO spec" in capsys.readouterr().err

    def test_slo_requires_the_sampler(self, book_file, capsys):
        code = self._serve(book_file, "--sample-interval", "0",
                           "--slo", "p99(m) < 1")
        assert code == 2
        assert "--slo requires the sampler" in capsys.readouterr().err
