"""Concurrency tests for the observability layer.

The documented model is single-writer / many exporting readers: one
thread records queries while HTTP server threads render ``/metrics``,
``/varz`` and ``/slow`` snapshots.  These tests go further and hammer
the registry and query log from many *writer* threads at once — the
get-or-create, diff, merge and snapshot paths must never corrupt state
or raise ``RuntimeError: dictionary changed size during iteration``.

The final test is the acceptance bar for the resilience PR: hundreds
of searches interleaved from several threads against a *live*
:class:`~repro.obs.server.MetricsServer` under tight polling, with no
exceptions anywhere and the query counter exactly equal to the number
of searches issued.
"""

from __future__ import annotations

import json
import threading
import urllib.request

import pytest

from repro.core.query import Query
from repro.obs import (QUERIES_TOTAL, MetricsRegistry, Observability,
                       QueryLog)
from repro.obs.server import MetricsServer
from repro.workloads.inexlike import InexSpec, generate_collection

pytestmark = pytest.mark.timeout(120)


def _run_threads(workers):
    """Start all *workers*, join them, and re-raise the first error."""
    errors = []

    def wrap(fn):
        def run():
            try:
                fn()
            except BaseException as exc:  # noqa: BLE001 - test harness
                errors.append(exc)
        return run

    threads = [threading.Thread(target=wrap(fn)) for fn in workers]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


class TestMetricsRegistryThreadSafety:
    def test_concurrent_get_or_create_and_inc(self):
        registry = MetricsRegistry()
        rounds, nthreads = 200, 8

        def writer(tid):
            def run():
                for i in range(rounds):
                    registry.counter("hammer_total", "d").inc()
                    registry.counter("labelled_total", "d",
                                     labels={"t": str(tid % 4)}).inc()
                    registry.gauge("level", "d").set(i)
                    registry.histogram("lat_seconds", "d").observe(0.001)
            return run

        def exporter():
            for _ in range(rounds):
                registry.to_prometheus()
                registry.to_json()
                registry.summary()
                len(registry)

        _run_threads([writer(t) for t in range(nthreads)]
                     + [exporter, exporter])
        assert registry.counter("hammer_total", "d").value \
            == rounds * nthreads
        total = sum(registry.counter("labelled_total", "d",
                                     labels={"t": str(k)}).value
                    for k in range(4))
        assert total == rounds * nthreads

    def test_concurrent_diff_and_merge(self):
        base = MetricsRegistry()
        rounds = 100

        def writer():
            for _ in range(rounds):
                base.counter("w_total", "d").inc()

        def merger():
            for i in range(rounds):
                other = MetricsRegistry()
                other.counter("m_total", "d").inc(2)
                other.gauge("m_gauge", "d").set(i)
                base.merge(other.to_json())

        def differ():
            snap = base.to_json()
            for _ in range(rounds):
                base.diff(snap)
                base.diff()

        _run_threads([writer, merger, differ])
        assert base.counter("w_total", "d").value == rounds
        assert base.counter("m_total", "d").value == 2 * rounds

    def test_get_probe_does_not_create(self):
        registry = MetricsRegistry()
        assert registry.get("never_created") is None
        registry.counter("exists_total", "d").inc()
        assert registry.get("exists_total").value == 1
        assert registry.get("exists_total", labels={"x": "1"}) is None
        assert len(registry) == 1


class TestQueryLogThreadSafety:
    def test_concurrent_record_and_snapshot(self):
        lines = []
        log = QueryLog(sink=lines.append, slow_query_ms=0.0,
                       max_records=10_000)
        rounds, nthreads = 200, 6

        def writer(tid):
            def run():
                for i in range(rounds):
                    log.record(document=f"doc-{tid}", terms=("a",),
                               filter="true", strategy="pushdown",
                               answers=i, elapsed=0.001)
            return run

        def reader():
            for _ in range(rounds):
                log.records
                log.slow_queries()
                len(log)
                for _record in log:
                    break

        _run_threads([writer(t) for t in range(nthreads)]
                     + [reader, reader])
        assert len(log) == rounds * nthreads
        assert log.emitted == rounds * nthreads
        assert len(lines) == rounds * nthreads

    def test_concurrent_ingest_and_drain(self):
        log = QueryLog(max_records=10_000)
        rounds = 200
        payload = {"ts": 1.0, "document": "d", "terms": ["a"],
                   "filter": "true", "strategy": "pushdown",
                   "answers": 1, "elapsed_ms": 2.0, "slow": False,
                   "stats": {}}
        drained = []

        def producer():
            for _ in range(rounds):
                log.ingest(dict(payload), worker="w0")

        def drainer():
            for _ in range(rounds // 10):
                drained.extend(log.drain())

        _run_threads([producer, producer, drainer])
        drained.extend(log.drain())
        assert len(drained) == 2 * rounds


class TestLiveServerUnderLoad:
    def test_interleaved_searches_with_tight_polling(self):
        corpus = generate_collection(
            InexSpec(articles=4, nodes_per_article=100, seed=13))
        obs = Observability(query_log=QueryLog(slow_query_ms=0.0))
        queries = [Query(("needle", "thread")), Query(("needle",)),
                   Query(("thread",))]
        searches_per_thread, nthreads = 50, 4  # 200 searches total

        # QUERIES_TOTAL counts per-document evaluations (the index
        # early exit skips documents), so derive the exact expected
        # totals from one serial pass per query.
        evals_per_query = []
        for q in queries:
            probe = Observability(query_log=QueryLog())
            corpus.search(q, obs=probe)
            evals_per_query.append(probe.metrics.counter(
                QUERIES_TOTAL, "Queries evaluated.").value)
        expected_evals = sum(
            evals_per_query[(tid + i) % len(queries)]
            for tid in range(nthreads)
            for i in range(searches_per_thread))

        with MetricsServer(obs) as server:
            stop = threading.Event()

            def searcher(tid):
                def run():
                    for i in range(searches_per_thread):
                        corpus.search(queries[(tid + i) % len(queries)],
                                      obs=obs)
                return run

            def poller(path):
                def run():
                    while not stop.is_set():
                        with urllib.request.urlopen(
                                f"{server.url}{path}",
                                timeout=5) as reply:
                            assert reply.status == 200
                            reply.read()
                return run

            workers = [searcher(t) for t in range(nthreads)]
            pollers = [threading.Thread(target=poller(p))
                       for p in ("/metrics", "/slow", "/varz",
                                 "/healthz")]
            for t in pollers:
                t.start()
            try:
                _run_threads(workers)
            finally:
                stop.set()
                for t in pollers:
                    t.join(timeout=10)

            assert obs.metrics.counter(
                QUERIES_TOTAL,
                "Queries evaluated.").value == expected_evals
            assert len(obs.query_log) == expected_evals
            with urllib.request.urlopen(f"{server.url}/varz",
                                        timeout=5) as reply:
                varz = json.load(reply)
            assert varz["query_log"]["records"] == expected_evals
            metrics = {m["name"]: m
                       for m in varz["metrics"]["metrics"]}
            assert metrics[QUERIES_TOTAL]["value"] == expected_evals


class TestLiveSamplerUnderLoad:
    def test_timeseries_and_alertz_polling_during_searches(self):
        """Searches, a hot sampler, SLO evaluation and tight
        ``/timeseries`` + ``/varz`` + ``/alertz`` polling all run at
        once: no exceptions, no torn snapshots, and afterwards the
        history's windowed totals agree with the registry counter.
        """
        from repro.obs import MetricsHistory
        from repro.obs.slo import Objective, SLOMonitor

        corpus = generate_collection(
            InexSpec(articles=4, nodes_per_article=100, seed=13))
        obs = Observability()
        history = MetricsHistory(obs.metrics, interval_s=0.02,
                                 capacity=512)
        slo = SLOMonitor(history, [Objective(
            name="errors", kind="ratio",
            metric="repro_guard_budget_exceeded_total",
            total_metric=QUERIES_TOTAL, threshold=0.5,
            fast_window_s=0.2, slow_window_s=1.0)],
            metrics=obs.metrics)
        queries = [Query(("needle", "thread")), Query(("needle",)),
                   Query(("thread",))]
        searches_per_thread, nthreads = 40, 4

        with MetricsServer(obs, history=history, slo=slo) as server:
            assert history.running   # the server owns the sampler
            # Let the baseline sample land before any counters move,
            # so every search shows up in the ring's lifetime delta.
            settle = threading.Event()
            for _ in range(500):
                if history.stats()["samples"] >= 1:
                    break
                settle.wait(0.01)
            assert history.stats()["samples"] >= 1
            stop = threading.Event()

            def searcher(tid):
                def run():
                    for i in range(searches_per_thread):
                        corpus.search(queries[(tid + i) % len(queries)],
                                      obs=obs)
                return run

            def poller(path, check):
                def run():
                    while not stop.is_set():
                        with urllib.request.urlopen(
                                f"{server.url}{path}",
                                timeout=5) as reply:
                            assert reply.status == 200
                            check(json.loads(reply.read()))
                return run

            def check_timeseries(doc):
                assert "series" in doc
                for series in doc["series"]:
                    # The catalog summarises points as a count; the
                    # named doc carries the actual ring.
                    points = series["points"]
                    if isinstance(points, int):
                        assert points >= 0
                        continue
                    # Timestamps within one ring are monotonic.
                    assert all(a[0] <= b[0] for a, b
                               in zip(points, points[1:]))

            def check_alertz(doc):
                assert doc["enabled"] is True
                assert doc["state"] in ("ok", "warning", "critical")

            def check_varz(doc):
                assert doc["history"]["samples"] >= 0
                assert doc["slo"]["objectives"] == 1

            pollers = [
                threading.Thread(target=poller("/timeseries",
                                               check_timeseries)),
                threading.Thread(target=poller(
                    f"/timeseries?name={QUERIES_TOTAL}&window=1",
                    check_timeseries)),
                threading.Thread(target=poller("/alertz", check_alertz)),
                threading.Thread(target=poller("/varz", check_varz)),
            ]
            for t in pollers:
                t.start()
            try:
                _run_threads([searcher(t) for t in range(nthreads)])
                # One settling interval so the sampler folds the tail.
                deadline = threading.Event()
                total = obs.metrics.counter(QUERIES_TOTAL,
                                            "Queries evaluated.").value
                for _ in range(200):
                    if history.delta(QUERIES_TOTAL) == total:
                        break
                    deadline.wait(0.02)
            finally:
                stop.set()
                for t in pollers:
                    t.join(timeout=10)

            # The ring's lifetime delta equals the counter: no sample
            # was torn or double-folded under concurrency.
            assert history.delta(QUERIES_TOTAL) == total
            assert history.stats()["sample_errors"] == 0
            assert slo.state_of("errors").evaluations > 0
        assert not history.running   # stop() returned the sampler
