"""Unit tests for the structured query log."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs.querylog import QueryLog, QueryRecord


def _record(log, *, elapsed=0.002, **overrides):
    fields = dict(document="figure1", terms=("xquery", "optimization"),
                  filter="size<=3", strategy="pushdown", answers=4,
                  elapsed=elapsed, stats={"fragment_joins": 7})
    fields.update(overrides)
    return log.record(**fields)


class TestRecordFields:
    def test_record_carries_the_query(self):
        log = QueryLog(clock=lambda: 1234.5)
        record = _record(log, plan="Project(Join)")
        assert record == QueryRecord(
            timestamp=1234.5, document="figure1",
            terms=("xquery", "optimization"), filter="size<=3",
            strategy="pushdown", answers=4, elapsed_ms=2.0,
            slow=False, stats={"fragment_joins": 7},
            plan="Project(Join)")

    def test_to_dict_rounds_and_omits_absent_plan(self):
        log = QueryLog(clock=lambda: 1.0)
        payload = _record(log, elapsed=0.0012345).to_dict()
        assert payload["elapsed_ms"] == 1.234
        assert "plan" not in payload

    def test_to_json_parses_back(self):
        log = QueryLog(clock=lambda: 1.0)
        parsed = json.loads(_record(log).to_json())
        assert parsed["terms"] == ["xquery", "optimization"]
        assert parsed["stats"] == {"fragment_joins": 7}


class TestSlowThreshold:
    def test_threshold_is_inclusive(self):
        log = QueryLog(slow_query_ms=50)
        assert not _record(log, elapsed=0.049).slow
        assert _record(log, elapsed=0.050).slow
        assert _record(log, elapsed=0.051).slow
        assert len(log.slow_queries()) == 2

    def test_no_threshold_means_nothing_is_slow(self):
        log = QueryLog()
        assert not _record(log, elapsed=10.0).slow
        assert log.slow_queries() == []

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            QueryLog(slow_query_ms=-1)


class TestSinks:
    def test_file_like_sink_gets_jsonl(self):
        sink = io.StringIO()
        log = QueryLog(sink=sink)
        _record(log)
        _record(log, strategy="brute-force")
        lines = sink.getvalue().splitlines()
        assert [json.loads(l)["strategy"] for l in lines] \
            == ["pushdown", "brute-force"]
        assert log.emitted == 2

    def test_callable_sink_gets_bare_lines(self):
        seen = []
        log = QueryLog(sink=seen.append)
        _record(log)
        assert len(seen) == 1
        assert not seen[0].endswith("\n")
        assert json.loads(seen[0])["document"] == "figure1"

    def test_slow_only_filters_sink_but_not_ring(self):
        sink = io.StringIO()
        log = QueryLog(sink=sink, slow_query_ms=50, slow_only=True)
        _record(log, elapsed=0.001)
        _record(log, elapsed=0.100)
        emitted = sink.getvalue().splitlines()
        assert len(emitted) == 1
        assert json.loads(emitted[0])["slow"] is True
        assert len(log) == 2  # the fast query is still retained
        assert log.emitted == 1

    def test_no_sink_keeps_records_in_memory_only(self):
        log = QueryLog()
        _record(log)
        assert log.emitted == 0
        assert len(log.records) == 1


class TestRing:
    def test_ring_drops_oldest(self):
        log = QueryLog(max_records=3)
        for answers in range(5):
            _record(log, answers=answers)
        assert [r.answers for r in log] == [2, 3, 4]
        assert len(log) == 3

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            QueryLog(max_records=0)


class TestEvictionAccounting:
    def test_evicted_counter_and_max_records(self):
        log = QueryLog(max_records=3)
        assert log.max_records == 3
        assert log.evicted == 0
        for answers in range(5):
            _record(log, answers=answers)
        assert log.evicted == 2
        assert len(log) == 3

    def test_no_eviction_below_capacity(self):
        log = QueryLog(max_records=10)
        _record(log)
        _record(log)
        assert log.evicted == 0
