"""Tests for the guarded POST /query endpoint (repro.obs.server).

Route/method handling, the admission queue and load shedding, budget
propagation, and graceful drain.  Shedding states are set up through
the server's own guard state so the tests stay deterministic instead
of racing real slow queries.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.collection.collection import DocumentCollection
from repro.guard.admission import AdmissionPolicy
from repro.obs import (GUARD_ADMITTED, GUARD_BUDGET_EXCEEDED,
                       GUARD_REJECTED, GUARD_SHED, Observability)
from repro.obs.server import MetricsServer, QueryGuardrails


def _request(url, method="GET", payload=None):
    data = (json.dumps(payload).encode("utf-8")
            if payload is not None else None)
    headers = ({"Content-Type": "application/json"}
               if data is not None else {})
    request = urllib.request.Request(url, data=data, headers=headers,
                                     method=method)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return (response.status, dict(response.headers),
                    response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read().decode()


@pytest.fixture()
def collection():
    coll = DocumentCollection("c")
    coll.add_xml("<a><b>red pear</b><c>green apple</c></a>", name="d1")
    return coll


@pytest.fixture()
def server(collection):
    with MetricsServer(Observability(),
                       collection=collection) as running:
        yield running


def _counter(server, name, **labels):
    instrument = server._server.obs.metrics.get(name, labels or None)
    return 0 if instrument is None else instrument.value


class TestMethodRouting:
    def test_get_on_query_is_405_with_allow(self, server):
        status, headers, _ = _request(server.url + "/query")
        assert status == 405
        assert headers.get("Allow") == "POST"

    @pytest.mark.parametrize("path", ["/metrics", "/healthz", "/varz",
                                      "/slow"])
    def test_post_on_get_endpoints_is_405(self, server, path):
        status, headers, _ = _request(server.url + path, "POST",
                                      payload={})
        assert status == 405
        assert headers.get("Allow") == "GET"

    @pytest.mark.parametrize("method", ["PUT", "DELETE", "PATCH"])
    def test_other_methods_on_known_paths_are_405(self, server, method):
        status, headers, _ = _request(server.url + "/metrics", method)
        assert status == 405
        assert headers.get("Allow") == "GET"

    @pytest.mark.parametrize("method", ["GET", "POST", "PUT"])
    def test_unknown_paths_are_404_for_every_method(self, server,
                                                    method):
        payload = {} if method == "POST" else None
        status, _, _ = _request(server.url + "/nope", method, payload)
        assert status == 404

    def test_query_without_collection_is_503(self):
        with MetricsServer(Observability()) as bare:
            status, _, body = _request(bare.url + "/query", "POST",
                                       payload={"query": "red"})
        assert status == 503
        assert json.loads(body)["error"] == "no-collection"


class TestQueryFlow:
    def test_success_returns_hits_and_counts_admitted(self, server):
        status, _, body = _request(server.url + "/query", "POST",
                                   payload={"query": "red pear"})
        assert status == 200
        doc = json.loads(body)
        assert doc["answers"] == 1
        assert doc["matched_documents"] == ["d1"]
        assert doc["hits"][0]["document"] == "d1"
        assert _counter(server, GUARD_ADMITTED) == 1

    def test_terms_with_filter_and_strategy(self, server):
        status, _, body = _request(
            server.url + "/query", "POST",
            payload={"terms": ["green", "apple"], "filter": "size<=3",
                     "strategy": "brute-force"})
        assert status == 200
        assert json.loads(body)["strategy"] == "brute-force"

    @pytest.mark.parametrize("payload", [
        {"query": ""},                      # empty query
        {"query": "red ["},                 # unterminated filter
        {"terms": "red"},                   # terms must be a list
        {"terms": ["red"], "filter": "!"},  # bad filter expression
        {"query": "red", "deadline_ms": -5},
        {"query": "red", "strategy": "bogus"},
        {},                                 # neither query nor terms
    ])
    def test_bad_requests_are_400_and_counted(self, server, payload):
        before = _counter(server, GUARD_REJECTED, reason="parse")
        status, _, body = _request(server.url + "/query", "POST",
                                   payload=payload)
        assert status == 400
        assert json.loads(body)["error"] == "bad-request"
        assert _counter(server, GUARD_REJECTED,
                        reason="parse") == before + 1

    def test_budget_exceeded_is_422_and_counted_once(self, collection):
        parts = "".join(f"<b{i}>red pear</b{i}>" for i in range(12))
        collection.add_xml(f"<a>{parts}</a>", name="patho")
        with MetricsServer(Observability(),
                           collection=collection) as server:
            status, _, body = _request(
                server.url + "/query", "POST",
                payload={"query": "red pear", "max_join_ops": 500})
            assert status == 422
            doc = json.loads(body)
            assert doc["error"] == "budget-exceeded"
            assert doc["reason"] in ("join-ops", "candidates",
                                     "live-fragments")
            assert _counter(server, GUARD_BUDGET_EXCEEDED) == 1

    def test_request_cannot_loosen_server_deadline(self, collection):
        rails = QueryGuardrails(max_join_ops=10)
        with MetricsServer(Observability(), collection=collection,
                           guardrails=rails) as server:
            status, _, body = _request(
                server.url + "/query", "POST",
                payload={"query": "red pear",
                         "max_join_ops": 10_000_000})
            # min(request, server) == 10: even one pair join aborts...
            # unless the query is cheap enough; either way the server
            # ceiling applies, so assert against the budget actually
            # used rather than a fixed outcome.
            doc = json.loads(body)
            if status == 422:
                assert doc["error"] == "budget-exceeded"
            else:
                assert status == 200

    def test_admission_rejection_is_422(self, collection):
        rails = QueryGuardrails(
            admission=AdmissionPolicy(max_cost=1e-6))
        with MetricsServer(Observability(), collection=collection,
                           guardrails=rails) as server:
            status, _, body = _request(server.url + "/query", "POST",
                                       payload={"query": "red pear"})
            assert status == 422
            assert json.loads(body)["error"] == "admission-rejected"
            assert _counter(server, GUARD_REJECTED,
                            reason="admission") == 1


class TestLoadShedding:
    def test_queue_full_is_429_with_retry_after(self, collection):
        rails = QueryGuardrails(max_queue=1, retry_after_s=2.5)
        with MetricsServer(Observability(), collection=collection,
                           guardrails=rails) as server:
            guard = server._server.guard
            assert guard.try_enqueue() is None  # fills the only slot
            status, headers, body = _request(
                server.url + "/query", "POST",
                payload={"query": "red pear"})
            assert status == 429
            assert json.loads(body)["reason"] == "queue-full"
            assert headers.get("Retry-After") == "2.5"
            assert _counter(server, GUARD_SHED,
                            reason="queue-full") == 1

    def test_no_free_slot_within_timeout_is_503(self, collection):
        rails = QueryGuardrails(max_concurrency=1,
                                queue_timeout_s=0.05)
        with MetricsServer(Observability(), collection=collection,
                           guardrails=rails) as server:
            guard = server._server.guard
            assert guard.semaphore.acquire(timeout=1)  # hog the slot
            try:
                status, headers, body = _request(
                    server.url + "/query", "POST",
                    payload={"query": "red pear"})
            finally:
                guard.semaphore.release()
            assert status == 503
            assert json.loads(body)["reason"] == "overload"
            assert headers.get("Retry-After")
            assert _counter(server, GUARD_SHED,
                            reason="overload") == 1


class TestDrain:
    def test_drain_sheds_and_flips_healthz(self, server):
        assert server.drain(timeout=5) is True
        status, _, body = _request(server.url + "/healthz")
        assert (status, body.strip()) == (503, "draining")
        status, headers, body = _request(server.url + "/query", "POST",
                                         payload={"query": "red"})
        assert status == 503
        assert json.loads(body)["reason"] == "draining"
        assert headers.get("Retry-After")
        # GET endpoints keep answering while draining.
        status, _, _ = _request(server.url + "/metrics")
        assert status == 200

    def test_drain_waits_for_in_flight_queries(self, server):
        guard = server._server.guard
        assert guard.try_enqueue() is None
        assert guard.acquire_slot()          # one query "in flight"
        assert server.drain(timeout=0.1) is False
        guard.release_slot()
        assert server.drain(timeout=5) is True

    def test_varz_reports_guard_state(self, server):
        _request(server.url + "/query", "POST",
                 payload={"query": "red pear"})
        _, _, body = _request(server.url + "/varz")
        varz = json.loads(body)
        guard = varz["guard"]
        assert guard["queued"] == 0
        assert guard["in_flight"] == 0
        assert guard["draining"] is False
        assert guard["breaker"]["state"] == "closed"
        names = {m["name"] for m in varz["metrics"]["metrics"]}
        assert "repro_guard_admitted_total" in names
        assert "repro_guard_breaker_state" in names


class TestPaginationAndStreaming:
    """Offset pagination and the chunked NDJSON stream path."""

    @pytest.fixture()
    def paged_server(self):
        coll = DocumentCollection("paged")
        coll.add_xml("<a><b>red pear</b><c>red apple</c>"
                     "<d>apple red</d></a>", name="d1")
        coll.add_xml("<a><b>red rose</b><c>thorn</c></a>", name="d2")
        with MetricsServer(Observability(),
                           collection=coll) as running:
            yield running

    def _hits(self, doc):
        return [(h["document"], tuple(h["nodes"])) for h in doc["hits"]]

    def test_response_carries_pagination_fields(self, paged_server):
        status, _, body = _request(paged_server.url + "/query", "POST",
                                   payload={"query": "red",
                                            "limit": 2})
        assert status == 200
        doc = json.loads(body)
        assert doc["offset"] == 0
        assert doc["limit"] == 2
        assert doc["returned"] == len(doc["hits"]) <= 2
        if doc["answers"] > 2:
            assert doc["next_offset"] == 2
        else:
            assert doc["next_offset"] is None

    def test_pages_reassemble_full_result(self, paged_server):
        status, _, body = _request(paged_server.url + "/query", "POST",
                                   payload={"query": "red",
                                            "limit": 50})
        assert status == 200
        full = json.loads(body)
        assert full["answers"] >= 3  # corpus plants several red nodes
        everything = self._hits(full)
        offset, pages = 0, []
        while offset is not None:
            _, _, body = _request(paged_server.url + "/query", "POST",
                                  payload={"query": "red", "limit": 2,
                                           "offset": offset})
            doc = json.loads(body)
            pages.extend(self._hits(doc))
            offset = doc["next_offset"]
        assert pages == everything

    @pytest.mark.parametrize("payload", [
        {"query": "red", "offset": -1},
        {"query": "red", "offset": 1.5},
        {"query": "red", "offset": True},
        {"query": "red", "stream": "yes"},
        {"query": "red", "limit": 0},
    ])
    def test_bad_pagination_is_400(self, paged_server, payload):
        status, _, body = _request(paged_server.url + "/query", "POST",
                                   payload=payload)
        assert status == 400
        assert json.loads(body)["error"] == "bad-request"

    def test_stream_returns_ndjson(self, paged_server):
        status, headers, body = _request(
            paged_server.url + "/query", "POST",
            payload={"query": "red", "stream": True, "limit": 2})
        assert status == 200
        assert headers.get("Content-Type") == "application/x-ndjson"
        lines = [json.loads(line) for line in body.splitlines() if line]
        assert lines[0]["stream"] is True
        assert lines[0]["limit"] == 2
        summary = lines[-1]
        hits = lines[1:-1]
        assert summary["returned"] == len(hits) <= 2
        for hit in hits:
            assert {"document", "nodes", "size"} <= set(hit)

    def test_stream_page_matches_materialized_page(self, paged_server):
        _, _, body = _request(paged_server.url + "/query", "POST",
                              payload={"query": "red", "limit": 2,
                                       "offset": 1})
        doc = json.loads(body)
        _, _, stream_body = _request(
            paged_server.url + "/query", "POST",
            payload={"query": "red", "stream": True, "limit": 2,
                     "offset": 1})
        lines = [json.loads(line) for line in stream_body.splitlines()
                 if line]
        streamed = [(h["document"], tuple(h["nodes"]))
                    for h in lines[1:-1]]
        assert streamed == self._hits(doc)
        assert lines[-1]["next_offset"] == doc["next_offset"]
