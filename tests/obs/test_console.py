"""Tests for the live ops console (``repro.obs.console`` and the
``repro-search top`` CLI entry).

``render()`` is a pure function over one snapshot dict, so most
coverage asserts on frames built from canned data; the source tests
then exercise :class:`LocalSource` against an in-process server and
:class:`HttpSource` against a live one (including a dead target).
"""

from __future__ import annotations

import io

import pytest

from repro.cli import top_main
from repro.obs import (QUERIES_TOTAL, QUERY_LATENCY, MetricsHistory,
                       MetricsRegistry, Observability)
from repro.obs.console import (SPARK_CHARS, HttpSource, LocalSource,
                               OpsConsole, sparkline)
from repro.obs.server import MetricsServer
from repro.obs.slo import Objective, SLOMonitor

pytestmark = pytest.mark.timeout(120)


class TestSparkline:
    def test_empty_and_all_none(self):
        assert sparkline([]) == ""
        assert sparkline([None, None]) == ""

    def test_scales_to_window_extremes(self):
        strip = sparkline([0.0, 5.0, 10.0])
        assert strip[0] == SPARK_CHARS[0]
        assert strip[-1] == SPARK_CHARS[-1]
        assert len(strip) == 3

    def test_flat_series_renders_low(self):
        assert sparkline([4.2, 4.2, 4.2]) == SPARK_CHARS[0] * 3

    def test_none_gaps_render_as_spaces(self):
        assert sparkline([1.0, None, 2.0])[1] == " "

    def test_width_keeps_the_tail(self):
        strip = sparkline(list(range(100)), width=8)
        assert len(strip) == 8
        # The newest (largest) values are the ones shown.
        assert strip[-1] == SPARK_CHARS[-1]


def _frame(data, width=100):
    return OpsConsole(source=None, width=width).render(data)


def _canned(**overrides):
    data = {
        "target": "http://127.0.0.1:9",
        "varz": {
            "uptime_seconds": 12.0,
            "degraded": False,
            "metrics": {"metrics": [
                {"name": QUERIES_TOTAL, "labels": None, "value": 42}]},
            "guard": {"queued": 0, "max_queue": 16, "in_flight": 1,
                      "max_concurrency": 4, "draining": False,
                      "admission_scale": 1.0, "tightenings": 0,
                      "breaker": {"state": "closed"}},
            "shards": {"breakers": {"0": {"state": "closed"},
                                    "1": {"state": "open"}},
                       "history": {"0": {"runs": 9},
                                   "1": {"runs": 9, "failed_runs": 2,
                                         "excluded_runs": 1,
                                         "reroutes": 1,
                                         "last_exclusion":
                                             "breaker-open"}}},
            "flight_recorder": {"profiles": 3, "traces": 2,
                                "evicted": 0},
        },
        "alerts": {"enabled": True, "state": "ok", "alerts": [
            {"name": "p99-latency", "state": "ok", "fast_burn": 0.2,
             "slow_burn": 0.1, "expr": "p99(m) < 0.25"}]},
        "qps": [1.0, 2.0, 4.0],
        "latency": {"p50": [0.010, 0.012], "p99": [0.100, None]},
    }
    data.update(overrides)
    return data


class TestRender:
    def test_full_frame_sections(self):
        frame = _frame(_canned())
        assert "health ok" in frame
        assert "up 12s" in frame
        assert "total 42" in frame
        assert "qps 4.0" in frame
        assert "p50 12.0ms" in frame
        assert "p99 100.0ms" in frame          # last *present* value
        assert "breaker closed" in frame
        assert "admission x1.00" in frame
        assert "[      ok] p99-latency" in frame
        assert "fast 0.20" in frame
        assert "recorder  profiles 3" in frame

    def test_shard_table_marks_sick_shards(self):
        lines = _frame(_canned()).splitlines()
        shard_lines = [l for l in lines if l.lstrip().startswith(("!", "0", "1"))
                       or l.startswith("  ")]
        table = "\n".join(lines)
        assert "breaker-open" in table         # last exclusion reason
        sick = [l for l in lines if l.startswith("  !")]
        healthy = [l for l in lines if l.startswith("   ") and " 0" in l
                   and "closed" in l]
        assert len(sick) == 1 and " 1" in sick[0] and "open" in sick[0]
        assert healthy

    def test_health_precedence(self):
        critical = _canned()
        critical["alerts"] = {"enabled": True, "state": "critical",
                              "alerts": []}
        assert "health CRITICAL" in _frame(critical)

        degraded = _canned()
        degraded["varz"]["degraded"] = True
        assert "health DEGRADED" in _frame(degraded)

        draining = _canned()
        draining["varz"]["guard"]["draining"] = True
        # Draining wins even over a critical alert.
        draining["alerts"] = {"enabled": True, "state": "critical",
                              "alerts": []}
        assert "health DRAINING" in _frame(draining)

        assert "health UNREACHABLE" in _frame(
            {"target": "http://gone:1", "varz": None, "alerts": None,
             "qps": [], "latency": {}})

    def test_missing_sections_degrade_gracefully(self):
        frame = _frame({"target": "t", "varz": {"uptime_seconds": 1.0},
                        "alerts": None, "qps": [], "latency": {}})
        assert "total -" in frame
        assert "qps -" in frame
        assert "p50 -ms" in frame
        assert "guard" not in frame
        assert "shards" not in frame

    def test_no_slos_configured_renders_a_note(self):
        frame = _frame(_canned(alerts={"enabled": False, "state": "ok",
                                       "alerts": []}))
        assert "(none configured)" in frame

    def test_width_clips_every_line(self):
        frame = _frame(_canned(), width=40)
        assert frame
        assert all(len(line) <= 40 for line in frame.splitlines())

    def test_tightened_admission_is_called_out(self):
        data = _canned()
        data["varz"]["guard"]["admission_scale"] = 0.5
        data["varz"]["guard"]["tightenings"] = 1
        frame = _frame(data)
        assert "admission x0.50 (tightened 1x)" in frame


def _serving_stack():
    """An Observability handle with one sampled query behind it."""
    obs = Observability()
    obs.metrics.counter(QUERIES_TOTAL, "Queries evaluated.").inc(5)
    obs.metrics.histogram(QUERY_LATENCY, "d",
                          buckets=(0.01, 0.1, 1.0)).observe(0.05)
    history = MetricsHistory(obs.metrics, interval_s=0.05)
    slo = SLOMonitor(history, [Objective(
        name="o", kind="gauge", metric="missing", threshold=1.0)],
        metrics=obs.metrics)
    return obs, history, slo


class TestSources:
    def test_local_source_renders_live_server(self):
        obs, history, slo = _serving_stack()
        with MetricsServer(obs, history=history, slo=slo) as server:
            history.sample_once()
            data = LocalSource(server).fetch()
            assert data["target"] == server.url
            assert data["varz"]["metrics"]
            assert data["alerts"]["enabled"] is True
            frame = OpsConsole(source=None).render(data)
            assert "health ok" in frame
            assert "total 5" in frame
            assert "[      ok] o" in frame

    def test_http_source_renders_live_server(self):
        obs, history, slo = _serving_stack()
        with MetricsServer(obs, history=history, slo=slo) as server:
            history.sample_once()
            console = OpsConsole(HttpSource(server.url))
            frame = console.frame()
            assert "health ok" in frame
            assert "total 5" in frame

    def test_http_source_normalises_scheme(self):
        source = HttpSource("127.0.0.1:9/")
        assert source.url == "http://127.0.0.1:9"

    def test_http_source_tolerates_dead_target(self):
        # Port 9 (discard) is almost never listening; every section
        # comes back None and the frame says so instead of raising.
        console = OpsConsole(HttpSource("http://127.0.0.1:9",
                                        timeout_s=0.2))
        assert "health UNREACHABLE" in console.frame()

    def test_http_source_without_sampler_or_slo(self):
        obs = Observability()
        obs.metrics.counter(QUERIES_TOTAL, "d").inc()
        with MetricsServer(obs) as server:
            frame = OpsConsole(HttpSource(server.url)).frame()
            # /timeseries 404s and /alertz reports disabled; the
            # console still renders the varz-backed lines.
            assert "health ok" in frame
            assert "(none configured)" in frame


class TestRunLoop:
    def test_run_draws_n_frames_without_ansi_when_piped(self):
        obs, history, slo = _serving_stack()
        with MetricsServer(obs, history=history, slo=slo) as server:
            out = io.StringIO()
            slept = []
            console = OpsConsole(LocalSource(server), out=out,
                                 interval_s=0.01,
                                 sleep=slept.append)
            assert console.run(frames=2) == 0
            text = out.getvalue()
            assert text.count("repro-search top") == 2
            assert "\x1b[" not in text            # not a TTY
            assert slept == [0.01]                # no sleep after last

    def test_keyboard_interrupt_exits_cleanly(self):
        class Source:
            def fetch(self):
                raise KeyboardInterrupt

        console = OpsConsole(Source(), out=io.StringIO())
        assert console.run() == 0


class TestTopMain:
    def test_one_frame_against_live_server(self):
        obs, history, slo = _serving_stack()
        with MetricsServer(obs, history=history, slo=slo) as server:
            history.sample_once()
            out = io.StringIO()
            assert top_main([server.url, "--frames", "1",
                             "--width", "72"], out=out) == 0
            frame = out.getvalue()
            assert "repro-search top" in frame
            assert all(len(line) <= 72
                       for line in frame.splitlines())

    def test_rejects_bad_flags(self):
        with pytest.raises(SystemExit):
            top_main(["http://x", "--interval", "0"])
        with pytest.raises(SystemExit):
            top_main(["http://x", "--frames", "0"])
        with pytest.raises(SystemExit):
            top_main([])  # url is required
