"""Tests for the Observability façade and its engine integration."""

from __future__ import annotations

from repro.core.filters import SizeAtMost
from repro.core.query import Query
from repro.core.strategies import Strategy, evaluate
from repro.obs import (JOIN_CACHE_HITS, NOOP, QUERIES_BY_STRATEGY,
                       QUERIES_TOTAL, QUERY_LATENCY, SLOW_QUERIES,
                       MetricsRegistry, NullMetrics, NullTracer,
                       Observability, QueryLog, SpanTracer)
from repro.obs.tracer import NULL_SPAN

QUERY = Query.of("xquery", "optimization", predicate=SizeAtMost(3))


class TestFacade:
    def test_defaults_are_live(self):
        obs = Observability()
        assert obs.enabled
        assert isinstance(obs.tracer, SpanTracer)
        assert isinstance(obs.metrics, MetricsRegistry)
        assert obs.query_log is None

    def test_span_delegates_to_tracer(self):
        obs = Observability()
        with obs.span("phase", detail=1):
            pass
        assert obs.tracer.roots[0].name == "phase"
        assert obs.tracer.roots[0].attributes == {"detail": 1}

    def test_record_query_populates_metrics(self):
        obs = Observability()
        obs.record_query(document="d", terms=("a", "b"), filter="true",
                         strategy="pushdown", answers=2, elapsed=0.004,
                         stats={"fragment_joins": 8,
                                "join_cache_hits": 4,
                                "fragments_discarded": 6})
        metrics = obs.metrics
        assert metrics.counter(QUERIES_TOTAL).value == 1
        assert metrics.counter(
            QUERIES_BY_STRATEGY, labels={"strategy": "pushdown"}
        ).value == 1
        assert metrics.counter(JOIN_CACHE_HITS).value == 4
        assert metrics.histogram(QUERY_LATENCY).count == 1
        # ratio histograms only appear when their denominators are live
        assert "repro_join_cache_hit_ratio" in metrics
        assert "repro_reduction_factor" in metrics

    def test_record_query_feeds_query_log_and_slow_counter(self):
        obs = Observability(query_log=QueryLog(slow_query_ms=1))
        record = obs.record_query(
            document="d", terms=("a",), filter="true", strategy="naive",
            answers=0, elapsed=0.5, stats=None)
        assert record is not None and record.slow
        assert obs.metrics.counter(SLOW_QUERIES).value == 1
        assert obs.query_log.records == [record]


class TestNoop:
    def test_singleton_is_disabled_everywhere(self):
        assert not NOOP.enabled
        assert isinstance(NOOP.tracer, NullTracer)
        assert isinstance(NOOP.metrics, NullMetrics)
        assert NOOP.query_log is None

    def test_span_is_the_shared_null_span(self):
        assert NOOP.span("anything", stats=None, attr=1) is NULL_SPAN

    def test_record_query_is_inert(self):
        assert NOOP.record_query(document="d", terms=(), filter="",
                                 strategy="s", answers=0,
                                 elapsed=0.0) is None
        assert len(NOOP.metrics) == 0


class TestEvaluateIntegration:
    def test_span_tree_covers_the_lifecycle(self, figure1, figure1_index):
        obs = Observability()
        result = evaluate(figure1, QUERY, strategy=Strategy.PUSHDOWN,
                          index=figure1_index, obs=obs)
        assert result.fragments
        execute = obs.tracer.roots[0]
        assert execute.name == "execute"
        assert execute.attributes["strategy"] == "pushdown"
        assert execute.attributes["answers"] == len(result.fragments)
        children = [c.name for c in execute.children]
        assert children == ["scan", "strategy:pushdown"]
        # the strategy span accounts for the join work
        assert execute.work.get("fragment_joins", 0) > 0

    def test_metrics_and_log_recorded_per_query(self, figure1,
                                                figure1_index):
        obs = Observability(query_log=QueryLog())
        for strategy in (Strategy.PUSHDOWN, Strategy.SET_REDUCTION):
            evaluate(figure1, QUERY, strategy=strategy,
                     index=figure1_index, obs=obs)
        assert obs.metrics.counter(QUERIES_TOTAL).value == 2
        assert obs.metrics.histogram(QUERY_LATENCY).count == 2
        assert len(obs.query_log) == 2
        strategies = {r.strategy for r in obs.query_log}
        assert strategies == {"pushdown", "set-reduction"}

    def test_noop_default_changes_nothing(self, figure1, figure1_index):
        plain = evaluate(figure1, QUERY, strategy=Strategy.PUSHDOWN,
                         index=figure1_index)
        explicit = evaluate(figure1, QUERY, strategy=Strategy.PUSHDOWN,
                            index=figure1_index, obs=NOOP)
        assert plain.fragments == explicit.fragments
        assert len(NOOP.metrics) == 0
        assert NOOP.tracer.to_dicts() == []
