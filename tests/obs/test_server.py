"""Tests for the live metrics endpoint (repro.obs.server)."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.obs import NOOP, Observability, QueryLog
from repro.obs.server import PROMETHEUS_CONTENT_TYPE, MetricsServer


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return (response.status, response.headers.get("Content-Type"),
                response.read().decode("utf-8"))


@pytest.fixture()
def obs() -> Observability:
    handle = Observability(query_log=QueryLog(slow_query_ms=0.0))
    handle.metrics.counter("repro_queries_total",
                           "Queries evaluated.").inc(2)
    handle.record_query(document="doc", terms=("a",), filter="true",
                        strategy="pushdown", answers=1, elapsed=0.01)
    return handle


class TestRoutes:
    def test_metrics_serves_prometheus_text(self, obs):
        with MetricsServer(obs) as server:
            status, content_type, body = _get(server.url + "/metrics")
        assert status == 200
        assert content_type == PROMETHEUS_CONTENT_TYPE
        assert "# TYPE repro_queries_total counter" in body
        assert body == obs.metrics.to_prometheus()

    def test_healthz(self, obs):
        with MetricsServer(obs) as server:
            status, _, body = _get(server.url + "/healthz")
        assert (status, body) == (200, "ok\n")

    def test_varz_reports_uptime_metrics_and_log_counts(self, obs):
        with MetricsServer(obs) as server:
            _, content_type, body = _get(server.url + "/varz")
        assert content_type == "application/json"
        varz = json.loads(body)
        assert varz["uptime_seconds"] >= 0
        names = {m["name"] for m in varz["metrics"]["metrics"]}
        assert "repro_queries_total" in names
        assert varz["query_log"] == {"records": 1, "max_records": 1000,
                                     "evicted": 0, "slow": 1,
                                     "slow_query_ms": 0.0}

    def test_slow_lists_slow_records(self, obs):
        with MetricsServer(obs) as server:
            _, _, body = _get(server.url + "/slow")
        records = json.loads(body)
        assert len(records) == 1
        assert all(r["slow"] for r in records)

    def test_slow_is_empty_without_query_log(self):
        with MetricsServer(Observability()) as server:
            _, _, body = _get(server.url + "/slow")
        assert json.loads(body) == []

    def test_unknown_path_is_404(self, obs):
        with MetricsServer(obs) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url + "/nope")
            assert excinfo.value.code == 404

    def test_scrape_reflects_live_updates(self, obs):
        with MetricsServer(obs) as server:
            _, _, before = _get(server.url + "/metrics")
            obs.metrics.counter("repro_queries_total").inc(5)
            _, _, after = _get(server.url + "/metrics")
        assert "repro_queries_total 3" in before
        assert "repro_queries_total 8" in after


class TestLifecycle:
    def test_rejects_noop_handle(self):
        with pytest.raises(ValueError):
            MetricsServer(NOOP)

    def test_port_zero_binds_a_free_port(self, obs):
        server = MetricsServer(obs, port=0).start()
        try:
            assert server.port > 0
            assert server.url.endswith(str(server.port))
        finally:
            server.stop()

    def test_stop_is_idempotent_and_start_restarts(self, obs):
        server = MetricsServer(obs)
        server.start()
        server.stop()
        server.stop()
        assert not server.running
        server.start()
        try:
            assert _get(server.url + "/healthz")[0] == 200
        finally:
            server.stop()

    def test_port_raises_when_stopped(self, obs):
        server = MetricsServer(obs)
        with pytest.raises(RuntimeError):
            server.port


def _get_json(url):
    status, content_type, body = _get(url)
    assert content_type == "application/json"
    return status, json.loads(body)


def _evaluate_profiled(obs, *, strategies=("pushdown",)):
    """Run the Fig. 1 query through evaluate() with a recorder live."""
    from repro.core.filters import SizeAtMost
    from repro.core.query import Query
    from repro.core.strategies import Strategy, evaluate
    from repro.index.inverted import InvertedIndex
    from repro.workloads.figure1 import build_figure1_document

    document = build_figure1_document()
    index = InvertedIndex(document)
    query = Query.of("xquery", "optimization", predicate=SizeAtMost(3))
    for name in strategies:
        evaluate(document, query, strategy=Strategy.parse(name),
                 index=index, obs=obs)


@pytest.fixture()
def profiled_obs() -> Observability:
    from repro.obs import FlightRecorder, RecorderConfig
    handle = Observability(
        query_log=QueryLog(slow_query_ms=0.0),
        recorder=FlightRecorder(RecorderConfig(sample_rate=1.0, seed=3)))
    _evaluate_profiled(handle, strategies=("pushdown", "set-reduction"))
    return handle


class TestProcessStats:
    def test_process_stats_shape(self):
        from repro.obs.server import process_stats
        stats = process_stats()
        assert stats["pid"] > 0
        assert stats["rss_bytes"] is None or stats["rss_bytes"] > 0
        assert isinstance(stats["python"], str)

    def test_varz_has_process_section_and_rss_gauge(self, obs):
        with MetricsServer(obs) as server:
            _, varz = _get_json(server.url + "/varz")
            _, _, prom = _get(server.url + "/metrics")
        assert varz["process"]["pid"] > 0
        if varz["process"]["rss_bytes"] is not None:
            assert "repro_process_rss_bytes" in prom


class TestFlightRecorderRoutes:
    def test_flightrecorder_404_without_recorder(self, obs):
        with MetricsServer(obs) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url + "/debug/flightrecorder")
            assert excinfo.value.code == 404
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url + "/debug/trace/whatever")
            assert excinfo.value.code == 404

    def test_flightrecorder_snapshot(self, profiled_obs):
        with MetricsServer(profiled_obs) as server:
            _, snap = _get_json(server.url + "/debug/flightrecorder")
        assert snap["counts"]["recorded"] == 2
        assert snap["outcomes"] == {"ok": 2}
        assert len(snap["traces"]) == 2
        assert snap["latency"]["samples"] == 2
        assert set(snap["calibration"]) == {"pushdown", "set-reduction"}

    def test_trace_endpoint_serves_chrome_json(self, profiled_obs):
        with MetricsServer(profiled_obs) as server:
            _, snap = _get_json(server.url + "/debug/flightrecorder")
            trace_id = snap["traces"][0]
            _, trace = _get_json(server.url + "/debug/trace/"
                                 + trace_id)
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        assert events and all(e["ph"] == "X" for e in events)
        assert {e["name"] for e in events} >= {"execute", "scan"}
        # must round-trip as strict JSON for chrome://tracing
        json.loads(json.dumps(trace))

    def test_trace_endpoint_404_on_unknown_id(self, profiled_obs):
        with MetricsServer(profiled_obs) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url + "/debug/trace/q0-000000")
            assert excinfo.value.code == 404

    def test_budget_aborted_query_trace_is_exportable(self):
        from repro.core.query import Query
        from repro.core.strategies import Strategy, evaluate
        from repro.errors import BudgetExceeded
        from repro.guard.budget import QueryBudget
        from repro.index.inverted import InvertedIndex
        from repro.obs import FlightRecorder, RecorderConfig
        from repro.workloads.figure1 import build_figure1_document

        handle = Observability(
            recorder=FlightRecorder(RecorderConfig()))
        document = build_figure1_document()
        index = InvertedIndex(document)
        with pytest.raises(BudgetExceeded):
            evaluate(document, Query.of("xquery", "optimization"),
                     strategy=Strategy.SET_REDUCTION, index=index,
                     obs=handle, budget=QueryBudget(max_join_ops=1))
        with MetricsServer(handle) as server:
            _, snap = _get_json(server.url + "/debug/flightrecorder")
            assert snap["outcomes"] == {"budget-exceeded": 1}
            trace_id = snap["traces"][0]
            _, trace = _get_json(server.url + "/debug/trace/"
                                 + trace_id)
        assert trace["traceEvents"]
        json.loads(json.dumps(trace))

    def test_varz_flight_recorder_section(self, profiled_obs):
        with MetricsServer(profiled_obs) as server:
            _, varz = _get_json(server.url + "/varz")
        section = varz["flight_recorder"]
        assert section["profiles"] == section["recorded"] == 2
        assert section["evicted"] == 0
        assert section["traces"] == 2
        assert set(section["calibration"]) == {"pushdown",
                                               "set-reduction"}

    def test_metrics_export_includes_calibration_gauge(self,
                                                       profiled_obs):
        with MetricsServer(profiled_obs) as server:
            _, _, prom = _get(server.url + "/metrics")
        assert "repro_cost_calibration_ratio" in prom
        assert 'strategy="pushdown"' in prom


class TestTimeseriesAndAlertRoutes:
    def test_timeseries_404_without_history(self, obs):
        with MetricsServer(obs) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(server.url + "/timeseries")
            assert err.value.code == 404
            assert json.loads(err.value.read())["error"] == "no-history"

    def test_timeseries_catalog_named_and_windowed(self, obs):
        from repro.obs import MetricsHistory

        history = MetricsHistory(obs.metrics, interval_s=0.01)
        with MetricsServer(obs, history=history) as server:
            # The server owns the sampler: wait for a couple of samples.
            import threading
            settle = threading.Event()
            for _ in range(500):
                if history.stats()["samples"] >= 2:
                    break
                settle.wait(0.01)
            _, catalog = _get_json(server.url + "/timeseries")
            assert catalog["stats"]["samples"] >= 2
            assert any(s["name"] == "repro_queries_total"
                       for s in catalog["series"])
            _, named = _get_json(
                server.url + "/timeseries?name=repro_queries_total"
                             "&window=60")
            assert named["name"] == "repro_queries_total"
            assert named["window_s"] == 60.0
            # The counter never moved after the baseline sample.
            assert named["window"]["samples"] >= 1
            assert named["window"]["sum"] == 0.0
        assert not history.running

    def test_timeseries_400_on_bad_window(self, obs):
        from repro.obs import MetricsHistory

        history = MetricsHistory(obs.metrics, interval_s=60.0)
        with MetricsServer(obs, history=history) as server:
            for window in ("banana", "-5", "0"):
                with pytest.raises(urllib.error.HTTPError) as err:
                    _get(server.url + f"/timeseries?window={window}")
                assert err.value.code == 400

    def test_alertz_disabled_without_monitor(self, obs):
        with MetricsServer(obs) as server:
            status, doc = _get_json(server.url + "/alertz")
        assert status == 200
        assert doc["enabled"] is False
        assert doc["state"] == "ok"
        assert doc["objectives"] == 0

    def test_alertz_and_healthz_follow_the_monitor(self, obs):
        from repro.obs import MetricsHistory
        from repro.obs.slo import Objective, SLOMonitor

        obs.metrics.gauge("overload", "d").set(9.0)
        history = MetricsHistory(obs.metrics, interval_s=3600.0)
        slo = SLOMonitor(history, [Objective(
            name="load", kind="gauge", metric="overload",
            threshold=1.0, fast_window_s=5.0, slow_window_s=10.0)],
            metrics=obs.metrics)
        with MetricsServer(obs, history=history, slo=slo) as server:
            history.sample_once()
            _, doc = _get_json(server.url + "/alertz")
            assert doc["state"] == "critical"
            assert doc["alerts"][0]["fast_burn"] == pytest.approx(9.0)
            status, _ctype, body = _get(server.url + "/healthz")
            assert (status, body.strip()) == (200, "degraded")

    def test_varz_history_and_slo_sections(self, obs):
        from repro.obs import MetricsHistory
        from repro.obs.slo import Objective, SLOMonitor

        history = MetricsHistory(obs.metrics, interval_s=3600.0)
        slo = SLOMonitor(history, [Objective(
            name="o", kind="gauge", metric="m", threshold=1.0)],
            metrics=obs.metrics)
        with MetricsServer(obs, history=history, slo=slo) as server:
            history.sample_once()
            _, varz = _get_json(server.url + "/varz")
        assert varz["history"]["samples"] == 1
        assert varz["history"]["interval_s"] == 3600.0
        assert varz["slo"]["objectives"] == 1
        assert varz["slo"]["alerts"][0]["name"] == "o"

    def test_mismatched_monitor_history_rejected(self, obs):
        from repro.obs import MetricsHistory, MetricsRegistry
        from repro.obs.slo import Objective, SLOMonitor

        history = MetricsHistory(obs.metrics, interval_s=60.0)
        foreign = MetricsHistory(MetricsRegistry(), interval_s=60.0)
        slo = SLOMonitor(foreign, [Objective(
            name="o", kind="gauge", metric="m", threshold=1.0)])
        with pytest.raises(ValueError):
            MetricsServer(obs, history=history, slo=slo)

    def test_varz_process_reports_rss_kind(self, obs):
        with MetricsServer(obs) as server:
            _, varz = _get_json(server.url + "/varz")
        process = varz["process"]
        assert "rss_kind" in process
        if process["rss_bytes"] is not None:
            assert process["rss_kind"] in ("current", "peak")
        else:
            assert process["rss_kind"] is None

    def test_caller_owned_sampler_stays_running(self, obs):
        from repro.obs import MetricsHistory

        history = MetricsHistory(obs.metrics, interval_s=60.0)
        history.start()
        try:
            with MetricsServer(obs, history=history):
                assert history.running
            # The caller started it, so stop() must leave it alone.
            assert history.running
        finally:
            history.stop()
