"""Tests for the live metrics endpoint (repro.obs.server)."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.obs import NOOP, Observability, QueryLog
from repro.obs.server import PROMETHEUS_CONTENT_TYPE, MetricsServer


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return (response.status, response.headers.get("Content-Type"),
                response.read().decode("utf-8"))


@pytest.fixture()
def obs() -> Observability:
    handle = Observability(query_log=QueryLog(slow_query_ms=0.0))
    handle.metrics.counter("repro_queries_total",
                           "Queries evaluated.").inc(2)
    handle.record_query(document="doc", terms=("a",), filter="true",
                        strategy="pushdown", answers=1, elapsed=0.01)
    return handle


class TestRoutes:
    def test_metrics_serves_prometheus_text(self, obs):
        with MetricsServer(obs) as server:
            status, content_type, body = _get(server.url + "/metrics")
        assert status == 200
        assert content_type == PROMETHEUS_CONTENT_TYPE
        assert "# TYPE repro_queries_total counter" in body
        assert body == obs.metrics.to_prometheus()

    def test_healthz(self, obs):
        with MetricsServer(obs) as server:
            status, _, body = _get(server.url + "/healthz")
        assert (status, body) == (200, "ok\n")

    def test_varz_reports_uptime_metrics_and_log_counts(self, obs):
        with MetricsServer(obs) as server:
            _, content_type, body = _get(server.url + "/varz")
        assert content_type == "application/json"
        varz = json.loads(body)
        assert varz["uptime_seconds"] >= 0
        names = {m["name"] for m in varz["metrics"]["metrics"]}
        assert "repro_queries_total" in names
        assert varz["query_log"] == {"records": 1, "slow": 1,
                                     "slow_query_ms": 0.0}

    def test_slow_lists_slow_records(self, obs):
        with MetricsServer(obs) as server:
            _, _, body = _get(server.url + "/slow")
        records = json.loads(body)
        assert len(records) == 1
        assert all(r["slow"] for r in records)

    def test_slow_is_empty_without_query_log(self):
        with MetricsServer(Observability()) as server:
            _, _, body = _get(server.url + "/slow")
        assert json.loads(body) == []

    def test_unknown_path_is_404(self, obs):
        with MetricsServer(obs) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url + "/nope")
            assert excinfo.value.code == 404

    def test_scrape_reflects_live_updates(self, obs):
        with MetricsServer(obs) as server:
            _, _, before = _get(server.url + "/metrics")
            obs.metrics.counter("repro_queries_total").inc(5)
            _, _, after = _get(server.url + "/metrics")
        assert "repro_queries_total 3" in before
        assert "repro_queries_total 8" in after


class TestLifecycle:
    def test_rejects_noop_handle(self):
        with pytest.raises(ValueError):
            MetricsServer(NOOP)

    def test_port_zero_binds_a_free_port(self, obs):
        server = MetricsServer(obs, port=0).start()
        try:
            assert server.port > 0
            assert server.url.endswith(str(server.port))
        finally:
            server.stop()

    def test_stop_is_idempotent_and_start_restarts(self, obs):
        server = MetricsServer(obs)
        server.start()
        server.stop()
        server.stop()
        assert not server.running
        server.start()
        try:
            assert _get(server.url + "/healthz")[0] == 200
        finally:
            server.stop()

    def test_port_raises_when_stopped(self, obs):
        server = MetricsServer(obs)
        with pytest.raises(RuntimeError):
            server.port
