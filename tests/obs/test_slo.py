"""Tests for the SLO burn-rate engine (``repro.obs.slo``).

Objective parsing and validation, then the multi-window state
machine driven deterministically (fake clock, manual samples), and
finally the end-to-end acceptance path: deterministic fault injection
against a sharded collection drives a seeded burn-rate SLO from ok to
critical, flips ``/healthz`` to degraded, and — with feedback enabled
— tightens admission until the alert clears.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.obs import (CHUNK_RETRIES, POOL_CHUNKS, MetricsHistory,
                       MetricsRegistry, Observability)
from repro.obs.slo import (ALERT_STATE_CODES, CRITICAL,
                           FEEDBACK_TIGHTEN_ADMISSION,
                           FEEDBACK_TRIP_BREAKERS, OK, SLO_BURN_RATE,
                           SLO_STATE, WARNING, AlertState, Objective,
                           SLOMonitor, parse_slo)

pytestmark = pytest.mark.timeout(120)


class _Clock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now

    def tick(self, seconds=5.0):
        self.now += seconds
        return self.now


class TestObjectiveValidation:
    def test_rejects_bad_parameters(self):
        good = dict(name="o", kind="gauge", metric="m", threshold=1.0)
        with pytest.raises(ValueError):
            Objective(**{**good, "kind": "mean"})
        with pytest.raises(ValueError):
            Objective(**{**good, "threshold": 0.0})
        with pytest.raises(ValueError):
            Objective(**{**good, "kind": "quantile", "q": 1.0})
        with pytest.raises(ValueError):
            Objective(**{**good, "kind": "ratio"})  # no total_metric
        with pytest.raises(ValueError):
            Objective(**{**good, "fast_window_s": 0.0})
        with pytest.raises(ValueError):
            Objective(**{**good, "fast_window_s": 60.0,
                         "slow_window_s": 30.0})
        with pytest.raises(ValueError):
            Objective(**{**good, "clear_intervals": 0})
        with pytest.raises(ValueError):
            Objective(**{**good, "feedback": ("reboot",)})

    def test_describe_every_kind(self):
        assert Objective(name="a", kind="quantile", metric="m",
                         threshold=0.25, q=0.99
                         ).describe() == "p99(m) < 0.25"
        assert Objective(name="b", kind="ratio", metric="bad",
                         total_metric="all", threshold=0.05
                         ).describe() == "ratio(bad/all) < 0.05"
        assert Objective(name="c", kind="gauge", metric="m",
                         threshold=1.0).describe() == "gauge(m) < 1"

    def test_to_dict_carries_expr_and_feedback(self):
        doc = Objective(name="o", kind="gauge", metric="m",
                        threshold=2.0,
                        feedback=(FEEDBACK_TIGHTEN_ADMISSION,)
                        ).to_dict()
        assert doc["expr"] == "gauge(m) < 2"
        assert doc["feedback"] == [FEEDBACK_TIGHTEN_ADMISSION]


class TestParseSlo:
    def test_quantile_form_with_defaults(self):
        objective = parse_slo("p99(repro_query_latency_seconds) < 0.25")
        assert objective.kind == "quantile"
        assert objective.q == 0.99
        assert objective.metric == "repro_query_latency_seconds"
        assert objective.threshold == 0.25
        assert objective.name == "p99-repro_query_latency_seconds"
        assert objective.fast_window_s == 60.0
        assert objective.feedback == ()

    def test_named_ratio_with_options(self):
        objective = parse_slo(
            "errors: ratio(bad_total/all_total) < 0.05; fast=30;"
            " slow=120; warn=1.5; critical=4; clear=2;"
            " feedback=tighten-admission+trip-breakers")
        assert objective.name == "errors"
        assert objective.kind == "ratio"
        assert objective.metric == "bad_total"
        assert objective.total_metric == "all_total"
        assert (objective.fast_window_s, objective.slow_window_s) \
            == (30.0, 120.0)
        assert (objective.warning_burn, objective.critical_burn) \
            == (1.5, 4.0)
        assert objective.clear_intervals == 2
        assert objective.feedback == (FEEDBACK_TIGHTEN_ADMISSION,
                                      FEEDBACK_TRIP_BREAKERS)

    def test_gauge_form(self):
        objective = parse_slo("gauge(repro_exec_degraded) < 1")
        assert objective.kind == "gauge"
        assert objective.name == "gauge-repro_exec_degraded"

    def test_rejects_malformed_specs(self):
        for spec in ("latency < 0.25",           # no aggregate form
                     "p99(m) < banana",          # threshold not a float
                     "p99(m) < 0.25; nope",      # option without =
                     "p99(m) < 0.25; color=red",  # unknown option
                     "p99(m) < 0.25; feedback=reboot",  # bad action
                     "ratio(a) < 0.1"):          # ratio needs a/b
            with pytest.raises(ValueError):
                parse_slo(spec)


@pytest.fixture()
def stack():
    registry = MetricsRegistry()
    clock = _Clock()
    history = MetricsHistory(registry, interval_s=5.0, capacity=64,
                             clock=clock)
    return registry, history, clock


def _monitor(history, clock, *objectives, metrics=None):
    return SLOMonitor(history, objectives, metrics=metrics,
                      clock=clock)


class TestSLOMonitorStateMachine:
    def test_no_data_is_ok(self, stack):
        _registry, history, clock = stack
        monitor = _monitor(history, clock, Objective(
            name="o", kind="gauge", metric="missing", threshold=1.0))
        assert monitor.evaluate() == {"o": OK}
        state = monitor.state_of("o")
        assert state.fast_burn is None
        assert monitor.worst_state == OK
        assert not monitor.critical

    def test_gauge_escalates_immediately(self, stack):
        registry, history, clock = stack
        gauge = registry.gauge("load", "d")
        monitor = _monitor(history, clock, Objective(
            name="o", kind="gauge", metric="load", threshold=1.0,
            fast_window_s=10.0, slow_window_s=20.0, critical_burn=2.0))
        gauge.set(0.5)
        history.sample_once(clock.now)
        assert monitor.evaluate()["o"] == OK
        gauge.set(2.5)  # burn 2.5 in both windows
        history.sample_once(clock.tick())
        assert monitor.evaluate()["o"] == CRITICAL
        state = monitor.state_of("o")
        assert state.since == clock.now
        assert state.transitions == 1
        assert state.fast_burn == pytest.approx(2.5)

    def test_single_blip_tops_out_at_warning(self, stack):
        """A hot fast window with a cold slow window must not page:
        the slow window has to burn too (the multi-window recipe)."""
        registry, history, clock = stack
        bad = registry.counter("bad_total", "d")
        total = registry.counter("all_total", "d")
        monitor = _monitor(history, clock, Objective(
            name="errors", kind="ratio", metric="bad_total",
            total_metric="all_total", threshold=0.05,
            fast_window_s=5.0, slow_window_s=60.0, critical_burn=2.0))
        history.sample_once(clock.now)
        # A long healthy stretch, then one fully-failing interval.
        for _ in range(10):
            total.inc(1000)
            history.sample_once(clock.tick())
            assert monitor.evaluate()["errors"] == OK
        bad.inc(100)
        total.inc(100)
        history.sample_once(clock.tick())
        assert monitor.evaluate()["errors"] == WARNING
        state = monitor.state_of("errors")
        assert state.fast_burn >= 2.0          # hot enough for critical
        assert state.slow_burn is not None
        assert state.slow_burn < 1.0           # ... but not sustained

    def test_deescalation_needs_consecutive_clean_intervals(self, stack):
        registry, history, clock = stack
        gauge = registry.gauge("load", "d")
        monitor = _monitor(history, clock, Objective(
            name="o", kind="gauge", metric="load", threshold=1.0,
            fast_window_s=5.0, slow_window_s=10.0, clear_intervals=3))
        gauge.set(5.0)
        history.sample_once(clock.now)
        assert monitor.evaluate()["o"] == CRITICAL

        def step(value):
            gauge.set(value)
            history.sample_once(clock.tick())
            return monitor.evaluate()["o"]

        assert step(0.1) == CRITICAL   # clean streak 1
        assert step(0.1) == CRITICAL   # clean streak 2
        assert step(5.0) == CRITICAL   # flap: streak resets
        assert step(0.1) == CRITICAL
        assert step(0.1) == CRITICAL
        assert step(0.1) == OK         # third consecutive clean
        assert monitor.state_of("o").transitions == 2

    def test_listener_sees_transitions_with_previous_state(self, stack):
        registry, history, clock = stack
        gauge = registry.gauge("load", "d")
        monitor = _monitor(history, clock, Objective(
            name="o", kind="gauge", metric="load", threshold=1.0,
            fast_window_s=5.0, slow_window_s=10.0, clear_intervals=1))
        seen = []
        monitor.add_listener(
            lambda state, previous: seen.append((state.objective.name,
                                                 previous,
                                                 state.state)))
        gauge.set(9.0)
        history.sample_once(clock.now)
        monitor.evaluate()
        gauge.set(0.0)
        history.sample_once(clock.tick())
        monitor.evaluate()
        assert seen == [("o", OK, CRITICAL), ("o", CRITICAL, OK)]
        assert all(isinstance(s, str) for _, s, _ in seen)

    def test_publishes_state_and_burn_gauges(self, stack):
        registry, history, clock = stack
        registry.gauge("load", "d").set(3.0)
        monitor = _monitor(history, clock, Objective(
            name="o", kind="gauge", metric="load", threshold=1.0,
            fast_window_s=5.0, slow_window_s=10.0),
            metrics=registry)
        history.sample_once(clock.now)
        monitor.evaluate()
        assert registry.get(SLO_STATE, labels={"slo": "o"}).value \
            == ALERT_STATE_CODES[CRITICAL]
        assert registry.get(SLO_BURN_RATE,
                            labels={"slo": "o", "window": "fast"}
                            ).value == pytest.approx(3.0)

    def test_snapshot_document_shape(self, stack):
        registry, history, clock = stack
        registry.gauge("load", "d").set(0.0)
        monitor = _monitor(history, clock, Objective(
            name="o", kind="gauge", metric="load", threshold=1.0))
        history.sample_once(clock.now)
        monitor.evaluate()
        doc = monitor.snapshot()
        assert doc["enabled"] is True
        assert doc["state"] == OK
        assert doc["objectives"] == 1
        alert = doc["alerts"][0]
        assert alert["name"] == "o"
        assert alert["expr"] == "gauge(load) < 1"
        assert {"fast_burn", "slow_burn", "since",
                "transitions"} <= set(alert)
        json.dumps(doc)  # must be JSON-serialisable as served

    def test_attach_evaluates_after_each_sample(self, stack):
        registry, history, clock = stack
        registry.gauge("load", "d").set(7.0)
        monitor = _monitor(history, clock, Objective(
            name="o", kind="gauge", metric="load", threshold=1.0,
            fast_window_s=5.0, slow_window_s=10.0))
        monitor.attach().attach()  # idempotent
        history.sample_once(clock.now)
        assert monitor.state_of("o").evaluations == 1
        assert monitor.worst_state == CRITICAL

    def test_duplicate_objective_names_rejected(self, stack):
        _registry, history, clock = stack
        objective = Objective(name="o", kind="gauge", metric="m",
                              threshold=1.0)
        with pytest.raises(ValueError):
            _monitor(history, clock, objective, objective)


# ----------------------------------------------------------------------
# End-to-end: faults -> burn rate -> critical -> feedback
# ----------------------------------------------------------------------


class ToggleFaults:
    """A :class:`~repro.exec.faults.FaultPlan` with an off switch:
    while armed, the first attempt of every chunk fails (retries
    succeed, so runs recover without the serial fallback)."""

    def __init__(self):
        from repro.exec.faults import FaultRule
        self.rule = FaultRule.flaky(chunk=None, times=1)
        self.armed = False

    def for_chunk(self, chunk_index, attempt):
        if self.armed and self.rule.matches(chunk_index, attempt):
            return {"kind": self.rule.kind, "attempt": attempt}
        return None

    def __bool__(self):
        return True


def _get(url, timeout=10):
    with urllib.request.urlopen(url, timeout=timeout) as reply:
        return reply.status, reply.read().decode("utf-8")


def _post_query(url, payload, timeout=60):
    request = urllib.request.Request(
        url + "/query", data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"}, method="POST")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as reply:
            return reply.status, json.loads(reply.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def test_burn_rate_slo_flips_healthz_and_tightens_admission(tmp_path):
    """The acceptance path: deterministic chunk faults against a
    sharded collection push a retry-ratio SLO from ok to critical
    within two fast windows; ``/healthz`` flips to degraded, feedback
    halves the admission cost ceiling (rejecting a query that passed
    before), and recovery restores both.
    """
    from repro.collection.sharded import ShardedDocumentCollection
    from repro.core.query import Query
    from repro.exec.resilience import FALLBACK_NEVER, RetryPolicy
    from repro.guard.admission import AdmissionPolicy
    from repro.obs.server import MetricsServer, QueryGuardrails
    from repro.storage.shards import build_index
    from repro.workloads.inexlike import InexSpec, generate_collection

    corpus = generate_collection(
        InexSpec(articles=6, nodes_per_article=80, seed=13))
    build_index({name: corpus.document(name)
                 for name in corpus.names()},
                tmp_path / "index", shards=3)
    collection = ShardedDocumentCollection(tmp_path / "index")

    # Price the workload query on this corpus, then set the ceiling
    # so it is admitted as configured but rejected once halved.
    query = Query(("needle", "thread"))
    probe = collection.screen(AdmissionPolicy(max_cost=float("inf"),
                                              downgrade_to=None),
                              query)
    cost = probe.requested_cost
    assert cost > 0

    faults = ToggleFaults()
    rails = QueryGuardrails(
        workers=2, faults=faults,
        resilience=RetryPolicy(max_retries=2, fallback=FALLBACK_NEVER),
        admission=AdmissionPolicy(max_cost=cost * 1.5,
                                  downgrade_to=None))
    clock = _Clock()
    obs = Observability()
    # interval_s only paces the server-owned sampler thread; a huge
    # interval parks it so the fake clock drives every sample here.
    history = MetricsHistory(obs.metrics, interval_s=3600.0,
                             clock=clock)
    objective = Objective(
        name="retries", kind="ratio", metric=CHUNK_RETRIES,
        total_metric=POOL_CHUNKS, threshold=0.05,
        fast_window_s=10.0, slow_window_s=20.0,
        warning_burn=1.0, critical_burn=2.0, clear_intervals=2,
        feedback=(FEEDBACK_TIGHTEN_ADMISSION,
                  FEEDBACK_TRIP_BREAKERS))
    slo = SLOMonitor(history, [objective], metrics=obs.metrics,
                     clock=clock)

    with MetricsServer(obs, collection=collection, guardrails=rails,
                       history=history, slo=slo,
                       slo_feedback=True) as server:
        guard = server._server.guard

        def run_queries(n=2):
            for _ in range(n):
                status, body = _post_query(server.url,
                                           {"query": "needle thread"})
                assert status == 200, body
            return body

        # Healthy phase: queries flow, the SLO is ok, healthz is ok.
        history.sample_once(clock.now)           # baseline
        run_queries()
        history.sample_once(clock.tick())
        assert slo.state_of("retries").state == OK
        assert _get(server.url + "/healthz")[1].strip() == "ok"
        assert guard.admission_scale == 1.0

        # Fault phase: every chunk's first attempt fails; retries
        # recover each run, so queries still answer 200 while the
        # retry ratio burns far past the objective.
        faults.armed = True
        body = run_queries()
        assert body["answers"] >= 1              # service still up
        history.sample_once(clock.tick())        # fast window now hot
        state = slo.state_of("retries")
        assert state.state == CRITICAL
        assert state.fast_burn >= objective.critical_burn
        assert state.slow_burn >= 1.0
        # The degraded flag comes from the burn-rate alert, not the
        # executor: retried runs never took the serial fallback.
        assert _get(server.url + "/healthz")[1].strip() == "degraded"
        status, alertz = (lambda s, b: (s, json.loads(b)))(
            *_get(server.url + "/alertz"))
        assert (status, alertz["state"]) == (200, CRITICAL)

        # Feedback: admission tightened to half the ceiling, so the
        # same query that was admitted above is now too expensive.
        assert guard.admission_scale == 0.5
        assert guard.tightenings == 1
        status, body = _post_query(server.url,
                                   {"query": "needle thread"})
        assert status == 422
        assert body["error"] == "admission-rejected"

        # Recovery: faults off and the burn drains out of the fast
        # window (idle intervals measure no movement, which is clean
        # — the tightened ceiling cannot starve recovery).  After
        # clear_intervals clean evaluations the alert de-escalates,
        # healthz returns to ok, and admission is restored.
        faults.armed = False
        for _ in range(objective.clear_intervals + 1):
            history.sample_once(clock.tick())
        assert slo.state_of("retries").state == OK
        assert _get(server.url + "/healthz")[1].strip() == "ok"
        assert guard.admission_scale == 1.0
        status, _body = _post_query(server.url,
                                    {"query": "needle thread"})
        assert status == 200
    collection.close()


def test_pretrip_feedback_trips_suspect_shard_breakers(tmp_path):
    """Critical feedback pre-trips breakers only on shards that have
    already recorded failed runs — healthy shards keep serving."""
    from repro.collection.sharded import ShardedDocumentCollection
    from repro.core.query import Query
    from repro.storage.shards import build_index
    from repro.workloads.inexlike import InexSpec, generate_collection

    corpus = generate_collection(InexSpec(articles=6, seed=13))
    build_index({name: corpus.document(name)
                 for name in corpus.names()},
                tmp_path / "index", shards=3)
    collection = ShardedDocumentCollection(tmp_path / "index")
    try:
        from repro.guard.breaker import CLOSED, OPEN

        collection.search(Query(("needle",)), workers=2)
        router = collection.router
        assert router is not None
        # Shard 0 shows one recent failure (below the trip threshold,
        # so it is still serving) — feedback takes it out immediately.
        router.breaker(0).record_failure()
        tripped = router.pretrip_suspect_shards()
        assert tripped == [0]
        assert router.breaker(0).state == OPEN
        assert all(router.breaker(s).state == CLOSED
                   for s in router._breakers if s != 0)
    finally:
        collection.close()


class TestAlertStateDoc:
    def test_alert_state_to_dict(self):
        objective = Objective(name="o", kind="gauge", metric="m",
                              threshold=1.0)
        doc = AlertState(objective).to_dict()
        assert doc["state"] == OK
        assert doc["state_code"] == 0
        assert doc["expr"] == "gauge(m) < 1"
