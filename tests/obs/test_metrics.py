"""Unit tests for the metrics registry and its exporters."""

from __future__ import annotations

import json
import os

import pytest

from repro.obs.metrics import (NULL_METRICS, Counter, Gauge, Histogram,
                               MetricsRegistry, NullMetrics)

GOLDEN = os.path.join(os.path.dirname(__file__), "data",
                      "metrics_golden.prom")


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("c_total")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c_total").inc(-1)

    def test_rejects_bad_names(self):
        for bad in ("", "0leading", "has space", "dash-name"):
            with pytest.raises(ValueError):
                Counter(bad)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7


class TestHistogram:
    def test_observe_buckets_and_moments(self):
        histogram = Histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0, 0.7):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(56.2)
        assert histogram.mean == pytest.approx(56.2 / 4)
        assert histogram.cumulative_counts() == [
            (1.0, 2), (10.0, 3), (float("inf"), 4)]

    def test_boundary_lands_in_bucket(self):
        histogram = Histogram("h", buckets=(1.0, 10.0))
        histogram.observe(1.0)  # le="1" is inclusive
        assert histogram.cumulative_counts()[0] == (1.0, 1)

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(5.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=())


class TestRegistry:
    def test_get_or_create_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a_total") is registry.counter("a_total")
        assert len(registry) == 1

    def test_labels_create_distinct_children(self):
        registry = MetricsRegistry()
        one = registry.counter("q_total", labels={"s": "x"})
        two = registry.counter("q_total", labels={"s": "y"})
        assert one is not two
        one.inc()
        assert two.value == 0
        assert len(registry) == 2

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ValueError):
            registry.gauge("thing")

    def test_contains(self):
        registry = MetricsRegistry()
        registry.gauge("present")
        assert "present" in registry
        assert "absent" not in registry


class TestJsonRoundtrip:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("repro_queries_total", "Queries.").inc(5)
        registry.gauge("depth", "Depth.").set(3.5)
        registry.counter("by_strategy_total",
                         labels={"strategy": "pushdown"}).inc(2)
        histogram = registry.histogram("latency_seconds", "Latency.",
                                       buckets=(0.01, 0.1))
        histogram.observe(0.005)
        histogram.observe(0.5)
        return registry

    def test_roundtrip_preserves_everything(self):
        registry = self._populated()
        clone = MetricsRegistry.from_json(
            json.loads(registry.to_json_text()))
        assert clone.to_prometheus() == registry.to_prometheus()
        assert clone.to_json() == registry.to_json()

    def test_from_json_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            MetricsRegistry.from_json(
                {"metrics": [{"name": "x", "kind": "mystery"}]})

    def test_from_json_rejects_mismatched_histogram(self):
        with pytest.raises(ValueError):
            MetricsRegistry.from_json(
                {"metrics": [{"name": "h", "kind": "histogram",
                              "buckets": [1.0, 2.0], "counts": [1]}]})


class TestPrometheusExposition:
    def test_golden_file(self):
        """The exposition format, byte-for-byte against a golden file."""
        registry = MetricsRegistry()
        registry.counter("repro_queries_total",
                         "Queries evaluated.").inc(3)
        registry.counter("repro_queries_by_strategy_total",
                         "Queries evaluated per strategy.",
                         labels={"strategy": "pushdown"}).inc(2)
        registry.counter("repro_queries_by_strategy_total",
                         "Queries evaluated per strategy.",
                         labels={"strategy": "brute-force"}).inc()
        registry.gauge("repro_active_documents",
                       "Documents currently loaded.").set(7)
        histogram = registry.histogram("repro_query_latency_seconds",
                                       "End-to-end query latency.",
                                       buckets=(0.001, 0.01, 0.1))
        for sample in (0.0005, 0.002, 0.249):
            histogram.observe(sample)
        with open(GOLDEN, encoding="utf-8") as handle:
            assert registry.to_prometheus() == handle.read()

    def test_empty_registry_exports_nothing(self):
        assert MetricsRegistry().to_prometheus() == ""

    def test_summary_mentions_every_metric(self):
        registry = MetricsRegistry()
        registry.counter("a_total").inc()
        registry.histogram("h_seconds").observe(1.0)
        summary = registry.summary()
        assert "a_total" in summary
        assert "h_seconds" in summary
        assert "count=1" in summary


class TestNullMetrics:
    def test_instruments_shared_and_inert(self):
        counter = NULL_METRICS.counter("x_total")
        histogram = NULL_METRICS.histogram("h")
        assert counter is NULL_METRICS.gauge("g")
        counter.inc(100)
        histogram.observe(5)
        assert counter.value == 0
        assert histogram.count == 0

    def test_disabled_flag_and_empty_exports(self):
        assert not NullMetrics.enabled
        assert NULL_METRICS.to_prometheus() == ""
        assert NULL_METRICS.summary() == ""
        assert len(NULL_METRICS) == 0
        assert "anything" not in NULL_METRICS


class TestExpositionEdgeCases:
    """Prometheus text-format corner cases (escaping, +Inf, collisions)."""

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter(
            "c_total", "Queries.",
            labels={"filter": 'size<="3" \\ or\nheight<=2'}).inc()
        text = registry.to_prometheus()
        assert ('c_total{filter="size<=\\"3\\" \\\\ or\\nheight<=2"} 1'
                in text)
        # The raw payload must never leak unescaped control characters
        # into a sample line.
        sample_lines = [line for line in text.splitlines()
                        if not line.startswith("#")]
        assert len(sample_lines) == 1

    def test_help_text_is_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "line one\nline two \\ done").inc()
        text = registry.to_prometheus()
        assert "# HELP c_total line one\\nline two \\\\ done" in text

    def test_histogram_exposes_inf_bucket_last(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(0.5,))
        histogram.observe(0.1)
        histogram.observe(99.0)
        lines = registry.to_prometheus().splitlines()
        buckets = [line for line in lines if "h_bucket" in line]
        assert buckets == ['h_bucket{le="0.5"} 1',
                           'h_bucket{le="+Inf"} 2']
        assert 'h_count 2' in lines

    def test_inf_bucket_survives_worker_merge(self):
        worker = MetricsRegistry()
        worker.histogram("h", buckets=(0.5,)).observe(42.0)
        parent = MetricsRegistry()
        parent.histogram("h", buckets=(0.5,)).observe(0.1)
        parent.merge(worker.diff(None))
        buckets = [line for line in parent.to_prometheus().splitlines()
                   if "h_bucket" in line]
        assert buckets == ['h_bucket{le="0.5"} 1',
                           'h_bucket{le="+Inf"} 2']

    def test_name_collision_across_merged_deltas_raises(self):
        # Two workers disagreeing on an instrument's kind must fail
        # loudly at merge time, not corrupt the exposition.
        parent = MetricsRegistry()
        first = MetricsRegistry()
        first.counter("m_total").inc(1)
        second = MetricsRegistry()
        second.histogram("m_total", buckets=(1.0,)).observe(0.5)
        parent.merge(first.diff(None))
        with pytest.raises(ValueError):
            parent.merge(second.diff(None))
        # The successful merge is still intact and exportable.
        assert "m_total 1" in parent.to_prometheus()

    def test_labelled_series_merge_onto_matching_series(self):
        worker = MetricsRegistry()
        worker.counter("c_total", labels={"strategy": "pushdown"}).inc(2)
        worker.counter("c_total", labels={"strategy": "brute-force"}).inc(1)
        parent = MetricsRegistry()
        parent.counter("c_total", labels={"strategy": "pushdown"}).inc(3)
        parent.merge(worker.diff(None))
        text = parent.to_prometheus()
        assert 'c_total{strategy="pushdown"} 5' in text
        assert 'c_total{strategy="brute-force"} 1' in text


class TestExponentialBuckets:
    def test_shape(self):
        from repro.obs.metrics import exponential_buckets
        buckets = exponential_buckets(0.001, 2.0, 5)
        assert buckets == pytest.approx((0.001, 0.002, 0.004, 0.008,
                                         0.016))

    def test_valid_for_histograms(self):
        from repro.obs.metrics import (COST_ERROR_BUCKETS,
                                       LATENCY_LOG_BUCKETS,
                                       SIZE_LOG_BUCKETS,
                                       exponential_buckets)
        for buckets in (LATENCY_LOG_BUCKETS, SIZE_LOG_BUCKETS,
                        COST_ERROR_BUCKETS,
                        exponential_buckets(0.5, 3.0, 4)):
            Histogram("h", buckets=buckets)  # strictly increasing

    @pytest.mark.parametrize("args", [
        (0.0, 2.0, 5), (-1.0, 2.0, 5), (1.0, 1.0, 5), (1.0, 0.5, 5),
        (1.0, 2.0, 0),
    ])
    def test_rejects_bad_parameters(self, args):
        from repro.obs.metrics import exponential_buckets
        with pytest.raises(ValueError):
            exponential_buckets(*args)
