"""Tests for the cross-process telemetry delta format (repro.obs.delta).

Worker processes ship metric increments, span trees and query records
back to the parent as an :class:`ObsDelta`; these tests pin the diff →
ship → merge semantics the parallel executor relies on.
"""

from __future__ import annotations

import pytest

from repro.obs import (DELTAS_MERGED, SLOW_QUERIES, MetricsRegistry,
                       Observability, ObsDelta, QueryLog, capture_delta,
                       merge_delta)


def _counter_value(registry, name):
    for record in registry.to_json()["metrics"]:
        if record["name"] == name and not record.get("labels"):
            return record.get("value")
    return None


class TestRegistryDiff:
    def test_diff_against_empty_baseline_is_full_state(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(3)
        delta = registry.diff(None)
        assert [(m["name"], m["value"]) for m in delta["metrics"]] \
            == [("c_total", 3)]

    def test_unchanged_instruments_are_omitted(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(3)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        baseline = registry.to_json()
        assert registry.diff(baseline) == {"metrics": []}
        registry.counter("c_total").inc(2)
        delta = registry.diff(baseline)
        assert [(m["name"], m["value"]) for m in delta["metrics"]] \
            == [("c_total", 2)]

    def test_gauges_are_differenced_like_counters(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(10)
        baseline = registry.to_json()
        registry.gauge("g").set(14)
        delta = registry.diff(baseline)
        assert delta["metrics"][0]["value"] == 4

    def test_histogram_delta_is_elementwise(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(1.0, 10.0))
        histogram.observe(0.5)
        baseline = registry.to_json()
        histogram.observe(5.0)
        histogram.observe(50.0)
        (record,) = registry.diff(baseline)["metrics"]
        assert record["counts"] == [0, 1, 1]
        assert record["count"] == 2
        assert record["sum"] == pytest.approx(55.0)


class TestRegistryMerge:
    def test_merge_restores_diff(self):
        source = MetricsRegistry()
        source.counter("c_total").inc(3)
        source.gauge("g").set(7)
        source.histogram("h", buckets=(1.0,)).observe(0.5)
        target = MetricsRegistry()
        target.counter("c_total").inc(1)
        target.merge(source.diff(None))
        assert _counter_value(target, "c_total") == 4
        assert target.gauge("g").value == 7
        assert target.histogram("h", buckets=(1.0,)).count == 1

    def test_merge_is_associative_across_workers(self):
        deltas = []
        for increments in (2, 5):
            worker = MetricsRegistry()
            worker.counter("c_total").inc(increments)
            deltas.append(worker.diff(None))
        target = MetricsRegistry()
        for delta in deltas:
            target.merge(delta)
        assert _counter_value(target, "c_total") == 7

    def test_merge_rejects_kind_mismatch(self):
        target = MetricsRegistry()
        target.counter("m")
        worker = MetricsRegistry()
        worker.gauge("m").set(1)
        with pytest.raises(ValueError):
            target.merge(worker.diff(None))

    def test_merge_rejects_bucket_mismatch(self):
        target = MetricsRegistry()
        target.histogram("h", buckets=(1.0, 2.0)).observe(0.1)
        worker = MetricsRegistry()
        worker.histogram("h", buckets=(5.0,)).observe(0.1)
        with pytest.raises(ValueError):
            target.merge(worker.diff(None))


class TestCaptureAndMergeDelta:
    def _worker_obs(self):
        obs = Observability(query_log=QueryLog())
        with obs.span("execute", strategy="pushdown"):
            pass
        obs.record_query(document="doc-1", terms=("a", "b"),
                         filter="size<=3", strategy="pushdown",
                         answers=2, elapsed=0.25,
                         stats={"fragment_joins": 5})
        return obs

    def test_capture_drains_worker_state(self):
        obs = self._worker_obs()
        delta, baseline = capture_delta(obs, None)
        assert bool(delta)
        assert delta.records and delta.spans
        # A second capture against the new baseline is empty.
        empty, _ = capture_delta(obs, baseline)
        assert not bool(empty)

    def test_merge_stamps_worker_label_on_spans_and_records(self):
        delta, _ = capture_delta(self._worker_obs(), None)
        parent = Observability(query_log=QueryLog())
        merge_delta(parent, delta, worker="3")
        (record,) = parent.query_log.records
        assert record.worker == "3"
        (root,) = parent.tracer.roots
        assert root.attributes.get("worker") == "3"
        assert _counter_value(parent.metrics, DELTAS_MERGED) == 1

    def test_metric_increments_merge_unlabelled(self):
        # Parent totals must equal serial totals: worker labels go on
        # spans and records only, never on the metric series.
        delta, _ = capture_delta(self._worker_obs(), None)
        parent = Observability()
        merge_delta(parent, delta, worker="1")
        for record in parent.metrics.to_json()["metrics"]:
            assert "worker" not in (record.get("labels") or {})

    def test_parent_threshold_rederives_slow(self):
        # Worker logs run without a threshold; the parent's
        # slow_query_ms is the source of truth.
        delta, _ = capture_delta(self._worker_obs(), None)
        parent = Observability(query_log=QueryLog(slow_query_ms=100.0))
        merge_delta(parent, delta, worker="0")
        (record,) = parent.query_log.records
        assert record.slow  # 0.25 s >= 100 ms
        assert _counter_value(parent.metrics, SLOW_QUERIES) == 1

    def test_merge_none_delta_is_noop(self):
        parent = Observability()
        merge_delta(parent, None, worker="0")
        assert parent.metrics.to_json()["metrics"] == []

    def test_delta_roundtrips_as_plain_data(self):
        # The pool pickles deltas; the dataclass must survive
        # dict-shaped reconstruction.
        delta, _ = capture_delta(self._worker_obs(), None)
        clone = ObsDelta(metrics=delta.metrics, spans=delta.spans,
                         records=delta.records)
        parent = Observability(query_log=QueryLog())
        merge_delta(parent, clone, worker="2")
        assert len(parent.query_log) == 1
