"""Tests for the query flight recorder (repro.obs.recorder)."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap

import pytest

from repro.core.filters import SizeAtMost
from repro.core.query import Query
from repro.core.strategies import Strategy, evaluate
from repro.errors import BudgetExceeded
from repro.guard.budget import QueryBudget
from repro.index.inverted import InvertedIndex
from repro.obs import (COST_ACTUAL, COST_CALIBRATION, COST_PREDICTED,
                       PROFILES_RECORDED, RECORDER_LATENCY,
                       FlightRecorder, MetricsRegistry, Observability,
                       QueryProfile, RecorderConfig)
from repro.obs.recorder import (RETAIN_BUDGET, RETAIN_HEAD, RETAIN_SLOW,
                                load_dump, span_to_events)
from repro.obs.tracer import SpanTracer

ALL_STRATEGIES = ("brute-force", "set-reduction", "pushdown",
                  "semi-naive")


def _observe(recorder, metrics, *, elapsed=0.001, outcome="ok",
             strategy="pushdown", predicted=None, answers=2, span=None,
             stats=None):
    return recorder.observe(
        metrics=metrics, document="doc", terms=("a", "b"), filter="true",
        strategy=strategy, answers=answers, elapsed=elapsed,
        stats=stats or {"fragment_joins": 4, "join_cache_hits": 1},
        outcome=outcome, predicted_cost=predicted, span=span)


def _closed_span(name="execute"):
    tracer = SpanTracer()
    with tracer.span(name):
        with tracer.span("scan"):
            pass
    return tracer.roots[-1]


class TestConfig:
    def test_defaults(self):
        config = RecorderConfig()
        assert config.ring_size == 512
        assert config.sample_rate == 0.0

    @pytest.mark.parametrize("kwargs", [
        {"ring_size": 0}, {"max_traces": -1},
        {"sample_rate": -0.1}, {"sample_rate": 1.5}, {"slow_ms": -1.0},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            RecorderConfig(**kwargs)

    def test_round_trips_through_dict(self):
        config = RecorderConfig(ring_size=7, max_traces=3, slow_ms=None,
                                sample_rate=0.5, seed=11)
        assert RecorderConfig.from_dict(config.to_dict()) == config


class TestRing:
    def test_ring_bounds_and_counts_evictions(self):
        recorder = FlightRecorder(RecorderConfig(ring_size=3,
                                                 slow_ms=None))
        metrics = MetricsRegistry()
        for _ in range(5):
            _observe(recorder, metrics)
        assert len(recorder) == 3
        assert recorder.recorded == 5
        assert recorder.evicted == 2
        assert metrics.get(PROFILES_RECORDED).value == 5

    def test_query_ids_are_unique_and_ordered(self):
        recorder = FlightRecorder(RecorderConfig(slow_ms=None))
        metrics = MetricsRegistry()
        ids = [_observe(recorder, metrics).query_id for _ in range(3)]
        assert len(set(ids)) == 3
        assert ids == sorted(ids)

    def test_latency_percentiles(self):
        recorder = FlightRecorder(RecorderConfig(slow_ms=None))
        metrics = MetricsRegistry()
        for ms in (1, 2, 3, 4, 100):
            _observe(recorder, metrics, elapsed=ms / 1000.0)
        latency = recorder.latency_percentiles()
        assert latency["samples"] == 5
        assert latency["p50_ms"] == pytest.approx(3.0, rel=0.01)
        assert latency["p99_ms"] == pytest.approx(100.0, rel=0.01)


class TestTailSampling:
    def test_budget_exceeded_always_retained(self):
        recorder = FlightRecorder(RecorderConfig(slow_ms=None))
        profile = _observe(recorder, MetricsRegistry(),
                           outcome="budget-exceeded",
                           span=_closed_span())
        assert profile.retained == RETAIN_BUDGET
        assert profile.trace_id in recorder.trace_ids()

    def test_slow_query_retained(self):
        recorder = FlightRecorder(RecorderConfig(slow_ms=10.0))
        fast = _observe(recorder, MetricsRegistry(), elapsed=0.001,
                        span=_closed_span())
        slow = _observe(recorder, MetricsRegistry(), elapsed=0.05,
                        span=_closed_span())
        assert fast.retained is None and fast.trace_id is None
        assert slow.retained == RETAIN_SLOW

    def test_head_sampling_is_seeded(self):
        def retained_flags(seed):
            recorder = FlightRecorder(RecorderConfig(
                slow_ms=None, sample_rate=0.5, seed=seed))
            metrics = MetricsRegistry()
            return [_observe(recorder, metrics,
                             span=_closed_span()).retained
                    for _ in range(20)]

        first, second = retained_flags(42), retained_flags(42)
        assert first == second
        assert RETAIN_HEAD in first and None in first

    def test_zero_rate_drops_ordinary_traces(self):
        recorder = FlightRecorder(RecorderConfig(slow_ms=None,
                                                 sample_rate=0.0))
        for _ in range(10):
            profile = _observe(recorder, MetricsRegistry(),
                               span=_closed_span())
            assert profile.retained is None
        assert recorder.trace_ids() == []

    def test_trace_store_bounded_by_max_traces(self):
        recorder = FlightRecorder(RecorderConfig(
            slow_ms=None, sample_rate=1.0, max_traces=2, seed=1))
        metrics = MetricsRegistry()
        for _ in range(5):
            _observe(recorder, metrics, span=_closed_span())
        assert len(recorder.trace_ids()) == 2
        assert recorder.traces_retained == 5
        assert recorder.traces_dropped == 3


class TestChromeExport:
    def test_span_to_events_shapes(self):
        events = span_to_events(_closed_span(), pid=7)
        assert [e["name"] for e in events] == ["execute", "scan"]
        for event in events:
            assert event["ph"] == "X"
            assert event["pid"] == 7
            assert event["dur"] >= 0
            assert event["ts"] >= 0

    def test_chrome_trace_document_is_valid_json(self):
        recorder = FlightRecorder(RecorderConfig(slow_ms=0.0))
        profile = _observe(recorder, MetricsRegistry(),
                           span=_closed_span())
        doc = recorder.chrome_trace(profile.trace_id)
        assert doc["displayTimeUnit"] == "ms"
        assert doc["metadata"]["trace_id"] == profile.trace_id
        json.loads(json.dumps(doc))

    def test_chrome_trace_missing_id(self):
        recorder = FlightRecorder()
        assert recorder.chrome_trace("nope") is None


class TestCalibration:
    def test_cost_ratio_per_profile(self):
        profile = QueryProfile(ts=0.0, query_id="q", document="d",
                               terms=("a",), filter="true",
                               strategy="pushdown", answers=1,
                               wall_ms=1.0, cpu_ms=1.0,
                               predicted_cost=10.0, actual_cost=15.0)
        assert profile.cost_ratio == pytest.approx(1.5)

    def test_publish_calibration_sets_gauges(self):
        recorder = FlightRecorder(RecorderConfig(slow_ms=None))
        metrics = MetricsRegistry()
        _observe(recorder, metrics, predicted=10.0, answers=2,
                 stats={"fragment_joins": 10})
        ratios = recorder.publish_calibration(metrics)
        # measured cost = answers + joins = 12, predicted = 10
        assert ratios["pushdown"] == pytest.approx(1.2)
        gauge = metrics.get(COST_CALIBRATION,
                            labels={"strategy": "pushdown"})
        assert gauge.value == pytest.approx(1.2)
        assert metrics.get(COST_PREDICTED,
                           labels={"strategy": "pushdown"}).value == 10.0
        assert metrics.get(COST_ACTUAL,
                           labels={"strategy": "pushdown"}).value == 12.0

    def test_all_four_strategies_produce_calibration_samples(self):
        from repro.workloads.figure1 import build_figure1_document
        document = build_figure1_document()
        index = InvertedIndex(document)
        query = Query.of("xquery", "optimization",
                         predicate=SizeAtMost(3))
        obs = Observability(
            recorder=FlightRecorder(RecorderConfig(slow_ms=None)))
        for name in ALL_STRATEGIES:
            evaluate(document, query, strategy=Strategy.parse(name),
                     index=index, obs=obs)
        ratios = obs.recorder.publish_calibration(obs.metrics)
        assert set(ratios) == set(ALL_STRATEGIES)
        assert all(r > 0 for r in ratios.values())
        prom = obs.metrics.to_prometheus()
        for name in ALL_STRATEGIES:
            assert (f'repro_cost_calibration_ratio{{strategy="{name}"}}'
                    in prom)

    def test_cached_cost_memoizes(self):
        recorder = FlightRecorder()
        calls = []
        compute = lambda: calls.append(1) or 42.0
        assert recorder.cached_cost(("k",), compute) == 42.0
        assert recorder.cached_cost(("k",), compute) == 42.0
        assert len(calls) == 1


class TestBudgetAbort:
    def test_aborted_query_yields_retained_profile(self):
        from repro.workloads.figure1 import build_figure1_document
        document = build_figure1_document()
        index = InvertedIndex(document)
        obs = Observability(
            recorder=FlightRecorder(RecorderConfig()))
        with pytest.raises(BudgetExceeded):
            evaluate(document, Query.of("xquery", "optimization"),
                     strategy=Strategy.SET_REDUCTION, index=index,
                     obs=obs, budget=QueryBudget(max_join_ops=1))
        (profile,) = obs.recorder.profiles
        assert profile.outcome == "budget-exceeded"
        assert profile.reason == "join-ops"
        assert profile.retained == RETAIN_BUDGET
        assert profile.checkpoints >= 1
        doc = obs.recorder.chrome_trace(profile.trace_id)
        assert any(e["name"] == "execute" for e in doc["traceEvents"])


class TestDumpAndLoad:
    def test_jsonl_round_trip(self, tmp_path):
        recorder = FlightRecorder(RecorderConfig(slow_ms=0.0))
        metrics = MetricsRegistry()
        _observe(recorder, metrics, predicted=8.0,
                 span=_closed_span())
        _observe(recorder, metrics, outcome="error")
        path = tmp_path / "dump.jsonl"
        lines = recorder.dump(path)
        assert lines == 2 + len(recorder.trace_ids())
        profiles, traces = load_dump(path)
        assert [p.outcome for p in profiles] == ["ok", "error"]
        assert profiles[0].predicted_cost == 8.0
        assert set(traces) == set(recorder.trace_ids())

    def test_load_dump_skips_malformed_lines(self, tmp_path):
        path = tmp_path / "dump.jsonl"
        good = json.dumps({"type": "profile", "query_id": "q1",
                           "strategy": "pushdown", "wall_ms": 1.0})
        path.write_text(f"not json\n{good}\n{{\"type\": \"junk\"}}\n",
                        encoding="utf-8")
        profiles, traces = load_dump(path)
        assert [p.query_id for p in profiles] == ["q1"]
        assert traces == {}

    def test_dump_hook_writes_on_signal(self, tmp_path):
        script = textwrap.dedent("""
            import os, signal, sys, time
            from repro.obs import FlightRecorder, MetricsRegistry, \\
                RecorderConfig
            recorder = FlightRecorder(RecorderConfig(slow_ms=None))
            recorder.observe(metrics=MetricsRegistry(), document="d",
                             terms=("a",), filter="true",
                             strategy="pushdown", answers=1,
                             elapsed=0.001)
            recorder.install_dump_hook(sys.argv[1])
            print("armed", flush=True)
            time.sleep(30)
        """)
        dump = tmp_path / "abort.jsonl"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [p for p in (env.get("PYTHONPATH"),) if p]
            + [os.path.join(os.path.dirname(__file__), os.pardir,
                            os.pardir, "src")])
        proc = subprocess.Popen([sys.executable, "-c", script,
                                 str(dump)], env=env,
                                stdout=subprocess.PIPE, text=True)
        try:
            assert proc.stdout.readline().strip() == "armed"
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=10)
        finally:
            proc.kill()
        profiles, _ = load_dump(dump)
        assert len(profiles) == 1

    def test_uninstall_disarms_the_hook(self, tmp_path):
        recorder = FlightRecorder(RecorderConfig(slow_ms=None))
        _observe(recorder, MetricsRegistry())
        path = tmp_path / "never.jsonl"
        uninstall = recorder.install_dump_hook(path, signals=())
        uninstall()
        uninstall()  # idempotent
        assert not path.exists()


class TestIngest:
    def test_ingest_tags_worker_and_skips_reaggregation(self):
        worker = FlightRecorder(RecorderConfig(slow_ms=0.0),
                                worker_mode=True)
        worker_metrics = MetricsRegistry()
        _observe(worker, worker_metrics, predicted=5.0,
                 span=_closed_span())
        profiles, traces = worker.drain()
        assert len(worker) == 0

        parent = FlightRecorder(RecorderConfig())
        parent_metrics = MetricsRegistry()
        parent.ingest(profiles, traces, worker="3",
                      metrics=parent_metrics)
        (profile,) = parent.profiles
        assert profile.worker == "3"
        assert profile.trace_id in parent.trace_ids()
        # histograms travel via the additive delta merge, not ingest
        assert parent_metrics.get(RECORDER_LATENCY) is None
        # ...but the (non-additive) calibration gauge is parent business
        assert parent_metrics.get(
            COST_CALIBRATION, labels={"strategy": "pushdown"}) is not None

    def test_snapshot_counts(self):
        recorder = FlightRecorder(RecorderConfig(ring_size=2,
                                                 slow_ms=None))
        metrics = MetricsRegistry()
        for _ in range(3):
            _observe(recorder, metrics)
        snap = recorder.snapshot()
        assert snap["counts"] == {
            "recorded": 3, "evicted": 1, "in_ring": 2,
            "traces_retained": 0, "traces_dropped": 0,
            "traces_in_store": 0}
        assert snap["outcomes"] == {"ok": 2}
        assert len(snap["profiles"]) == 2


class TestDumpHookRegistry:
    """Regressions for the process-wide dump-hook ledger: hooks must
    be idempotent per recorder, re-registration-safe, and must fully
    restore signal dispositions when the last hook is removed."""

    def test_reinstall_replaces_the_previous_path(self, tmp_path):
        from repro.obs.recorder import _DUMP_HOOKS

        recorder = FlightRecorder(RecorderConfig(slow_ms=None))
        _observe(recorder, MetricsRegistry())
        stale = tmp_path / "stale.jsonl"
        fresh = tmp_path / "fresh.jsonl"
        uninstall_stale = recorder.install_dump_hook(stale, signals=())
        uninstall = recorder.install_dump_hook(fresh, signals=())
        try:
            _DUMP_HOOKS._dump_all()
            # The re-registered path wins; the stale one never fires.
            assert fresh.exists()
            assert not stale.exists()
        finally:
            uninstall()
            uninstall_stale()  # stale token: must be a quiet no-op
        profiles, _ = load_dump(fresh)
        assert len(profiles) == 1

    def test_each_recorder_dumps_at_most_once(self, tmp_path):
        from repro.obs.recorder import _DUMP_HOOKS

        recorder = FlightRecorder(RecorderConfig(slow_ms=None))
        _observe(recorder, MetricsRegistry())
        path = tmp_path / "once.jsonl"
        uninstall = recorder.install_dump_hook(path, signals=())
        try:
            _DUMP_HOOKS._dump_all()
            first = path.read_bytes()
            _observe(recorder, MetricsRegistry())
            _DUMP_HOOKS._dump_all()  # second trigger: already dumped
            assert path.read_bytes() == first
        finally:
            uninstall()

    def test_two_recorders_both_dump(self, tmp_path):
        from repro.obs.recorder import _DUMP_HOOKS

        paths = []
        uninstalls = []
        try:
            for name in ("a", "b"):
                recorder = FlightRecorder(RecorderConfig(slow_ms=None))
                _observe(recorder, MetricsRegistry())
                path = tmp_path / f"{name}.jsonl"
                paths.append(path)
                uninstalls.append(
                    recorder.install_dump_hook(path, signals=()))
            _DUMP_HOOKS._dump_all()
            for path in paths:
                profiles, _ = load_dump(path)
                assert len(profiles) == 1
        finally:
            for uninstall in uninstalls:
                uninstall()

    def test_signal_disposition_restored_after_last_uninstall(
            self, tmp_path):
        import signal as signal_module

        from repro.obs.recorder import _DUMP_HOOKS

        signum = signal_module.SIGUSR1
        before = signal_module.getsignal(signum)
        recorder = FlightRecorder(RecorderConfig(slow_ms=None))
        first = recorder.install_dump_hook(tmp_path / "a.jsonl",
                                           signals=(signum,))
        installed = signal_module.getsignal(signum)
        assert installed == _DUMP_HOOKS._on_signal
        # A second recorder on the same signal: one dispatcher, ever.
        other = FlightRecorder(RecorderConfig(slow_ms=None))
        second = other.install_dump_hook(tmp_path / "b.jsonl",
                                         signals=(signum,))
        assert signal_module.getsignal(signum) == installed
        first()
        # One hook still registered: the dispatcher stays armed.
        assert signal_module.getsignal(signum) == installed
        second()
        # Last hook gone: the original disposition is back.
        assert signal_module.getsignal(signum) == before
        # A later install re-arms from scratch.
        third = other.install_dump_hook(tmp_path / "c.jsonl",
                                        signals=(signum,))
        assert signal_module.getsignal(signum) == _DUMP_HOOKS._on_signal
        third()
        assert signal_module.getsignal(signum) == before
