"""Consistent reads under write traffic, at the collection layer.

Three surfaces of the live-mutation stack:

* the in-memory :class:`DocumentCollection` accepts ``add`` while
  searches run on other threads (copy-on-write corpus swap — readers
  keep the view they started with, no torn iteration);
* :class:`MutableDocumentCollection` answers bit-identically serial
  vs pooled while a writer commits between queries, and an explicit
  ``epoch=`` pin keeps serving the old world after a remove;
* ``POST /ingest`` runs the whole guard path over HTTP: writes land
  durably, become queryable on the next request, and read-only
  servers refuse them.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.collection.collection import DocumentCollection
from repro.core.query import Query
from repro.core.strategies import Strategy
from repro.errors import DocumentError, QueryError, WALError
from repro.obs import Observability
from repro.obs.server import MetricsServer
from repro.workloads.inexlike import InexSpec, generate_collection


@pytest.fixture(scope="module")
def corpus():
    collection = generate_collection(InexSpec(articles=10, seed=47))
    return {name: collection.document(name)
            for name in collection.names()}


NEEDLE = Query.of("needle")
BOTH = Query.of("needle", "thread")


def result_key(result):
    return [hit.label() for hit in result.hits]


def ranked_key(ranked):
    return [(name, round(scored.score, 12), scored.fragment.label())
            for name, scored in ranked]


class TestThreadSafeAdd:
    """Satellite: in-memory ``add`` is safe under concurrent search."""

    @pytest.mark.timeout(120)
    def test_interleaved_add_and_search(self, corpus):
        names = sorted(corpus)
        coll = DocumentCollection("live")
        for name in names[:2]:
            coll.add(corpus[name], name)
        errors = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                try:
                    result = coll.search(NEEDLE,
                                         strategy=Strategy.PUSHDOWN)
                    # A consistent view: every hit names a document
                    # that exists in the view the search returned.
                    for hit in result.hits:
                        assert hit.document_name in coll
                    coll.ranked_search(BOTH, limit=5)
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for name in names[2:]:
                coll.add(corpus[name], name)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=60)
        assert not errors
        assert len(coll) == len(names)
        # Post-write searches see the final corpus.
        final = coll.search(NEEDLE)
        assert {h.document_name for h in final.hits} <= set(names)

    def test_duplicate_add_still_rejected(self, corpus):
        names = sorted(corpus)
        coll = DocumentCollection("dup")
        coll.add(corpus[names[0]], names[0])
        with pytest.raises(DocumentError, match="already contains"):
            coll.add(corpus[names[0]], names[0])


@pytest.fixture()
def mutable_collection(corpus, tmp_path):
    from repro.collection.mutable import MutableDocumentCollection
    names = sorted(corpus)
    coll = MutableDocumentCollection.create(
        tmp_path / "idx", {n: corpus[n] for n in names[:6]}, shards=3)
    yield coll
    coll.close()


class TestMutableCollectionParity:
    @pytest.mark.timeout(300)
    def test_serial_equals_pooled_while_writing(self, corpus,
                                                mutable_collection):
        """Bit-identical serial vs pooled answers across commits."""
        names = sorted(corpus)
        reference = DocumentCollection("ref")
        for name in names[:6]:
            reference.add(corpus[name], name)
        for step, extra in enumerate(names[6:9]):
            serial = result_key(mutable_collection.search(NEEDLE))
            pooled = result_key(
                mutable_collection.search(NEEDLE, workers=2))
            expected = result_key(reference.search(NEEDLE))
            assert serial == expected
            assert pooled == expected
            ranked_serial = ranked_key(
                mutable_collection.ranked_search(BOTH, limit=7))
            ranked_pooled = ranked_key(
                mutable_collection.ranked_search(BOTH, limit=7,
                                                 workers=2))
            assert ranked_serial == ranked_key(
                reference.ranked_search(BOTH, limit=7))
            assert ranked_pooled == ranked_serial
            # Land a write between rounds; the next iteration must see
            # it on both paths.
            mutable_collection.add(corpus[extra], extra)
            reference.add(corpus[extra], extra)

    @pytest.mark.timeout(300)
    def test_pooled_reads_while_writer_thread_commits(
            self, corpus, mutable_collection):
        """Queries racing a committing writer always see one epoch."""
        names = sorted(corpus)
        errors = []
        done = threading.Event()

        def writer():
            try:
                for name in names[6:]:
                    mutable_collection.add(corpus[name], name)
                for name in names[6:8]:
                    mutable_collection.remove(name)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)
            finally:
                done.set()

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            while not done.is_set():
                serial = mutable_collection.search(NEEDLE)
                for hit in serial.hits:
                    # Whatever epoch the query pinned, its hits come
                    # from documents of that epoch's corpus.
                    assert hit.document_name in set(names)
                mutable_collection.search(NEEDLE, workers=2)
        finally:
            thread.join(timeout=120)
        assert not errors
        visible = set(mutable_collection.names())
        assert visible == set(names) - set(names[6:8])

    def test_stream_pins_epoch_across_writes(self, corpus,
                                             mutable_collection):
        names = sorted(corpus)
        hits = mutable_collection.search(NEEDLE, stream=True)
        first = next(hits, None)
        # The stream's epoch pin survives a write landing mid-drain.
        mutable_collection.add(corpus[names[9]], names[9])
        rest = list(hits)
        streamed = ([first.label()] if first is not None else []) \
            + [h.label() for h in rest]
        reference = DocumentCollection("ref")
        for name in names[:6]:
            reference.add(corpus[name], name)
        assert streamed == result_key(reference.search(NEEDLE))


class TestEpochPinnedReads:
    def test_explicit_epoch_survives_remove(self, corpus,
                                            mutable_collection):
        names = sorted(corpus)
        old_epoch = mutable_collection.epoch
        pin = mutable_collection.mutable.snapshot()
        try:
            mutable_collection.remove(names[0])
            old = result_key(
                mutable_collection.search(NEEDLE, epoch=old_epoch))
            new = result_key(mutable_collection.search(NEEDLE))
            assert names[0] not in {
                h.split(":")[0] for h in new}
            reference = DocumentCollection("ref")
            for name in names[:6]:
                reference.add(corpus[name], name)
            assert old == result_key(reference.search(NEEDLE))
        finally:
            pin.close()

    def test_unpinned_old_epoch_is_gone(self, corpus,
                                        mutable_collection):
        names = sorted(corpus)
        old_epoch = mutable_collection.epoch
        mutable_collection.remove(names[0])
        mutable_collection.remove(names[1])
        with pytest.raises(WALError):
            mutable_collection.search(NEEDLE, epoch=old_epoch)

    def test_pinned_view_is_read_only(self, corpus, mutable_collection):
        from repro.collection.mutable import _SnapshotCollection
        with mutable_collection._pinned() as snapshot:
            view = _SnapshotCollection(mutable_collection, snapshot)
            with pytest.raises(DocumentError, match="read-only"):
                view.add(corpus[sorted(corpus)[9]])

    def test_pool_requires_snapshot(self, corpus, mutable_collection):
        from repro.exec.parallel import ParallelExecutor
        executor = ParallelExecutor(
            mutable_index=mutable_collection.mutable.path, workers=2)
        try:
            with pytest.raises(QueryError, match="epoch-pinned"):
                executor.search(NEEDLE, strategy=Strategy.PUSHDOWN)
        finally:
            executor.shutdown()


def _request(url, method="GET", payload=None):
    data = (json.dumps(payload).encode("utf-8")
            if payload is not None else None)
    headers = ({"Content-Type": "application/json"}
               if data is not None else {})
    request = urllib.request.Request(url, data=data, headers=headers,
                                     method=method)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read() or b"{}")


class TestIngestEndpoint:
    @pytest.fixture()
    def writable_server(self, mutable_collection):
        with MetricsServer(Observability(),
                           collection=mutable_collection) as running:
            yield running

    def test_ingest_commits_and_is_queryable(self, corpus,
                                             writable_server):
        xml = ("<article><sec>a needle in the haystack</sec>"
               "</article>")
        status, body = _request(
            writable_server.url + "/ingest", "POST",
            payload={"documents": [{"name": "fresh", "xml": xml}]})
        assert status == 200, body
        assert body["added"] == ["fresh"]
        assert body["committed"] and body["epoch"] is not None
        assert body["pending_wal_records"] == 0
        status, result = _request(
            writable_server.url + "/query", "POST",
            payload={"query": "haystack"})
        assert status == 200
        assert {h["document"] for h in result["hits"]} == {"fresh"}

    def test_remove_unknown_is_404_and_atomic(self, writable_server,
                                              mutable_collection):
        before = mutable_collection.epoch
        status, body = _request(
            writable_server.url + "/ingest", "POST",
            payload={"documents": [], "remove": ["no-such"]})
        assert status == 404
        assert body["error"] == "unknown-document"
        assert mutable_collection.epoch == before

    def test_bad_shapes_are_400(self, writable_server):
        for payload in ({}, {"documents": "nope"},
                        {"documents": [{"name": "x"}]},
                        {"documents": [{"name": "", "xml": "<a/>"}]},
                        {"documents": [{"name": "x",
                                        "xml": "<open>"}]}):
            status, body = _request(
                writable_server.url + "/ingest", "POST",
                payload=payload)
            assert status == 400, (payload, body)

    def test_read_only_server_refuses_ingest(self, corpus):
        coll = DocumentCollection("ro")
        names = sorted(corpus)
        coll.add(corpus[names[0]], names[0])
        with MetricsServer(Observability(),
                           collection=coll) as running:
            status, body = _request(
                running.url + "/ingest", "POST",
                payload={"documents": [
                    {"name": "x", "xml": "<a>hi</a>"}]})
        assert status == 403
        assert body["error"] == "read-only"

    def test_varz_reports_epochs(self, writable_server,
                                 mutable_collection):
        with urllib.request.urlopen(
                writable_server.url + "/varz", timeout=30) as response:
            doc = json.loads(response.read())
        epochs = doc["epochs"]
        assert epochs["current"] == mutable_collection.epoch
        assert epochs["pending_wal_records"] == 0
        assert mutable_collection.epoch in epochs["published"]
