"""End-to-end check of the live metrics endpoint.

Spawns the real ``repro-search serve`` CLI in a subprocess over a
generated corpus, scrapes ``/healthz`` and ``/metrics`` over HTTP while
feeding it a query on stdin, and verifies the scrape reflects the
evaluated query — the closest thing to a ``curl`` smoke test that still
runs inside the suite.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

from repro.workloads.inexlike import InexSpec, generate_collection
from repro.xmltree.serializer import document_to_xml

REPO_ROOT = Path(__file__).resolve().parents[2]
URL_PATTERN = re.compile(r"http://127\.0\.0\.1:\d+")
DEADLINE = 30.0


def _get(url: str) -> str:
    with urllib.request.urlopen(url, timeout=5) as response:
        assert response.status == 200
        return response.read().decode("utf-8")


@pytest.fixture(scope="module")
def corpus_dir(tmp_path_factory) -> Path:
    directory = tmp_path_factory.mktemp("corpus")
    with generate_collection(
            InexSpec(articles=4, nodes_per_article=100, seed=11)) as corpus:
        for name in corpus.names():
            path = directory / f"{name}.xml"
            path.write_text(document_to_xml(corpus.document(name)),
                            encoding="utf-8")
    return directory


def test_serve_endpoint_over_http(corpus_dir):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    process = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro.cli", "serve",
         str(corpus_dir), "--port", "0", "--slow-query-ms", "0"],
        stdin=subprocess.PIPE, stdout=subprocess.PIPE,
        stderr=subprocess.PIPE, text=True, env=env,
        cwd=str(REPO_ROOT))
    try:
        banner = process.stderr.readline()
        match = URL_PATTERN.search(banner)
        assert match, f"no server URL announced: {banner!r}"
        base = match.group(0)

        assert _get(base + "/healthz") == "ok\n"
        before = _get(base + "/metrics")
        assert "repro_queries_total" not in before  # nothing ran yet

        process.stdin.write("needle thread\n")
        process.stdin.flush()
        deadline = time.monotonic() + DEADLINE
        while True:
            varz = json.loads(_get(base + "/varz"))
            if varz["query_log"]["records"] > 0:
                break
            assert time.monotonic() < deadline, "query never recorded"
            time.sleep(0.05)

        after = _get(base + "/metrics")
        assert "# TYPE repro_queries_total counter" in after
        total = re.search(r"^repro_queries_total (\d+)", after,
                          re.MULTILINE)
        assert total and int(total.group(1)) > 0
        assert varz["query_log"]["slow"] == varz["query_log"]["records"]

        # communicate() closes stdin, signalling EOF to the serve loop.
        stdout, _ = process.communicate(timeout=DEADLINE)
        assert process.returncode == 0
        assert "answer(s)" in stdout
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)
