"""Repository self-consistency: docs, benches and experiments align."""

from __future__ import annotations

from pathlib import Path

REPO = Path(__file__).resolve().parents[2]


def test_required_documents_exist():
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                 "CHANGELOG.md", "CONTRIBUTING.md", "LICENSE",
                 "pyproject.toml"):
        assert (REPO / name).is_file(), name


def test_design_indexes_every_bench_file():
    design = (REPO / "DESIGN.md").read_text()
    benches = sorted(p.name for p in (REPO / "benchmarks").glob(
        "bench_*.py"))
    missing = [name for name in benches if name not in design]
    assert not missing, (f"DESIGN.md experiment index is missing "
                         f"{missing}")


def test_experiment_ids_covered_in_experiments_md():
    experiments = (REPO / "EXPERIMENTS.md").read_text()
    for exp_id in ("T1", "F1", "F2", "F3", "F4", "F5", "F6", "F7",
                   "F8", "F9", "S1", "S2", "S3", "S4", "S5", "S6",
                   "S7", "S8", "S9", "S10", "E1"):
        assert f"{exp_id} —" in experiments or \
            f"## {exp_id}" in experiments, exp_id


def test_examples_listed_in_readme():
    readme = (REPO / "README.md").read_text()
    for example in (REPO / "examples").glob("*.py"):
        assert example.name in readme, (
            f"README example table is missing {example.name}")


def test_docs_directory_complete():
    for name in ("tutorial.md", "theory.md", "api.md"):
        assert (REPO / "docs" / name).is_file(), name


def test_paper_anchor_constants_unchanged():
    """The reconstruction's load-bearing constants, pinned once more."""
    from repro.workloads.figure1 import (FIGURE1_QUERY_TERMS,
                                         build_figure1_document)
    doc = build_figure1_document()
    assert doc.size == 82
    assert FIGURE1_QUERY_TERMS == ("xquery", "optimization")
    assert doc.nodes_with_keyword("xquery") == [17, 18]
    assert doc.nodes_with_keyword("optimization") == [16, 17, 81]
