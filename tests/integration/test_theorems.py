"""Property-based verification of the paper's three theorems.

Each theorem is exercised end-to-end over random documents and random
keyword placements — beyond the unit-level checks in tests/core.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.algebra import pairwise_join, powerset_join
from repro.core.filters import HeightAtMost, SizeAtMost, WidthAtMost, select
from repro.core.query import keyword_fragments
from repro.core.reduce import (fixed_point, fixed_point_bounded,
                               iterate_pairwise, reduction_count)

from ..treegen import documents

FILTERS = [SizeAtMost(2), SizeAtMost(4), HeightAtMost(1), WidthAtMost(3),
           SizeAtMost(3) & HeightAtMost(2),
           SizeAtMost(2) | WidthAtMost(1)]


class TestTheorem1:
    """⋈_n(F) = ⋈_k(F) with k = |⊖(F)|, over keyword-derived sets."""

    @settings(max_examples=50, deadline=None)
    @given(documents(min_nodes=3, max_nodes=12))
    def test_iteration_bound(self, doc):
        frags = keyword_fragments(doc, "alpha")
        if not frags:
            return
        k = reduction_count(frags)
        n = len(frags)
        k_rounds = iterate_pairwise(frags, max(k, 1))
        n_rounds = iterate_pairwise(frags, max(n, 1))
        assert k_rounds == n_rounds
        assert k_rounds == fixed_point(frags)


class TestTheorem2:
    """F1 ⋈* F2 = F1+ ⋈ F2+, over keyword-derived sets."""

    @settings(max_examples=50, deadline=None)
    @given(documents(min_nodes=3, max_nodes=10))
    def test_powerset_rewrite(self, doc):
        F1 = keyword_fragments(doc, "alpha")
        F2 = keyword_fragments(doc, "beta")
        if not F1 or not F2:
            return
        assert powerset_join(F1, F2) == \
            pairwise_join(fixed_point_bounded(F1),
                          fixed_point_bounded(F2))


class TestTheorem3:
    """σ_Pa(F1 ⋈ F2) = σ_Pa(σ_Pa(F1) ⋈ σ_Pa(F2)) for a.m. filters."""

    @settings(max_examples=40, deadline=None)
    @given(documents(min_nodes=3, max_nodes=10),
           st.sampled_from(FILTERS))
    def test_selection_commutes_with_pairwise_join(self, doc, predicate):
        F1 = keyword_fragments(doc, "alpha")
        F2 = keyword_fragments(doc, "beta")
        late = select(predicate, pairwise_join(F1, F2))
        early = select(predicate,
                       pairwise_join(select(predicate, F1),
                                     select(predicate, F2)))
        assert late == early

    @settings(max_examples=40, deadline=None)
    @given(documents(min_nodes=3, max_nodes=10),
           st.sampled_from(FILTERS))
    def test_full_pushdown_equation(self, doc, predicate):
        """The expanded equation after Theorem 3: filtering inside the
        fixed points and between joins equals filtering once at the
        end."""
        F1 = keyword_fragments(doc, "alpha")
        F2 = keyword_fragments(doc, "beta")
        late = select(predicate,
                      pairwise_join(fixed_point(F1), fixed_point(F2)))
        early = select(
            predicate,
            pairwise_join(fixed_point(F1, predicate=predicate),
                          fixed_point(F2, predicate=predicate)))
        assert late == early
