"""Smoke tests: every bundled example must run cleanly."""

from __future__ import annotations

import runpy
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_present():
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, tmp_path, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [script]
                        + ([str(tmp_path / "example.db")]
                           if script == "relational_backend.py" else []))
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} printed nothing"


def test_quickstart_output_mentions_answers():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True, text=True, timeout=120)
    assert completed.returncode == 0
    assert "answers" in completed.stdout
