"""Robustness tests: extreme shapes and adversarial inputs."""

from __future__ import annotations

import pytest

from repro.core.filters import SizeAtMost
from repro.core.fragment import Fragment
from repro.core.query import Query
from repro.core.strategies import Strategy, evaluate
from repro.xmltree.builder import DocumentBuilder


def deep_chain(depth: int, keyword_positions=()):
    b = DocumentBuilder(name=f"chain-{depth}")
    node = b.add_root("n", "")
    nodes = [node]
    for _ in range(depth - 1):
        node = b.add_child(node, "n", "")
        nodes.append(node)
    for pos, word in keyword_positions:
        b.add_keywords(nodes[pos], [word])
    return b.build()


def wide_star(fanout: int, keyword_positions=()):
    b = DocumentBuilder(name=f"star-{fanout}")
    root = b.add_root("root", "")
    children = [b.add_child(root, "leaf", "") for _ in range(fanout)]
    for pos, word in keyword_positions:
        b.add_keywords(children[pos], [word])
    return b.build()


class TestDeepChains:
    def test_600_deep_chain_query(self):
        # Deeper than Python's default recursion limit would allow for
        # naive recursive implementations.
        doc = deep_chain(600, [(50, "alpha"), (550, "beta")])
        result = evaluate(doc, Query.of("alpha", "beta"))
        (fragment,) = result.fragments
        assert fragment.size == 501  # nodes 50..550 inclusive

    def test_deep_chain_join_is_iterative(self):
        doc = deep_chain(800)
        from repro.core.algebra import fragment_join
        top = Fragment(doc, [0])
        bottom = Fragment(doc, [doc.size - 1])
        joined = fragment_join(top, bottom)
        assert joined.size == doc.size

    def test_deep_chain_lca(self):
        doc = deep_chain(700)
        assert doc.lca(350, 699) == 350
        assert doc.lca_of([10, 400, 699]) == 10

    def test_deep_chain_serialization(self):
        from repro.xmltree.serializer import document_to_xml
        doc = deep_chain(400)
        xml = document_to_xml(doc, indent=False)
        assert xml.count("<n") == 400


class TestWideStars:
    def test_wide_star_query(self):
        doc = wide_star(500, [(0, "alpha"), (499, "beta")])
        result = evaluate(doc, Query.of("alpha", "beta",
                                        predicate=SizeAtMost(3)))
        (fragment,) = result.fragments
        assert fragment.root == doc.root
        assert fragment.size == 3

    def test_wide_star_fixed_point_with_filter(self):
        # Many keyword leaves under one parent: every pair joins to a
        # 3-node fragment through the root; size<=3 keeps them all but
        # prunes larger combinations.
        doc = wide_star(60, [(i, "alpha") for i in range(0, 60, 6)])
        result = evaluate(doc, Query.of("alpha",
                                        predicate=SizeAtMost(3)),
                          strategy=Strategy.PUSHDOWN)
        sizes = {f.size for f in result.fragments}
        assert sizes <= {1, 3}

    def test_wide_star_strategies_agree(self):
        doc = wide_star(30, [(1, "alpha"), (7, "alpha"),
                             (13, "beta"), (29, "beta")])
        query = Query.of("alpha", "beta", predicate=SizeAtMost(4))
        reference = evaluate(doc, query,
                             strategy=Strategy.BRUTE_FORCE).fragments
        for strategy in Strategy:
            assert evaluate(doc, query,
                            strategy=strategy).fragments == reference


class TestAdversarialContent:
    def test_keywords_looking_like_operators(self):
        from repro.xmltree.parser import parse
        doc = parse("<a><b>size keyword true</b>"
                    "<c>height width</c></a>")
        result = evaluate(doc, Query.of("size", "width",
                                        predicate=SizeAtMost(3)))
        assert result.fragments

    def test_single_node_document_queries(self):
        b = DocumentBuilder()
        b.add_root("only", "alpha beta")
        doc = b.build()
        result = evaluate(doc, Query.of("alpha", "beta"))
        assert {f.nodes for f in result.fragments} == {frozenset([0])}

    def test_unicode_content(self):
        from repro.xmltree.parser import parse
        doc = parse("<a><b>naïve café résumé</b><b>plain text</b></a>")
        assert doc.size == 3  # content must not break parsing

    def test_huge_text_node(self):
        b = DocumentBuilder()
        b.add_root("a", "word " * 20_000)
        doc = b.build()
        assert "word" in doc.keywords(0)
