"""End-to-end reproduction of the paper's worked example (§4, Table 1).

These tests walk the full pipeline — document, keyword selection,
powerset join, set reduction, push-down — and pin every number the
paper states: 11 candidate joins, 7 unique fragments, 4 surviving
size≤3, the target fragment ⟨n16,n17,n18⟩, and §4.3's pruning of
f16 ⋈ f81.
"""

from __future__ import annotations

from repro.core.algebra import (join_all, nonempty_subsets, pairwise_join,
                                powerset_join)
from repro.core.filters import SizeAtMost, select
from repro.core.fragment import Fragment
from repro.core.query import Query, keyword_fragments
from repro.core.reduce import (fixed_point_bounded, reduction_count,
                               set_reduce)
from repro.core.strategies import Strategy, evaluate


class TestSection41BruteForce:
    def test_eleven_candidate_subset_pairs(self, figure1):
        """§4.1: 'our example produces 11 unique pairwise unions'."""
        F1 = sorted(keyword_fragments(figure1, "xquery"),
                    key=lambda f: f.root)
        F2 = sorted(keyword_fragments(figure1, "optimization"),
                    key=lambda f: f.root)
        unions = set()
        for sub1 in nonempty_subsets(F1):
            for sub2 in nonempty_subsets(F2):
                unions.add(frozenset(set(sub1) | set(sub2)))
        assert len(unions) == 11

    def test_seven_unique_fragments(self, figure1):
        """Rows 1-7 are unique; rows 8-11 duplicate them."""
        F1 = keyword_fragments(figure1, "xquery")
        F2 = keyword_fragments(figure1, "optimization")
        assert len(powerset_join(F1, F2)) == 7

    def test_four_fragments_survive_filter(self, figure1):
        F1 = keyword_fragments(figure1, "xquery")
        F2 = keyword_fragments(figure1, "optimization")
        answers = select(SizeAtMost(3), powerset_join(F1, F2))
        assert {f.nodes for f in answers} == {
            frozenset([16, 17, 18]), frozenset([16, 17]),
            frozenset([16, 18]), frozenset([17])}

    def test_target_fragment_retrieved(self, figure1):
        """Objective 1: the fragment none of the existing techniques
        would produce."""
        result = evaluate(figure1,
                          Query.of("xquery", "optimization",
                                   predicate=SizeAtMost(3)))
        assert Fragment(figure1, [16, 17, 18]) in result.fragments


class TestSection42SetReduction:
    def test_f1_already_reduced(self, figure1):
        F1 = keyword_fragments(figure1, "xquery")
        assert set_reduce(F1) == F1
        assert reduction_count(F1) == 2

    def test_f2_reduces_to_f17_f81(self, figure1):
        """§4.2: ⊖(F2) = {f17, f81}."""
        F2 = keyword_fragments(figure1, "optimization")
        reduced = set_reduce(F2)
        assert {f.root for f in reduced} == {17, 81}

    def test_fixed_points_have_stated_contents(self, figure1):
        F1 = keyword_fragments(figure1, "xquery")
        F2 = keyword_fragments(figure1, "optimization")
        F1_plus = fixed_point_bounded(F1)
        # F1+ = {f17, f18, f17 ⋈ f18}.
        assert {f.nodes for f in F1_plus} == {
            frozenset([17]), frozenset([18]), frozenset([16, 17, 18])}
        F2_plus = fixed_point_bounded(F2)
        # F2+ = {f16, f17, f81, f16⋈f17, f16⋈f81, f17⋈f81}
        # — f16⋈f17⋈f81 coincides with f17⋈f81 (n16 lies on that path),
        # so six node-set-distinct fragments.
        assert len(F2_plus) == 6

    def test_theorem2_on_example(self, figure1):
        F1 = keyword_fragments(figure1, "xquery")
        F2 = keyword_fragments(figure1, "optimization")
        assert powerset_join(F1, F2) == \
            pairwise_join(fixed_point_bounded(F1),
                          fixed_point_bounded(F2))


class TestSection43Pushdown:
    def test_f16_join_f81_fails_filter(self, figure1):
        """§4.3: f16 ⋈ f81 spans 7 nodes and is pruned by size<=3."""
        joined = join_all([Fragment(figure1, [16]),
                           Fragment(figure1, [81])])
        assert joined.size == 7
        assert not SizeAtMost(3)(joined)

    def test_pushdown_never_loses_answers(self, figure1):
        query = Query.of("xquery", "optimization",
                         predicate=SizeAtMost(3))
        pushed = evaluate(figure1, query, strategy=Strategy.PUSHDOWN)
        brute = evaluate(figure1, query, strategy=Strategy.BRUTE_FORCE)
        assert pushed.fragments == brute.fragments

    def test_pushdown_saves_joins_on_example(self, figure1):
        query = Query.of("xquery", "optimization",
                         predicate=SizeAtMost(3))
        pushed = evaluate(figure1, query, strategy=Strategy.PUSHDOWN)
        reduction = evaluate(figure1, query,
                             strategy=Strategy.SET_REDUCTION)
        brute = evaluate(figure1, query, strategy=Strategy.BRUTE_FORCE)
        assert pushed.stats["fragment_joins"] \
            < reduction.stats["fragment_joins"] \
            < brute.stats["fragment_joins"]


class TestMotivation:
    def test_smallest_subtree_semantics_returns_only_n17(self, figure1):
        from repro.baselines.smallest import smallest_fragments
        assert smallest_fragments(figure1,
                                  ["xquery", "optimization"]) == \
            [Fragment(figure1, [17])]

    def test_algebra_additionally_finds_self_contained_unit(self,
                                                            figure1):
        result = evaluate(figure1,
                          Query.of("xquery", "optimization",
                                   predicate=SizeAtMost(3)))
        target = Fragment(figure1, [16, 17, 18])
        assert target in result.fragments
        # And the conventional answer is included as a sub-fragment.
        assert Fragment(figure1, [17]) in result.fragments
