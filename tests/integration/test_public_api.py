"""Integration tests through the top-level public API only."""

from __future__ import annotations

import pytest

import repro


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_docstring_example(self):
        doc = repro.parse("<a><b>red apple</b><c><d>green pear</d>"
                          "<e>red pear</e></c></a>")
        result = repro.answer(doc, "red", "pear",
                              predicate=repro.SizeAtMost(3))
        assert sorted(f.label() for f in result.fragments) == \
            ["⟨n2,n3,n4⟩", "⟨n4⟩"]


class TestEndToEndFlow:
    def test_parse_index_query_serialize(self, tmp_path):
        xml = ("<report><intro><par>storage engines</par></intro>"
               "<body><sec><par>columnar storage</par>"
               "<par>row engines</par></sec></body></report>")
        path = tmp_path / "report.xml"
        path.write_text(xml)
        doc = repro.parse_file(path)
        index = repro.InvertedIndex(doc)
        query = repro.Query.of("storage", "engines",
                               predicate=repro.SizeAtMost(4))
        result = repro.evaluate(doc, query, index=index)
        assert result.fragments
        best = result.sorted_fragments()[0]
        xml_out = repro.fragment_to_xml(best)
        assert xml_out.strip().startswith("<")
        outline = repro.fragment_outline(best)
        assert outline

    def test_builder_flow(self):
        builder = repro.DocumentBuilder(name="notes")
        root = builder.add_root("notes")
        first = builder.add_child(root, "note", "database algebra")
        builder.add_child(root, "note", "xml fragments")
        builder.add_keywords(first, ["pinned"])
        doc = builder.build()
        result = repro.answer(doc, "pinned")
        assert len(result.fragments) >= 1

    def test_relational_flow(self, tmp_path):
        doc = repro.parse("<a><b>alpha beta</b><c>alpha</c></a>")
        with repro.RelationalStore(str(tmp_path / "x.db")) as store:
            store.save(doc)
            engine = repro.RelationalQueryEngine(store)
            result = engine.evaluate(
                repro.Query.of("alpha", predicate=repro.SizeAtMost(2)))
            assert result.fragments

    def test_plan_flow(self):
        doc = repro.parse("<a><b>x y</b><c>y z</c></a>")
        query = repro.Query.of("x", "y", predicate=repro.SizeAtMost(3))
        plan = repro.optimize(query)
        rendered = repro.explain(plan)
        assert "fixpoint" in rendered
        result = repro.run_plan(doc, query, plan)
        reference = repro.evaluate(doc, query)
        assert result.fragments == reference.fragments

    def test_error_hierarchy(self):
        assert issubclass(repro.ParseError, repro.ReproError)
        assert issubclass(repro.FragmentError, repro.ReproError)
        assert issubclass(repro.StorageError, repro.ReproError)
        with pytest.raises(repro.ReproError):
            repro.parse("<a><b></a>")
