"""A longer differential campaign as an integration gate.

Beyond the unit tests of the harness itself, this runs a real campaign
— every strategy vs the powerset-semantics oracle on hundreds of
random document/query pairs — as the suite's final line of defence.
"""

from __future__ import annotations

from repro.testing import run_differential_trials


def test_differential_campaign_200_trials():
    report = run_differential_trials(trials=200, seed=2006,
                                     max_nodes=9)
    assert report.passed, report.summary()


def test_differential_campaign_larger_documents():
    report = run_differential_trials(trials=40, seed=1959,
                                     max_nodes=14)
    assert report.passed, report.summary()
