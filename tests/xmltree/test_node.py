"""Unit tests for NodeView."""

from __future__ import annotations

import pytest

from repro.xmltree.node import NodeView


class TestNodeView:
    def test_out_of_range_rejected(self, tiny_doc):
        with pytest.raises(IndexError):
            NodeView(tiny_doc, 99)
        with pytest.raises(IndexError):
            NodeView(tiny_doc, -1)

    def test_basic_properties(self, tiny_doc):
        view = tiny_doc.node(2)
        assert view.id == 2
        assert view.tag == "par"
        assert view.text == "red apple"
        assert view.depth == 2
        assert view.is_leaf
        assert view.document is tiny_doc

    def test_parent_and_children(self, tiny_doc):
        view = tiny_doc.node(1)
        assert view.parent is not None
        assert view.parent.id == 0
        assert tuple(c.id for c in view.children) == (2, 3)
        assert tiny_doc.node(0).parent is None

    def test_keywords(self, tiny_doc):
        assert "apple" in tiny_doc.node(2).keywords

    def test_label(self, tiny_doc):
        assert tiny_doc.node(2).label == "n2:par"

    def test_iter_descendants(self, tiny_doc):
        ids = [v.id for v in tiny_doc.node(1).iter_descendants()]
        assert ids == [2, 3]

    def test_iter_ancestors(self, tiny_doc):
        ids = [v.id for v in tiny_doc.node(5).iter_ancestors()]
        assert ids == [4, 0]

    def test_equality_and_hash(self, tiny_doc):
        a = tiny_doc.node(3)
        b = tiny_doc.node(3)
        c = tiny_doc.node(4)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert len({a, b, c}) == 2

    def test_equality_across_documents(self, tiny_doc, chain_doc):
        assert tiny_doc.node(1) != chain_doc.node(1)

    def test_equality_with_other_types(self, tiny_doc):
        assert tiny_doc.node(1) != 1
        assert (tiny_doc.node(1) == "n1") is False

    def test_repr_truncates_long_text(self, chain_doc):
        text = repr(chain_doc.node(0))
        assert "NodeView" in text
