"""Unit tests for the XML parser."""

from __future__ import annotations

import pytest

from repro.errors import ParseError
from repro.index.tokenizer import Tokenizer
from repro.xmltree.parser import parse, parse_file


class TestParseBasics:
    def test_single_element(self):
        doc = parse("<a>hello world</a>")
        assert doc.size == 1
        assert doc.tag(0) == "a"
        assert doc.text(0) == "hello world"

    def test_nested_structure_preorder(self):
        doc = parse("<a><b><c/></b><d/></a>")
        assert [doc.tag(i) for i in range(4)] == ["a", "b", "c", "d"]
        assert doc.parent(2) == 1
        assert doc.parent(3) == 0

    def test_malformed_raises(self):
        with pytest.raises(ParseError, match="malformed"):
            parse("<a><b></a>")

    def test_name_recorded(self):
        assert parse("<a/>", name="mydoc").name == "mydoc"

    def test_attributes_kept(self):
        doc = parse("<a id='1'><b class='x y'/></a>")
        assert doc.attributes(0) == {"id": "1"}
        assert doc.attributes(1) == {"class": "x y"}

    def test_namespace_stripped(self):
        doc = parse("<x:a xmlns:x='urn:ns'><x:b/></x:a>")
        assert doc.tag(0) == "a"
        assert doc.tag(1) == "b"


class TestDirectText:
    def test_text_belongs_to_element_itself(self):
        doc = parse("<a>outer <b>inner</b> tail</a>")
        # 'outer' and the tail 'tail' belong to <a>; 'inner' to <b>.
        assert "outer" in doc.text(0)
        assert "tail" in doc.text(0)
        assert "inner" not in doc.text(0)
        assert doc.text(1) == "inner"

    def test_whitespace_only_text_ignored(self):
        doc = parse("<a>\n  <b>x</b>\n</a>")
        assert doc.text(0) == ""

    def test_comments_skipped(self):
        doc = parse("<a><!-- note --><b/></a>")
        assert doc.size == 2
        assert doc.tag(1) == "b"


class TestKeywordsFromParse:
    def test_text_and_tag_keywords(self):
        doc = parse("<par>Red Apple</par>")
        assert {"par", "red", "apple"} <= doc.keywords(0)

    def test_attribute_keywords(self):
        doc = parse("<a topic='databases'/>")
        assert "databases" in doc.keywords(0)
        assert "topic" in doc.keywords(0)

    def test_custom_tokenizer_respected(self):
        doc = parse("<a>alpha beta</a>",
                    tokenizer=Tokenizer(stopwords=("beta",)))
        assert "alpha" in doc.keywords(0)
        assert "beta" not in doc.keywords(0)

    def test_keyword_tags_off(self):
        doc = parse("<section>words</section>", keyword_tags=False)
        assert "section" not in doc.keywords(0)


class TestParseFileStreaming:
    def _both(self, tmp_path, xml):
        from repro.xmltree.parser import parse_file_streaming
        path = tmp_path / "doc.xml"
        path.write_text(xml)
        return parse_file(path), parse_file_streaming(path)

    def test_matches_parse_file(self, tmp_path):
        plain, streaming = self._both(
            tmp_path,
            "<a id='1'>head <b>inner</b> tail<c><d>deep</d></c></a>")
        assert streaming.size == plain.size
        for nid in plain.node_ids():
            assert streaming.tag(nid) == plain.tag(nid)
            assert streaming.text(nid) == plain.text(nid)
            assert streaming.parent(nid) == plain.parent(nid)
            assert dict(streaming.attributes(nid)) == \
                dict(plain.attributes(nid))
            assert streaming.keywords(nid) == plain.keywords(nid)

    def test_matches_on_corpora(self, tmp_path):
        from repro.workloads.corpora import BOOK_XML, THESIS_XML
        for xml in (BOOK_XML, THESIS_XML):
            plain, streaming = self._both(tmp_path, xml)
            assert [streaming.text(n) for n in streaming.node_ids()] \
                == [plain.text(n) for n in plain.node_ids()]

    def test_matches_on_generated_document(self, tmp_path):
        from repro.workloads.generator import (DocumentSpec,
                                               generate_document)
        from repro.xmltree.serializer import document_to_xml
        doc = generate_document(DocumentSpec(nodes=300, seed=77))
        plain, streaming = self._both(tmp_path, document_to_xml(doc))
        assert [streaming.text(n) for n in streaming.node_ids()] \
            == [plain.text(n) for n in plain.node_ids()]

    def test_malformed(self, tmp_path):
        from repro.xmltree.parser import parse_file_streaming
        path = tmp_path / "bad.xml"
        path.write_text("<a><b></a>")
        with pytest.raises(ParseError, match="malformed"):
            parse_file_streaming(path)

    def test_missing_file(self, tmp_path):
        from repro.xmltree.parser import parse_file_streaming
        with pytest.raises(ParseError):
            parse_file_streaming(tmp_path / "absent.xml")


class TestParseFile:
    def test_round_trip_via_file(self, tmp_path):
        path = tmp_path / "doc.xml"
        path.write_text("<a><b>content here</b></a>")
        doc = parse_file(path)
        assert doc.size == 2
        assert doc.name == "doc.xml"

    def test_explicit_name(self, tmp_path):
        path = tmp_path / "doc.xml"
        path.write_text("<a/>")
        assert parse_file(path, name="other").name == "other"

    def test_missing_file(self, tmp_path):
        with pytest.raises(ParseError, match="cannot read"):
            parse_file(tmp_path / "absent.xml")

    def test_malformed_file(self, tmp_path):
        path = tmp_path / "bad.xml"
        path.write_text("<a><b></a>")
        with pytest.raises(ParseError, match="malformed"):
            parse_file(path)
