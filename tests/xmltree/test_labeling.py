"""Unit tests for structural tree labelling."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.errors import DocumentError
from repro.xmltree.labeling import compute_labels

from ..treegen import documents


def labels_of(parents, children):
    return compute_labels(parents, children)


class TestComputeLabelsBasic:
    def test_single_node(self):
        labels = labels_of([None], [[]])
        assert labels.depth == [0]
        assert labels.pre == [0]
        assert labels.size == [1]
        assert labels.post == [0]
        assert labels.preorder == [0]

    def test_chain(self):
        # 0 -> 1 -> 2
        labels = labels_of([None, 0, 1], [[1], [2], []])
        assert labels.depth == [0, 1, 2]
        assert labels.pre == [0, 1, 2]
        assert labels.size == [3, 2, 1]
        assert labels.post == [2, 1, 0]

    def test_binary(self):
        # 0 -> 1, 2
        labels = labels_of([None, 0, 0], [[1, 2], [], []])
        assert labels.depth == [0, 1, 1]
        assert labels.size == [3, 1, 1]
        assert labels.pre == [0, 1, 2]
        assert labels.post == [2, 0, 1]

    def test_child_order_respected(self):
        # 0 -> 2 then 1 (document order puts node 2 first)
        labels = labels_of([None, 0, 0], [[2, 1], [], []])
        assert labels.pre == [0, 2, 1]
        assert labels.preorder == [0, 2, 1]

    def test_size_counts_whole_subtree(self):
        # 0 -> 1 -> {2, 3}, 0 -> 4
        labels = labels_of([None, 0, 1, 1, 0], [[1, 4], [2, 3], [], [], []])
        assert labels.size[0] == 5
        assert labels.size[1] == 3
        assert labels.size[4] == 1


class TestComputeLabelsErrors:
    def test_empty_rejected(self):
        with pytest.raises(DocumentError, match="at least one node"):
            labels_of([], [])

    def test_no_root_rejected(self):
        with pytest.raises(DocumentError, match="exactly one root"):
            labels_of([1, 0], [[1], [0]])

    def test_two_roots_rejected(self):
        with pytest.raises(DocumentError, match="exactly one root"):
            labels_of([None, None], [[], []])

    def test_unreachable_node_rejected(self):
        # Node 2 claims parent 1 but 1 never lists it as a child.
        with pytest.raises(DocumentError, match="unreachable"):
            labels_of([None, 0, 1], [[1], [], []])

    def test_shared_child_rejected(self):
        # Node 2 appears as child of both 0 and 1.
        with pytest.raises(DocumentError, match="reached twice"):
            labels_of([None, 0, 0], [[1, 2], [2], []])


class TestIntervalEncoding:
    def test_ancestor_or_self_reflexive(self):
        labels = labels_of([None, 0, 1], [[1], [2], []])
        for node in range(3):
            assert labels.is_ancestor_or_self(node, node)

    def test_proper_ancestor_irreflexive(self):
        labels = labels_of([None, 0, 1], [[1], [2], []])
        for node in range(3):
            assert not labels.is_proper_ancestor(node, node)

    def test_ancestor_chain(self):
        labels = labels_of([None, 0, 1], [[1], [2], []])
        assert labels.is_proper_ancestor(0, 2)
        assert labels.is_proper_ancestor(1, 2)
        assert not labels.is_proper_ancestor(2, 0)

    def test_siblings_not_ancestors(self):
        labels = labels_of([None, 0, 0], [[1, 2], [], []])
        assert not labels.is_ancestor_or_self(1, 2)
        assert not labels.is_ancestor_or_self(2, 1)


class TestLabelProperties:
    @given(documents(max_nodes=20))
    def test_preorder_ids_are_identity(self, doc):
        # Documents normalise ids to preorder ranks.
        assert doc.labels.pre == list(range(doc.size))
        assert doc.labels.preorder == list(range(doc.size))

    @given(documents(max_nodes=20))
    def test_sizes_sum_along_children(self, doc):
        for node in doc.node_ids():
            kids = doc.children(node)
            assert doc.subtree_size(node) == 1 + sum(
                doc.subtree_size(c) for c in kids)

    @given(documents(max_nodes=20))
    def test_interval_matches_parent_walk(self, doc):
        for v in doc.node_ids():
            ancestors = set(doc.ancestors(v)) | {v}
            for u in doc.node_ids():
                assert doc.is_ancestor_or_self(u, v) == (u in ancestors)

    @given(documents(max_nodes=20))
    def test_post_is_a_permutation(self, doc):
        assert sorted(doc.labels.post) == list(range(doc.size))

    @given(documents(max_nodes=20))
    def test_depth_is_parent_depth_plus_one(self, doc):
        for node in doc.node_ids():
            parent = doc.parent(node)
            if parent is None:
                assert doc.depth(node) == 0
            else:
                assert doc.depth(node) == doc.depth(parent) + 1
