"""Round-trip properties: serialize → parse → identical structure."""

from __future__ import annotations

from hypothesis import given, settings

from repro.xmltree.parser import parse
from repro.xmltree.serializer import document_to_xml

from ..treegen import documents


def structural_signature(doc):
    return [(doc.tag(n), doc.parent(n), doc.text(n))
            for n in doc.node_ids()]


class TestDocumentRoundTrip:
    @settings(max_examples=40)
    @given(documents(max_nodes=15))
    def test_structure_survives(self, doc):
        again = parse(document_to_xml(doc))
        assert structural_signature(again) == structural_signature(doc)

    @settings(max_examples=40)
    @given(documents(max_nodes=15))
    def test_compact_mode_equivalent(self, doc):
        pretty = parse(document_to_xml(doc, indent=True))
        compact = parse(document_to_xml(doc, indent=False))
        assert structural_signature(pretty) == \
            structural_signature(compact)

    def test_corpora_round_trip(self, book, thesis, figure1):
        for doc in (book, thesis, figure1):
            again = parse(document_to_xml(doc))
            assert again.size == doc.size
            assert [again.tag(n) for n in again.node_ids()] == \
                [doc.tag(n) for n in doc.node_ids()]

    def test_attributes_round_trip(self, parsed_doc):
        again = parse(document_to_xml(parsed_doc))
        for nid in parsed_doc.node_ids():
            assert dict(again.attributes(nid)) == \
                dict(parsed_doc.attributes(nid))

    def test_planted_keywords_not_serialised(self, tiny_doc):
        # Keywords derive from content; extra planted keywords are a
        # document-model feature and deliberately do not survive
        # serialisation (only content does).
        from repro.xmltree.builder import DocumentBuilder
        b = DocumentBuilder()
        root = b.add_root("a", "visible words")
        b.add_keywords(root, ["planted"])
        doc = b.build()
        again = parse(document_to_xml(doc))
        assert "planted" in doc.keywords(0)
        assert "planted" not in again.keywords(0)
        assert "visible" in again.keywords(0)