"""Unit tests for DocumentBuilder."""

from __future__ import annotations

import pytest

from repro.errors import DocumentError
from repro.index.tokenizer import Tokenizer
from repro.xmltree.builder import DocumentBuilder


class TestBuilderBasics:
    def test_root_then_children(self):
        b = DocumentBuilder()
        root = b.add_root("a")
        b.add_child(root, "b")
        b.add_child(root, "c")
        doc = b.build()
        assert doc.size == 3
        assert doc.children(0) == (1, 2)

    def test_two_roots_rejected(self):
        b = DocumentBuilder()
        b.add_root("a")
        with pytest.raises(DocumentError, match="already has a root"):
            b.add_root("a")

    def test_unknown_parent_rejected(self):
        b = DocumentBuilder()
        b.add_root("a")
        with pytest.raises(DocumentError, match="unknown parent"):
            b.add_child(42, "b")

    def test_empty_build_rejected(self):
        with pytest.raises(DocumentError, match="empty"):
            DocumentBuilder().build()

    def test_node_count_tracks_additions(self):
        b = DocumentBuilder()
        assert b.node_count == 0
        root = b.add_root("a")
        assert b.node_count == 1
        b.add_child(root, "b")
        assert b.node_count == 2


class TestPreorderNormalisation:
    def test_out_of_order_insertion_renumbered(self):
        # Insert a grandchild *after* a second top-level child; builder
        # ids then differ from preorder and must be remapped.
        b = DocumentBuilder()
        root = b.add_root("a")
        first = b.add_child(root, "b")
        second = b.add_child(root, "c")
        grandchild = b.add_child(first, "d")
        doc = b.build()
        mapping = b.last_id_mapping
        assert mapping is not None
        assert mapping[root] == 0
        assert mapping[first] == 1
        assert mapping[grandchild] == 2   # under first in preorder
        assert mapping[second] == 3
        assert doc.tag(2) == "d"
        assert doc.tag(3) == "c"

    def test_mapping_none_before_build(self):
        b = DocumentBuilder()
        b.add_root("a")
        assert b.last_id_mapping is None

    def test_preorder_insertion_is_identity_mapping(self):
        b = DocumentBuilder()
        root = b.add_root("a")
        child = b.add_child(root, "b")
        b.add_child(child, "c")
        b.add_child(root, "d")
        b.build()
        assert b.last_id_mapping == {0: 0, 1: 1, 2: 2, 3: 3}


class TestKeywordDerivation:
    def test_text_tokenized(self):
        b = DocumentBuilder()
        b.add_root("a", "Red APPLES and pears")
        doc = b.build()
        kws = doc.keywords(0)
        assert {"red", "apples", "pears"} <= kws
        assert "and" not in kws  # stopword

    def test_tag_and_attrs_contribute_by_default(self):
        b = DocumentBuilder()
        b.add_root("section", attrs={"label": "intro"})
        doc = b.build()
        assert "section" in doc.keywords(0)
        assert "intro" in doc.keywords(0)
        assert "label" in doc.keywords(0)

    def test_keyword_tags_disabled(self):
        b = DocumentBuilder(keyword_tags=False)
        b.add_root("section", "content words", attrs={"k": "v"})
        doc = b.build()
        assert "section" not in doc.keywords(0)
        assert "v" not in doc.keywords(0)
        assert "content" in doc.keywords(0)

    def test_extra_keywords_added(self):
        b = DocumentBuilder()
        root = b.add_root("a", "plain")
        b.add_keywords(root, ["Planted", "terms"])
        doc = b.build()
        assert "planted" in doc.keywords(0)  # normalised
        assert "terms" in doc.keywords(0)

    def test_custom_tokenizer(self):
        tok = Tokenizer(stopwords=(), min_length=4)
        b = DocumentBuilder(tokenizer=tok)
        b.add_root("ab", "tiny word here and")
        doc = b.build()
        assert "tiny" in doc.keywords(0)
        assert "and" not in doc.keywords(0)   # too short for min_length=4
        assert "ab" not in doc.keywords(0)    # tag too short as well

    def test_attributes_preserved(self):
        b = DocumentBuilder()
        b.add_root("a", attrs={"x": "1", "y": "2"})
        doc = b.build()
        assert doc.attributes(0) == {"x": "1", "y": "2"}
