"""Unit tests for the Document model."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.errors import DocumentError
from repro.xmltree.document import Document

from ..treegen import documents


class TestConstruction:
    def test_arrays_must_align(self):
        with pytest.raises(DocumentError, match="inconsistent lengths"):
            Document(["a"], [""], [None], [[]], [])

    def test_ids_must_be_preorder(self):
        # Node 1 is the root here, so ids are not preorder ranks.
        with pytest.raises(DocumentError, match="preorder"):
            Document(["a", "b"], ["", ""], [1, None], [[], [0]],
                     [frozenset(), frozenset()])

    def test_minimal_document(self):
        doc = Document(["a"], ["x"], [None], [[]], [frozenset(["x"])])
        assert doc.size == 1
        assert doc.root == 0
        assert doc.max_depth == 0


class TestAccessors:
    def test_structure(self, tiny_doc):
        assert tiny_doc.size == 6
        assert len(tiny_doc) == 6
        assert tiny_doc.parent(0) is None
        assert tiny_doc.parent(2) == 1
        assert tiny_doc.children(0) == (1, 4)
        assert tiny_doc.children(1) == (2, 3)
        assert tiny_doc.is_leaf(2)
        assert not tiny_doc.is_leaf(1)

    def test_tags_and_text(self, tiny_doc):
        assert tiny_doc.tag(0) == "article"
        assert tiny_doc.tag(2) == "par"
        assert tiny_doc.text(2) == "red apple"

    def test_keywords_include_text_and_tags(self, tiny_doc):
        assert "red" in tiny_doc.keywords(2)
        assert "apple" in tiny_doc.keywords(2)
        assert "par" in tiny_doc.keywords(2)  # tag names count (paper §2.1)

    def test_depth(self, tiny_doc):
        assert tiny_doc.depth(0) == 0
        assert tiny_doc.depth(1) == 1
        assert tiny_doc.depth(5) == 2
        assert tiny_doc.max_depth == 2

    def test_descendants_are_contiguous(self, tiny_doc):
        assert list(tiny_doc.descendants(1)) == [2, 3]
        assert list(tiny_doc.descendants(0)) == [1, 2, 3, 4, 5]
        assert list(tiny_doc.descendants(5)) == []

    def test_subtree_includes_self(self, tiny_doc):
        assert list(tiny_doc.subtree(4)) == [4, 5]

    def test_ancestors(self, tiny_doc):
        assert list(tiny_doc.ancestors(5)) == [4, 0]
        assert list(tiny_doc.ancestors(0)) == []

    def test_node_ids_and_nodes(self, tiny_doc):
        assert list(tiny_doc.node_ids()) == list(range(6))
        views = list(tiny_doc.nodes())
        assert [v.id for v in views] == list(range(6))

    def test_repr_mentions_name_and_size(self, tiny_doc):
        assert "tiny" in repr(tiny_doc)
        assert "6" in repr(tiny_doc)


class TestLca:
    def test_lca_siblings(self, tiny_doc):
        assert tiny_doc.lca(2, 3) == 1
        assert tiny_doc.lca(2, 5) == 0

    def test_lca_with_ancestor(self, tiny_doc):
        assert tiny_doc.lca(1, 3) == 1
        assert tiny_doc.lca(0, 5) == 0

    def test_lca_self(self, tiny_doc):
        assert tiny_doc.lca(3, 3) == 3

    def test_lca_of_set(self, tiny_doc):
        assert tiny_doc.lca_of([2, 3]) == 1
        assert tiny_doc.lca_of([2, 3, 5]) == 0
        assert tiny_doc.lca_of([4]) == 4

    def test_lca_of_empty_rejected(self, tiny_doc):
        with pytest.raises(ValueError):
            tiny_doc.lca_of([])

    @given(documents(max_nodes=15))
    def test_lca_of_set_equals_fold(self, doc):
        import itertools
        ids = list(doc.node_ids())
        for combo in itertools.combinations(ids[: min(len(ids), 6)], 3):
            folded = doc.lca(doc.lca(combo[0], combo[1]), combo[2])
            assert doc.lca_of(combo) == folded


class TestKeywordAccess:
    def test_nodes_with_keyword(self, tiny_doc):
        assert tiny_doc.nodes_with_keyword("red") == [2, 5]
        assert tiny_doc.nodes_with_keyword("pear") == [3, 5]
        assert tiny_doc.nodes_with_keyword("nothere") == []

    def test_vocabulary_contains_all_words(self, tiny_doc):
        vocab = tiny_doc.vocabulary()
        assert {"red", "apple", "green", "pear"} <= vocab

    @given(documents(max_nodes=12))
    def test_vocabulary_is_union_of_node_keywords(self, doc):
        union = set()
        for nid in doc.node_ids():
            union |= doc.keywords(nid)
        assert doc.vocabulary() == frozenset(union)
