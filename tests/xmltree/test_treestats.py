"""Unit tests for document shape statistics."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.xmltree.treestats import document_stats

from ..treegen import documents


class TestDocumentStats:
    def test_tiny_doc(self, tiny_doc):
        stats = document_stats(tiny_doc)
        assert stats.nodes == 6
        assert stats.leaves == 3
        assert stats.max_depth == 2
        assert stats.max_fanout == 2
        assert dict(stats.tag_histogram)["par"] == 3
        assert dict(stats.depth_histogram) == {0: 1, 1: 2, 2: 3}

    def test_chain(self, chain_doc):
        stats = document_stats(chain_doc)
        assert stats.leaves == 1
        assert stats.max_depth == 4
        assert stats.max_fanout == 1
        assert stats.mean_fanout == 1.0

    def test_single_node(self):
        from repro.xmltree.builder import DocumentBuilder
        b = DocumentBuilder()
        b.add_root("only", "text here")
        stats = document_stats(b.build())
        assert stats.nodes == 1
        assert stats.leaves == 1
        assert stats.max_fanout == 0
        assert stats.mean_fanout == 0.0

    def test_figure1(self, figure1):
        stats = document_stats(figure1)
        assert stats.nodes == 82
        assert stats.max_depth == 4
        assert stats.tag_histogram[0][0] == "par"  # most common tag

    def test_describe_is_readable(self, figure1):
        text = document_stats(figure1).describe()
        assert "nodes=82" in text
        assert "vocabulary=" in text

    @given(documents(max_nodes=15))
    def test_invariants(self, doc):
        stats = document_stats(doc)
        assert stats.nodes == doc.size
        assert 1 <= stats.leaves <= stats.nodes
        assert stats.max_depth == doc.max_depth
        assert sum(count for _, count in stats.tag_histogram) == doc.size
        assert sum(count for _, count in stats.depth_histogram) \
            == doc.size
        assert stats.vocabulary_size == len(doc.vocabulary())
