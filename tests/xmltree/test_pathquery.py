"""Unit tests for the XPath-lite path queries."""

from __future__ import annotations

import pytest

from repro.errors import QueryError
from repro.xmltree.pathquery import parse_steps, select


class TestParseSteps:
    def test_child_chain(self):
        assert parse_steps("a/b/c") == [("child", "a"), ("child", "b"),
                                        ("child", "c")]

    def test_leading_slash(self):
        assert parse_steps("/a/b") == [("child", "a"), ("child", "b")]

    def test_leading_descendant(self):
        assert parse_steps("//par") == [("descendant", "par")]

    def test_inner_descendant(self):
        assert parse_steps("a//par") == [("child", "a"),
                                         ("descendant", "par")]

    def test_wildcard(self):
        assert parse_steps("*/par") == [("child", "*"),
                                        ("child", "par")]

    def test_errors(self):
        for bad in ("", "   ", "/", "//", "a//", "a/", "a///b",
                    "a/b$", "a b"):
            with pytest.raises(QueryError):
                parse_steps(bad)


class TestSelect:
    def test_root_by_tag(self, tiny_doc):
        assert select(tiny_doc, "article") == [0]
        assert select(tiny_doc, "section") == []

    def test_child_steps(self, tiny_doc):
        assert select(tiny_doc, "article/section") == [1, 4]
        assert select(tiny_doc, "article/section/par") == [2, 3, 5]

    def test_descendant_steps(self, tiny_doc):
        assert select(tiny_doc, "//par") == [2, 3, 5]
        assert select(tiny_doc, "//section") == [1, 4]

    def test_inner_descendant(self, figure1):
        pars_under_first_section = select(figure1,
                                          "article/section//par")
        assert 17 in pars_under_first_section
        assert 81 in pars_under_first_section

    def test_wildcard_step(self, tiny_doc):
        assert select(tiny_doc, "article/*") == [1, 4]
        assert select(tiny_doc, "*/*/par") == [2, 3, 5]

    def test_no_match(self, tiny_doc):
        assert select(tiny_doc, "article/chapter/par") == []
        assert select(tiny_doc, "//chapter") == []

    def test_document_order(self, figure1):
        result = select(figure1, "//subsection")
        assert result == sorted(result)

    def test_figure1_structure(self, figure1):
        assert select(figure1, "article/section") == [1, 19, 49, 79]
        assert select(
            figure1,
            "article/section/subsection/subsubsection/par") \
            == [8, 9, 11, 12, 13, 17, 18]

    def test_select_feeds_fragments(self, figure1):
        from repro.core.fragment import Fragment
        pars = select(figure1, "//subsubsection/par")
        fragment = Fragment(figure1, [16, 17, 18])
        assert {17, 18} <= set(pars)
        assert fragment.nodes & set(pars) == {17, 18}
