"""Unit tests for document/fragment serialisation."""

from __future__ import annotations

import xml.etree.ElementTree as ET

from hypothesis import given

from repro.core.fragment import Fragment
from repro.xmltree.parser import parse
from repro.xmltree.serializer import (document_to_xml, fragment_outline,
                                      fragment_to_xml)

from ..treegen import documents


class TestDocumentToXml:
    def test_round_trip_structure(self, parsed_doc):
        text = document_to_xml(parsed_doc)
        again = parse(text)
        assert again.size == parsed_doc.size
        assert [again.tag(i) for i in again.node_ids()] == \
            [parsed_doc.tag(i) for i in parsed_doc.node_ids()]

    def test_attributes_survive(self, parsed_doc):
        text = document_to_xml(parsed_doc)
        assert 'id="d1"' in text

    def test_escaping(self):
        doc = parse("<a note='x&amp;y'>a &lt; b</a>")
        text = document_to_xml(doc)
        parsed = ET.fromstring(text)
        assert parsed.attrib["note"] == "x&y"
        assert "a < b" in parsed.text

    def test_compact_mode(self, parsed_doc):
        text = document_to_xml(parsed_doc, indent=False)
        assert "\n" not in text

    def test_empty_element_self_closes(self):
        doc = parse("<a><b/></a>")
        assert "<b/>" in document_to_xml(doc)


class TestFragmentToXml:
    def test_fragment_rooted_at_its_root(self, tiny_doc):
        frag = Fragment(tiny_doc, [1, 2, 3])
        text = fragment_to_xml(frag)
        element = ET.fromstring(text)
        assert element.tag == "section"
        assert len(list(element)) == 2

    def test_members_only(self, tiny_doc):
        frag = Fragment(tiny_doc, [0, 1, 2])  # excludes 3, 4, 5
        element = ET.fromstring(fragment_to_xml(frag))
        pars = element.findall(".//par")
        assert len(pars) == 1
        assert pars[0].text == "red apple"

    def test_single_node_fragment(self, tiny_doc):
        frag = Fragment(tiny_doc, [5])
        element = ET.fromstring(fragment_to_xml(frag))
        assert element.tag == "par"
        assert element.text == "red pear"

    @given(documents(max_nodes=8))
    def test_fragment_xml_always_well_formed(self, doc):
        frag = Fragment.whole_document(doc)
        ET.fromstring(fragment_to_xml(frag))  # must not raise


class TestFragmentOutline:
    def test_outline_lists_nodes_in_order(self, tiny_doc):
        frag = Fragment(tiny_doc, [1, 2, 3])
        outline = fragment_outline(frag)
        lines = outline.splitlines()
        assert lines[0].startswith("n1:section")
        assert lines[1].strip().startswith("n2:par")
        assert lines[2].strip().startswith("n3:par")

    def test_outline_indents_by_relative_depth(self, tiny_doc):
        frag = Fragment(tiny_doc, [1, 2])
        lines = fragment_outline(frag).splitlines()
        assert not lines[0].startswith(" ")
        assert lines[1].startswith("  ")

    def test_outline_truncates_long_text(self, figure1):
        frag = Fragment(figure1, [17])
        outline = fragment_outline(frag)
        assert "..." in outline
