"""Unit and property tests for tree navigation helpers."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.xmltree.navigation import (fragment_leaves, fragment_root,
                                      is_connected, path_to_ancestor,
                                      spanning_nodes)

from ..treegen import documents


class TestPathToAncestor:
    def test_path_to_self(self, tiny_doc):
        assert path_to_ancestor(tiny_doc, 3, 3) == [3]

    def test_path_to_root(self, tiny_doc):
        assert path_to_ancestor(tiny_doc, 5, 0) == [5, 4, 0]

    def test_non_ancestor_rejected(self, tiny_doc):
        with pytest.raises(ValueError, match="not an ancestor"):
            path_to_ancestor(tiny_doc, 5, 1)


class TestSpanningNodes:
    def test_single_node(self, tiny_doc):
        assert spanning_nodes(tiny_doc, [3]) == frozenset([3])

    def test_parent_child(self, tiny_doc):
        assert spanning_nodes(tiny_doc, [1, 2]) == frozenset([1, 2])

    def test_parent_child_given_parent_only_climb(self, figure1):
        # Regression: must not climb past the LCA when the LCA itself is
        # one of the input nodes (n16 is n17's parent).
        assert spanning_nodes(figure1, [16, 17]) == frozenset([16, 17])

    def test_siblings_add_parent(self, tiny_doc):
        assert spanning_nodes(tiny_doc, [2, 3]) == frozenset([1, 2, 3])

    def test_cousins_add_whole_path(self, tiny_doc):
        assert spanning_nodes(tiny_doc, [2, 5]) == frozenset([0, 1, 2, 4, 5])

    def test_empty_rejected(self, tiny_doc):
        with pytest.raises(ValueError):
            spanning_nodes(tiny_doc, [])

    @given(documents(max_nodes=12),
           st.sets(st.integers(min_value=0, max_value=11), min_size=1))
    def test_result_connected_and_minimal(self, doc, raw_ids):
        ids = {i % doc.size for i in raw_ids}
        result = spanning_nodes(doc, ids)
        assert ids <= result
        assert is_connected(doc, result)
        # Minimality: removing any node not in the input disconnects the
        # set or removes coverage.
        for node in result - ids:
            assert not is_connected(doc, result - {node})


class TestIsConnected:
    def test_empty_not_connected(self, tiny_doc):
        assert not is_connected(tiny_doc, [])

    def test_single_node_connected(self, tiny_doc):
        assert is_connected(tiny_doc, [4])

    def test_parent_child_connected(self, tiny_doc):
        assert is_connected(tiny_doc, [0, 1])

    def test_gap_disconnected(self, tiny_doc):
        assert not is_connected(tiny_doc, [0, 2])  # missing node 1

    def test_two_branches_disconnected(self, tiny_doc):
        assert not is_connected(tiny_doc, [2, 5])

    def test_whole_document_connected(self, tiny_doc):
        assert is_connected(tiny_doc, range(tiny_doc.size))


class TestFragmentRootAndLeaves:
    def test_root_is_min_id(self, tiny_doc):
        assert fragment_root(tiny_doc, [1, 2, 3]) == 1

    def test_leaves_of_chain(self, chain_doc):
        assert fragment_leaves(chain_doc, frozenset([0, 1, 2])) == \
            frozenset([2])

    def test_leaves_of_bushy_fragment(self, tiny_doc):
        assert fragment_leaves(tiny_doc, frozenset([0, 1, 2, 3, 4])) == \
            frozenset([2, 3, 4])

    def test_single_node_is_its_own_leaf(self, tiny_doc):
        assert fragment_leaves(tiny_doc, frozenset([1])) == frozenset([1])

    def test_leaf_has_no_member_children(self, tiny_doc):
        # Node 1 has children 2,3 in the document but none in the set.
        assert fragment_leaves(tiny_doc, frozenset([0, 1])) == \
            frozenset([1])
