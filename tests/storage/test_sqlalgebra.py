"""Tests for algebra operations evaluated entirely in SQL."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.algebra import pairwise_join
from repro.core.filters import SizeAtMost, select
from repro.core.query import keyword_fragments
from repro.errors import StorageError
from repro.storage.relational import RelationalStore
from repro.storage.sqlalgebra import SqlAlgebra

from ..treegen import documents


@pytest.fixture()
def algebra(figure1):
    with RelationalStore() as store:
        store.save(figure1)
        yield SqlAlgebra(store)


def in_memory_reference(doc, term1, term2, max_size=None):
    F1 = keyword_fragments(doc, term1)
    F2 = keyword_fragments(doc, term2)
    joined = pairwise_join(F1, F2)
    if max_size is not None:
        joined = select(SizeAtMost(max_size), joined)
    return frozenset(f.nodes for f in joined)


class TestFilteredPairwiseJoinSql:
    def test_figure1_filtered(self, figure1, algebra):
        sql = algebra.filtered_pairwise_join("xquery", "optimization",
                                             max_size=3)
        assert sql == in_memory_reference(figure1, "xquery",
                                          "optimization", max_size=3)

    def test_figure1_unfiltered(self, figure1, algebra):
        sql = algebra.filtered_pairwise_join("xquery", "optimization")
        assert sql == in_memory_reference(figure1, "xquery",
                                          "optimization")

    def test_filter_pushed_into_sql(self, algebra):
        # β = 1 keeps only the single node carrying both terms.
        sql = algebra.filtered_pairwise_join("xquery", "optimization",
                                             max_size=1)
        assert sql == frozenset({frozenset([17])})

    def test_casefolded_terms(self, algebra):
        assert algebra.filtered_pairwise_join("XQUERY", "Optimization",
                                              max_size=3) \
            == algebra.filtered_pairwise_join("xquery", "optimization",
                                              max_size=3)

    def test_missing_term_empty(self, algebra):
        assert algebra.filtered_pairwise_join("zebra",
                                              "optimization") \
            == frozenset()

    def test_count_helper(self, algebra):
        assert algebra.filtered_pairwise_join_count(
            "xquery", "optimization", max_size=3) == 4

    def test_empty_store_rejected(self):
        with RelationalStore() as empty:
            with pytest.raises(StorageError):
                SqlAlgebra(empty).filtered_pairwise_join("a", "b")

    @settings(max_examples=25, deadline=None)
    @given(documents(min_nodes=2, max_nodes=12))
    def test_matches_in_memory_random(self, doc):
        with RelationalStore() as store:
            store.save(doc)
            algebra = SqlAlgebra(store)
            for max_size in (None, 3):
                sql = algebra.filtered_pairwise_join(
                    "alpha", "beta", max_size=max_size)
                assert sql == in_memory_reference(
                    doc, "alpha", "beta", max_size=max_size)
