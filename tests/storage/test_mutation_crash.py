"""Kill-point matrix: crash the commit protocol at every fsync/rename
boundary and prove recovery lands on exactly the old or the new epoch.

The commit protocol is WAL fsync → manifest publish (tmp + fsync +
rename + dir-fsync) → ``CURRENT`` flip (same dance).  The ``CURRENT``
rename is the linearisation point: a crash anywhere before it must
recover to the *old* epoch with the write rolled back; a crash there
or later must recover to the *new* epoch with the write visible.
There is no third outcome — no torn epoch, no partially visible
document, and ``fsck --repair`` leaves every crashed directory
healthy.

Each case arms a :class:`~repro.exec.faults.CrashPlan` at one of the
20 points (10 commit points, each with a ``before-`` variant), drives
an ``add`` into the injected :class:`CommitCrash`, abandons the
crashed writer exactly as a power cut would, reopens un-faulted and
checks the invariant.  Torn variants write only a prefix of the
record/manifest/pointer bytes before crashing.
"""

from __future__ import annotations

import pytest

from repro.errors import WALError
from repro.exec.faults import COMMIT_POINTS, CommitCrash, CrashPlan
from repro.storage.mutation import MutableIndex, fsck
from repro.workloads.inexlike import InexSpec, generate_collection

#: Crash points at or after the CURRENT rename: the flip hit the disk,
#: so recovery must surface the NEW epoch.  Everything earlier must
#: roll back to the OLD one.
NEW_EPOCH_POINTS = frozenset({
    "current-rename", "before-current-dir-fsync", "current-dir-fsync",
})

ALL_POINTS = [p for point in COMMIT_POINTS
              for p in (f"before-{point}", point)]


@pytest.fixture(scope="module")
def corpus():
    collection = generate_collection(InexSpec(articles=4, seed=31))
    return {name: collection.document(name)
            for name in collection.names()}


@pytest.fixture()
def crashed_dir(corpus, tmp_path):
    """A committed two-document index directory, created un-faulted."""
    names = sorted(corpus)
    MutableIndex.create(tmp_path / "idx",
                        {n: corpus[n] for n in names[:2]},
                        shards=2).close()
    return tmp_path / "idx"


def crash_one_add(path, corpus, plan):
    """Open ``path`` under ``plan``, add a document into the crash.

    Returns the epoch the directory was at before the doomed write.
    The writer handle is abandoned (only its file descriptors are
    released) exactly as a power cut would leave it.
    """
    names = sorted(corpus)
    index = MutableIndex.open(path, faults=plan)
    old_epoch = index.epoch
    with pytest.raises(CommitCrash) as excinfo:
        index.add(corpus[names[2]], "incoming")
    assert excinfo.value.point == plan.point
    assert plan.fired == 1
    index.close()
    plan.disarm()
    return old_epoch


def assert_recovers_atomically(path, corpus, old_epoch, expect_new):
    """The core invariant: exactly old or exactly new, never partial."""
    names = sorted(corpus)
    recovered = MutableIndex.open(path)
    try:
        if expect_new:
            assert recovered.epoch == old_epoch + 1
            assert "incoming" in recovered
            doc = recovered.snapshot()
            try:
                restored = doc.document("incoming")
                expected = corpus[names[2]]
                assert restored.size == expected.size
                assert [restored.tag(n) for n in range(restored.size)] \
                    == [expected.tag(n) for n in range(expected.size)]
            finally:
                doc.close()
        else:
            assert recovered.epoch == old_epoch
            assert "incoming" not in recovered
        assert set(recovered.names()) >= set(names[:2])
        # The recovered writer must be fully writable again.
        recovered.add(corpus[names[3]], "post-crash")
        assert "post-crash" in recovered
    finally:
        recovered.close()
    report = fsck(path, repair=True)
    assert report["healthy"], report["issues"]
    assert fsck(path)["healthy"]


@pytest.mark.timeout(120)
@pytest.mark.parametrize("point", ALL_POINTS)
def test_crash_at_every_commit_point(corpus, crashed_dir, point):
    plan = CrashPlan(point)
    old_epoch = crash_one_add(crashed_dir, corpus, plan)
    assert_recovers_atomically(crashed_dir, corpus, old_epoch,
                               expect_new=point in NEW_EPOCH_POINTS)


@pytest.mark.timeout(120)
@pytest.mark.parametrize("point,torn_bytes", [
    ("wal-write", 0), ("wal-write", 7),
    ("manifest-write", 0), ("manifest-write", 5),
    ("current-write", 0), ("current-write", 3),
])
def test_torn_write_rolls_back(corpus, crashed_dir, point, torn_bytes):
    plan = CrashPlan(point, torn_bytes=torn_bytes)
    old_epoch = crash_one_add(crashed_dir, corpus, plan)
    if point == "wal-write" and torn_bytes:
        # The torn tail is physically on disk until recovery cuts it.
        scratch = MutableIndex.open(crashed_dir)
        assert scratch.recovery["wal_bytes_discarded"] == torn_bytes
        assert scratch.recovery["wal_torn"]
        scratch.close()
    assert_recovers_atomically(crashed_dir, corpus, old_epoch,
                               expect_new=False)


@pytest.mark.timeout(120)
def test_double_crash_then_recover(corpus, crashed_dir):
    """Crash twice at different points; recovery still converges."""
    old = crash_one_add(crashed_dir, corpus,
                        CrashPlan("manifest-rename"))
    assert MutableIndex.open(crashed_dir).epoch == old
    again = crash_one_add(crashed_dir, corpus,
                          CrashPlan("before-current-rename"))
    assert again == old
    assert_recovers_atomically(crashed_dir, corpus, old,
                               expect_new=False)


@pytest.mark.timeout(120)
def test_crash_then_new_epoch_is_exact(corpus, crashed_dir):
    """A crash that lands the flip leaves no leftover WAL excess."""
    old = crash_one_add(crashed_dir, corpus,
                        CrashPlan("current-dir-fsync"))
    recovered = MutableIndex.open(crashed_dir)
    try:
        assert recovered.epoch == old + 1
        assert recovered.pending_records == 0
        assert recovered.recovery["wal_records_replayed"] == 1
        assert recovered.recovery["wal_bytes_discarded"] == 0
    finally:
        recovered.close()


def test_crash_plan_rejects_unknown_points():
    with pytest.raises(ValueError):
        CrashPlan("current-flip")
    with pytest.raises(ValueError):
        CrashPlan("before-nothing")


def test_unfaulted_open_has_no_crash_surface(corpus, crashed_dir):
    """A disarmed plan never fires — the same path runs clean."""
    plan = CrashPlan("current-rename")
    plan.disarm()
    index = MutableIndex.open(crashed_dir, faults=plan)
    try:
        index.add(corpus[sorted(corpus)[2]], "incoming")
        assert plan.fired == 0
        assert "incoming" in index
    finally:
        index.close()
