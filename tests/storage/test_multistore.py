"""Unit tests for the multi-document relational store."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.collection.collection import DocumentCollection
from repro.errors import StorageError
from repro.storage.multistore import CollectionStore
from repro.workloads.corpora import BOOK_XML, THESIS_XML
from repro.xmltree.parser import parse

from ..treegen import documents


@pytest.fixture()
def store(figure1):
    with CollectionStore() as s:
        s.add(parse(BOOK_XML, name="book"))
        s.add(parse(THESIS_XML, name="thesis"))
        s.add(figure1)
        yield s


class TestWriting:
    def test_names_and_len(self, store):
        assert store.names() == ["book", "thesis", "figure1"]
        assert len(store) == 3

    def test_duplicate_name_rejected(self, store, figure1):
        with pytest.raises(StorageError, match="already"):
            store.add(figure1)

    def test_custom_name(self, figure1):
        with CollectionStore() as s:
            s.add(figure1, name="other")
            assert s.names() == ["other"]

    def test_add_collection(self, figure1):
        collection = DocumentCollection()
        collection.add_xml(BOOK_XML, name="book")
        collection.add(figure1)
        with CollectionStore() as s:
            ids = s.add_collection(collection)
            assert len(ids) == 2
            assert s.names() == ["book", "figure1"]


class TestReading:
    def test_load_round_trip(self, store, figure1):
        loaded = store.load("figure1")
        assert loaded.size == figure1.size
        for nid in figure1.node_ids():
            assert loaded.parent(nid) == figure1.parent(nid)
            assert loaded.tag(nid) == figure1.tag(nid)
            assert loaded.keywords(nid) == figure1.keywords(nid)

    def test_load_unknown(self, store):
        with pytest.raises(StorageError, match="no document"):
            store.load("missing")

    def test_doc_id_lookup(self, store):
        assert store.doc_id("book") != store.doc_id("thesis")
        with pytest.raises(StorageError):
            store.doc_id("missing")

    def test_load_collection(self, store):
        collection = store.load_collection()
        assert collection.names() == ["book", "thesis", "figure1"]
        assert collection.document("figure1").size == 82

    def test_persistent_file(self, figure1, tmp_path):
        path = str(tmp_path / "coll.db")
        with CollectionStore(path) as s:
            s.add(figure1)
        with CollectionStore(path) as again:
            assert again.names() == ["figure1"]

    @settings(max_examples=15, deadline=None)
    @given(documents(max_nodes=10))
    def test_round_trip_random(self, doc):
        with CollectionStore() as s:
            s.add(doc, name="random")
            loaded = s.load("random")
            for nid in doc.node_ids():
                assert loaded.keywords(nid) == doc.keywords(nid)


class TestCollectionWideSql:
    def test_keyword_nodes_across_documents(self, store):
        hits = store.keyword_nodes("fragment")
        names = {name for name, _ in hits}
        assert "book" in names

    def test_keyword_nodes_single_document(self, store):
        hits = store.keyword_nodes("xquery", name="figure1")
        assert hits == [("figure1", 17), ("figure1", 18)]
        assert store.keyword_nodes("xquery", name="book") == []

    def test_document_frequency(self, store):
        assert store.document_frequency("xquery") == 1
        assert store.document_frequency("fragment") >= 1
        assert store.document_frequency("zebra") == 0

    def test_casefolded(self, store):
        assert store.keyword_nodes("XQUERY", name="figure1") == \
            store.keyword_nodes("xquery", name="figure1")
