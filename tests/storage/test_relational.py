"""Unit tests for the sqlite3 relational store."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.errors import StorageError
from repro.storage.relational import RelationalStore
from repro.xmltree.navigation import spanning_nodes

from ..treegen import documents


@pytest.fixture()
def store(tiny_doc):
    with RelationalStore() as s:
        s.save(tiny_doc)
        yield s


class TestSaveLoad:
    def test_round_trip_structure(self, tiny_doc, store):
        loaded = store.load()
        assert loaded.size == tiny_doc.size
        assert loaded.name == tiny_doc.name
        for nid in tiny_doc.node_ids():
            assert loaded.tag(nid) == tiny_doc.tag(nid)
            assert loaded.text(nid) == tiny_doc.text(nid)
            assert loaded.parent(nid) == tiny_doc.parent(nid)
            assert loaded.children(nid) == tiny_doc.children(nid)

    def test_round_trip_keywords(self, tiny_doc, store):
        loaded = store.load()
        for nid in tiny_doc.node_ids():
            assert loaded.keywords(nid) == tiny_doc.keywords(nid)

    def test_load_without_save(self):
        with RelationalStore() as empty:
            with pytest.raises(StorageError, match="no document"):
                empty.load()

    def test_save_replaces_previous(self, tiny_doc, chain_doc):
        with RelationalStore() as s:
            s.save(tiny_doc)
            s.save(chain_doc)
            assert s.load().name == "chain"
            assert s.node_count == chain_doc.size

    def test_persistent_file(self, tiny_doc, tmp_path):
        path = str(tmp_path / "doc.db")
        with RelationalStore(path) as s:
            s.save(tiny_doc)
        with RelationalStore(path) as again:
            assert again.load().size == tiny_doc.size

    @settings(max_examples=25, deadline=None)
    @given(documents(max_nodes=10))
    def test_round_trip_random(self, doc):
        with RelationalStore() as s:
            s.save(doc)
            loaded = s.load()
            for nid in doc.node_ids():
                assert loaded.parent(nid) == doc.parent(nid)
                assert loaded.keywords(nid) == doc.keywords(nid)


class TestSqlPrimitives:
    def test_keyword_nodes(self, tiny_doc, store):
        assert store.keyword_nodes("red") == [2, 5]
        assert store.keyword_nodes("RED") == [2, 5]  # casefolded
        assert store.keyword_nodes("zebra") == []

    def test_node_count(self, tiny_doc, store):
        assert store.node_count == tiny_doc.size

    def test_descendants_sql(self, tiny_doc, store):
        assert store.descendants_sql(1) == [2, 3]
        assert store.descendants_sql(0) == [1, 2, 3, 4, 5]
        assert store.descendants_sql(5) == []

    def test_root_path_sql(self, tiny_doc, store):
        assert store.root_path_sql(5) == [5, 4, 0]
        assert store.root_path_sql(0) == [0]

    def test_root_path_unknown_node(self, store):
        with pytest.raises(StorageError, match="not stored"):
            store.root_path_sql(999)

    def test_spanning_nodes_sql_matches_in_memory(self, tiny_doc, store):
        for nodes in ([2, 5], [2, 3], [1, 2, 5], [4]):
            assert store.spanning_nodes_sql(nodes) == \
                spanning_nodes(tiny_doc, nodes)

    def test_spanning_nodes_sql_empty(self, store):
        with pytest.raises(StorageError, match="at least one"):
            store.spanning_nodes_sql([])

    @settings(max_examples=20, deadline=None)
    @given(documents(max_nodes=10))
    def test_spanning_sql_random(self, doc):
        import itertools
        with RelationalStore() as s:
            s.save(doc)
            ids = list(doc.node_ids())
            for combo in itertools.combinations(
                    ids[: min(len(ids), 5)], 2):
                assert s.spanning_nodes_sql(combo) == \
                    spanning_nodes(doc, combo)


def _attr_doc():
    """Attributes with non-sorted key order, unicode and empty nodes."""
    from repro.xmltree.builder import DocumentBuilder

    b = DocumentBuilder(name="attrs")
    root = b.add_root("article", "",
                      attrs={"zeta": "1", "alpha": "2", "id": "a-1"})
    sec = b.add_child(root, "section", "naïve café — résumé ☃",
                      attrs={"lang": "français", "序": "一"})
    b.add_child(sec, "par", "")          # empty element, no attrs
    b.add_child(root, "empty", "", attrs={})
    return b.build()


class TestRoundTripGaps:
    """Attribute ordering, unicode text and empty elements survive a
    save/load cycle node-for-node (the shard writer reuses these
    invariants, so sqlite and shard loads must agree)."""

    def test_attrs_round_trip_preserves_order(self):
        doc = _attr_doc()
        with RelationalStore() as s:
            s.save(doc)
            loaded = s.load()
        for nid in doc.node_ids():
            got = loaded.attributes(nid)
            want = doc.attributes(nid)
            assert dict(got) == dict(want)
            assert list(got.items()) == list(want.items())

    def test_unicode_and_empty_text(self):
        doc = _attr_doc()
        with RelationalStore() as s:
            s.save(doc)
            loaded = s.load()
        for nid in doc.node_ids():
            assert loaded.text(nid) == doc.text(nid)
            assert loaded.tag(nid) == doc.tag(nid)

    def test_v1_database_without_attrs_column_loads(self, tmp_path):
        # A pre-attrs (schema v1) database must still load, with every
        # node reporting empty attributes.
        import sqlite3

        doc = _attr_doc()
        path = tmp_path / "v1.db"
        with RelationalStore(str(path)) as s:
            s.save(doc)
        with sqlite3.connect(path) as conn:
            cols = ", ".join(
                ("id", "parent", "depth", "size", "post", "tag",
                 "text"))
            conn.executescript(f"""
                CREATE TABLE nodes_v1 AS SELECT {cols} FROM nodes;
                DROP TABLE nodes;
                ALTER TABLE nodes_v1 RENAME TO nodes;
            """)
        with RelationalStore(str(path)) as s:
            loaded = s.load()
        for nid in doc.node_ids():
            assert dict(loaded.attributes(nid)) == {}
            assert loaded.text(nid) == doc.text(nid)

    def test_multistore_attrs_round_trip(self):
        from repro.storage.multistore import CollectionStore

        doc = _attr_doc()
        with CollectionStore() as store:
            store.add(doc)
            loaded = store.load("attrs")
        for nid in doc.node_ids():
            assert list(loaded.attributes(nid).items()) == \
                list(doc.attributes(nid).items())

    def test_shard_and_sqlite_loads_agree(self, tmp_path):
        # The acceptance bar: the same document loaded from sqlite and
        # from the shard index agrees node-for-node.
        from repro.storage.shards import ShardIndex, build_index

        doc = _attr_doc()
        with RelationalStore() as s:
            s.save(doc)
            from_sql = s.load()
        out = tmp_path / "idx"
        build_index({doc.name: doc}, str(out), shards=1)
        with ShardIndex.attach(str(out)) as index:
            from_shard = index.document(doc.name)
            for nid in doc.node_ids():
                assert from_shard.tag(nid) == from_sql.tag(nid)
                assert from_shard.text(nid) == from_sql.text(nid)
                assert from_shard.parent(nid) == from_sql.parent(nid)
                assert list(from_shard.attributes(nid).items()) == \
                    list(from_sql.attributes(nid).items())
                assert from_shard.keywords(nid) == from_sql.keywords(nid)
