"""Unit tests for the relational query engine."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.filters import SizeAtMost
from repro.core.fragment import Fragment
from repro.core.query import Query
from repro.core.strategies import Strategy, evaluate
from repro.storage.engine import RelationalQueryEngine
from repro.storage.relational import RelationalStore

from ..treegen import documents


@pytest.fixture()
def engine(figure1):
    with RelationalStore() as store:
        store.save(figure1)
        yield RelationalQueryEngine(store)


class TestRelationalEngine:
    def test_keyword_fragments_via_sql(self, engine):
        frags = engine.keyword_fragments("optimization")
        assert {f.root for f in frags} == {16, 17, 81}

    def test_document_cached(self, engine):
        assert engine.document is engine.document

    def test_table1_answers(self, engine):
        query = Query.of("xquery", "optimization",
                         predicate=SizeAtMost(3))
        result = engine.evaluate(query)
        assert {f.nodes for f in result.fragments} == {
            frozenset([16, 17, 18]), frozenset([16, 17]),
            frozenset([16, 18]), frozenset([17])}

    def test_strategy_recorded(self, engine):
        query = Query.of("xquery", predicate=SizeAtMost(2))
        result = engine.evaluate(query, strategy=Strategy.SET_REDUCTION)
        assert result.strategy == "relational/set-reduction"

    @pytest.mark.parametrize("strategy", list(Strategy),
                             ids=lambda s: s.value)
    def test_matches_in_memory_evaluation(self, figure1, engine,
                                          strategy):
        query = Query.of("xquery", "optimization",
                         predicate=SizeAtMost(3))
        relational = engine.evaluate(query, strategy=strategy)
        in_memory = evaluate(figure1, query, strategy=strategy)
        assert {f.nodes for f in relational.fragments} == \
            {f.nodes for f in in_memory.fragments}

    @settings(max_examples=20, deadline=None)
    @given(documents(min_nodes=3, max_nodes=9))
    def test_matches_in_memory_random(self, doc):
        query = Query.of("alpha", "beta", predicate=SizeAtMost(3))
        with RelationalStore() as store:
            store.save(doc)
            engine = RelationalQueryEngine(store)
            relational = engine.evaluate(query)
        in_memory = evaluate(doc, query)
        assert {f.nodes for f in relational.fragments} == \
            {f.nodes for f in in_memory.fragments}
