"""Crash-safe mutable index: WAL, epochs, snapshots, fsck, lifecycle.

Covers the storage half of the live-mutation stack:

* WAL record round trips, the torn-tail-aware scanner, and checksum
  rejection of flipped bytes;
* the add/remove/commit/compact lifecycle — visibility, upserts,
  tombstones, reopen-after-close recovery;
* epoch pinning: snapshots keep serving their epoch across commits
  and compactions, GC only reclaims unpinned state;
* worker-path parity: ``attach_snapshot`` serves bytes identical to
  the in-process snapshot;
* ``fsck`` verify/repair on healthy, torn and orphaned directories;
* deterministic handle release: ``ShardIndex.close`` and
  ``Snapshot.close`` are idempotent and leak no mmaps under
  ``-W error``.
"""

from __future__ import annotations

import gc
import os
import warnings

import pytest

from repro.errors import WALError
from repro.storage.mutation import (OP_ADD, OP_REMOVE, MutableIndex,
                                    attach_snapshot, fsck, read_current,
                                    read_records)
from repro.storage.mutation.wal import encode_record
from repro.storage.shards import ShardIndex, build_index
from repro.storage.shards.writer import encode_document
from repro.workloads.inexlike import InexSpec, generate_collection


@pytest.fixture(scope="module")
def corpus():
    collection = generate_collection(InexSpec(articles=8, seed=23))
    return {name: collection.document(name)
            for name in collection.names()}


@pytest.fixture()
def mutable(corpus, tmp_path):
    """A live mutable index: 5 base documents, 2 delta, 1 removed."""
    names = sorted(corpus)
    index = MutableIndex.create(tmp_path / "idx",
                                {n: corpus[n] for n in names[:5]},
                                shards=3)
    for name in names[5:7]:
        index.add(corpus[name], name)
    index.remove(names[0])
    yield index
    index.close()


def assert_same_document(expected, actual):
    assert actual.size == expected.size
    for node in range(expected.size):
        assert actual.tag(node) == expected.tag(node)
        assert actual.text(node) == expected.text(node)
        assert actual.parent(node) == expected.parent(node)
        assert (sorted(actual.keywords(node))
                == sorted(expected.keywords(node)))


class TestWAL:
    def test_record_round_trip(self, corpus, tmp_path):
        name = sorted(corpus)[0]
        sections = encode_document(corpus[name])
        path = tmp_path / "w.log"
        with open(path, "wb") as fh:
            fh.write(encode_record(1, OP_ADD, name, sections))
            fh.write(encode_record(2, OP_REMOVE, name, None))
        scan = read_records(path)
        assert not scan["torn"]
        assert [(r[0], r[1], r[2]) for r in scan["records"]] == [
            (1, OP_ADD, name), (2, OP_REMOVE, name)]
        assert scan["records"][0][3] == sections
        assert scan["records"][1][3] is None
        assert scan["good_bytes"] == scan["file_bytes"]

    def test_torn_tail_stops_scan(self, tmp_path):
        path = tmp_path / "w.log"
        good = encode_record(1, OP_REMOVE, "a", None)
        with open(path, "wb") as fh:
            fh.write(good)
            fh.write(encode_record(2, OP_REMOVE, "b", None)[:-3])
        scan = read_records(path)
        assert scan["torn"]
        assert scan["torn_reason"] == "truncated-body"
        assert len(scan["records"]) == 1
        assert scan["good_bytes"] == len(good)

    def test_checksum_flip_rejected(self, tmp_path):
        path = tmp_path / "w.log"
        record = bytearray(encode_record(1, OP_REMOVE, "a", None))
        record[-1] ^= 0xFF
        path.write_bytes(bytes(record))
        scan = read_records(path)
        assert scan["torn"] and scan["torn_reason"] == "checksum"
        assert scan["records"] == []


class TestLifecycle:
    def test_visibility(self, corpus, mutable):
        names = sorted(corpus)
        visible = set(names[1:7])
        assert set(mutable.names()) == visible
        assert len(mutable) == len(visible)
        assert names[0] not in mutable
        assert names[5] in mutable

    def test_snapshot_serves_base_and_delta(self, corpus, mutable):
        names = sorted(corpus)
        snapshot = mutable.snapshot()
        try:
            # base document (gen-0000) and delta document (WAL)
            assert_same_document(corpus[names[1]],
                                 snapshot.document(names[1]))
            assert_same_document(corpus[names[5]],
                                 snapshot.document(names[5]))
            with pytest.raises(WALError) as excinfo:
                snapshot.document(names[0])
            assert excinfo.value.reason == "unknown-document"
        finally:
            snapshot.close()

    def test_upsert_replaces(self, corpus, mutable):
        names = sorted(corpus)
        replacement = corpus[names[7]]
        mutable.add(replacement, names[1])  # shadow a base document
        snapshot = mutable.snapshot()
        try:
            assert_same_document(replacement,
                                 snapshot.document(names[1]))
        finally:
            snapshot.close()

    def test_commit_is_noop_without_pending(self, mutable):
        epoch = mutable.epoch
        assert mutable.commit() == epoch

    def test_batched_writes_invisible_until_commit(self, corpus,
                                                   mutable):
        names = sorted(corpus)
        mutable.add(corpus[names[7]], names[7], commit=False)
        assert mutable.pending_records == 1
        snapshot = mutable.snapshot()
        try:
            assert names[7] not in snapshot.names()
        finally:
            snapshot.close()
        mutable.commit()
        assert names[7] in mutable

    def test_reopen_recovers_committed_state(self, corpus, tmp_path):
        names = sorted(corpus)
        index = MutableIndex.create(tmp_path / "idx",
                                    {names[0]: corpus[names[0]]})
        index.add(corpus[names[1]], names[1])
        epoch = index.epoch
        index.close()
        reopened = MutableIndex.open(tmp_path / "idx")
        try:
            assert reopened.epoch == epoch
            assert set(reopened.names()) == {names[0], names[1]}
            assert reopened.recovery["wal_records_replayed"] == 1
            assert reopened.recovery["wal_bytes_discarded"] == 0
        finally:
            reopened.close()

    def test_compact_folds_delta_into_new_generation(self, corpus,
                                                     mutable):
        before = mutable.names()
        generation = mutable.generation
        mutable.compact()
        assert mutable.generation == generation + 1
        assert mutable.names() == before
        assert mutable.stats()["delta"]["documents"] == 0
        snapshot = mutable.snapshot()
        try:
            for name in before:
                assert_same_document(corpus[name],
                                     snapshot.document(name))
        finally:
            snapshot.close()

    def test_remove_unknown_raises(self, mutable):
        with pytest.raises(WALError) as excinfo:
            mutable.remove("no-such-document")
        assert excinfo.value.reason == "unknown-document"

    def test_create_refuses_existing(self, corpus, tmp_path):
        MutableIndex.create(tmp_path / "idx").close()
        with pytest.raises(WALError):
            MutableIndex.create(tmp_path / "idx")

    def test_open_missing_raises(self, tmp_path):
        with pytest.raises(WALError) as excinfo:
            MutableIndex.open(tmp_path / "nothing")
        assert excinfo.value.reason == "missing"


class TestEpochPinning:
    def test_pinned_epoch_survives_commits_and_compaction(
            self, corpus, mutable):
        names = sorted(corpus)
        snapshot = mutable.snapshot()
        pinned_names = snapshot.names()
        try:
            mutable.remove(names[1])
            mutable.compact()
            # The pinned view is frozen: same names, same bytes.
            assert snapshot.names() == pinned_names
            assert_same_document(corpus[names[1]],
                                 snapshot.document(names[1]))
            # The live view moved on.
            assert names[1] not in mutable
        finally:
            snapshot.close()

    def test_gc_reclaims_unpinned_epochs(self, corpus, mutable):
        old_epoch = mutable.epoch
        snapshot = mutable.snapshot()
        names = sorted(corpus)
        mutable.remove(names[2])
        # Pinned: the old epoch is still servable.
        repin = mutable.snapshot(old_epoch)
        assert repin.epoch == old_epoch
        repin.close()
        snapshot.close()
        # Unpinned: another commit GCs it.
        mutable.remove(names[3])
        with pytest.raises(WALError):
            mutable.snapshot(old_epoch)

    def test_worker_attach_parity(self, corpus, mutable, tmp_path):
        snapshot = mutable.snapshot()
        worker = attach_snapshot(mutable.path, snapshot.epoch)
        try:
            assert worker.names() == snapshot.names()
            for name in snapshot.names():
                assert_same_document(snapshot.document(name),
                                     worker.document(name))
                assert (worker.shard_of(name)
                        == snapshot.shard_of(name))
        finally:
            worker.close()
            snapshot.close()


class TestFsck:
    def test_healthy(self, mutable):
        report = fsck(mutable.path)
        assert report["healthy"]
        assert report["epoch"] == mutable.epoch
        assert report["issues"] == []

    def test_torn_tail_reported_and_repaired(self, corpus, mutable):
        wal_path = os.path.join(mutable.path,
                                mutable.stats()["wal"]["file"])
        with open(wal_path, "ab") as fh:
            fh.write(b"\x99" * 11)  # garbage past the committed prefix
        report = fsck(mutable.path)
        assert not any(i["fatal"] for i in report["issues"])
        assert any(i["kind"] == "wal-torn" for i in report["issues"])
        repaired = fsck(mutable.path, repair=True)
        assert repaired["repairs"]
        assert fsck(mutable.path)["issues"] == []

    def test_missing_current_repointed(self, corpus, tmp_path):
        names = sorted(corpus)
        index = MutableIndex.create(tmp_path / "idx",
                                    {names[0]: corpus[names[0]]})
        epoch = index.epoch
        index.close()
        os.remove(tmp_path / "idx" / "CURRENT")
        assert not fsck(tmp_path / "idx")["healthy"]
        repaired = fsck(tmp_path / "idx", repair=True)
        assert repaired["healthy"]
        assert read_current(tmp_path / "idx") == epoch

    def test_base_corruption_is_fatal(self, corpus, mutable):
        mutable.compact()
        base = mutable.stats()["base"]["path"]
        shard_file = next(entry for entry in sorted(os.listdir(base))
                          if entry.startswith("shard-"))
        target = os.path.join(base, shard_file)
        data = bytearray(open(target, "rb").read())
        data[-1] ^= 0xFF
        with open(target, "wb") as fh:
            fh.write(data)
        report = fsck(mutable.path)
        assert not report["healthy"]
        assert any(i["fatal"] for i in report["issues"])


class TestHandleRelease:
    def test_shard_index_close_is_idempotent_and_warning_free(
            self, corpus, tmp_path):
        build_index(corpus, tmp_path / "plain.idx", shards=2)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            index = ShardIndex.attach(tmp_path / "plain.idx")
            name = index.names()[0]
            index.document(name)  # materialise through the mmap
            index.close()
            assert index.closed
            index.close()  # second close is a no-op, not an error
            gc.collect()  # no ResourceWarning from leaked handles

    def test_closed_index_refuses_reads(self, corpus, tmp_path):
        build_index(corpus, tmp_path / "plain.idx", shards=2)
        index = ShardIndex.attach(tmp_path / "plain.idx")
        name = index.names()[0]
        index.close()
        with pytest.raises(Exception):
            index.document(name)

    def test_snapshot_close_is_idempotent(self, mutable):
        snapshot = mutable.snapshot()
        snapshot.names()
        snapshot.close()
        snapshot.close()

    def test_mutable_close_is_idempotent(self, corpus, tmp_path):
        index = MutableIndex.create(tmp_path / "idx")
        index.close()
        index.close()
        with pytest.raises(WALError) as excinfo:
            index.add(corpus[sorted(corpus)[0]])
        assert excinfo.value.reason == "closed"
