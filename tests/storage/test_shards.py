"""Persistent sharded index: format, attach, corruption, routing.

Covers the build → attach → route lifecycle end to end:

* node-for-node round trips (tags, texts, attributes, keywords,
  labels) and byte-identical deterministic rebuilds;
* zero-copy attach (the interval kernel reads the mapped arrays
  directly) and mapped-postings probes without materialisation;
* structured failure on corrupt / truncated / version-skewed files,
  skip-and-degrade attach, and the scatter-gather router's per-shard
  circuit breakers;
* the bit-identical guarantee: ``index_path=`` search and
  ranked_search equal the in-memory path on every Section-4 strategy,
  serial and pooled.
"""

from __future__ import annotations

import json
import os
import pickle
import shutil

import pytest

from repro.collection import DocumentCollection
from repro.core.query import Query
from repro.core.strategies import Strategy
from repro.errors import DocumentError, ShardError
from repro.exec.parallel import ParallelExecutor
from repro.exec.resilience import RetryPolicy
from repro.obs import Observability
from repro.obs.recorder import FlightRecorder
from repro.storage.shards import (FORMAT_VERSION, MANIFEST_NAME,
                                  ShardIndex, ShardRouter, build_index,
                                  shard_of)
from repro.workloads.generator import DocumentSpec, generate_document
from repro.workloads.inexlike import InexSpec, generate_collection
from repro.xmltree.serializer import document_to_xml

SHARDS = 3


@pytest.fixture(scope="module")
def corpus():
    """A small INEX-like collection with planted conjunctive terms."""
    return generate_collection(InexSpec(articles=8, seed=11))


@pytest.fixture(scope="module")
def index_dir(corpus, tmp_path_factory):
    path = tmp_path_factory.mktemp("shards") / "corpus.idx"
    build_index({name: corpus.document(name) for name in corpus.names()},
                path, shards=SHARDS)
    return str(path)


@pytest.fixture()
def scratch_index(corpus, index_dir, tmp_path):
    """A private, corruptible copy of the built index."""
    path = tmp_path / "scratch.idx"
    shutil.copytree(index_dir, path)
    return str(path)


def _queries():
    return [Query.of("needle", "thread"), Query.of("needle"),
            Query.of("nosuchterm")]


def assert_same_document(expected, actual):
    assert actual.size == expected.size
    assert actual.name == expected.name
    labels_e, labels_a = expected.labels, actual.labels
    for nid in expected.node_ids():
        assert actual.tag(nid) == expected.tag(nid)
        assert actual.text(nid) == expected.text(nid)
        assert list(actual.attributes(nid).items()) == \
            list(expected.attributes(nid).items())
        assert actual.keywords(nid) == expected.keywords(nid)
        assert actual.parent(nid) == expected.parent(nid)
        assert list(actual.children(nid)) == list(expected.children(nid))
        assert labels_a.depth[nid] == labels_e.depth[nid]
        assert labels_a.pre[nid] == labels_e.pre[nid]
        assert labels_a.size[nid] == labels_e.size[nid]
        assert labels_a.post[nid] == labels_e.post[nid]


def assert_same_result(expected, actual):
    """Same answers, canonically ordered.

    ``QueryResult.fragments`` order can vary with join-cache warmth
    (serial-vs-serial too), so compare the canonical form: the sorted
    per-document answer sets plus the merged, deterministically-sorted
    ``hits`` view.
    """
    assert sorted(actual.per_document) == sorted(expected.per_document)
    for name in expected.per_document:
        assert (sorted(tuple(sorted(f.nodes))
                       for f in actual.per_document[name].fragments)
                == sorted(tuple(sorted(f.nodes))
                          for f in expected.per_document[name].fragments))
    assert ([(h.document_name, tuple(sorted(h.fragment.nodes)))
             for h in actual.hits]
            == [(h.document_name, tuple(sorted(h.fragment.nodes)))
                for h in expected.hits])


class TestFormat:
    def test_round_trip_node_for_node(self, corpus, index_dir):
        with ShardIndex.attach(index_dir) as index:
            assert sorted(index.names()) == sorted(corpus.names())
            for name in corpus.names():
                assert_same_document(corpus.document(name),
                                     index.document(name))

    def test_attach_is_zero_copy(self, index_dir):
        with ShardIndex.attach(index_dir) as index:
            name = index.names()[0]
            kernel = index.document(name).interval_kernel()
            assert isinstance(kernel._parents, memoryview)
            assert isinstance(kernel._pre, memoryview)

    def test_builds_are_byte_identical(self, corpus, tmp_path):
        documents = {name: corpus.document(name)
                     for name in corpus.names()}
        for target in ("a", "b"):
            build_index(documents, tmp_path / target, shards=SHARDS)
        for entry in sorted(os.listdir(tmp_path / "a")):
            with open(tmp_path / "a" / entry, "rb") as fa, \
                    open(tmp_path / "b" / entry, "rb") as fb:
                assert fa.read() == fb.read(), entry

    def test_shard_assignment_is_stable(self, corpus, index_dir):
        with ShardIndex.attach(index_dir) as index:
            for name in corpus.names():
                assert index.shard_of(name) == shard_of(name, SHARDS)

    def test_manifest_shape(self, index_dir):
        with open(os.path.join(index_dir, MANIFEST_NAME)) as handle:
            manifest = json.load(handle)
        assert manifest["format_version"] == FORMAT_VERSION
        assert manifest["shards"] == SHARDS
        assert len(manifest["files"]) == SHARDS
        for entry in manifest["files"]:
            assert {"file", "shard", "bytes", "documents",
                    "header_crc32", "crc32"} <= set(entry)

    def test_probe_does_not_materialize(self, index_dir):
        with ShardIndex.attach(index_dir) as index:
            name = index.names()[0]
            assert index.contains(name, "needle") in (True, False)
            assert not index.contains(name, "nosuchterm")
            assert index.stats()["documents_materialized"] == 0
            index.document(name)
            assert index.stats()["documents_materialized"] == 1

    def test_unknown_document(self, index_dir):
        with ShardIndex.attach(index_dir) as index:
            with pytest.raises(ShardError) as err:
                index.shard_of("missing-doc")
            assert err.value.reason == "unknown-document"

    def test_build_rejects_empty_and_bad_shards(self, corpus, tmp_path):
        with pytest.raises(ShardError) as err:
            build_index({}, tmp_path / "empty")
        assert err.value.reason == "empty"
        name = corpus.names()[0]
        with pytest.raises(ShardError) as err:
            build_index({name: corpus.document(name)},
                        tmp_path / "bad", shards=0)
        assert err.value.reason == "bad-shards"

    def test_cache_limit_bounds_materialized_documents(self, index_dir):
        with ShardIndex.attach(index_dir, cache_limit=2) as index:
            for name in index.names():
                index.document(name)
            assert index.stats()["documents_cached"] <= 2


class TestCorruption:
    def test_truncated_shard(self, scratch_index):
        with open(os.path.join(scratch_index, "shard-0001.bin"),
                  "r+b") as handle:
            handle.truncate(32)
        with pytest.raises(ShardError) as err:
            ShardIndex.attach(scratch_index)
        assert err.value.reason == "truncated"
        assert err.value.shard == 1

    def test_bad_magic(self, scratch_index):
        with open(os.path.join(scratch_index, "shard-0000.bin"),
                  "r+b") as handle:
            handle.write(b"XXXXXXXX")
        with pytest.raises(ShardError) as err:
            ShardIndex.attach(scratch_index)
        assert err.value.reason == "bad-magic"

    def test_manifest_version_skew(self, scratch_index):
        manifest_path = os.path.join(scratch_index, MANIFEST_NAME)
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["format_version"] = FORMAT_VERSION + 99
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(ShardError) as err:
            ShardIndex.attach(scratch_index)
        assert err.value.reason == "version-skew"

    def test_missing_shard_file(self, scratch_index):
        os.unlink(os.path.join(scratch_index, "shard-0002.bin"))
        with pytest.raises(ShardError) as err:
            ShardIndex.attach(scratch_index)
        assert err.value.reason == "missing"

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(ShardError) as err:
            ShardIndex.attach(tmp_path / "nowhere")
        assert err.value.reason == "missing"

    def test_payload_bitflip_caught_at_first_touch(self, scratch_index):
        path = os.path.join(scratch_index, "shard-0001.bin")
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.seek(size - 16)
            byte = handle.read(1)
            handle.seek(size - 16)
            handle.write(bytes([byte[0] ^ 0xFF]))
        # The bitflip is in a payload section: attach (header checks)
        # succeeds, lazy per-document verification refuses to serve.
        index = ShardIndex.attach(scratch_index)
        try:
            victims = index.shard_documents(1)
            with pytest.raises(ShardError) as err:
                for name in victims:
                    index.document(name)
            assert err.value.reason == "checksum"
            assert err.value.shard == 1
        finally:
            index.close()

    def test_skip_and_degrade(self, corpus, scratch_index):
        with open(os.path.join(scratch_index, "shard-0001.bin"),
                  "r+b") as handle:
            handle.truncate(32)
        index = ShardIndex.attach(scratch_index, on_error="skip")
        try:
            assert index.degraded
            assert sorted(index.failed_shards) == [1]
            assert index.failed_shards[1].reason == "truncated"
            assert index.attached_shards == [0, 2]
            # The healthy shards still serve full documents.
            for name in index.names():
                assert_same_document(corpus.document(name),
                                     index.document(name))
            stats = index.stats()
            assert stats["shards_failed"]["1"]["reason"] == "truncated"
        finally:
            index.close()

    def test_skip_with_nothing_left_raises(self, scratch_index):
        for shard in range(SHARDS):
            with open(os.path.join(scratch_index,
                                   f"shard-{shard:04d}.bin"),
                      "r+b") as handle:
                handle.truncate(32)
        with pytest.raises(ShardError):
            ShardIndex.attach(scratch_index, on_error="skip")

    def test_verify_all_reports_failures(self, scratch_index):
        path = os.path.join(scratch_index, "shard-0000.bin")
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.seek(size - 24)
            byte = handle.read(1)
            handle.seek(size - 24)
            handle.write(bytes([byte[0] ^ 0xFF]))
        index = ShardIndex.attach(scratch_index)
        try:
            outcome = index.verify_all()
            assert outcome["failures"]
            assert all(f["reason"] == "checksum"
                       for f in outcome["failures"])
        finally:
            index.close()

    def test_shard_error_is_structured_and_picklable(self):
        error = ShardError("boom", reason="checksum", shard=3,
                           path="/idx/shard-0003.bin")
        clone = pickle.loads(pickle.dumps(error))
        assert clone.reason == "checksum"
        assert clone.shard == 3
        doc = clone.to_dict()
        assert doc["error"] == "shard"
        assert doc["reason"] == "checksum"


class TestSharedMemory:
    def test_spec_round_trip(self, corpus, index_dir):
        parent = ShardIndex.attach(index_dir)
        try:
            spec = parent.attach_spec(shared_memory=True)
            assert "shm" in spec
            child = ShardIndex.from_spec(spec)
            try:
                name = child.names()[0]
                assert_same_document(corpus.document(name),
                                     child.document(name))
            finally:
                child.close()
        finally:
            parent.close()


@pytest.mark.timeout(180)
class TestBitIdentical:
    """index_path= results equal the in-memory path, every strategy."""

    def test_inexlike_all_strategies(self, corpus, index_dir):
        with ParallelExecutor(index_path=index_dir, workers=2,
                              start_method="fork") as executor:
            for query in _queries():
                for strategy in Strategy:
                    expected = corpus.search(query, strategy=strategy)
                    actual = executor.search(query, strategy=strategy)
                    assert_same_result(expected, actual)

    def test_zipf_corpus(self, tmp_path):
        collection = DocumentCollection(name="zipf")
        for i in range(6):
            collection.add(generate_document(DocumentSpec(
                nodes=150, seed=500 + i, name=f"zipf-{i:02d}")))
        path = tmp_path / "zipf.idx"
        build_index({n: collection.document(n)
                     for n in collection.names()}, path, shards=2)
        # A Zipf-tail term: present somewhere, small keyword sets.
        vocabulary = sorted(
            term
            for name in collection.names()
            for term in collection.index(name).vocabulary()
            if term.startswith("w"))
        query = Query.of(vocabulary[-1])
        with ParallelExecutor(index_path=str(path), workers=2,
                              start_method="fork") as executor:
            for strategy in Strategy:
                assert_same_result(
                    collection.search(query, strategy=strategy),
                    executor.search(query, strategy=strategy))

    def test_ranked_search_identical(self, corpus, index_dir):
        sharded = DocumentCollection.open_index(index_dir)
        try:
            query = Query.of("needle", "thread")
            expected = corpus.ranked_search(query, limit=10)
            actual = sharded.ranked_search(query, limit=10)
            assert ([(n, s.fragment.nodes, round(s.score, 12))
                     for n, s in actual]
                    == [(n, s.fragment.nodes, round(s.score, 12))
                        for n, s in expected])
        finally:
            sharded.close()


@pytest.mark.timeout(180)
class TestRouter:
    def test_healthy_routing_matches_serial(self, corpus, index_dir):
        with ShardRouter(index_dir, workers=2,
                         start_method="fork") as router:
            for query in _queries():
                assert_same_result(corpus.search(query),
                                   router.search(query))
            report = router.last_report
            assert not report.degraded
            assert report.fanout >= 1
            assert not report.skipped

    def test_breaker_open_skips_shard(self, corpus, index_dir):
        with ShardRouter(index_dir, workers=2,
                         start_method="fork") as router:
            victim = router.index.attached_shards[0]
            breaker = router.breaker(victim)
            for _ in range(3):
                breaker.record_failure()
            assert breaker.state == "open"
            result = router.search(Query.of("needle"))
            report = router.last_report
            assert report.skipped == {victim: "breaker-open"}
            assert report.degraded
            victims = set(router.index.shard_documents(victim))
            assert not (set(result.per_document) & victims)
            assert router.degraded

    def test_breaker_recovers_after_reset(self, index_dir):
        clock = [0.0]
        with ShardRouter(index_dir, workers=2, start_method="fork",
                         breaker_reset_s=10.0,
                         clock=lambda: clock[0]) as router:
            victim = router.index.attached_shards[0]
            for _ in range(3):
                router.breaker(victim).record_failure()
            router.search(Query.of("needle"))
            assert victim in router.last_report.skipped
            clock[0] = 11.0  # past reset: half-open probe readmits
            router.search(Query.of("needle"))
            assert victim not in router.last_report.skipped
            assert router.breaker(victim).state == "closed"

    def test_midrun_checksum_evicts_shard(self, scratch_index):
        path = os.path.join(scratch_index, "shard-0002.bin")
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.seek(size - 16)
            byte = handle.read(1)
            handle.seek(size - 16)
            handle.write(bytes([byte[0] ^ 0xFF]))
        policy = RetryPolicy(max_retries=0, backoff_s=0.0)
        with ShardRouter(scratch_index, workers=2, start_method="fork",
                         resilience=policy) as router:
            result = router.search(Query.of("needle"))
            report = router.last_report
            assert report.skipped.get(2) == "checksum"
            assert report.reroutes == 1
            assert report.degraded
            victims = set(router.index.shard_documents(2))
            assert not (set(result.per_document) & victims)

    def test_attach_failure_degrades_not_raises(self, scratch_index):
        with open(os.path.join(scratch_index, "shard-0001.bin"),
                  "r+b") as handle:
            handle.truncate(32)
        with ShardRouter(scratch_index, workers=2,
                         start_method="fork") as router:
            router.search(Query.of("needle"))
            report = router.last_report
            assert report.skipped.get(1) == "truncated"
            assert report.documents_skipped > 0
            stats = router.stats()
            assert stats["degraded"]
            assert stats["last_run"]["skipped"]["1"] == "truncated"

    def test_strict_mode_raises(self, scratch_index):
        with open(os.path.join(scratch_index, "shard-0001.bin"),
                  "r+b") as handle:
            handle.truncate(32)
        with ShardRouter(scratch_index, workers=2, start_method="fork",
                         strict=True) as router:
            with pytest.raises(ShardError) as err:
                router.search(Query.of("needle"))
            assert err.value.reason == "truncated"


@pytest.mark.timeout(180)
class TestShardedCollection:
    def test_read_only(self, corpus, index_dir):
        sharded = DocumentCollection.open_index(index_dir)
        try:
            with pytest.raises(DocumentError):
                sharded.add(corpus.document(corpus.names()[0]),
                            name="dup")
        finally:
            sharded.close()

    def test_introspection(self, corpus, index_dir):
        sharded = DocumentCollection.open_index(index_dir)
        try:
            assert len(sharded) == len(corpus)
            assert sorted(sharded.names()) == sorted(corpus.names())
            assert sharded.total_nodes == corpus.total_nodes
            assert (sharded.document_frequency("needle")
                    == corpus.document_frequency("needle"))
            assert not sharded.degraded
        finally:
            sharded.close()

    def test_early_exit_probe_skips_materialization(self, index_dir):
        sharded = DocumentCollection.open_index(index_dir)
        try:
            sharded.search(Query.of("nosuchterm"))
            stats = sharded.shard_stats()
            assert stats["index"]["documents_materialized"] == 0
        finally:
            sharded.close()

    def test_workers_path_uses_router(self, corpus, index_dir):
        sharded = DocumentCollection.open_index(index_dir)
        try:
            query = Query.of("needle", "thread")
            assert_same_result(corpus.search(query),
                               sharded.search(query, workers=2))
            assert sharded.router is not None
            assert sharded.router.last_report.fanout >= 1
        finally:
            sharded.close()

    def test_serial_profiles_carry_shard(self, index_dir):
        recorder = FlightRecorder()
        obs = Observability(recorder=recorder)
        sharded = DocumentCollection.open_index(index_dir)
        try:
            sharded.search(Query.of("needle"), obs=obs)
            profiles = [p for p in recorder.profiles
                        if p.shard is not None]
            assert profiles
            assert {p.shard for p in profiles} <= set(range(SHARDS))
        finally:
            sharded.close()

    def test_shard_stats_shape(self, index_dir):
        sharded = DocumentCollection.open_index(index_dir)
        try:
            sharded.search(Query.of("needle"), workers=2)
            stats = sharded.shard_stats()
            assert stats["index"]["shards_attached"] == SHARDS
            assert stats["index"]["bytes_mapped"] > 0
            assert stats["last_run"]["fanout"] >= 1
            assert set(stats["breakers"]) == {str(s)
                                              for s in range(SHARDS)}
        finally:
            sharded.close()


class TestDeterminism:
    """Directory enumeration and shard assignment are stable."""

    def test_from_directory_sorted(self, corpus, tmp_path):
        # Write files in an order unrelated to their names; the loaded
        # collection must come back name-sorted regardless.
        names = list(corpus.names())
        for name in reversed(names):
            with open(tmp_path / f"{name}.xml", "w",
                      encoding="utf-8") as handle:
                handle.write(document_to_xml(corpus.document(name)))
        loaded = DocumentCollection.from_directory(tmp_path)
        assert loaded.names() == sorted(loaded.names())

    def test_directory_build_is_reproducible(self, corpus, tmp_path):
        for name in corpus.names():
            with open(tmp_path / f"{name}.xml", "w",
                      encoding="utf-8") as handle:
                handle.write(document_to_xml(corpus.document(name)))
        indexes = []
        for target in ("x", "y"):
            loaded = DocumentCollection.from_directory(tmp_path)
            out = tmp_path / f"{target}.idx"
            build_index(loaded, out, shards=SHARDS)
            with open(out / MANIFEST_NAME, "rb") as handle:
                indexes.append(handle.read())
        assert indexes[0] == indexes[1]


class TestRouterHistory:
    """The cumulative per-shard ledger behind ``/varz``'s shards
    section, and the labelled exclusion/reroute metrics."""

    def test_ledger_accumulates_runs_and_exclusions(self, index_dir):
        from repro.obs import (SHARD_ROUTER_EXCLUSIONS, Observability)

        obs = Observability()
        with ShardRouter(index_dir, workers=2,
                         start_method="fork") as router:
            router.search(Query.of("needle"), obs=obs)
            victim = router.index.attached_shards[0]
            for _ in range(3):
                router.breaker(victim).record_failure()
            router.search(Query.of("needle"), obs=obs)
            router.search(Query.of("needle"), obs=obs)

            healthy = router.history[
                router.index.attached_shards[1]]
            assert healthy["runs"] == 3
            assert healthy["excluded_runs"] == 0
            sick = router.history[victim]
            assert sick["runs"] == 1          # served before the trip
            assert sick["excluded_runs"] == 2
            assert sick["exclusions"] == {"breaker-open": 2}
            assert sick["last_exclusion"] == "breaker-open"

            # The exclusion counter is labelled per shard and reason.
            counter = obs.metrics.get(
                SHARD_ROUTER_EXCLUSIONS,
                labels={"shard": str(victim),
                        "reason": "breaker-open"})
            assert counter is not None and counter.value == 2

            stats = router.stats()
            assert stats["history"][str(victim)]["excluded_runs"] == 2
            assert stats["last_run"]["skipped"][str(victim)] \
                == "breaker-open"

    def test_varz_surfaces_the_shard_ledger(self, index_dir):
        import json as json_module
        import urllib.request

        from repro.collection.sharded import ShardedDocumentCollection
        from repro.obs import Observability
        from repro.obs.server import MetricsServer, QueryGuardrails

        collection = ShardedDocumentCollection(index_dir)
        try:
            obs = Observability()
            rails = QueryGuardrails(workers=2)
            with MetricsServer(obs, collection=collection,
                               guardrails=rails) as server:
                payload = json_module.dumps(
                    {"query": "needle"}).encode("utf-8")
                request = urllib.request.Request(
                    server.url + "/query", data=payload,
                    headers={"Content-Type": "application/json"},
                    method="POST")
                with urllib.request.urlopen(request,
                                            timeout=60) as reply:
                    assert reply.status == 200
                    json_module.loads(reply.read())
                with urllib.request.urlopen(server.url + "/varz",
                                            timeout=5) as reply:
                    varz = json_module.loads(reply.read())
            shards = varz["shards"]
            assert shards["last_run"]["fanout"] >= 1
            assert all(entry["runs"] >= 1
                       for entry in shards["history"].values())
            assert shards["degraded"] is False
        finally:
            collection.close()
