"""Unit tests for the INEX-like collection generator."""

from __future__ import annotations

import pytest

from repro.core.filters import SizeAtMost
from repro.core.query import Query
from repro.errors import WorkloadError
from repro.workloads.inexlike import InexSpec, generate_collection


@pytest.fixture(scope="module")
def small_collection():
    return generate_collection(InexSpec(articles=6,
                                        nodes_per_article=80,
                                        planted_fraction=0.5,
                                        occurrences=3, seed=11))


class TestInexSpec:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            InexSpec(articles=0)
        with pytest.raises(WorkloadError):
            InexSpec(planted_fraction=0.0)
        with pytest.raises(WorkloadError):
            InexSpec(occurrences=0)


class TestGenerateCollection:
    def test_article_count_and_sizes(self, small_collection):
        assert len(small_collection) == 6
        for name in small_collection:
            assert small_collection.document(name).size == 80

    def test_deterministic(self):
        spec = InexSpec(articles=4, nodes_per_article=60, seed=5)
        a = generate_collection(spec)
        b = generate_collection(spec)
        assert a.names() == b.names()
        for name in a:
            doc_a, doc_b = a.document(name), b.document(name)
            assert [doc_a.text(i) for i in doc_a.node_ids()] == \
                [doc_b.text(i) for i in doc_b.node_ids()]

    def test_planted_fraction(self, small_collection):
        receiving = [name for name in small_collection
                     if small_collection.index(name).contains("needle")]
        assert len(receiving) == 3  # 6 articles * 0.5

    def test_occurrences_per_receiver(self, small_collection):
        for name in small_collection:
            index = small_collection.index(name)
            if index.contains("needle"):
                assert index.document_frequency("needle") == 3

    def test_conjunctive_query_answerable(self, small_collection):
        query = Query.of("needle", "thread", predicate=SizeAtMost(8))
        result = small_collection.search(query)
        # Overlapping receiver sets exist by construction for this
        # seed; at least the machinery must run end to end.
        assert result.total_elapsed >= 0.0
        assert set(result.per_document) <= set(small_collection.names())
