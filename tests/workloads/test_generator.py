"""Unit tests for the synthetic document generator."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.index.inverted import InvertedIndex
from repro.workloads.generator import (DocumentSpec, generate_document,
                                       plant_keyword, zipf_vocabulary)


class TestVocabulary:
    def test_sizes(self):
        assert len(zipf_vocabulary(5)) == 5
        assert len(zipf_vocabulary(200)) == 200

    def test_distinct(self):
        vocab = zipf_vocabulary(150)
        assert len(set(vocab)) == 150

    def test_invalid_size(self):
        with pytest.raises(WorkloadError):
            zipf_vocabulary(0)


class TestDocumentSpec:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            DocumentSpec(nodes=0)
        with pytest.raises(WorkloadError):
            DocumentSpec(max_depth=0)
        with pytest.raises(WorkloadError):
            DocumentSpec(max_fanout=0)
        with pytest.raises(WorkloadError):
            DocumentSpec(words_per_leaf=0)


class TestGenerateDocument:
    def test_exact_node_count(self):
        for nodes in (1, 10, 137, 400):
            doc = generate_document(DocumentSpec(nodes=nodes, seed=3))
            assert doc.size == nodes

    def test_deterministic(self):
        spec = DocumentSpec(nodes=120, seed=11)
        a = generate_document(spec)
        b = generate_document(spec)
        assert [a.tag(i) for i in a.node_ids()] == \
            [b.tag(i) for i in b.node_ids()]
        assert [a.text(i) for i in a.node_ids()] == \
            [b.text(i) for i in b.node_ids()]

    def test_seed_changes_document(self):
        a = generate_document(DocumentSpec(nodes=120, seed=1))
        b = generate_document(DocumentSpec(nodes=120, seed=2))
        assert [a.text(i) for i in a.node_ids()] != \
            [b.text(i) for i in b.node_ids()]

    def test_depth_bounded(self):
        doc = generate_document(DocumentSpec(nodes=300, max_depth=4,
                                             seed=5))
        assert doc.max_depth <= 4

    def test_document_centric_tags(self):
        doc = generate_document(DocumentSpec(nodes=200, seed=7))
        tags = {doc.tag(i) for i in doc.node_ids()}
        assert "article" in tags
        assert tags & {"par", "note", "item", "caption"}


class TestPlantKeyword:
    def test_occurrence_count(self):
        doc = generate_document(DocumentSpec(nodes=150, seed=9))
        planted = plant_keyword(doc, "needle", occurrences=7, seed=1)
        assert len(planted.nodes_with_keyword("needle")) == 7

    def test_original_untouched(self):
        doc = generate_document(DocumentSpec(nodes=80, seed=9))
        plant_keyword(doc, "needle", occurrences=3, seed=1)
        assert doc.nodes_with_keyword("needle") == []

    def test_structure_preserved(self):
        doc = generate_document(DocumentSpec(nodes=90, seed=4))
        planted = plant_keyword(doc, "needle", occurrences=3, seed=2)
        assert planted.size == doc.size
        for nid in doc.node_ids():
            assert planted.parent(nid) == doc.parent(nid)
            assert planted.tag(nid) == doc.tag(nid)

    def test_clustering_raises_reduction_factor(self):
        from repro.core.query import keyword_fragments
        from repro.core.statistics import reduction_factor
        doc = generate_document(DocumentSpec(nodes=300, seed=6))
        scattered = plant_keyword(doc, "needle", occurrences=10,
                                  clustering=0.0, seed=3)
        clustered = plant_keyword(doc, "needle", occurrences=10,
                                  clustering=1.0, seed=3)
        rf_scattered = reduction_factor(
            keyword_fragments(scattered, "needle"))
        rf_clustered = reduction_factor(
            keyword_fragments(clustered, "needle"))
        # Vertical runs are reducible (interior path nodes are subsumed
        # by the join of the endpoints); scatter rarely is.
        assert rf_clustered > rf_scattered

    def test_full_clustering_forms_a_path(self):
        doc = generate_document(DocumentSpec(nodes=300, seed=6))
        planted = plant_keyword(doc, "needle", occurrences=4,
                                clustering=1.0, seed=3)
        nodes = planted.nodes_with_keyword("needle")
        on_path = [n for n in nodes
                   if all(planted.is_ancestor_or_self(n, m)
                          or planted.is_ancestor_or_self(m, n)
                          for m in nodes)]
        # The clustered share (here: all four) lies on one ancestor line.
        assert len(on_path) >= 3

    def test_partial_clustering(self):
        doc = generate_document(DocumentSpec(nodes=200, seed=6))
        planted = plant_keyword(doc, "needle", occurrences=8,
                                clustering=0.5, seed=3)
        assert len(planted.nodes_with_keyword("needle")) == 8

    def test_too_many_occurrences_rejected(self):
        doc = generate_document(DocumentSpec(nodes=5, seed=1))
        with pytest.raises(WorkloadError, match="cannot plant"):
            plant_keyword(doc, "needle", occurrences=50)

    def test_validation(self):
        doc = generate_document(DocumentSpec(nodes=10, seed=1))
        with pytest.raises(WorkloadError):
            plant_keyword(doc, "x", occurrences=0)
        with pytest.raises(WorkloadError):
            plant_keyword(doc, "x", occurrences=1, clustering=2.0)

    def test_eligible_restriction(self):
        doc = generate_document(DocumentSpec(nodes=50, seed=2))
        eligible = [5, 6, 7, 8]
        planted = plant_keyword(doc, "needle", occurrences=3, seed=4,
                                eligible=eligible)
        assert set(planted.nodes_with_keyword("needle")) <= set(eligible)

    def test_keyword_searchable_via_index(self):
        doc = generate_document(DocumentSpec(nodes=100, seed=8))
        planted = plant_keyword(doc, "needle", occurrences=4, seed=5)
        index = InvertedIndex(planted)
        assert index.document_frequency("needle") == 4
