"""Unit tests for canned corpora."""

from __future__ import annotations

from repro.core.strategies import answer
from repro.core.filters import SizeAtMost


class TestBookCorpus:
    def test_parses(self, book):
        assert book.name == "book"
        assert book.size > 20

    def test_structure(self, book):
        assert book.tag(0) == "book"
        tags = {book.tag(i) for i in book.node_ids()}
        assert {"chapter", "section", "par", "title"} <= tags

    def test_searchable(self, book):
        result = answer(book, "fragment", "join",
                        predicate=SizeAtMost(4))
        assert result.fragments


class TestThesisCorpus:
    def test_parses(self, thesis):
        assert thesis.name == "thesis"
        assert thesis.size > 20

    def test_attributes(self, thesis):
        numbered = [i for i in thesis.node_ids()
                    if thesis.attributes(i).get("n")]
        assert len(numbered) == 3

    def test_searchable(self, thesis):
        result = answer(thesis, "keyword", "search",
                        predicate=SizeAtMost(3))
        assert result.fragments
