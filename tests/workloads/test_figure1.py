"""Tests pinning the Figure 1 reconstruction to the paper's constraints."""

from __future__ import annotations

from repro.core.algebra import fragment_join
from repro.core.fragment import Fragment
from repro.workloads.figure1 import (FIGURE1_QUERY_TERMS,
                                     build_figure1_document)


class TestTopology:
    def test_82_nodes(self, figure1):
        assert figure1.size == 82

    def test_root_paths_match_table1(self, figure1):
        # n17 → n16 → n14 → n1 → n0 and n81 → n80 → n79 → n0.
        assert list(figure1.ancestors(17)) == [16, 14, 1, 0]
        assert list(figure1.ancestors(81)) == [80, 79, 0]

    def test_n16_children_are_n17_n18(self, figure1):
        assert figure1.children(16) == (17, 18)

    def test_build_is_deterministic(self):
        a = build_figure1_document()
        b = build_figure1_document()
        assert [a.tag(i) for i in a.node_ids()] == \
            [b.tag(i) for i in b.node_ids()]


class TestKeywordPlacement:
    def test_query_terms_constant(self):
        assert FIGURE1_QUERY_TERMS == ("xquery", "optimization")

    def test_xquery_exactly_n17_n18(self, figure1):
        assert figure1.nodes_with_keyword("xquery") == [17, 18]

    def test_optimization_exactly_n16_n17_n81(self, figure1):
        assert figure1.nodes_with_keyword("optimization") == [16, 17, 81]


class TestTable1Joins:
    """Every row of Table 1, phrased as direct join computations."""

    def n(self, figure1, *ids):
        return Fragment(figure1, ids)

    def test_row1_f17_f18(self, figure1):
        assert fragment_join(self.n(figure1, 17),
                             self.n(figure1, 18)).nodes == \
            frozenset([16, 17, 18])

    def test_row2_f16_f17(self, figure1):
        assert fragment_join(self.n(figure1, 16),
                             self.n(figure1, 17)).nodes == \
            frozenset([16, 17])

    def test_row3_f16_f18(self, figure1):
        assert fragment_join(self.n(figure1, 16),
                             self.n(figure1, 18)).nodes == \
            frozenset([16, 18])

    def test_row5_f17_f81(self, figure1):
        assert fragment_join(self.n(figure1, 17),
                             self.n(figure1, 81)).nodes == \
            frozenset([0, 1, 14, 16, 17, 79, 80, 81])

    def test_row6_f18_f81(self, figure1):
        assert fragment_join(self.n(figure1, 18),
                             self.n(figure1, 81)).nodes == \
            frozenset([0, 1, 14, 16, 18, 79, 80, 81])

    def test_row7_f17_f18_f81(self, figure1):
        joined = fragment_join(
            fragment_join(self.n(figure1, 17), self.n(figure1, 18)),
            self.n(figure1, 81))
        assert joined.nodes == \
            frozenset([0, 1, 14, 16, 17, 18, 79, 80, 81])

    def test_row8_duplicate_of_row1(self, figure1):
        row8 = fragment_join(
            fragment_join(self.n(figure1, 16), self.n(figure1, 17)),
            self.n(figure1, 18))
        assert row8.nodes == frozenset([16, 17, 18])

    def test_section43_f16_f81(self, figure1):
        # §4.3: f16 ⋈ f81 spans 7 nodes and fails size<=3, so joins
        # involving it can be pruned.
        assert fragment_join(self.n(figure1, 16),
                             self.n(figure1, 81)).nodes == \
            frozenset([0, 1, 14, 16, 79, 80, 81])
