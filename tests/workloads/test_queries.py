"""Unit tests for query workload generation."""

from __future__ import annotations

import pytest

from repro.core.filters import SizeAtMost, TrueFilter
from repro.errors import WorkloadError
from repro.index.inverted import InvertedIndex
from repro.workloads.generator import DocumentSpec, generate_document
from repro.workloads.queries import (QuerySpec, generate_queries,
                                     pick_terms_by_frequency,
                                     selectivity_ladder)


@pytest.fixture(scope="module")
def synthetic_index():
    doc = generate_document(DocumentSpec(nodes=400, seed=21))
    return InvertedIndex(doc)


class TestQuerySpec:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            QuerySpec(count=0)
        with pytest.raises(WorkloadError):
            QuerySpec(terms_per_query=0)
        with pytest.raises(WorkloadError):
            QuerySpec(min_frequency=5, max_frequency=2)


class TestPickTerms:
    def test_band_respected(self, synthetic_index):
        terms = pick_terms_by_frequency(synthetic_index, 2, 6)
        assert terms
        for term in terms:
            assert 2 <= synthetic_index.document_frequency(term) <= 6

    def test_sorted_deterministic(self, synthetic_index):
        assert pick_terms_by_frequency(synthetic_index, 2, 6) == \
            sorted(pick_terms_by_frequency(synthetic_index, 2, 6))


class TestGenerateQueries:
    def test_count_and_terms(self, synthetic_index):
        spec = QuerySpec(count=5, terms_per_query=2, seed=3)
        queries = generate_queries(synthetic_index, spec)
        assert len(queries) == 5
        for query in queries:
            assert len(query.terms) == 2

    def test_deterministic(self, synthetic_index):
        spec = QuerySpec(count=4, seed=9)
        a = generate_queries(synthetic_index, spec)
        b = generate_queries(synthetic_index, spec)
        assert [q.terms for q in a] == [q.terms for q in b]

    def test_size_filter_attached(self, synthetic_index):
        queries = generate_queries(synthetic_index,
                                   QuerySpec(count=2, size_limit=4))
        assert all(isinstance(q.predicate, SizeAtMost) for q in queries)

    def test_no_filter_when_disabled(self, synthetic_index):
        queries = generate_queries(synthetic_index,
                                   QuerySpec(count=2, size_limit=None))
        assert all(isinstance(q.predicate, TrueFilter) for q in queries)

    def test_unsatisfiable_band_rejected(self, synthetic_index):
        spec = QuerySpec(count=1, min_frequency=10_000,
                         max_frequency=20_000)
        with pytest.raises(WorkloadError, match="document frequency"):
            generate_queries(synthetic_index, spec)

    def test_terms_within_band(self, synthetic_index):
        spec = QuerySpec(count=6, min_frequency=2, max_frequency=8,
                         seed=17)
        for query in generate_queries(synthetic_index, spec):
            for term in query.terms:
                df = synthetic_index.document_frequency(term)
                assert 2 <= df <= 8


class TestSelectivityLadder:
    def test_rungs_produced(self, synthetic_index):
        ladder = selectivity_ladder(synthetic_index, rungs=(2, 4, 8))
        assert ladder
        for rung, query in ladder:
            assert rung in (2, 4, 8)
            assert len(query.terms) == 2

    def test_unservable_rungs_skipped(self, synthetic_index):
        ladder = selectivity_ladder(synthetic_index, rungs=(100_000,))
        assert ladder == []

    def test_term_frequencies_near_rung(self, synthetic_index):
        for rung, query in selectivity_ladder(synthetic_index,
                                              rungs=(4, 8)):
            for term in query.terms:
                df = synthetic_index.document_frequency(term)
                assert rung - max(1, rung // 4) <= df \
                    <= rung + max(1, rung // 4)
