"""Unit tests for the data-centric bibliography generator."""

from __future__ import annotations

import pytest

from repro.baselines.smallest import smallest_fragments
from repro.core.filters import HeightAtMost, SizeAtMost
from repro.core.query import Query
from repro.core.strategies import evaluate
from repro.errors import WorkloadError
from repro.workloads.datacentric import (BibliographySpec,
                                         generate_bibliography)


@pytest.fixture(scope="module")
def bibliography():
    return generate_bibliography(BibliographySpec(records=40, seed=13))


class TestSpec:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            BibliographySpec(records=0)
        with pytest.raises(WorkloadError):
            BibliographySpec(max_authors=0)
        with pytest.raises(WorkloadError):
            BibliographySpec(title_words=0)


class TestGenerate:
    def test_record_count(self, bibliography):
        papers = [n for n in bibliography.node_ids()
                  if bibliography.tag(n) == "paper"]
        assert len(papers) == 40

    def test_schematic_shape(self, bibliography):
        # Every paper has title, >=1 author, venue, year — the uniform
        # data-centric record shape.
        for paper in bibliography.node_ids():
            if bibliography.tag(paper) != "paper":
                continue
            child_tags = [bibliography.tag(c)
                          for c in bibliography.children(paper)]
            assert child_tags[0] == "title"
            assert child_tags[-2:] == ["venue", "year"]
            assert child_tags.count("author") >= 1

    def test_deterministic(self):
        spec = BibliographySpec(records=10, seed=5)
        a = generate_bibliography(spec)
        b = generate_bibliography(spec)
        assert [a.text(i) for i in a.node_ids()] == \
            [b.text(i) for i in b.node_ids()]

    def test_depth_is_flat(self, bibliography):
        assert bibliography.max_depth == 2  # root → paper → field


class TestDataCentricSemantics:
    def test_conventional_answers_are_record_shaped(self, bibliography):
        # On schematic data the smallest fragments sit inside one
        # <paper> record (or are one node).
        fragments = smallest_fragments(bibliography,
                                       ["turing", "database"])
        for fragment in fragments:
            root = fragment.root
            assert bibliography.tag(root) in ("paper", "title",
                                              "author", "bibliography")

    def test_algebra_contains_conventional(self, bibliography):
        query = Query.of("turing", "database",
                         predicate=SizeAtMost(6) & HeightAtMost(1))
        algebra = {f.nodes for f in
                   evaluate(bibliography, query).fragments}
        conventional = {
            f.nodes
            for f in smallest_fragments(bibliography,
                                        ["turing", "database"])
            if len(f.nodes) <= 6 and f.height <= 1}
        assert conventional <= algebra
