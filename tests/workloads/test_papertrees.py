"""Tests for the Figure 3/4/7 labelled trees."""

from __future__ import annotations

import pytest

from repro.core.algebra import fragment_join
from repro.core.filters import EqualDepth
from repro.core.reduce import set_reduce


class TestLabeledTreeHelpers:
    def test_node_lookup(self, figure3):
        assert figure3.document.depth(figure3.node("n1")) == 0

    def test_fragment_helper_validates(self, figure3):
        with pytest.raises(Exception):
            figure3.fragment("n2", "n9")  # disconnected

    def test_labels_roundtrip(self, figure3):
        frag = figure3.fragment("n4", "n5")
        assert figure3.labels_of(frag) == {"n4", "n5"}

    def test_fragment_set(self, figure3):
        fs = figure3.fragment_set([["n2"], ["n8"]])
        assert len(fs) == 2


class TestFigure3Tree:
    def test_nine_nodes(self, figure3):
        assert figure3.document.size == 9

    def test_documented_join(self, figure3):
        joined = fragment_join(figure3.fragment("n4", "n5"),
                               figure3.fragment("n7", "n9"))
        assert figure3.labels_of(joined) == \
            {"n3", "n4", "n5", "n6", "n7", "n9"}

    def test_label_ids_are_preorder_consistent(self, figure3):
        # n9 hangs under n7 and precedes n8 in preorder.
        assert figure3.node("n9") < figure3.node("n8")


class TestFigure4Tree:
    def test_reduction(self, figure4):
        F = figure4.fragment_set([["n1"], ["n3"], ["n5"], ["n6"], ["n7"]])
        reduced = set_reduce(F)
        assert {tuple(sorted(figure4.labels_of(f))) for f in reduced} \
            == {("n1",), ("n5",), ("n7",)}

    def test_n3_subsumed_by_n1_join_n5(self, figure4):
        joined = fragment_join(figure4.fragment("n1"),
                               figure4.fragment("n5"))
        assert figure4.node("n3") in joined.nodes

    def test_n6_subsumed_by_n1_join_n7(self, figure4):
        joined = fragment_join(figure4.fragment("n1"),
                               figure4.fragment("n7"))
        assert figure4.node("n6") in joined.nodes


class TestFigure7Tree:
    def test_keyword_placement(self, figure7):
        doc = figure7.document
        assert doc.nodes_with_keyword("k1") == [figure7.node("n2")]
        assert sorted(doc.nodes_with_keyword("k2")) == sorted(
            [figure7.node("n3"), figure7.node("n4")])

    def test_counterexample_shape(self, figure7):
        predicate = EqualDepth("k1", "k2")
        f = figure7.fragment("n0", "n1", "n2", "n3", "n4")
        f_prime = figure7.fragment("n0", "n1", "n2", "n4")
        assert predicate(f) and not predicate(f_prime)
