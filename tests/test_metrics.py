"""Unit tests for IR effectiveness metrics."""

from __future__ import annotations

import pytest

from repro.core.fragment import Fragment
from repro.ranking.metrics import (EffectivenessReport,
                                   evaluate_effectiveness, f1_score,
                                   overlap_precision, overlap_recall,
                                   precision, recall)


@pytest.fixture()
def frags(figure1):
    return {
        "n17": Fragment(figure1, [17]),
        "n16_17": Fragment(figure1, [16, 17]),
        "n16_18": Fragment(figure1, [16, 18]),
        "target": Fragment(figure1, [16, 17, 18]),
        "n81": Fragment(figure1, [81]),
    }


class TestStrictMeasures:
    def test_perfect(self, frags):
        answers = [frags["n17"], frags["target"]]
        assert precision(answers, answers) == 1.0
        assert recall(answers, answers) == 1.0
        assert f1_score(answers, answers) == 1.0

    def test_partial(self, frags):
        answers = [frags["n17"], frags["n16_17"]]
        relevant = [frags["n17"], frags["target"]]
        assert precision(answers, relevant) == 0.5
        assert recall(answers, relevant) == 0.5
        assert f1_score(answers, relevant) == 0.5

    def test_disjoint(self, frags):
        assert precision([frags["n17"]], [frags["n81"]]) == 0.0
        assert recall([frags["n17"]], [frags["n81"]]) == 0.0
        assert f1_score([frags["n17"]], [frags["n81"]]) == 0.0

    def test_empty_conventions(self, frags):
        assert precision([], [frags["n17"]]) == 1.0
        assert recall([frags["n17"]], []) == 1.0

    def test_f1_between_p_and_r(self, frags):
        answers = [frags["n17"], frags["n16_17"], frags["n16_18"]]
        relevant = [frags["n17"]]
        p = precision(answers, relevant)
        r = recall(answers, relevant)
        f = f1_score(answers, relevant)
        assert min(p, r) <= f <= max(p, r)


class TestOverlapMeasures:
    def test_exact_match_scores_one(self, frags):
        assert overlap_precision([frags["n17"]], [frags["n17"]]) == 1.0
        assert overlap_recall([frags["n17"]], [frags["n17"]]) == 1.0

    def test_partial_overlap_graded(self, frags):
        # ⟨n16,n17⟩ vs relevant ⟨n16,n17,n18⟩: Jaccard 2/3.
        score = overlap_precision([frags["n16_17"]], [frags["target"]])
        assert score == pytest.approx(2 / 3)

    def test_overlap_beats_strict_on_near_misses(self, frags):
        answers = [frags["n16_17"]]
        relevant = [frags["target"]]
        assert precision(answers, relevant) == 0.0
        assert overlap_precision(answers, relevant) > 0.0

    def test_disjoint_scores_zero(self, frags):
        assert overlap_precision([frags["n81"]], [frags["n17"]]) == 0.0

    def test_empty_conventions(self, frags):
        assert overlap_precision([], [frags["n17"]]) == 1.0
        assert overlap_recall([frags["n17"]], []) == 1.0


class TestReport:
    def test_report_fields_consistent(self, frags):
        answers = [frags["n17"], frags["n16_17"]]
        relevant = [frags["n17"], frags["target"]]
        report = evaluate_effectiveness(answers, relevant)
        assert report.precision == precision(answers, relevant)
        assert report.recall == recall(answers, relevant)
        assert report.f1 == f1_score(answers, relevant)
        assert report.overlap_precision == \
            overlap_precision(answers, relevant)
        assert report.as_row() == [
            report.precision, report.recall, report.f1,
            report.overlap_precision, report.overlap_recall]

    def test_report_is_frozen(self):
        report = EffectivenessReport(1, 1, 1, 1, 1)
        with pytest.raises(AttributeError):
            report.precision = 0.5
