"""End-to-end tests for the repro-search CLI."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.workloads.corpora import BOOK_XML


@pytest.fixture()
def book_file(tmp_path):
    path = tmp_path / "book.xml"
    path.write_text(BOOK_XML)
    return str(path)


class TestParser:
    def test_requires_file_and_keywords(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["f.xml", "a", "b"])
        assert args.strategy == "pushdown"
        assert args.limit == 10
        assert not args.xml


class TestMain:
    def test_basic_search(self, book_file, capsys):
        code = main([book_file, "fragment", "join", "--max-size", "4"])
        captured = capsys.readouterr()
        assert code == 0
        assert "answer(s)" in captured.out
        assert "#1" in captured.out

    def test_xml_output(self, book_file, capsys):
        code = main([book_file, "fragment", "join", "--max-size", "3",
                     "--xml"])
        assert code == 0
        assert "<" in capsys.readouterr().out

    def test_limit(self, book_file, capsys):
        code = main([book_file, "fragment", "--max-size", "2", "-n", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "#1" in out
        assert "#2" not in out

    def test_hide_overlaps(self, book_file, capsys):
        code = main([book_file, "fragment", "join", "--max-size", "4",
                     "--hide-overlaps"])
        assert code == 0

    def test_stats_flag(self, book_file, capsys):
        code = main([book_file, "fragment", "--max-size", "2",
                     "--stats"])
        assert code == 0
        assert "fragment_joins" in capsys.readouterr().out

    def test_strategy_selection(self, book_file, capsys):
        code = main([book_file, "fragment", "join", "--max-size", "3",
                     "--strategy", "brute-force"])
        assert code == 0
        assert "brute-force" in capsys.readouterr().out

    def test_explain_does_not_touch_file(self, capsys):
        code = main(["/nonexistent.xml", "a", "b", "--max-size", "3",
                     "--explain"])
        assert code == 0
        out = capsys.readouterr().out
        assert "σ" in out and "scan" in out

    def test_missing_file_error(self, capsys):
        code = main(["/nonexistent.xml", "a"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_malformed_file_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.xml"
        bad.write_text("<a><b></a>")
        code = main([str(bad), "a"])
        assert code == 2

    def test_height_and_width_filters(self, book_file, capsys):
        code = main([book_file, "fragment", "join",
                     "--max-height", "2", "--max-width", "6"])
        assert code == 0

    def test_no_matches(self, book_file, capsys):
        code = main([book_file, "zebra", "unicorn"])
        assert code == 0
        assert "0 answer(s)" in capsys.readouterr().out

    def test_ranked_output(self, book_file, capsys):
        code = main([book_file, "fragment", "join", "--max-size", "4",
                     "--rank"])
        assert code == 0
        assert "score=" in capsys.readouterr().out

    def test_overlap_policy_group(self, book_file, capsys):
        code = main([book_file, "fragment", "join", "--max-size", "4",
                     "--overlap-policy", "group"])
        assert code == 0

    def test_witness_annotations_in_outline(self, book_file, capsys):
        code = main([book_file, "fragment", "join", "--max-size", "4"])
        assert code == 0
        assert "<=" in capsys.readouterr().out

    def test_directory_search(self, tmp_path, capsys):
        (tmp_path / "a.xml").write_text(
            "<a><b>needle thread</b></a>")
        (tmp_path / "b.xml").write_text(
            "<a><b>needle only</b></a>")
        code = main([str(tmp_path), "needle", "thread",
                     "--max-size", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "1 of 2 document(s)" in out
        assert "a.xml:" in out

    def test_directory_search_xml_output(self, tmp_path, capsys):
        (tmp_path / "a.xml").write_text("<a><b>needle</b></a>")
        code = main([str(tmp_path), "needle", "--xml"])
        assert code == 0
        assert "<b>" in capsys.readouterr().out

    def test_empty_directory(self, tmp_path, capsys):
        code = main([str(tmp_path), "needle"])
        assert code == 2
        assert "no .xml files" in capsys.readouterr().err

    def test_filter_expression(self, book_file, capsys):
        code = main([book_file, "fragment", "join",
                     "--filter", "size<=4 & height<=2"])
        assert code == 0
        assert "size<=4" in capsys.readouterr().out

    def test_bad_filter_expression(self, book_file, capsys):
        code = main([book_file, "fragment", "--filter", "bogus<=3"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_overlap_policy_hide_matches_flag(self, book_file, capsys):
        code = main([book_file, "fragment", "join", "--max-size", "4",
                     "--overlap-policy", "hide"])
        out_policy = capsys.readouterr().out
        code2 = main([book_file, "fragment", "join", "--max-size", "4",
                      "--hide-overlaps"])
        out_flag = capsys.readouterr().out
        assert code == code2 == 0
        # Same fragments shown (timing lines differ).
        assert [l for l in out_policy.splitlines()
                if l.startswith("#")] == \
            [l for l in out_flag.splitlines() if l.startswith("#")]


class TestResilienceFlags:
    def test_flags_parse(self):
        args = build_parser().parse_args(
            ["f.xml", "a", "--timeout-ms", "250", "--retries", "5",
             "--no-fallback"])
        assert args.timeout_ms == 250.0
        assert args.retries == 5
        assert args.no_fallback

    def test_flags_default_to_no_policy(self):
        from repro.cli import _build_resilience
        args = build_parser().parse_args(["f.xml", "a"])
        assert _build_resilience(args) is None

    def test_policy_built_from_flags(self):
        from repro.cli import _build_resilience
        args = build_parser().parse_args(
            ["f.xml", "a", "--timeout-ms", "250", "--no-fallback"])
        policy = _build_resilience(args)
        assert policy.timeout_s == 0.25
        assert policy.fallback == "never"
        assert policy.max_retries == 2  # default retained

    def test_directory_search_with_flags(self, tmp_path, capsys):
        (tmp_path / "a.xml").write_text("<a><b>needle</b></a>")
        code = main([str(tmp_path), "needle", "--workers", "2",
                     "--timeout-ms", "30000", "--retries", "1"])
        assert code == 0
        assert "1 of 1 document(s)" in capsys.readouterr().out


class TestMalformedDirectoryFiles:
    def test_bad_file_skipped_with_warning(self, tmp_path, capsys):
        (tmp_path / "good.xml").write_text("<a><b>needle</b></a>")
        (tmp_path / "bad.xml").write_text("<broken><unclosed>")
        code = main([str(tmp_path), "needle"])
        captured = capsys.readouterr()
        assert code == 0
        assert "warning: skipping" in captured.err
        assert "bad.xml" in captured.err
        assert "1 file(s) skipped" in captured.out
        assert "1 of 1 document(s)" in captured.out

    def test_all_files_malformed_exits_nonzero(self, tmp_path, capsys):
        (tmp_path / "one.xml").write_text("<broken>")
        (tmp_path / "two.xml").write_text("also not xml <")
        code = main([str(tmp_path), "needle"])
        captured = capsys.readouterr()
        assert code == 2
        assert "failed to parse" in captured.err
        assert captured.err.count("warning: skipping") == 2

    def test_batch_over_directory_with_bad_file(self, tmp_path,
                                                capsys):
        (tmp_path / "good.xml").write_text("<a><b>needle</b></a>")
        (tmp_path / "bad.xml").write_text("<broken>")
        batch = tmp_path / "queries.txt"
        batch.write_text("needle\n")
        code = main([str(tmp_path), "--batch", str(batch)])
        captured = capsys.readouterr()
        assert code == 0
        assert "warning: skipping" in captured.err
        assert "1 file(s) skipped" in captured.err


class TestServe:
    def test_serve_answers_stdin_queries(self, book_file, capsys):
        from repro.cli import serve_main
        code = serve_main([book_file], stdin=iter(["fragment\n",
                                                   "# comment\n",
                                                   "\n"]))
        captured = capsys.readouterr()
        assert code == 0
        assert "metrics:" in captured.err
        assert "answer(s)" in captured.out

    def test_serve_keyboard_interrupt_is_clean(self, book_file,
                                               capsys):
        from repro.cli import serve_main

        def lines():
            yield "fragment\n"
            raise KeyboardInterrupt

        code = serve_main([book_file], stdin=lines())
        captured = capsys.readouterr()
        assert code == 130
        assert "interrupted" in captured.err
        assert "Traceback" not in captured.err

    def test_serve_skips_malformed_directory_files(self, tmp_path,
                                                   capsys):
        (tmp_path / "good.xml").write_text("<a><b>needle</b></a>")
        (tmp_path / "bad.xml").write_text("<broken>")
        from repro.cli import serve_main
        code = serve_main([str(tmp_path)], stdin=iter(["needle\n"]))
        captured = capsys.readouterr()
        assert code == 0
        assert "warning: skipping" in captured.err
        assert "1 file(s) skipped" in captured.err

    def test_serve_all_malformed_exits_nonzero(self, tmp_path, capsys):
        (tmp_path / "bad.xml").write_text("<broken>")
        from repro.cli import serve_main
        code = serve_main([str(tmp_path)], stdin=iter([]))
        assert code == 2
        assert "failed to parse" in capsys.readouterr().err

    def test_serve_resilience_flags_parse(self, book_file, capsys):
        from repro.cli import serve_main
        code = serve_main([book_file, "--timeout-ms", "30000",
                           "--retries", "1", "--workers", "1"],
                          stdin=iter(["fragment\n"]))
        assert code == 0


class TestGuardFlags:
    @pytest.fixture()
    def patho_file(self, tmp_path):
        parts = "".join(f"<b{i}>red pear</b{i}>" for i in range(12))
        path = tmp_path / "patho.xml"
        path.write_text(f"<a>{parts}</a>")
        return str(path)

    def test_deadline_abort_exits_3_with_structured_error(
            self, patho_file, capsys):
        import json as jsonlib
        code = main([patho_file, "red", "pear",
                     "--strategy", "brute-force",
                     "--deadline-ms", "200"])
        captured = capsys.readouterr()
        assert code == 3
        detail = jsonlib.loads(captured.err.split("error: ", 1)[1])
        assert detail["error"] == "budget-exceeded"
        assert detail["reason"] == "deadline"
        assert detail["progress"]["join_ops"] > 0

    def test_max_join_ops_abort_exits_3(self, patho_file, capsys):
        code = main([patho_file, "red", "pear",
                     "--strategy", "brute-force",
                     "--max-join-ops", "500"])
        assert code == 3
        assert "budget-exceeded" in capsys.readouterr().err

    def test_generous_budget_matches_unguarded_output(self, book_file,
                                                      capsys):
        import re

        def strip_timing(text):
            return re.sub(r", \d+\.\d+ ms\]", ", _ ms]", text)

        assert main([book_file, "fragment"]) == 0
        unguarded = capsys.readouterr().out
        assert main([book_file, "fragment",
                     "--deadline-ms", "300000",
                     "--max-join-ops", "1000000000"]) == 0
        assert strip_timing(capsys.readouterr().out) \
            == strip_timing(unguarded)

    def test_serve_rejects_bad_lines_and_keeps_serving(self, book_file,
                                                       capsys):
        from repro.cli import serve_main
        code = serve_main([book_file],
                          stdin=iter(["fragment [\n",
                                      "fragment\n"]))
        captured = capsys.readouterr()
        assert code == 0
        assert '"error": "bad-query"' in captured.err
        assert "answer(s)" in captured.out

    def test_serve_budget_abort_keeps_serving(self, tmp_path, capsys):
        parts = "".join(f"<b{i}>red pear</b{i}>" for i in range(12))
        path = tmp_path / "patho.xml"
        path.write_text(f"<a>{parts}</a>")
        from repro.cli import serve_main
        code = serve_main([str(path), "--strategy", "brute-force",
                           "--max-join-ops", "500"],
                          stdin=iter(["red pear\n", "absent\n"]))
        captured = capsys.readouterr()
        assert code == 0
        assert '"error": "budget-exceeded"' in captured.err
        # The follow-up (trivially cheap) query still gets answered.
        assert "0 answer(s)" in captured.out

    def test_serve_admission_rejection_keeps_serving(self, book_file,
                                                     capsys):
        from repro.cli import serve_main
        code = serve_main([book_file, "--max-cost", "0.000001"],
                          stdin=iter(["fragment\n"]))
        captured = capsys.readouterr()
        assert code == 0
        assert '"error": "admission-rejected"' in captured.err

    def test_serve_filter_syntax_on_query_lines(self, book_file,
                                                capsys):
        from repro.cli import serve_main
        code = serve_main([book_file],
                          stdin=iter(["fragment [size<=4]\n"]))
        captured = capsys.readouterr()
        assert code == 0
        assert "size<=4" in captured.out


class TestIndexCli:
    @pytest.fixture()
    def corpus_dir(self, tmp_path):
        d = tmp_path / "corpus"
        d.mkdir()
        (d / "a.xml").write_text("<a><b>needle thread</b></a>")
        (d / "b.xml").write_text("<a><b>needle</b><c>thread</c></a>")
        return str(d)

    def test_build_then_inspect(self, corpus_dir, tmp_path, capsys):
        from repro.cli import index_main
        out = str(tmp_path / "idx")
        assert index_main(["build", corpus_dir, out,
                           "--shards", "2"]) == 0
        assert "2 document(s)" in capsys.readouterr().out
        assert index_main(["inspect", out, "--verify"]) == 0
        inspected = capsys.readouterr().out
        assert "shard(s) attached" in inspected
        assert "OK" in inspected

    def test_inspect_json(self, corpus_dir, tmp_path, capsys):
        import json as _json
        from repro.cli import index_main
        out = str(tmp_path / "idx")
        index_main(["build", corpus_dir, out])
        capsys.readouterr()
        assert index_main(["inspect", out, "--json"]) == 0
        doc = _json.loads(capsys.readouterr().out)
        assert doc["documents"] == 2

    def test_inspect_corrupt_shard_exits_nonzero(self, corpus_dir,
                                                 tmp_path, capsys):
        from pathlib import Path
        from repro.cli import index_main
        out = tmp_path / "idx"
        index_main(["build", corpus_dir, str(out)])
        shard = sorted(out.glob("shard-*.bin"))[0]
        shard.write_bytes(shard.read_bytes()[:16])
        capsys.readouterr()
        assert index_main(["inspect", str(out)]) == 1

    def test_build_missing_directory_errors(self, tmp_path, capsys):
        from repro.cli import index_main
        code = index_main(["build", str(tmp_path / "nope"),
                           str(tmp_path / "idx")])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_serve_from_index(self, corpus_dir, tmp_path, capsys):
        from repro.cli import index_main, serve_main
        out = str(tmp_path / "idx")
        index_main(["build", corpus_dir, out])
        capsys.readouterr()
        code = serve_main(["--index", out],
                          stdin=iter(["needle thread\n"]))
        captured = capsys.readouterr()
        assert code == 0
        assert "answer(s)" in captured.out

    def test_serve_requires_exactly_one_source(self, corpus_dir,
                                               book_file):
        from repro.cli import serve_main
        with pytest.raises(SystemExit):
            serve_main([])
        with pytest.raises(SystemExit):
            serve_main([book_file, "--index", corpus_dir])

    def test_main_dispatches_index(self, corpus_dir, tmp_path, capsys):
        assert main(["index", "build", corpus_dir,
                     str(tmp_path / "idx")]) == 0
        assert "built" in capsys.readouterr().out


class TestStreamFlag:
    def test_single_document_stream(self, book_file, capsys):
        code = main([book_file, "fragment", "join", "--max-size", "4",
                     "--stream", "-n", "2"])
        captured = capsys.readouterr()
        assert code == 0
        assert "streamed answer(s)" in captured.out
        assert "#1" in captured.out
        assert "#3" not in captured.out

    def test_stream_matches_materialized_prefix(self, book_file,
                                                capsys):
        code = main([book_file, "fragment", "join", "--max-size", "4",
                     "-n", "2"])
        assert code == 0
        plain = [line for line in capsys.readouterr().out.splitlines()
                 if line.startswith("#")]
        code = main([book_file, "fragment", "join", "--max-size", "4",
                     "--stream", "-n", "2"])
        assert code == 0
        streamed = [line for line
                    in capsys.readouterr().out.splitlines()
                    if line.startswith("#")]
        # Same fragments in the same order; the streamed line adds a
        # height note, so compare the label prefix.
        assert [l.split("(")[0] for l in streamed] == \
            [l.split("(")[0] for l in plain]

    def test_directory_stream(self, tmp_path, capsys):
        (tmp_path / "x.xml").write_text(
            "<a><b>red pear</b><c>red apple</c></a>")
        (tmp_path / "y.xml").write_text("<a><b>red rose</b></a>")
        code = main([str(tmp_path), "red", "--stream", "-n", "2"])
        captured = capsys.readouterr()
        assert code == 0
        assert "streaming up to 2 answer(s)" in captured.out
        assert "answer(s) streamed" in captured.out
        assert "#1" in captured.out
