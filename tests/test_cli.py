"""End-to-end tests for the repro-search CLI."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.workloads.corpora import BOOK_XML


@pytest.fixture()
def book_file(tmp_path):
    path = tmp_path / "book.xml"
    path.write_text(BOOK_XML)
    return str(path)


class TestParser:
    def test_requires_file_and_keywords(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["f.xml", "a", "b"])
        assert args.strategy == "pushdown"
        assert args.limit == 10
        assert not args.xml


class TestMain:
    def test_basic_search(self, book_file, capsys):
        code = main([book_file, "fragment", "join", "--max-size", "4"])
        captured = capsys.readouterr()
        assert code == 0
        assert "answer(s)" in captured.out
        assert "#1" in captured.out

    def test_xml_output(self, book_file, capsys):
        code = main([book_file, "fragment", "join", "--max-size", "3",
                     "--xml"])
        assert code == 0
        assert "<" in capsys.readouterr().out

    def test_limit(self, book_file, capsys):
        code = main([book_file, "fragment", "--max-size", "2", "-n", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "#1" in out
        assert "#2" not in out

    def test_hide_overlaps(self, book_file, capsys):
        code = main([book_file, "fragment", "join", "--max-size", "4",
                     "--hide-overlaps"])
        assert code == 0

    def test_stats_flag(self, book_file, capsys):
        code = main([book_file, "fragment", "--max-size", "2",
                     "--stats"])
        assert code == 0
        assert "fragment_joins" in capsys.readouterr().out

    def test_strategy_selection(self, book_file, capsys):
        code = main([book_file, "fragment", "join", "--max-size", "3",
                     "--strategy", "brute-force"])
        assert code == 0
        assert "brute-force" in capsys.readouterr().out

    def test_explain_does_not_touch_file(self, capsys):
        code = main(["/nonexistent.xml", "a", "b", "--max-size", "3",
                     "--explain"])
        assert code == 0
        out = capsys.readouterr().out
        assert "σ" in out and "scan" in out

    def test_missing_file_error(self, capsys):
        code = main(["/nonexistent.xml", "a"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_malformed_file_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.xml"
        bad.write_text("<a><b></a>")
        code = main([str(bad), "a"])
        assert code == 2

    def test_height_and_width_filters(self, book_file, capsys):
        code = main([book_file, "fragment", "join",
                     "--max-height", "2", "--max-width", "6"])
        assert code == 0

    def test_no_matches(self, book_file, capsys):
        code = main([book_file, "zebra", "unicorn"])
        assert code == 0
        assert "0 answer(s)" in capsys.readouterr().out

    def test_ranked_output(self, book_file, capsys):
        code = main([book_file, "fragment", "join", "--max-size", "4",
                     "--rank"])
        assert code == 0
        assert "score=" in capsys.readouterr().out

    def test_overlap_policy_group(self, book_file, capsys):
        code = main([book_file, "fragment", "join", "--max-size", "4",
                     "--overlap-policy", "group"])
        assert code == 0

    def test_witness_annotations_in_outline(self, book_file, capsys):
        code = main([book_file, "fragment", "join", "--max-size", "4"])
        assert code == 0
        assert "<=" in capsys.readouterr().out

    def test_directory_search(self, tmp_path, capsys):
        (tmp_path / "a.xml").write_text(
            "<a><b>needle thread</b></a>")
        (tmp_path / "b.xml").write_text(
            "<a><b>needle only</b></a>")
        code = main([str(tmp_path), "needle", "thread",
                     "--max-size", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "1 of 2 document(s)" in out
        assert "a.xml:" in out

    def test_directory_search_xml_output(self, tmp_path, capsys):
        (tmp_path / "a.xml").write_text("<a><b>needle</b></a>")
        code = main([str(tmp_path), "needle", "--xml"])
        assert code == 0
        assert "<b>" in capsys.readouterr().out

    def test_empty_directory(self, tmp_path, capsys):
        code = main([str(tmp_path), "needle"])
        assert code == 2
        assert "no .xml files" in capsys.readouterr().err

    def test_filter_expression(self, book_file, capsys):
        code = main([book_file, "fragment", "join",
                     "--filter", "size<=4 & height<=2"])
        assert code == 0
        assert "size<=4" in capsys.readouterr().out

    def test_bad_filter_expression(self, book_file, capsys):
        code = main([book_file, "fragment", "--filter", "bogus<=3"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_overlap_policy_hide_matches_flag(self, book_file, capsys):
        code = main([book_file, "fragment", "join", "--max-size", "4",
                     "--overlap-policy", "hide"])
        out_policy = capsys.readouterr().out
        code2 = main([book_file, "fragment", "join", "--max-size", "4",
                      "--hide-overlaps"])
        out_flag = capsys.readouterr().out
        assert code == code2 == 0
        # Same fragments shown (timing lines differ).
        assert [l for l in out_policy.splitlines()
                if l.startswith("#")] == \
            [l for l in out_flag.splitlines() if l.startswith("#")]
