"""Tests for the shipped differential-testing harness."""

from __future__ import annotations

import pytest

from repro.testing.differential import (DifferentialReport, TrialFailure,
                                        random_keyword_document,
                                        run_differential_trials)


class TestRandomKeywordDocument:
    def test_deterministic(self):
        a = random_keyword_document(42)
        b = random_keyword_document(42)
        assert a.size == b.size
        for nid in a.node_ids():
            assert a.keywords(nid) == b.keywords(nid)

    def test_size_bounds(self):
        for seed in range(20):
            doc = random_keyword_document(seed, max_nodes=8)
            assert 2 <= doc.size <= 8


class TestRunDifferentialTrials:
    def test_engine_passes_campaign(self):
        report = run_differential_trials(trials=40, seed=3)
        assert report.passed
        assert report.trials == 40
        assert "all evaluation paths agree" in report.summary()

    def test_deterministic_campaign(self):
        a = run_differential_trials(trials=10, seed=9)
        b = run_differential_trials(trials=10, seed=9)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            run_differential_trials(trials=0)

    def test_failure_reporting_shape(self):
        # Fabricate a failure to exercise the report plumbing.
        failure = TrialFailure(trial=1, seed=123, parents=(0,),
                               keyword_nodes={"alpha": [1]},
                               query="Q[true]{alpha}",
                               disagreeing=("pushdown",))
        report = DifferentialReport(trials=5, failures=(failure,))
        assert not report.passed
        assert "123" in report.summary()
