"""Shared hypothesis strategies and deterministic tree factories.

Random documents are built through :class:`DocumentBuilder` (which
renumbers ids to preorder), attaching each new node to a uniformly
chosen existing node — every rooted tree shape is reachable this way.
Keywords are planted from a tiny alphabet so that conjunctive queries
have non-trivial but bounded match sets.
"""

from __future__ import annotations

import random

from hypothesis import strategies as st

from repro.core.fragment import Fragment
from repro.xmltree.builder import DocumentBuilder
from repro.xmltree.document import Document

KEYWORD_ALPHABET = ("alpha", "beta", "gamma")


def make_document(parent_choices: list[int],
                  keyword_choices: list[int], name: str = "random"
                  ) -> Document:
    """Deterministically build a document from draw lists.

    ``parent_choices[i]`` selects the parent of node ``i + 1`` among the
    ``i + 1`` already-built nodes (modulo), and ``keyword_choices[j]``
    selects which alphabet words node ``j`` carries (bitmask).
    """
    builder = DocumentBuilder(name=name)
    ids = [builder.add_root("root", "")]
    for i, choice in enumerate(parent_choices):
        parent = ids[choice % len(ids)]
        ids.append(builder.add_child(parent, "node", ""))
    for j, mask in enumerate(keyword_choices[:len(ids)]):
        words = [w for b, w in enumerate(KEYWORD_ALPHABET)
                 if mask & (1 << b)]
        if words:
            builder.add_keywords(ids[j], words)
    return builder.build()


@st.composite
def documents(draw, min_nodes: int = 1, max_nodes: int = 12):
    """Hypothesis strategy: small random documents with keywords."""
    n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    parent_choices = draw(st.lists(st.integers(min_value=0, max_value=63),
                                   min_size=n - 1, max_size=n - 1))
    keyword_choices = draw(st.lists(st.integers(min_value=0, max_value=7),
                                    min_size=n, max_size=n))
    return make_document(parent_choices, keyword_choices)


@st.composite
def document_and_nodesets(draw, max_nodes: int = 10, max_sets: int = 2,
                          min_set_size: int = 1, max_set_size: int = 4):
    """A document plus ``max_sets`` non-empty single-node fragment sets."""
    doc = draw(documents(min_nodes=2, max_nodes=max_nodes))
    sets = []
    for _ in range(max_sets):
        size = draw(st.integers(min_value=min(min_set_size, doc.size),
                                max_value=min(max_set_size, doc.size)))
        ids = draw(st.lists(st.integers(min_value=0,
                                        max_value=doc.size - 1),
                            min_size=size, max_size=size, unique=True))
        sets.append(frozenset(Fragment(doc, (nid,)) for nid in ids))
    return doc, sets


@st.composite
def document_and_fragments(draw, max_nodes: int = 10,
                           max_fragments: int = 3):
    """A document plus a few random (connected) fragments."""
    doc = draw(documents(min_nodes=2, max_nodes=max_nodes))
    count = draw(st.integers(min_value=1, max_value=max_fragments))
    fragments = []
    for _ in range(count):
        fragments.append(random_fragment(
            doc, draw(st.integers(min_value=0, max_value=2 ** 30))))
    return doc, fragments


def random_fragment(document: Document, seed: int) -> Fragment:
    """A random connected fragment grown from a random start node."""
    rng = random.Random(seed)
    start = rng.randrange(document.size)
    nodes = {start}
    growth = rng.randrange(document.size)
    for _ in range(growth):
        # Candidate expansions keep the set connected: parents of
        # members and children of members.
        frontier = set()
        for node in nodes:
            parent = document.parent(node)
            if parent is not None:
                frontier.add(parent)
            frontier.update(document.children(node))
        frontier -= nodes
        if not frontier:
            break
        nodes.add(rng.choice(sorted(frontier)))
    return Fragment(document, nodes)
