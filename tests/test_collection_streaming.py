"""Differential tests for collection-level streaming search.

The contract under test: ``search(..., stream=True)`` and
``search(..., limit=N)`` yield hits bit-identical (same hits, same
order) to the materialized ``result.hits`` list, serial and pooled,
on both an INEX-like article corpus and a Zipf document-centric
corpus; budget aborts leave a consistent prefix; and the ranked paths
(heap default and ``stream=True`` β rounds) return identical lists.
"""

from __future__ import annotations

import pytest

from repro.collection.collection import DocumentCollection
from repro.core.filters import SizeAtMost
from repro.core.query import Query
from repro.core.strategies import Strategy
from repro.errors import BudgetExceeded
from repro.guard.budget import QueryBudget
from repro.workloads.generator import DocumentSpec, generate_document
from repro.workloads.inexlike import InexSpec, generate_collection

ALL_STRATEGIES = list(Strategy)


def _key(hit):
    return (hit.document_name, tuple(sorted(hit.fragment.nodes)))


@pytest.fixture(scope="module")
def inex():
    return generate_collection(
        InexSpec(articles=6, nodes_per_article=60,
                 planted_fraction=0.8, seed=7))


@pytest.fixture(scope="module")
def zipf():
    coll = DocumentCollection(name="zipf")
    for i in range(4):
        coll.add(generate_document(
            DocumentSpec(nodes=40, vocabulary_size=200,
                         words_per_leaf=3, seed=100 + i,
                         name=f"z{i}")))
    return coll


INEX_QUERY = Query.of("needle", "thread", predicate=SizeAtMost(6))
ZIPF_QUERY = Query.of("search", "note", predicate=SizeAtMost(4))


class TestStreamedEqualsMaterialized:
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_inex_serial(self, inex, strategy):
        expected = [_key(h) for h in
                    inex.search(INEX_QUERY, strategy=strategy).hits]
        streamed = [_key(h) for h in
                    inex.search(INEX_QUERY, strategy=strategy,
                                stream=True)]
        assert streamed == expected
        assert expected, "corpus must produce answers for the test " \
                         "to mean anything"

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_zipf_serial(self, zipf, strategy):
        expected = [_key(h) for h in
                    zipf.search(ZIPF_QUERY, strategy=strategy).hits]
        streamed = [_key(h) for h in
                    zipf.search(ZIPF_QUERY, strategy=strategy,
                                stream=True)]
        assert streamed == expected
        assert expected

    def test_limit_is_materialized_prefix(self, inex):
        expected = [_key(h) for h in inex.search(INEX_QUERY).hits]
        for limit in (1, 3, 7, len(expected) + 10):
            got = [_key(h) for h in
                   inex.search(INEX_QUERY, limit=limit)]
            assert got == expected[:limit]

    def test_workers_stream_identical(self, inex):
        expected = [_key(h) for h in inex.search(INEX_QUERY).hits]
        pooled = [_key(h) for h in
                  inex.search(INEX_QUERY, stream=True, workers=4)]
        assert pooled == expected

    def test_workers_stream_with_limit(self, inex):
        expected = [_key(h) for h in inex.search(INEX_QUERY).hits]
        for limit in (1, 5):
            got = [_key(h) for h in
                   inex.search(INEX_QUERY, stream=True, workers=4,
                               limit=limit)]
            assert got == expected[:limit]


class TestValidation:
    @pytest.mark.parametrize("bad", [0, -1, True, 2.5, "3"])
    def test_search_limit_rejected(self, inex, bad):
        with pytest.raises(ValueError):
            inex.search(INEX_QUERY, limit=bad)

    @pytest.mark.parametrize("bad", [0, -1, True, 2.5, "3"])
    def test_ranked_limit_rejected(self, inex, bad):
        with pytest.raises(ValueError):
            inex.ranked_search(INEX_QUERY, limit=bad)


class TestBudgetAbort:
    def test_stream_prefix_is_consistent(self, inex):
        expected = [_key(h) for h in inex.search(INEX_QUERY).hits]
        collected = []
        with pytest.raises(BudgetExceeded):
            for hit in inex.search(INEX_QUERY, stream=True,
                                   budget=QueryBudget(max_join_ops=200)):
                collected.append(_key(hit))
        # Emission happens only after complete β rounds, so whatever
        # made it out must be an exact prefix of the canonical order.
        assert collected == expected[:len(collected)]

    def test_generous_budget_unchanged(self, inex):
        expected = [_key(h) for h in inex.search(INEX_QUERY).hits]
        got = [_key(h) for h in
               inex.search(INEX_QUERY, stream=True,
                           budget=QueryBudget(max_join_ops=10_000_000))]
        assert got == expected


class TestRankedStreaming:
    def _pairs(self, ranked):
        return [(name, tuple(sorted(s.fragment.nodes)),
                 round(s.score, 12)) for name, s in ranked]

    @pytest.mark.parametrize("limit", [1, 3, 10, 50])
    def test_stream_matches_default(self, inex, limit):
        default = inex.ranked_search(INEX_QUERY, limit=limit)
        streamed = inex.ranked_search(INEX_QUERY, limit=limit,
                                      stream=True)
        assert self._pairs(streamed) == self._pairs(default)

    def test_scores_descend(self, inex):
        ranked = inex.ranked_search(INEX_QUERY, limit=10)
        scores = [s.score for _, s in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_equal_score_ties_break_by_document_name(self):
        # Two identical documents: every fragment scores identically in
        # both, so the canonical ranked order must fall back to the
        # document name (then node ids) — pinned so a refactor cannot
        # silently reorder equal-score hits.
        xml = "<a><b>needle thread</b><c>needle</c></a>"
        coll = DocumentCollection(name="ties")
        coll.add_xml(xml, name="zz")
        coll.add_xml(xml, name="aa")
        ranked = coll.ranked_search(Query.of("needle", "thread"),
                                    limit=10)
        by_score = {}
        for name, scored in ranked:
            by_score.setdefault(
                (round(scored.score, 9),
                 tuple(sorted(scored.fragment.nodes))), []).append(name)
        for names in by_score.values():
            assert names == sorted(names)
