"""Unit tests for the tokenizer."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.index.tokenizer import DEFAULT_STOPWORDS, Tokenizer


class TestTokenizeBasics:
    def test_simple_split(self):
        assert Tokenizer(stopwords=()).tokenize("red apple pie") == \
            ["red", "apple", "pie"]

    def test_case_folding(self):
        assert Tokenizer(stopwords=()).tokenize("XQuery OPTIMIZATION") == \
            ["xquery", "optimization"]

    def test_punctuation_boundaries(self):
        tokens = Tokenizer(stopwords=()).tokenize("end. begin, (mid)")
        assert tokens == ["end", "begin", "mid"]

    def test_numbers_and_underscores_kept(self):
        tokens = Tokenizer(stopwords=()).tokenize("node_17 v2 2006")
        assert tokens == ["node_17", "v2", "2006"]

    def test_apostrophes_kept_inside_words(self):
        tokens = Tokenizer(stopwords=()).tokenize("user's guide")
        assert tokens == ["user's", "guide"]

    def test_empty_text(self):
        assert Tokenizer().tokenize("") == []

    def test_unicode_safe(self):
        # Non-ASCII is split out by the word pattern but must not crash.
        assert Tokenizer(stopwords=()).tokenize("café au lait") \
            == ["caf", "au", "lait"]


class TestStopwordsAndLength:
    def test_default_stopwords_dropped(self):
        tokens = Tokenizer().tokenize("the apple and the pear")
        assert tokens == ["apple", "pear"]

    def test_custom_stopwords(self):
        tok = Tokenizer(stopwords=("apple",))
        assert tok.tokenize("apple pear") == ["pear"]

    def test_stopwords_normalised(self):
        tok = Tokenizer(stopwords=("APPLE",))
        assert tok.tokenize("apple pear") == ["pear"]

    def test_min_length(self):
        tok = Tokenizer(stopwords=(), min_length=3)
        assert tok.tokenize("go for it now") == ["for", "now"]

    def test_min_length_validation(self):
        with pytest.raises(ValueError):
            Tokenizer(min_length=0)

    def test_default_stopword_list_is_lowercase(self):
        assert all(w == w.casefold() for w in DEFAULT_STOPWORDS)


class TestKeywordSet:
    def test_deduplicates(self):
        assert Tokenizer(stopwords=()).keyword_set("a b a b c") == \
            frozenset({"a", "b", "c"})

    def test_matches_tokenize(self):
        tok = Tokenizer()
        text = "red apple and red pear"
        assert tok.keyword_set(text) == frozenset(tok.tokenize(text))

    @given(st.text(alphabet="abc XYZ.,!", max_size=60))
    def test_tokens_are_normalised_and_nonempty(self, text):
        tok = Tokenizer(stopwords=())
        for token in tok.tokenize(text):
            assert token
            assert token == token.casefold()

    @given(st.text(alphabet="abcd ", max_size=60))
    def test_idempotent_on_own_output(self, text):
        tok = Tokenizer(stopwords=())
        once = tok.tokenize(text)
        again = tok.tokenize(" ".join(once))
        assert once == again
