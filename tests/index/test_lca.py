"""Unit and property tests for the LCA indexes."""

from __future__ import annotations

import itertools

from hypothesis import given

from repro.index.lca import BinaryLiftingLca, LcaIndex

from ..treegen import documents


def naive_lca(doc, u, v):
    """Reference LCA via ancestor sets."""
    ancestors_u = {u} | set(doc.ancestors(u))
    current = v
    while current not in ancestors_u:
        current = doc.parent(current)
    return current


class TestLcaIndexUnit:
    def test_chain(self, chain_doc):
        index = LcaIndex(chain_doc)
        assert index.lca(4, 2) == 2
        assert index.lca(0, 4) == 0
        assert index.lca(3, 3) == 3

    def test_tiny(self, tiny_doc):
        index = LcaIndex(tiny_doc)
        assert index.lca(2, 3) == 1
        assert index.lca(3, 5) == 0
        assert index.lca(1, 2) == 1

    def test_single_node_document(self):
        from repro.xmltree.builder import DocumentBuilder
        b = DocumentBuilder()
        b.add_root("a")
        doc = b.build()
        assert LcaIndex(doc).lca(0, 0) == 0
        assert BinaryLiftingLca(doc).lca(0, 0) == 0

    def test_symmetry(self, tiny_doc):
        index = LcaIndex(tiny_doc)
        for u, v in itertools.combinations(range(tiny_doc.size), 2):
            assert index.lca(u, v) == index.lca(v, u)


class TestBinaryLiftingUnit:
    def test_matches_expected(self, tiny_doc):
        index = BinaryLiftingLca(tiny_doc)
        assert index.lca(2, 3) == 1
        assert index.lca(2, 5) == 0
        assert index.lca(0, 3) == 0


class TestLcaProperties:
    @given(documents(max_nodes=20))
    def test_euler_matches_naive(self, doc):
        index = LcaIndex(doc)
        for u, v in itertools.combinations(range(doc.size), 2):
            assert index.lca(u, v) == naive_lca(doc, u, v)

    @given(documents(max_nodes=20))
    def test_binary_lifting_matches_euler(self, doc):
        euler = LcaIndex(doc)
        lifting = BinaryLiftingLca(doc)
        for u, v in itertools.combinations(range(doc.size), 2):
            assert euler.lca(u, v) == lifting.lca(u, v)

    @given(documents(max_nodes=20))
    def test_lca_is_common_ancestor_and_lowest(self, doc):
        index = LcaIndex(doc)
        for u, v in itertools.combinations(range(doc.size), 2):
            lca = index.lca(u, v)
            assert doc.is_ancestor_or_self(lca, u)
            assert doc.is_ancestor_or_self(lca, v)
            # No child of the LCA covers both.
            for child in doc.children(lca):
                assert not (doc.is_ancestor_or_self(child, u)
                            and doc.is_ancestor_or_self(child, v))
