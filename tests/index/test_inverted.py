"""Unit tests for the inverted keyword index."""

from __future__ import annotations

from hypothesis import given

from repro.index.inverted import InvertedIndex

from ..treegen import documents


class TestPostings:
    def test_postings_sorted_and_complete(self, tiny_doc):
        index = InvertedIndex(tiny_doc)
        assert index.postings("red") == [2, 5]
        assert index.postings("pear") == [3, 5]

    def test_absent_keyword_empty(self, tiny_doc):
        index = InvertedIndex(tiny_doc)
        assert index.postings("zebra") == []
        assert not index.contains("zebra")

    def test_postings_are_copies(self, tiny_doc):
        index = InvertedIndex(tiny_doc)
        plist = index.postings("red")
        plist.append(999)
        assert index.postings("red") == [2, 5]

    def test_document_frequency(self, tiny_doc):
        index = InvertedIndex(tiny_doc)
        assert index.document_frequency("red") == 2
        assert index.document_frequency("apple") == 1
        assert index.document_frequency("none") == 0

    def test_selectivity(self, tiny_doc):
        index = InvertedIndex(tiny_doc)
        assert index.selectivity("red") == 2 / 6

    def test_figure1_posting_lists(self, figure1_index):
        assert figure1_index.postings("xquery") == [17, 18]
        assert figure1_index.postings("optimization") == [16, 17, 81]


class TestVocabulary:
    def test_vocabulary_matches_document(self, tiny_doc):
        index = InvertedIndex(tiny_doc)
        assert index.vocabulary() == tiny_doc.vocabulary()

    def test_len_is_term_count(self, tiny_doc):
        index = InvertedIndex(tiny_doc)
        assert len(index) == len(index.vocabulary())

    def test_repr(self, tiny_doc):
        assert "tiny" in repr(InvertedIndex(tiny_doc))


class TestRarestFirst:
    def test_orders_by_frequency(self, tiny_doc):
        index = InvertedIndex(tiny_doc)
        assert index.rarest_first(["red", "apple"]) == ["apple", "red"]

    def test_unknown_terms_first(self, tiny_doc):
        index = InvertedIndex(tiny_doc)
        assert index.rarest_first(["red", "zzz"]) == ["zzz", "red"]


class TestAgainstLinearScan:
    @given(documents(max_nodes=15))
    def test_postings_equal_scan(self, doc):
        index = InvertedIndex(doc)
        for word in doc.vocabulary():
            assert index.postings(word) == doc.nodes_with_keyword(word)

    @given(documents(max_nodes=15))
    def test_postings_sorted(self, doc):
        index = InvertedIndex(doc)
        for word in index.vocabulary():
            plist = index.postings(word)
            assert plist == sorted(plist)
