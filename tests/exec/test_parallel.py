"""Determinism and behaviour tests for ``repro.exec``.

The parallel executor's contract is exact equality with the serial
path: same per-document results, same hit order, same ranked order —
for every strategy, worker count and kernel.  These tests pin that
contract on a small synthetic collection.
"""

from __future__ import annotations

import pytest

from repro.collection.collection import DocumentCollection
from repro.core.query import Query
from repro.core.strategies import Strategy
from repro.errors import DocumentError, QueryError
from repro.exec import BatchRunner, ParallelExecutor
from repro.obs import DOCUMENTS_SKIPPED, Observability
from repro.workloads.inexlike import InexSpec, generate_collection

WORKER_COUNTS = (1, 2, 4)
STRATEGIES = (Strategy.BRUTE_FORCE, Strategy.SET_REDUCTION,
              Strategy.PUSHDOWN)


@pytest.fixture(scope="module")
def corpus() -> DocumentCollection:
    return generate_collection(
        InexSpec(articles=8, nodes_per_article=160, seed=11))


@pytest.fixture(scope="module")
def query() -> Query:
    return Query(("needle", "thread"))


def _hit_signature(result):
    return [(hit.document_name, tuple(sorted(hit.fragment.nodes)))
            for hit in result.hits]


class TestDeterminism:
    @pytest.mark.parametrize("strategy", STRATEGIES,
                             ids=lambda s: s.value)
    def test_parallel_search_equals_serial(self, corpus, query, strategy):
        serial = corpus.search(query, strategy=strategy)
        for workers in WORKER_COUNTS:
            parallel = corpus.search(query, strategy=strategy,
                                     workers=workers)
            assert list(parallel.per_document) == list(serial.per_document)
            for name, expected in serial.per_document.items():
                got = parallel.per_document[name]
                assert got.fragments == expected.fragments
                assert got.strategy == expected.strategy
            assert _hit_signature(parallel) == _hit_signature(serial)

    def test_bitset_kernel_parallel_equals_serial(self, corpus, query):
        serial = corpus.search(query)
        parallel = corpus.search(query, workers=2, kernel="bitset")
        assert _hit_signature(parallel) == _hit_signature(serial)

    def test_ranked_search_parity(self, corpus, query):
        serial = corpus.ranked_search(query, limit=8)
        for workers in WORKER_COUNTS:
            parallel = corpus.ranked_search(query, limit=8,
                                            workers=workers)
            assert ([(n, s.fragment.nodes, s.score) for n, s in parallel]
                    == [(n, s.fragment.nodes, s.score)
                        for n, s in serial])

    def test_document_subset_preserves_order(self, corpus, query):
        subset = corpus.names()[::2][::-1]  # reversed half: caller order
        serial = corpus.search(query, documents=subset)
        parallel = corpus.search(query, documents=subset, workers=2)
        assert list(parallel.per_document) == list(serial.per_document)
        assert _hit_signature(parallel) == _hit_signature(serial)


class TestParallelExecutor:
    def test_standalone_executor(self, corpus, query):
        documents = {name: corpus.document(name)
                     for name in corpus.names()}
        serial = corpus.search(query)
        with ParallelExecutor(documents, workers=2) as executor:
            result = executor.search(query)
            assert _hit_signature(result) == _hit_signature(serial)
            # Second query on the same pool reuses warm worker state.
            again = executor.search(query)
            assert _hit_signature(again) == _hit_signature(serial)

    def test_early_exit_skips_documents(self, corpus):
        query = Query(("needle", "no-such-term-anywhere"))
        obs = Observability()
        documents = {name: corpus.document(name)
                     for name in corpus.names()}
        with ParallelExecutor(documents, workers=2, obs=obs) as executor:
            result = executor.search(query)
        assert len(result) == 0
        assert not result.per_document
        skipped = obs.metrics.counter(
            DOCUMENTS_SKIPPED,
            "Documents skipped by the index early exit.").value
        assert skipped == len(corpus)

    def test_rejects_bad_arguments(self, corpus, query):
        documents = {name: corpus.document(name)
                     for name in corpus.names()}
        with pytest.raises(DocumentError):
            ParallelExecutor({})
        with pytest.raises(QueryError):
            ParallelExecutor(documents, workers=0)
        with ParallelExecutor(documents, workers=2) as executor:
            with pytest.raises(DocumentError, match="unknown document"):
                executor.search(query, documents=["no-such-doc"])
            with pytest.raises(QueryError, match="unknown join kernel"):
                executor.search(query, kernel="turbo")

    def test_collection_invalidates_pool_on_add(self, query):
        collection = generate_collection(
            InexSpec(articles=4, nodes_per_article=120, seed=23))
        first = collection.search(query, workers=2)
        executor = collection._executor
        assert executor is not None
        extra = generate_collection(
            InexSpec(articles=1, nodes_per_article=120, seed=29))
        name = extra.names()[0]
        collection.add(extra.document(name), name="late-arrival")
        assert collection._executor is None  # pool snapshot invalidated
        second = collection.search(query, workers=2)
        assert collection._executor is not executor
        assert "late-arrival" in collection.names()
        assert len(second) >= len(first)


class TestBatchRunner:
    def test_batch_matches_per_query_serial(self, corpus):
        queries = [Query(("needle", "thread")), Query(("needle",)),
                   Query(("thread",)), Query(("needle", "zzz-missing"))]
        serial = [corpus.search(q) for q in queries]
        with BatchRunner(corpus, workers=2) as runner:
            batch = runner.run(queries)
        assert len(batch) == len(serial)
        for got, expected in zip(batch, serial):
            assert _hit_signature(got) == _hit_signature(expected)

    def test_serial_mode(self, corpus, query):
        runner = BatchRunner(corpus)  # workers=None: no pool
        results = runner.run([query, query])
        expected = corpus.search(query)
        for result in results:
            assert _hit_signature(result) == _hit_signature(expected)
        assert runner._executor is None

    def test_empty_batch(self, corpus):
        with BatchRunner(corpus, workers=2) as runner:
            assert runner.run([]) == []

    def test_batch_counter(self, corpus, query):
        from repro.obs import BATCH_QUERIES
        obs = Observability()
        runner = BatchRunner(corpus, obs=obs)
        runner.run([query, query, query])
        assert obs.metrics.counter(
            BATCH_QUERIES,
            "Queries evaluated through BatchRunner.").value == 3
