"""Fault-tolerance tests for the parallel executor.

The resilience contract: whatever faults hit the pool — crashed
workers, hung chunks, transiently failing chunks — the caller gets the
exact serial result, or (only with ``fallback="never"``) a clean
:class:`~repro.errors.ExecutionError`.  Faults are injected through
:mod:`repro.exec.faults`, which is deterministic per (chunk, attempt).

Every pooled test carries a hard ``timeout`` marker (see
``tests/conftest.py``): a regression that wedges the pool should fail
loudly, not hang CI.
"""

from __future__ import annotations

import pytest

from repro.core.query import Query
from repro.errors import ExecutionError
from repro.exec import (BatchRunner, FaultPlan, FaultRule,
                        ParallelExecutor, RetryPolicy)
from repro.exec.faults import (FLAKY_CHUNK, HANG_WORKER, KILL_WORKER,
                               apply_fault)
from repro.obs import (CHUNK_FALLBACKS, CHUNK_RETRIES, CHUNK_TIMEOUTS,
                       EXEC_DEGRADED, POOL_RESPAWNS, WORKER_CRASHES,
                       Observability)
from repro.workloads.inexlike import InexSpec, generate_collection

pytestmark = pytest.mark.timeout(120)

FAST = dict(backoff_s=0.01, jitter=0.0)


@pytest.fixture(scope="module")
def corpus():
    return generate_collection(
        InexSpec(articles=6, nodes_per_article=140, seed=7))


@pytest.fixture(scope="module")
def documents(corpus):
    return {name: corpus.document(name) for name in corpus.names()}


@pytest.fixture(scope="module")
def queries():
    return [Query(("needle", "thread")), Query(("needle",))]


@pytest.fixture(scope="module")
def serial(corpus, queries):
    return [corpus.search(q) for q in queries]


def _sig(result):
    return [(hit.document_name, tuple(sorted(hit.fragment.nodes)))
            for hit in result.hits]


def _assert_identical(results, serial):
    assert [_sig(r) for r in results] == [_sig(r) for r in serial]
    for got, expected in zip(results, serial):
        assert list(got.per_document) == list(expected.per_document)
        for name, want in expected.per_document.items():
            assert got.per_document[name].fragments == want.fragments


class TestKilledWorker:
    def test_pool_respawns_and_results_match(self, documents, queries,
                                             serial):
        obs = Observability()
        with ParallelExecutor(
                documents, workers=2, obs=obs,
                resilience=RetryPolicy(**FAST),
                faults=FaultPlan(FaultRule.kill(chunk=0))) as ex:
            results = ex.run(queries)
        _assert_identical(results, serial)
        report = ex.last_report
        assert report.crashes >= 1
        assert report.respawns >= 1
        assert report.retries >= 1
        assert not report.degraded
        assert obs.metrics.get(POOL_RESPAWNS).value >= 1
        assert obs.metrics.get(WORKER_CRASHES).value >= 1
        assert obs.metrics.get(EXEC_DEGRADED).value == 0

    def test_repeated_kills_fall_back_serially(self, documents, queries,
                                               serial):
        # Chunk 0 dies on every attempt: exhaust retries, then the
        # parent evaluates it in-process — results still identical.
        with ParallelExecutor(
                documents, workers=2,
                resilience=RetryPolicy(max_retries=1, **FAST),
                faults=FaultPlan(
                    FaultRule.kill(chunk=0, times=99))) as ex:
            results = ex.run(queries)
        _assert_identical(results, serial)
        assert ex.degraded
        assert ex.last_report.fallback_chunks == 1
        assert ex.last_report.fallback_items > 0


class TestHungWorker:
    def test_deadline_times_out_hung_chunk(self, documents, queries,
                                           serial):
        obs = Observability()
        with ParallelExecutor(
                documents, workers=2, obs=obs,
                resilience=RetryPolicy(timeout_s=0.75, **FAST),
                faults=FaultPlan(
                    FaultRule.hang(chunk=0, hang_s=30))) as ex:
            results = ex.run(queries)
        _assert_identical(results, serial)
        report = ex.last_report
        assert report.timeouts == 1
        assert report.respawns >= 1  # hung worker is terminated
        assert not report.degraded
        assert obs.metrics.get(CHUNK_TIMEOUTS).value == 1

    def test_short_hang_within_deadline_succeeds(self, documents,
                                                 queries, serial):
        with ParallelExecutor(
                documents, workers=2,
                resilience=RetryPolicy(timeout_s=30.0, **FAST),
                faults=FaultPlan(
                    FaultRule.hang(chunk=0, hang_s=0.1))) as ex:
            results = ex.run(queries)
        _assert_identical(results, serial)
        assert ex.last_report.clean


class TestFlakyChunk:
    def test_retry_recovers_transient_failure(self, documents, queries,
                                              serial):
        obs = Observability()
        with ParallelExecutor(
                documents, workers=2, obs=obs,
                resilience=RetryPolicy(max_retries=2, **FAST),
                faults=FaultPlan(
                    FaultRule.flaky(chunk=0, times=2))) as ex:
            results = ex.run(queries)
        _assert_identical(results, serial)
        report = ex.last_report
        assert report.retries == 2
        assert report.crashes == 0 and report.timeouts == 0
        assert not report.degraded
        assert obs.metrics.get(CHUNK_RETRIES).value == 2

    def test_every_chunk_degrades_to_serial(self, documents, queries,
                                            serial):
        # chunk=None matches every chunk, times=99 beats any retry
        # budget: the whole run degrades and must still be identical.
        obs = Observability()
        with ParallelExecutor(
                documents, workers=2, obs=obs,
                resilience=RetryPolicy(max_retries=1, **FAST),
                faults=FaultPlan(
                    FaultRule.flaky(chunk=None, times=99))) as ex:
            results = ex.run(queries)
            _assert_identical(results, serial)
            assert ex.degraded
            assert ex.last_report.fallback_chunks > 0
            assert obs.metrics.get(EXEC_DEGRADED).value == 1
            assert (obs.metrics.get(CHUNK_FALLBACKS).value
                    == ex.last_report.fallback_chunks)
            # A clean follow-up run on the same pool resets the gauge.
            again = ex.run(queries, faults=FaultPlan())
            _assert_identical(again, serial)
            assert not ex.degraded
            assert obs.metrics.get(EXEC_DEGRADED).value == 0

    def test_fallback_never_raises(self, documents, queries):
        with ParallelExecutor(
                documents, workers=2,
                resilience=RetryPolicy(max_retries=1, fallback="never",
                                       **FAST),
                faults=FaultPlan(
                    FaultRule.flaky(chunk=0, times=99))) as ex:
            with pytest.raises(ExecutionError, match="fallback is "
                                                     "disabled"):
                ex.run(queries)


class TestDeterminismUnderFaults:
    def test_degraded_results_are_bit_identical(self, corpus, queries,
                                                serial):
        # The acceptance bar: kill + hang + flaky in one run, results
        # indistinguishable from serial, repeated for stability.
        plan = FaultPlan(FaultRule.kill(chunk=1),
                         FaultRule.hang(chunk=2, hang_s=30),
                         FaultRule.flaky(chunk=3, times=1))
        for _ in range(2):
            results = corpus.search(
                queries[0], workers=2,
                resilience=RetryPolicy(timeout_s=1.0, **FAST),
                faults=plan)
            assert _sig(results) == _sig(serial[0])

    def test_ranked_search_with_faults(self, corpus, queries):
        expected = corpus.ranked_search(queries[0], limit=8)
        got = corpus.ranked_search(
            queries[0], limit=8, workers=2,
            resilience=RetryPolicy(**FAST),
            faults=FaultPlan(FaultRule.kill(chunk=0)))
        assert ([(n, s.fragment.nodes, s.score) for n, s in got]
                == [(n, s.fragment.nodes, s.score) for n, s in expected])


class TestBatchRunnerResilience:
    def test_batch_with_faults_matches_serial(self, corpus):
        queries = [Query(("needle", "thread")), Query(("needle",)),
                   Query(("thread",))]
        expected = [corpus.search(q) for q in queries]
        with BatchRunner(corpus, workers=2,
                         resilience=RetryPolicy(**FAST),
                         faults=FaultPlan(
                             FaultRule.kill(chunk=0))) as runner:
            results = runner.run(queries)
        for got, want in zip(results, expected):
            assert _sig(got) == _sig(want)
        assert runner.last_report is not None
        assert runner.last_report.crashes >= 1

    def test_last_report_none_before_first_run(self, corpus):
        runner = BatchRunner(corpus, workers=2)
        assert runner.last_report is None
        runner.shutdown()


class TestPolicyAndPlanValidation:
    def test_retry_policy_rejects_bad_values(self):
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=0)
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_s=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(fallback="retry-forever")

    def test_delay_grows_and_jitters(self):
        policy = RetryPolicy(backoff_s=0.1, backoff_multiplier=2.0,
                             jitter=0.0)
        assert policy.delay(0) == pytest.approx(0.1)
        assert policy.delay(1) == pytest.approx(0.2)
        assert policy.delay(2) == pytest.approx(0.4)

    def test_fault_rule_matching(self):
        rule = FaultRule.flaky(chunk=2, times=2)
        assert rule.matches(2, 0) and rule.matches(2, 1)
        assert not rule.matches(2, 2)  # budget spent
        assert not rule.matches(1, 0)  # other chunk
        any_chunk = FaultRule.kill(chunk=None)
        assert any_chunk.matches(0, 0) and any_chunk.matches(7, 0)

    def test_plan_directives_are_picklable_dicts(self):
        import pickle
        plan = FaultPlan(FaultRule.hang(chunk=0, hang_s=5.0))
        directive = plan.for_chunk(0, 0)
        assert directive["kind"] == HANG_WORKER
        assert directive["hang_s"] == 5.0
        assert pickle.loads(pickle.dumps(directive)) == directive
        assert plan.for_chunk(1, 0) is None

    def test_apply_fault_noop_on_none(self):
        apply_fault(None)  # must be safe in the common no-fault path

    def test_fault_kinds_exported(self):
        assert {KILL_WORKER, HANG_WORKER, FLAKY_CHUNK} == {
            "kill-worker", "hang-worker", "flaky-chunk"}
