"""Worker telemetry propagation tests (repro.exec ⇄ repro.obs.delta).

The contract: observability output means the same thing at any worker
count.  Pool workers run with their own handles, ship span trees,
metric deltas and query records back in-band, and the parent merges
them — so the parent-side counters equal the serial ones exactly, and
spans/records carry a ``worker=N`` provenance label.

Collections are built fresh per run: the serial path shares one join
cache across queries, so reusing a warm collection would skew the
counter comparison.
"""

from __future__ import annotations

import pytest

from repro.collection.collection import DocumentCollection
from repro.core.query import Query
from repro.core.strategies import Strategy
from repro.obs import (FRAGMENT_JOINS, POOL_CHUNKS, PREDICATE_CHECKS,
                       QUERIES_TOTAL, Observability, QueryLog)
from repro.workloads.inexlike import InexSpec, generate_collection

SPEC = InexSpec(articles=8, nodes_per_article=160, seed=11)
QUERY = Query(("needle", "thread"))


def _fresh_collection() -> DocumentCollection:
    return generate_collection(SPEC)


def _counters(obs: Observability) -> dict[str, float]:
    return {record["name"]: record["value"]
            for record in obs.metrics.to_json()["metrics"]
            if record["kind"] in ("counter", "gauge")
            and not record.get("labels")}


def _span_names(span) -> set[str]:
    names = {span.name}
    for child in span.children:
        names |= _span_names(child)
    return names


class TestCounterDeterminism:
    @pytest.mark.parametrize("workers", (1, 2, 4))
    def test_parent_counters_equal_serial(self, workers):
        serial_obs = Observability()
        with _fresh_collection() as collection:
            serial = collection.search(QUERY, obs=serial_obs)
        parallel_obs = Observability()
        with _fresh_collection() as collection:
            parallel = collection.search(QUERY, obs=parallel_obs,
                                         workers=workers)
        # Fragments are compared by node signature: the two runs use
        # separately generated (but identical) Document objects.
        def signature(result):
            return {name: {tuple(sorted(f.nodes)) for f in r.fragments}
                    for name, r in result.per_document.items()}

        assert signature(parallel) == signature(serial)
        serial_counts = _counters(serial_obs)
        parallel_counts = _counters(parallel_obs)
        for name in (QUERIES_TOTAL, FRAGMENT_JOINS, PREDICATE_CHECKS):
            assert parallel_counts[name] == serial_counts[name], name
        assert parallel_counts[QUERIES_TOTAL] > 0
        assert parallel_counts[FRAGMENT_JOINS] > 0

    def test_strategy_counters_survive_the_pool(self):
        obs = Observability()
        with _fresh_collection() as collection:
            collection.search(QUERY, strategy=Strategy.SET_REDUCTION,
                              obs=obs, workers=2)
        labelled = {(r["name"], r["labels"].get("strategy"))
                    for r in obs.metrics.to_json()["metrics"]
                    if r.get("labels", {}).get("strategy")}
        assert ("repro_queries_by_strategy_total",
                Strategy.SET_REDUCTION.value) in labelled


class TestProvenance:
    def test_query_records_carry_worker_labels(self):
        obs = Observability(query_log=QueryLog())
        with _fresh_collection() as collection:
            collection.search(QUERY, obs=obs, workers=2)
        records = obs.query_log.records
        assert records
        assert all(record.worker is not None for record in records)
        assert all(record.worker.isdigit() for record in records)

    def test_worker_spans_graft_under_the_parallel_span(self):
        obs = Observability(query_log=QueryLog())
        with _fresh_collection() as collection:
            collection.search(QUERY, obs=obs, workers=2)
        names = set()
        for root in obs.tracer.roots:
            names |= _span_names(root)
        assert "parallel-search" in names
        assert "execute" in names  # rehydrated worker span

    def test_worker_attribute_on_adopted_spans(self):
        obs = Observability()
        with _fresh_collection() as collection:
            collection.search(QUERY, obs=obs, workers=2)

        def walk(span):
            yield span
            for child in span.children:
                yield from walk(child)

        workers = {span.attributes["worker"]
                   for root in obs.tracer.roots
                   for span in walk(root)
                   if "worker" in span.attributes}
        assert workers  # at least one worker shipped spans
        assert all(w.isdigit() for w in workers)

    def test_pool_metrics_recorded(self):
        obs = Observability()
        with _fresh_collection() as collection:
            collection.search(QUERY, obs=obs, workers=2)
        counts = _counters(obs)
        assert counts.get(POOL_CHUNKS, 0) > 0


class TestSlowQueryRederivation:
    def test_parent_threshold_marks_worker_records(self):
        # Workers log without a threshold; with a 0 ms parent threshold
        # every merged record must be re-derived as slow.
        obs = Observability(query_log=QueryLog(slow_query_ms=0.0))
        with _fresh_collection() as collection:
            collection.search(QUERY, obs=obs, workers=2)
        records = obs.query_log.records
        assert records
        assert all(record.slow for record in records)


class TestRecorderAcrossWorkers:
    """Flight-recorder profiles and histograms across the delta merge."""

    def _profiled_obs(self) -> Observability:
        from repro.obs import FlightRecorder, RecorderConfig
        return Observability(recorder=FlightRecorder(
            RecorderConfig(slow_ms=None, sample_rate=1.0, seed=5)))

    def _histogram_export(self, obs, name):
        for record in obs.metrics.to_json()["metrics"]:
            if record["name"] == name:
                return record
        return None

    def test_histograms_merge_without_double_counting(self):
        from repro.obs import RECORDER_LATENCY, RECORDER_RESULT_SIZE

        serial_obs = self._profiled_obs()
        with _fresh_collection() as collection:
            collection.search(QUERY, obs=serial_obs)
        parallel_obs = self._profiled_obs()
        with _fresh_collection() as collection:
            collection.search(QUERY, obs=parallel_obs, workers=2)

        for name in (RECORDER_LATENCY, RECORDER_RESULT_SIZE):
            serial = self._histogram_export(serial_obs, name)
            parallel = self._histogram_export(parallel_obs, name)
            assert serial is not None and parallel is not None
            # one sample per evaluated document, counted exactly once
            assert parallel["count"] == serial["count"]
            assert sum(parallel["counts"]) == parallel["count"]
        # result-size samples are integers: the sums must agree exactly
        size_serial = self._histogram_export(serial_obs,
                                             RECORDER_RESULT_SIZE)
        size_parallel = self._histogram_export(parallel_obs,
                                               RECORDER_RESULT_SIZE)
        assert size_parallel["sum"] == size_serial["sum"]

    def test_prometheus_buckets_and_inf_after_merge(self):
        from repro.obs import RECORDER_LATENCY

        obs = self._profiled_obs()
        with _fresh_collection() as collection:
            collection.search(QUERY, obs=obs, workers=2)
        prom = obs.metrics.to_prometheus()
        assert 'repro_recorder_latency_seconds_bucket{le="+Inf"}' in prom
        # cumulative export: the +Inf bucket equals the sample count
        count_line = [l for l in prom.splitlines()
                      if l.startswith("repro_recorder_latency_seconds_"
                                      "count")][0]
        inf_line = [l for l in prom.splitlines()
                    if l.startswith("repro_recorder_latency_seconds_"
                                    "bucket") and '+Inf' in l][0]
        assert count_line.split()[-1] == inf_line.split()[-1]

    def test_worker_profiles_carry_provenance_and_traces(self):
        obs = self._profiled_obs()
        with _fresh_collection() as collection:
            collection.search(QUERY, obs=obs, workers=2)
        profiles = obs.recorder.profiles
        assert profiles
        assert all(p.worker is not None for p in profiles)
        retained = [p for p in profiles if p.trace_id]
        assert retained
        doc = obs.recorder.chrome_trace(retained[0].trace_id)
        assert any(e["name"] == "execute" for e in doc["traceEvents"])

    def test_parent_ring_matches_serial_profile_count(self):
        serial_obs = self._profiled_obs()
        with _fresh_collection() as collection:
            collection.search(QUERY, obs=serial_obs)
        parallel_obs = self._profiled_obs()
        with _fresh_collection() as collection:
            collection.search(QUERY, obs=parallel_obs, workers=2)
        assert len(parallel_obs.recorder.profiles) \
            == len(serial_obs.recorder.profiles)

    def test_calibration_ratio_matches_serial(self):
        serial_obs = self._profiled_obs()
        with _fresh_collection() as collection:
            collection.search(QUERY, obs=serial_obs)
        parallel_obs = self._profiled_obs()
        with _fresh_collection() as collection:
            collection.search(QUERY, obs=parallel_obs, workers=2)
        serial = serial_obs.recorder.publish_calibration(
            serial_obs.metrics)
        parallel = parallel_obs.recorder.publish_calibration(
            parallel_obs.metrics)
        assert set(parallel) == set(serial)
        for strategy, ratio in serial.items():
            assert parallel[strategy] == pytest.approx(ratio, rel=1e-6)
