"""Unit tests for the plan evaluator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.evaluator import PlanEvaluator, run_plan
from repro.core.filters import SizeAtMost
from repro.core.optimizer import OptimizerSettings, optimize
from repro.core.plan import (FixedPoint, KeywordScan, PairwiseJoin,
                             PowersetJoin, Select, initial_plan)
from repro.core.query import Query
from repro.core.stats import OperationStats
from repro.core.strategies import Strategy, evaluate
from repro.errors import PlanError
from repro.index.inverted import InvertedIndex

from ..treegen import documents


class TestOperatorExecution:
    def test_scan(self, figure1):
        evaluator = PlanEvaluator(figure1)
        result = evaluator.execute(KeywordScan("xquery"))
        assert {f.root for f in result} == {17, 18}

    def test_scan_with_index(self, figure1, figure1_index):
        evaluator = PlanEvaluator(figure1, index=figure1_index)
        result = evaluator.execute(KeywordScan("optimization"))
        assert {f.root for f in result} == {16, 17, 81}

    def test_select(self, figure1):
        evaluator = PlanEvaluator(figure1)
        plan = Select(SizeAtMost(1), KeywordScan("xquery"))
        result = evaluator.execute(plan)
        assert len(result) == 2

    def test_pairwise_join(self, figure1):
        evaluator = PlanEvaluator(figure1)
        plan = PairwiseJoin(KeywordScan("xquery"),
                            KeywordScan("optimization"))
        result = evaluator.execute(plan)
        assert frozenset([16, 17, 18]) in {f.nodes for f in result}

    def test_fixed_point_bounded_and_semi_naive_agree(self, figure1):
        evaluator = PlanEvaluator(figure1)
        bounded = evaluator.execute(
            FixedPoint(KeywordScan("optimization"), bounded=True))
        lazy = evaluator.execute(
            FixedPoint(KeywordScan("optimization"), bounded=False))
        assert bounded == lazy

    def test_powerset_join(self, figure1):
        evaluator = PlanEvaluator(figure1)
        plan = PowersetJoin((KeywordScan("xquery"),
                             KeywordScan("optimization")))
        result = evaluator.execute(plan)
        assert len(result) == 7  # Table 1's unique fragments

    def test_powerset_guard(self, figure1):
        evaluator = PlanEvaluator(figure1, max_powerset_operand=1)
        plan = PowersetJoin((KeywordScan("xquery"),
                             KeywordScan("optimization")))
        with pytest.raises(Exception, match="refused"):
            evaluator.execute(plan)

    def test_unknown_node_rejected(self, figure1):
        class Bogus:
            pass

        with pytest.raises(PlanError):
            PlanEvaluator(figure1)._eval(Bogus(), OperationStats())


class TestPlanEquivalence:
    """Optimised plans compute exactly the initial plan's answer."""

    @settings(max_examples=30, deadline=None)
    @given(documents(min_nodes=3, max_nodes=9))
    def test_initial_vs_optimized(self, doc):
        query = Query.of("alpha", "beta", predicate=SizeAtMost(3))
        evaluator = PlanEvaluator(doc)
        reference = evaluator.execute(initial_plan(query))
        optimised = evaluator.execute(optimize(query))
        assert reference == optimised

    @settings(max_examples=30, deadline=None)
    @given(documents(min_nodes=3, max_nodes=9))
    def test_pushdown_toggle_same_result(self, doc):
        query = Query.of("alpha", "beta", predicate=SizeAtMost(3))
        evaluator = PlanEvaluator(doc)
        on = evaluator.execute(optimize(query))
        off = evaluator.execute(
            optimize(query, OptimizerSettings(push_down=False)))
        assert on == off

    def test_plan_matches_strategy_api(self, figure1):
        query = Query.of("xquery", "optimization",
                         predicate=SizeAtMost(3))
        via_plan = PlanEvaluator(figure1).execute(optimize(query))
        via_strategy = evaluate(figure1, query,
                                strategy=Strategy.PUSHDOWN).fragments
        assert via_plan == via_strategy


class TestRunPlan:
    def test_wraps_result(self, figure1):
        query = Query.of("xquery", "optimization",
                         predicate=SizeAtMost(3))
        result = run_plan(figure1, query, optimize(query),
                          strategy_name="optimized")
        assert result.strategy == "optimized"
        assert len(result.fragments) == 4
        assert result.stats["predicate_checks"] > 0

    def test_index_used(self, figure1, figure1_index):
        query = Query.of("xquery", predicate=SizeAtMost(2))
        result = run_plan(figure1, query, optimize(query),
                          index=figure1_index)
        assert result.fragments
