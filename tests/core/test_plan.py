"""Unit tests for logical plans (Figure 5 query evaluation trees)."""

from __future__ import annotations

import pytest

from repro.core.filters import SizeAtLeast, SizeAtMost
from repro.core.plan import (FixedPoint, KeywordScan, PairwiseJoin,
                             PlanNode, PowersetJoin, Select, explain,
                             initial_plan)
from repro.core.query import Query
from repro.errors import PlanError


class TestPlanNodes:
    def test_scan_label(self):
        assert KeywordScan("xquery").label() == "scan[keyword=xquery]"

    def test_select_label_marks_anti_monotonic(self):
        am = Select(SizeAtMost(3), KeywordScan("a"))
        other = Select(SizeAtLeast(3), KeywordScan("a"))
        assert am.label().startswith("σa")
        assert other.label().startswith("σ[")

    def test_join_children(self):
        join = PairwiseJoin(KeywordScan("a"), KeywordScan("b"))
        assert len(join.children()) == 2
        assert join.label() == "⋈"

    def test_fixed_point_modes(self):
        bounded = FixedPoint(KeywordScan("a"), bounded=True)
        lazy = FixedPoint(KeywordScan("a"), bounded=False)
        assert "bounded" in bounded.label()
        assert "semi-naive" in lazy.label()

    def test_fixed_point_prune_label(self):
        pruned = FixedPoint(KeywordScan("a"), predicate=SizeAtMost(2))
        assert "prune=size<=2" in pruned.label()

    def test_fixed_point_rejects_non_am_prune(self):
        with pytest.raises(PlanError, match="anti-monotonic"):
            FixedPoint(KeywordScan("a"), predicate=SizeAtLeast(2))

    def test_powerset_requires_operands(self):
        with pytest.raises(PlanError):
            PowersetJoin(())

    def test_base_label_abstract(self):
        with pytest.raises(NotImplementedError):
            PlanNode().label()

    def test_walk_preorder(self):
        plan = Select(SizeAtMost(1),
                      PairwiseJoin(KeywordScan("a"), KeywordScan("b")))
        kinds = [type(n).__name__ for n in plan.walk()]
        assert kinds == ["Select", "PairwiseJoin", "KeywordScan",
                         "KeywordScan"]


class TestInitialPlan:
    def test_shape(self):
        query = Query.of("a", "b", predicate=SizeAtMost(3))
        plan = initial_plan(query)
        assert isinstance(plan, Select)
        assert isinstance(plan.child, PowersetJoin)
        assert [s.term for s in plan.child.operands] == ["a", "b"]

    def test_single_term(self):
        plan = initial_plan(Query.of("a"))
        assert isinstance(plan.child, PowersetJoin)
        assert len(plan.child.operands) == 1


class TestExplain:
    def test_indented_tree(self):
        query = Query.of("a", "b", predicate=SizeAtMost(3))
        rendered = explain(initial_plan(query))
        lines = rendered.splitlines()
        assert lines[0].startswith("σa")
        assert lines[1].strip() == "⋈*"
        assert lines[2].strip() == "scan[keyword=a]"
        assert lines[2].startswith("    ")

    def test_custom_indent(self):
        rendered = explain(KeywordScan("a"), indent="..")
        assert rendered == "scan[keyword=a]"
