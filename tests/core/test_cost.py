"""Unit tests for the cost model (paper §5, built out)."""

from __future__ import annotations

import pytest

from repro.core.cost import CostEstimate, CostModel
from repro.core.optimizer import optimize
from repro.core.plan import (FixedPoint, KeywordScan, PairwiseJoin,
                             PowersetJoin, Select, initial_plan)
from repro.core.filters import SizeAtMost
from repro.core.query import Query
from repro.index.inverted import InvertedIndex


class TestTermStatistics:
    def test_cardinality_with_index(self, figure1, figure1_index):
        model = CostModel(figure1, index=figure1_index)
        assert model.term_cardinality("xquery") == 2
        assert model.term_cardinality("optimization") == 3
        assert model.term_cardinality("zebra") == 0

    def test_cardinality_without_index_heuristic(self, figure1):
        model = CostModel(figure1)
        assert model.term_cardinality("anything") >= 1

    def test_validation(self, figure1):
        with pytest.raises(ValueError):
            CostModel(figure1, rf_threshold=1.5)
        with pytest.raises(ValueError):
            CostModel(figure1, filter_selectivity=0.0)


class TestReductionFactorEstimate:
    def test_sibling_clusters_raise_estimate(self, tiny_doc):
        index = InvertedIndex(tiny_doc)
        model = CostModel(tiny_doc, index=index)
        # 'red' occurs at two separated nodes → no clustering signal.
        assert model.estimate_reduction_factor("red") == 0.0

    def test_small_postings_are_zero(self, figure1, figure1_index):
        model = CostModel(figure1, index=figure1_index)
        assert model.estimate_reduction_factor("xquery") == 0.0

    def test_clustered_term_has_positive_estimate(self):
        from repro.xmltree.builder import DocumentBuilder
        b = DocumentBuilder()
        root = b.add_root("a")
        sec = b.add_child(root, "sec")
        for _ in range(4):
            b.add_child(sec, "par", "topic word")
        doc = b.build()
        model = CostModel(doc, index=InvertedIndex(doc))
        assert model.estimate_reduction_factor("topic") > 0.0

    def test_prefer_bounded_thresholding(self, figure1, figure1_index):
        low = CostModel(figure1, index=figure1_index, rf_threshold=0.0)
        high = CostModel(figure1, index=figure1_index, rf_threshold=0.9)
        assert low.prefer_bounded_fixed_point("optimization")
        assert not high.prefer_bounded_fixed_point("xquery")


class TestPlanCosting:
    def _model(self, figure1, figure1_index):
        return CostModel(figure1, index=figure1_index)

    def test_scan_estimate(self, figure1, figure1_index):
        model = self._model(figure1, figure1_index)
        estimate = model.estimate(KeywordScan("optimization"))
        assert estimate.cardinality == 3.0

    def test_select_shrinks_cardinality(self, figure1, figure1_index):
        model = self._model(figure1, figure1_index)
        scan = KeywordScan("optimization")
        selected = Select(SizeAtMost(3), scan)
        assert model.estimate(selected).cardinality < \
            model.estimate(scan).cardinality

    def test_costs_accumulate(self, figure1, figure1_index):
        model = self._model(figure1, figure1_index)
        scan = KeywordScan("optimization")
        join = PairwiseJoin(scan, KeywordScan("xquery"))
        assert model.estimate(join).cost > model.estimate(scan).cost

    def test_powerset_costlier_than_rewrite(self, figure1, figure1_index):
        model = self._model(figure1, figure1_index)
        query = Query.of("xquery", "optimization",
                         predicate=SizeAtMost(3))
        naive = model.estimate(initial_plan(query))
        optimised = model.estimate(optimize(query))
        # The model must reproduce the paper's ordering: the powerset
        # plan is never estimated cheaper than the fixed-point rewrite
        # on these statistics.
        assert naive.cost >= optimised.cost

    def test_unknown_node_rejected(self, figure1):
        with pytest.raises(TypeError):
            CostModel(figure1).estimate(object())

    def test_estimate_addition(self):
        total = CostEstimate(1.0, 2.0) + CostEstimate(3.0, 4.0)
        assert total.cardinality == 4.0
        assert total.cost == 6.0

    def test_fixed_point_bounded_vs_lazy_costs_differ(self, figure1,
                                                      figure1_index):
        model = self._model(figure1, figure1_index)
        scan = KeywordScan("optimization")
        bounded = model.estimate(FixedPoint(scan, bounded=True))
        lazy = model.estimate(FixedPoint(scan, bounded=False))
        assert bounded.cost != lazy.cost
