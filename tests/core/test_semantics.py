"""Oracle-based verification of the answer semantics.

The constructive pipeline (strategies, plans) is checked against two
independent exhaustive oracles computed straight from the paper's
definitions on small random documents.
"""

from __future__ import annotations

from hypothesis import given, settings

from repro.core.filters import SizeAtMost, TrueFilter
from repro.core.fragment import Fragment
from repro.core.query import Query, is_answer
from repro.core.semantics import (definition8_answers,
                                  powerset_semantics_answers,
                                  semantics_gap)
from repro.core.strategies import Strategy, evaluate

from ..treegen import documents


class TestPowersetOracle:
    @settings(max_examples=40, deadline=None)
    @given(documents(min_nodes=2, max_nodes=9))
    def test_strategies_match_powerset_oracle(self, doc):
        query = Query.of("alpha", "beta", predicate=SizeAtMost(4))
        oracle = powerset_semantics_answers(doc, query)
        for strategy in Strategy:
            assert evaluate(doc, query, strategy=strategy).fragments \
                == oracle

    @settings(max_examples=30, deadline=None)
    @given(documents(min_nodes=2, max_nodes=8))
    def test_three_terms(self, doc):
        query = Query.of("alpha", "beta", "gamma")
        oracle = powerset_semantics_answers(doc, query)
        assert evaluate(doc, query).fragments == oracle

    def test_empty_when_term_missing(self, tiny_doc):
        query = Query.of("red", "zebra")
        assert powerset_semantics_answers(tiny_doc, query) == frozenset()


class TestDefinition8Oracle:
    def test_figure1_target_is_definition8_answer(self, figure1):
        query = Query.of("xquery", "optimization",
                         predicate=SizeAtMost(3))
        target = Fragment(figure1, [16, 17, 18])
        assert is_answer(target, query)

    @settings(max_examples=30, deadline=None)
    @given(documents(min_nodes=2, max_nodes=7))
    def test_oracle_members_satisfy_definition(self, doc):
        query = Query.of("alpha", predicate=TrueFilter())
        for fragment in definition8_answers(doc, query):
            assert is_answer(fragment, query)

    @settings(max_examples=30, deadline=None)
    @given(documents(min_nodes=2, max_nodes=7))
    def test_single_term_single_nodes_agree(self, doc):
        # Single-node fragments at keyword nodes belong to both
        # semantics.
        query = Query.of("alpha")
        declarative = definition8_answers(doc, query)
        constructive = powerset_semantics_answers(doc, query)
        singles = {f for f in constructive if f.size == 1}
        assert singles <= declarative


class TestSemanticsGap:
    @settings(max_examples=25, deadline=None)
    @given(documents(min_nodes=2, max_nodes=7))
    def test_gap_shape(self, doc):
        query = Query.of("alpha", "beta")
        only_decl, only_cons = semantics_gap(doc, query)
        constructive = powerset_semantics_answers(doc, query)
        declarative = definition8_answers(doc, query)
        assert only_decl == declarative - constructive
        assert only_cons == constructive - declarative
        # Fragments in the constructive-only gap must have a keyword
        # stranded on internal nodes.
        for fragment in only_cons:
            assert not is_answer(fragment, query)

    @settings(max_examples=25, deadline=None)
    @given(documents(min_nodes=2, max_nodes=7))
    def test_declarative_only_fragments_not_joins_of_keyword_nodes(
            self, doc):
        # Anything the join construction *can* build is in the
        # constructive set, so declarative-only fragments must contain
        # at least one node that is neither a keyword node nor on a
        # path between keyword nodes... we verify the weaker, precise
        # statement: they are not constructible.
        query = Query.of("alpha", "beta")
        only_decl, _ = semantics_gap(doc, query)
        constructive = powerset_semantics_answers(doc, query)
        assert not (only_decl & constructive)
