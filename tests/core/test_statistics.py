"""Unit tests for reduction-factor statistics (paper §5)."""

from __future__ import annotations

from hypothesis import given, settings

from repro.core.fragment import Fragment
from repro.core.statistics import (CalibrationPoint, calibrate_threshold,
                                   estimate_reduction_factor,
                                   reduction_factor)

from ..treegen import document_and_nodesets


class TestReductionFactor:
    def test_figure4_value(self, figure4):
        F = figure4.fragment_set([["n1"], ["n3"], ["n5"], ["n6"], ["n7"]])
        # 5 fragments reduce to 3: RF = (5-3)/5.
        assert reduction_factor(F) == (5 - 3) / 5

    def test_empty_set_zero(self):
        assert reduction_factor(frozenset()) == 0.0

    def test_irreducible_set_zero(self, tiny_doc):
        F = [Fragment(tiny_doc, [2]), Fragment(tiny_doc, [5])]
        assert reduction_factor(F) == 0.0

    @settings(max_examples=40, deadline=None)
    @given(document_and_nodesets(max_sets=1, max_set_size=5))
    def test_bounds(self, doc_and_sets):
        _, (frags,) = doc_and_sets
        rf = reduction_factor(frags)
        assert 0.0 <= rf < 1.0


class TestEstimator:
    def test_small_sets_are_exact(self, figure4):
        F = list(figure4.fragment_set(
            [["n1"], ["n3"], ["n5"], ["n6"], ["n7"]]))
        assert estimate_reduction_factor(F, sample_size=10) == \
            reduction_factor(F)

    def test_sampling_underestimates_or_matches(self, chain_doc):
        # A chain's interior nodes are all reducible; small samples can
        # only see part of that.
        F = [Fragment(chain_doc, [i]) for i in range(chain_doc.size)]
        exact = reduction_factor(F)
        estimate = estimate_reduction_factor(F, sample_size=3, trials=5)
        assert estimate <= exact + 1e-9

    def test_deterministic_for_fixed_seed(self, chain_doc):
        F = [Fragment(chain_doc, [i]) for i in range(chain_doc.size)]
        a = estimate_reduction_factor(F, sample_size=3, seed=5)
        b = estimate_reduction_factor(F, sample_size=3, seed=5)
        assert a == b


class TestCalibration:
    def test_empty_defaults_to_zero(self):
        assert calibrate_threshold([]) == 0.0

    def test_perfectly_separable(self):
        points = [CalibrationPoint(0.1, False),
                  CalibrationPoint(0.2, False),
                  CalibrationPoint(0.6, True),
                  CalibrationPoint(0.8, True)]
        threshold = calibrate_threshold(points)
        assert 0.2 < threshold <= 0.6
        errors = sum(1 for p in points
                     if (p.rf >= threshold) != p.reduction_paid_off)
        assert errors == 0

    def test_ties_prefer_smaller_threshold(self):
        points = [CalibrationPoint(0.5, True)]
        assert calibrate_threshold(points) == 0.0

    def test_noisy_points_minimise_errors(self):
        points = [CalibrationPoint(0.1, False),
                  CalibrationPoint(0.3, True),   # noise
                  CalibrationPoint(0.4, False),  # noise
                  CalibrationPoint(0.7, True),
                  CalibrationPoint(0.9, True)]
        threshold = calibrate_threshold(points)
        errors = sum(1 for p in points
                     if (p.rf >= threshold) != p.reduction_paid_off)
        # Best achievable on this data is 1 error.
        assert errors == 1
