"""Unit tests for exhaustive fragment enumeration."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.enumeration import (count_subfragments,
                                    find_anti_monotonicity_violation,
                                    iter_all_fragments, iter_subfragments,
                                    verify_anti_monotonic)
from repro.core.filters import SizeAtLeast, SizeAtMost, EqualDepth
from repro.core.fragment import Fragment
from repro.errors import FragmentError
from repro.xmltree.navigation import is_connected

from ..treegen import document_and_fragments


class TestIterSubfragments:
    def test_single_node(self, tiny_doc):
        subs = list(iter_subfragments(Fragment(tiny_doc, [3])))
        assert subs == [Fragment(tiny_doc, [3])]

    def test_chain_of_three(self, chain_doc):
        frag = Fragment(chain_doc, [0, 1, 2])
        subs = {s.nodes for s in iter_subfragments(frag)}
        expected = {frozenset([0]), frozenset([1]), frozenset([2]),
                    frozenset([0, 1]), frozenset([1, 2]),
                    frozenset([0, 1, 2])}
        assert subs == expected

    def test_all_connected_and_contained(self, tiny_doc):
        frag = Fragment(tiny_doc, [0, 1, 2, 3])
        for sub in iter_subfragments(frag):
            assert sub.nodes <= frag.nodes
            assert is_connected(tiny_doc, sub.nodes)

    def test_limit_enforced(self, figure1):
        frag = Fragment.whole_document(figure1)
        with pytest.raises(FragmentError, match="more than"):
            list(iter_subfragments(frag, limit=10))

    def test_no_duplicates(self, tiny_doc):
        frag = Fragment.whole_document(tiny_doc)
        subs = list(iter_subfragments(frag))
        assert len(subs) == len(set(subs))


class TestCountSubfragments:
    def test_matches_enumeration(self, tiny_doc):
        frag = Fragment.whole_document(tiny_doc)
        assert count_subfragments(frag) == \
            len(list(iter_subfragments(frag)))

    def test_chain_formula(self, chain_doc):
        # A chain of n nodes has n(n+1)/2 connected subsets.
        frag = Fragment.whole_document(chain_doc)
        n = chain_doc.size
        assert count_subfragments(frag) == n * (n + 1) // 2

    @settings(max_examples=30)
    @given(document_and_fragments(max_nodes=8, max_fragments=1))
    def test_count_equals_enumeration_random(self, doc_and_frags):
        _, (frag,) = doc_and_frags
        assert count_subfragments(frag) == \
            len(list(iter_subfragments(frag, limit=None)))


class TestIterAllFragments:
    def test_counts_document_fragments(self, tiny_doc):
        frags = list(iter_all_fragments(tiny_doc))
        assert len(frags) == count_subfragments(
            Fragment.whole_document(tiny_doc))

    def test_includes_singletons_and_whole(self, tiny_doc):
        frags = set(iter_all_fragments(tiny_doc))
        for nid in tiny_doc.node_ids():
            assert Fragment(tiny_doc, [nid]) in frags
        assert Fragment.whole_document(tiny_doc) in frags


class TestVerification:
    def test_size_at_most_verified(self, tiny_doc):
        assert verify_anti_monotonic(SizeAtMost(3), tiny_doc)

    def test_size_at_least_refuted(self, tiny_doc):
        assert not verify_anti_monotonic(SizeAtLeast(2), tiny_doc)

    def test_equal_depth_refuted_on_figure7(self, figure7):
        assert not verify_anti_monotonic(EqualDepth("k1", "k2"),
                                         figure7.document)

    def test_violation_returns_none_when_predicate_fails(self, tiny_doc):
        frag = Fragment(tiny_doc, [0, 1, 2])
        assert find_anti_monotonicity_violation(SizeAtMost(1),
                                                frag) is None
