"""Unit tests for instrumented plan execution."""

from __future__ import annotations

from repro.core.cost import CostModel
from repro.core.filters import SizeAtMost
from repro.core.optimizer import optimize
from repro.core.plan import KeywordScan, PairwiseJoin, Select
from repro.core.profile import profile_plan
from repro.core.query import Query
from repro.core.strategies import evaluate


class TestProfilePlan:
    QUERY = Query.of("xquery", "optimization", predicate=SizeAtMost(3))

    def test_result_matches_plain_execution(self, figure1):
        plan = optimize(self.QUERY)
        profiled = profile_plan(figure1, plan)
        plain = evaluate(figure1, self.QUERY).fragments
        assert profiled.fragments == plain

    def test_one_profile_per_operator_preorder(self, figure1):
        plan = optimize(self.QUERY)
        profiled = profile_plan(figure1, plan)
        walked = list(plan.walk())
        assert [p.node for p in profiled.profiles] == walked

    def test_root_profile_covers_everything(self, figure1):
        plan = optimize(self.QUERY)
        profiled = profile_plan(figure1, plan)
        root = profiled.profiles[0]
        assert root.rows == len(profiled.fragments)
        assert root.seconds == profiled.total_seconds()
        # Root subtree time bounds every child's time.
        assert all(p.seconds <= root.seconds + 1e-9
                   for p in profiled.profiles)

    def test_scan_rows(self, figure1):
        plan = PairwiseJoin(KeywordScan("xquery"),
                            KeywordScan("optimization"))
        profiled = profile_plan(figure1, plan)
        by_label = {p.node.label(): p for p in profiled.profiles}
        assert by_label["scan[keyword=xquery]"].rows == 2
        assert by_label["scan[keyword=optimization]"].rows == 3
        assert by_label["⋈"].joins > 0

    def test_select_counts_checks(self, figure1):
        plan = Select(SizeAtMost(1), KeywordScan("xquery"))
        profiled = profile_plan(figure1, plan)
        root = profiled.profiles[0]
        assert root.predicate_checks == 2

    def test_render_contains_measurements(self, figure1):
        plan = optimize(self.QUERY)
        rendered = profile_plan(figure1, plan).render()
        assert "rows=" in rendered
        assert "joins=" in rendered
        assert "scan[keyword=xquery]" in rendered

    def test_render_with_cost_model(self, figure1, figure1_index):
        plan = optimize(self.QUERY)
        model = CostModel(figure1, index=figure1_index)
        rendered = profile_plan(figure1, plan,
                                index=figure1_index).render(model)
        assert "est.rows=" in rendered

    def test_empty_plan_profile(self, figure1):
        profiled = profile_plan(figure1, KeywordScan("zebra"))
        assert profiled.fragments == frozenset()
        assert profiled.profiles[0].rows == 0


class TestSelfSeconds:
    QUERY = Query.of("xquery", "optimization", predicate=SizeAtMost(3))

    def test_exclusive_never_exceeds_inclusive(self, figure1):
        profiled = profile_plan(figure1, optimize(self.QUERY))
        for p in profiled.profiles:
            assert 0.0 <= p.self_seconds <= p.seconds + 1e-9

    def test_exclusive_times_sum_to_root_inclusive(self, figure1):
        profiled = profile_plan(figure1, optimize(self.QUERY))
        root = profiled.profiles[0]
        total_self = sum(p.self_seconds for p in profiled.profiles)
        assert abs(total_self - root.seconds) < 1e-6

    def test_leaf_exclusive_equals_inclusive(self, figure1):
        plan = PairwiseJoin(KeywordScan("xquery"),
                            KeywordScan("optimization"))
        profiled = profile_plan(figure1, plan)
        for p in profiled.profiles:
            if p.node.label().startswith("scan"):
                assert p.self_seconds == p.seconds

    def test_render_shows_self_column(self, figure1):
        rendered = profile_plan(figure1, optimize(self.QUERY)).render()
        assert "self=" in rendered
