"""Unit and property tests for the fragment algebra (paper §2.2).

The paper's algebraic laws are tested property-based over random
documents:

* fragment join: idempotent, commutative, associative, absorptive;
* pairwise join: commutative, associative, monotone, distributes over
  union;
* powerset join: matches its subset-enumeration definition and contains
  the pairwise join.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.algebra import (JoinCache, fragment_join, join_all,
                                multiway_powerset_join, nonempty_subsets,
                                pairwise_join, powerset_join)
from repro.core.fragment import Fragment
from repro.core.stats import OperationStats
from repro.errors import CrossDocumentError, FragmentError

from ..treegen import document_and_fragments, document_and_nodesets


class TestFragmentJoinUnit:
    def test_documented_figure3_join(self, figure3):
        joined = fragment_join(figure3.fragment("n4", "n5"),
                               figure3.fragment("n7", "n9"))
        assert figure3.labels_of(joined) == \
            {"n3", "n4", "n5", "n6", "n7", "n9"}

    def test_join_of_node_with_itself(self, tiny_doc):
        frag = Fragment(tiny_doc, [2])
        assert fragment_join(frag, frag) == frag

    def test_join_parent_child_absorbs(self, tiny_doc):
        parent = Fragment(tiny_doc, [1, 2])
        child = Fragment(tiny_doc, [2])
        assert fragment_join(parent, child) == parent
        assert fragment_join(child, parent) == parent

    def test_join_of_siblings(self, tiny_doc):
        joined = fragment_join(Fragment(tiny_doc, [2]),
                               Fragment(tiny_doc, [3]))
        assert joined.nodes == frozenset([1, 2, 3])

    def test_join_across_branches(self, tiny_doc):
        joined = fragment_join(Fragment(tiny_doc, [2]),
                               Fragment(tiny_doc, [5]))
        assert joined.nodes == frozenset([0, 1, 2, 4, 5])

    def test_cross_document_rejected(self, tiny_doc, chain_doc):
        with pytest.raises(CrossDocumentError):
            fragment_join(Fragment(tiny_doc, [0]),
                          Fragment(chain_doc, [0]))

    def test_stats_counted(self, tiny_doc):
        stats = OperationStats()
        fragment_join(Fragment(tiny_doc, [2]), Fragment(tiny_doc, [3]),
                      stats=stats)
        assert stats.fragment_joins == 1

    def test_absorption_not_counted_as_join(self, tiny_doc):
        stats = OperationStats()
        parent = Fragment(tiny_doc, [1, 2])
        fragment_join(parent, Fragment(tiny_doc, [2]), stats=stats)
        assert stats.fragment_joins == 0


class TestJoinCache:
    def test_cache_hit_returns_same_result(self, tiny_doc):
        cache = JoinCache()
        stats = OperationStats()
        f1, f2 = Fragment(tiny_doc, [2]), Fragment(tiny_doc, [5])
        first = fragment_join(f1, f2, stats=stats, cache=cache)
        second = fragment_join(f1, f2, stats=stats, cache=cache)
        assert first == second
        assert stats.fragment_joins == 1
        assert stats.join_cache_hits == 1

    def test_cache_is_commutative(self, tiny_doc):
        cache = JoinCache()
        stats = OperationStats()
        f1, f2 = Fragment(tiny_doc, [2]), Fragment(tiny_doc, [5])
        fragment_join(f1, f2, stats=stats, cache=cache)
        fragment_join(f2, f1, stats=stats, cache=cache)
        assert stats.fragment_joins == 1

    def test_eviction_bounds_size(self, tiny_doc):
        cache = JoinCache(max_entries=1)
        fragment_join(Fragment(tiny_doc, [2]), Fragment(tiny_doc, [3]),
                      cache=cache)
        fragment_join(Fragment(tiny_doc, [2]), Fragment(tiny_doc, [5]),
                      cache=cache)
        assert len(cache) == 1

    def test_clear(self, tiny_doc):
        cache = JoinCache()
        fragment_join(Fragment(tiny_doc, [2]), Fragment(tiny_doc, [3]),
                      cache=cache)
        cache.clear()
        assert len(cache) == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            JoinCache(max_entries=0)

    def test_cache_is_document_scoped(self, tiny_doc, chain_doc):
        # Regression: a cache shared across documents must never hand a
        # fragment of one document back for the other, even when the
        # operand node-id sets coincide.
        cache = JoinCache()
        tiny_join = fragment_join(Fragment(tiny_doc, [1]),
                                  Fragment(tiny_doc, [2]),
                                  cache=cache)
        chain_join = fragment_join(Fragment(chain_doc, [1]),
                                   Fragment(chain_doc, [2]),
                                   cache=cache)
        assert tiny_join.document is tiny_doc
        assert chain_join.document is chain_doc

    def test_keys_on_token_not_id(self, tiny_doc):
        # Regression for the id() staleness hole: after a document is
        # garbage collected, a new document may reuse its memory address
        # — id()-based keys would then serve the dead document's joins.
        # Tokens are monotonic and never reused, so the cache misses.
        import gc
        from repro.workloads.figure1 import build_figure1_document

        cache = JoinCache()
        doc = build_figure1_document()
        fragment_join(Fragment(doc, [1]), Fragment(doc, [2]), cache=cache)
        assert cache.misses == 1
        del doc
        gc.collect()
        fresh = build_figure1_document()
        stats = OperationStats()
        joined = fragment_join(Fragment(fresh, [1]), Fragment(fresh, [2]),
                               stats=stats, cache=cache)
        assert stats.join_cache_hits == 0
        assert joined.document is fresh

    def test_lru_hit_refreshes_recency(self, tiny_doc):
        # FIFO would evict the oldest entry regardless of use; true LRU
        # keeps a re-used entry alive and evicts the cold one.
        cache = JoinCache(max_entries=2)
        a = (Fragment(tiny_doc, [2]), Fragment(tiny_doc, [3]))
        b = (Fragment(tiny_doc, [2]), Fragment(tiny_doc, [5]))
        c = (Fragment(tiny_doc, [3]), Fragment(tiny_doc, [5]))
        fragment_join(*a, cache=cache)
        fragment_join(*b, cache=cache)
        assert cache.get(*a) is not None   # refresh a: b is now coldest
        fragment_join(*c, cache=cache)     # evicts b
        assert cache.get(*a) is not None
        assert cache.get(*b) is None
        assert cache.get(*c) is not None

    def test_hit_miss_counters_and_metrics_export(self, tiny_doc):
        from repro.obs import (JOIN_CACHE_MEMO_HITS,
                               JOIN_CACHE_MEMO_MISSES, MetricsRegistry)

        cache = JoinCache()
        f1, f2 = Fragment(tiny_doc, [2]), Fragment(tiny_doc, [5])
        fragment_join(f1, f2, cache=cache)
        fragment_join(f1, f2, cache=cache)
        fragment_join(f1, f2, cache=cache)
        assert cache.misses == 1
        assert cache.hits == 2
        cache.clear()
        assert (cache.hits, cache.misses) == (2, 1)  # counters survive
        registry = MetricsRegistry()
        cache.export_metrics(registry)
        assert registry.gauge(JOIN_CACHE_MEMO_HITS,
                              "Lifetime JoinCache memo hits.").value == 2
        assert registry.gauge(JOIN_CACHE_MEMO_MISSES,
                              "Lifetime JoinCache memo misses.").value == 1


class TestJoinAll:
    def test_empty_rejected(self):
        with pytest.raises(FragmentError):
            join_all([])

    def test_single(self, tiny_doc):
        frag = Fragment(tiny_doc, [2])
        assert join_all([frag]) == frag

    def test_order_irrelevant(self, tiny_doc):
        frags = [Fragment(tiny_doc, [2]), Fragment(tiny_doc, [3]),
                 Fragment(tiny_doc, [5])]
        assert join_all(frags) == join_all(reversed(frags))


class TestFragmentJoinLaws:
    @given(document_and_fragments(max_fragments=1))
    def test_idempotency(self, doc_and_frags):
        _, (f,) = doc_and_frags
        assert fragment_join(f, f) == f

    @given(document_and_fragments(max_fragments=2))
    def test_commutativity(self, doc_and_frags):
        _, frags = doc_and_frags
        f1, f2 = frags[0], frags[-1]
        assert fragment_join(f1, f2) == fragment_join(f2, f1)

    @settings(max_examples=60)
    @given(document_and_fragments(max_fragments=3))
    def test_associativity(self, doc_and_frags):
        _, frags = doc_and_frags
        f1, f2, f3 = (frags * 3)[:3]
        left = fragment_join(fragment_join(f1, f2), f3)
        right = fragment_join(f1, fragment_join(f2, f3))
        assert left == right

    @given(document_and_fragments(max_fragments=2))
    def test_absorption(self, doc_and_frags):
        doc, frags = doc_and_frags
        f1 = frags[0]
        # Lemma 1: f ⊆ f ⋈ f' for any f'.
        f2 = frags[-1]
        joined = fragment_join(f1, f2)
        assert f1 <= joined
        assert f2 <= joined
        # Absorption proper: joining with a sub-fragment is identity.
        assert fragment_join(joined, f1) == joined

    @given(document_and_fragments(max_fragments=2))
    def test_result_is_minimal(self, doc_and_frags):
        doc, frags = doc_and_frags
        f1, f2 = frags[0], frags[-1]
        joined = fragment_join(f1, f2)
        union = f1.nodes | f2.nodes
        # Minimality (Def. 4, condition 3): no strictly smaller
        # connected superset of the operands exists.
        from repro.xmltree.navigation import is_connected
        for node in joined.nodes - union:
            assert not is_connected(doc, joined.nodes - {node})


class TestPairwiseJoinUnit:
    def test_paper_example(self, figure3):
        set1 = figure3.fragment_set([["n4", "n5"], ["n2"]])
        set2 = figure3.fragment_set([["n7", "n9"], ["n8"]])
        result = pairwise_join(set1, set2)
        # 2 x 2 pairs, possibly deduplicated.
        assert 1 <= len(result) <= 4
        joined = fragment_join(figure3.fragment("n4", "n5"),
                               figure3.fragment("n7", "n9"))
        assert joined in result

    def test_empty_operand_gives_empty(self, tiny_doc):
        frags = frozenset([Fragment(tiny_doc, [2])])
        assert pairwise_join(frags, frozenset()) == frozenset()
        assert pairwise_join(frozenset(), frags) == frozenset()

    def test_deduplicates(self, tiny_doc):
        # Both pairs join to the same fragment.
        set1 = frozenset([Fragment(tiny_doc, [2]), Fragment(tiny_doc, [3])])
        set2 = frozenset([Fragment(tiny_doc, [1, 2, 3])])
        assert len(pairwise_join(set1, set2)) == 1


class TestPairwiseJoinLaws:
    @given(document_and_nodesets(max_sets=2))
    def test_commutativity(self, doc_and_sets):
        _, (s1, s2) = doc_and_sets
        assert pairwise_join(s1, s2) == pairwise_join(s2, s1)

    @settings(max_examples=50)
    @given(document_and_nodesets(max_sets=3, max_set_size=3))
    def test_associativity(self, doc_and_sets):
        _, sets = doc_and_sets
        s1, s2, s3 = sets
        left = pairwise_join(pairwise_join(s1, s2), s3)
        right = pairwise_join(s1, pairwise_join(s2, s3))
        assert left == right

    @given(document_and_nodesets(max_sets=1))
    def test_monotonicity(self, doc_and_sets):
        _, (s1,) = doc_and_sets
        assert pairwise_join(s1, s1) >= s1

    @settings(max_examples=50)
    @given(document_and_nodesets(max_sets=3, max_set_size=3))
    def test_distributes_over_union(self, doc_and_sets):
        _, (s1, s2, s3) = doc_and_sets
        left = pairwise_join(s1, s2 | s3)
        right = pairwise_join(s1, s2) | pairwise_join(s1, s3)
        assert left == right

    def test_no_idempotency_counterexample(self, tiny_doc):
        # The paper notes F ⋈ F ≠ F in general: siblings generate their
        # parent fragment.
        frags = frozenset([Fragment(tiny_doc, [2]), Fragment(tiny_doc, [3])])
        assert pairwise_join(frags, frags) != frags


class TestNonemptySubsets:
    def test_counts(self):
        assert len(list(nonempty_subsets([1, 2, 3]))) == 7
        assert list(nonempty_subsets([]))  == []

    def test_subsets_unique(self):
        subsets = list(nonempty_subsets("abc"))
        assert len(subsets) == len(set(subsets))


class TestPowersetJoin:
    def test_definition_by_enumeration(self, figure3):
        set1 = figure3.fragment_set([["n4", "n5"], ["n2"]])
        set2 = figure3.fragment_set([["n7", "n9"], ["n8"]])
        result = powerset_join(set1, set2)
        expected = set()
        for sub1 in nonempty_subsets(sorted(set1, key=lambda f: f.root)):
            for sub2 in nonempty_subsets(sorted(set2,
                                                key=lambda f: f.root)):
                expected.add(join_all(list(sub1) + list(sub2)))
        assert result == frozenset(expected)

    def test_contains_pairwise_join(self, figure3):
        set1 = figure3.fragment_set([["n4"], ["n5"]])
        set2 = figure3.fragment_set([["n8"], ["n2"]])
        assert pairwise_join(set1, set2) <= powerset_join(set1, set2)

    def test_produces_more_than_pairwise(self, figure3):
        # Figure 3 (c) vs (d): powerset join yields extra fragments.
        set1 = figure3.fragment_set([["n4", "n5"], ["n2"]])
        set2 = figure3.fragment_set([["n7", "n9"], ["n8"]])
        assert len(powerset_join(set1, set2)) >= \
            len(pairwise_join(set1, set2))

    def test_operand_size_guard(self, tiny_doc):
        frags = frozenset(Fragment(tiny_doc, [i]) for i in range(6))
        with pytest.raises(FragmentError, match="refused"):
            powerset_join(frags, frags, max_operand_size=5)

    def test_guard_can_be_disabled(self, tiny_doc):
        frags = frozenset(Fragment(tiny_doc, [i]) for i in range(3))
        result = powerset_join(frags, frags, max_operand_size=None)
        assert result


class TestMultiwayPowersetJoin:
    def test_binary_case_matches_powerset_join(self, figure3):
        set1 = figure3.fragment_set([["n4"], ["n2"]])
        set2 = figure3.fragment_set([["n8"], ["n9"]])
        assert multiway_powerset_join([set1, set2]) == \
            powerset_join(set1, set2)

    def test_single_operand_is_fixed_point_like(self, tiny_doc):
        frags = frozenset([Fragment(tiny_doc, [2]), Fragment(tiny_doc, [3])])
        result = multiway_powerset_join([frags])
        # {⋈F' | F' ⊆ F, F' ≠ ∅} — the fixed point of F.
        from repro.core.reduce import fixed_point
        assert result == fixed_point(frags)

    def test_three_way(self, tiny_doc):
        sets = [frozenset([Fragment(tiny_doc, [i])]) for i in (2, 3, 5)]
        result = multiway_powerset_join(sets)
        assert result == frozenset(
            [Fragment(tiny_doc, [0, 1, 2, 3, 4, 5])])

    def test_no_operands_rejected(self):
        with pytest.raises(FragmentError):
            multiway_powerset_join([])

    def test_guard(self, tiny_doc):
        frags = frozenset(Fragment(tiny_doc, [i]) for i in range(6))
        with pytest.raises(FragmentError, match="refused"):
            multiway_powerset_join([frags], max_operand_size=5)

    @settings(max_examples=40)
    @given(document_and_nodesets(max_sets=2, max_set_size=3))
    def test_theorem2_equivalence(self, doc_and_sets):
        """Theorem 2: F1 ⋈* F2 = F1+ ⋈ F2+."""
        from repro.core.reduce import fixed_point
        _, (s1, s2) = doc_and_sets
        direct = powerset_join(s1, s2)
        via_fixed_points = pairwise_join(fixed_point(s1), fixed_point(s2))
        assert direct == via_fixed_points
