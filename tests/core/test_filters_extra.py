"""Unit and property tests for the extended filter set.

Each new filter's anti-monotonicity classification is verified against
Definition 11 by exhaustive sub-fragment enumeration on small random
fragments — the same regimen the paper's own filters get in
test_filters.py.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.enumeration import find_anti_monotonicity_violation
from repro.core.filters import (ExcludesKeyword, LeafCountAtMost,
                                RootDepthAtLeast, TagsWithin)
from repro.core.fragment import Fragment
from repro.core.query import Query
from repro.core.strategies import Strategy, evaluate
from repro.core.filters import SizeAtMost

from ..treegen import document_and_fragments


class TestExcludesKeyword:
    def test_semantics(self, tiny_doc):
        predicate = ExcludesKeyword("apple")
        assert predicate(Fragment(tiny_doc, [3]))
        assert not predicate(Fragment(tiny_doc, [1, 2]))

    def test_validation(self):
        with pytest.raises(ValueError):
            ExcludesKeyword("")

    def test_flag(self):
        assert ExcludesKeyword("x").is_anti_monotonic

    def test_repr(self):
        assert repr(ExcludesKeyword("ads")) == "keyword≠ads"

    @settings(max_examples=30)
    @given(document_and_fragments(max_nodes=7, max_fragments=1))
    def test_definition11(self, doc_and_frags):
        _, (fragment,) = doc_and_frags
        for word in ("alpha", "beta"):
            assert find_anti_monotonicity_violation(
                ExcludesKeyword(word), fragment) is None


class TestRootDepthAtLeast:
    def test_semantics(self, tiny_doc):
        predicate = RootDepthAtLeast(1)
        assert predicate(Fragment(tiny_doc, [1, 2]))
        assert not predicate(Fragment(tiny_doc, [0, 1]))

    def test_zero_accepts_everything(self, tiny_doc):
        assert RootDepthAtLeast(0)(Fragment(tiny_doc, [0]))

    def test_validation(self):
        with pytest.raises(ValueError):
            RootDepthAtLeast(-1)

    def test_flag_and_repr(self):
        predicate = RootDepthAtLeast(2)
        assert predicate.is_anti_monotonic
        assert repr(predicate) == "root-depth>=2"

    @settings(max_examples=30)
    @given(document_and_fragments(max_nodes=7, max_fragments=1))
    def test_definition11(self, doc_and_frags):
        _, (fragment,) = doc_and_frags
        for depth in (0, 1, 2):
            assert find_anti_monotonicity_violation(
                RootDepthAtLeast(depth), fragment) is None


class TestTagsWithin:
    def test_semantics(self, tiny_doc):
        predicate = TagsWithin({"section", "par"})
        assert predicate(Fragment(tiny_doc, [1, 2]))
        assert not predicate(Fragment(tiny_doc, [0, 1]))  # article

    def test_validation(self):
        with pytest.raises(ValueError):
            TagsWithin(set())

    def test_flag(self):
        assert TagsWithin({"par"}).is_anti_monotonic

    @settings(max_examples=30)
    @given(document_and_fragments(max_nodes=7, max_fragments=1))
    def test_definition11(self, doc_and_frags):
        _, (fragment,) = doc_and_frags
        for allowed in ({"node"}, {"root"}, {"node", "root"}):
            assert find_anti_monotonicity_violation(
                TagsWithin(allowed), fragment) is None


class TestLeafCountAtMost:
    def test_semantics(self, tiny_doc):
        # ⟨n0,n1,n2,n3,n4⟩ has induced leaves {2, 3, 4}.
        frag = Fragment(tiny_doc, [0, 1, 2, 3, 4])
        assert LeafCountAtMost(3)(frag)
        assert not LeafCountAtMost(2)(frag)

    def test_single_node(self, tiny_doc):
        assert LeafCountAtMost(1)(Fragment(tiny_doc, [5]))

    def test_validation(self):
        with pytest.raises(ValueError):
            LeafCountAtMost(0)

    def test_flag_and_repr(self):
        assert LeafCountAtMost(2).is_anti_monotonic
        assert repr(LeafCountAtMost(2)) == "leaves<=2"

    @settings(max_examples=40)
    @given(document_and_fragments(max_nodes=8, max_fragments=1))
    def test_definition11(self, doc_and_frags):
        _, (fragment,) = doc_and_frags
        for limit in (1, 2, 3):
            assert find_anti_monotonicity_violation(
                LeafCountAtMost(limit), fragment) is None


class TestNewFiltersInQueries:
    def test_tags_within_pushed_down(self, figure1):
        predicate = SizeAtMost(3) & TagsWithin(
            {"par", "subsubsection"})
        query = Query(("xquery", "optimization"), predicate)
        assert predicate.is_anti_monotonic
        pushed = evaluate(figure1, query, strategy=Strategy.PUSHDOWN)
        brute = evaluate(figure1, query, strategy=Strategy.BRUTE_FORCE)
        assert pushed.fragments == brute.fragments
        # n16 is a subsubsection, n17/n18 pars: target still included.
        assert Fragment(figure1, [16, 17, 18]) in pushed.fragments

    def test_root_depth_excludes_shallow_answers(self, figure1):
        query = Query(("xquery", "optimization"),
                      SizeAtMost(10) & RootDepthAtLeast(3))
        result = evaluate(figure1, query)
        for fragment in result.fragments:
            assert figure1.depth(fragment.root) >= 3

    def test_leaf_count_in_query(self, figure1):
        query = Query(("xquery", "optimization"),
                      LeafCountAtMost(1) & SizeAtMost(4))
        result = evaluate(figure1, query)
        # Only chain-shaped answers survive: ⟨17⟩ and ⟨16,17⟩/⟨16,18⟩.
        assert Fragment(figure1, [17]) in result.fragments
        assert Fragment(figure1, [16, 17, 18]) not in result.fragments
