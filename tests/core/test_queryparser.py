"""Unit tests for the textual query language."""

from __future__ import annotations

import pytest

from repro.core.filters import (And, ContainsKeyword, EqualDepth,
                                ExcludesKeyword, HeightAtMost,
                                LeafCountAtMost, Not, Or,
                                RootDepthAtLeast, SizeAtLeast,
                                SizeAtMost, TagsWithin, TrueFilter,
                                WidthAtMost)
from repro.core.queryparser import parse_filter, parse_query
from repro.core.strategies import evaluate
from repro.errors import QueryError


class TestParseQuery:
    def test_keywords_only(self):
        query = parse_query("alpha beta")
        assert query.terms == ("alpha", "beta")
        assert isinstance(query.predicate, TrueFilter)

    def test_keywords_with_filter(self):
        query = parse_query("xquery optimization [size<=3]")
        assert query.terms == ("xquery", "optimization")
        assert isinstance(query.predicate, SizeAtMost)
        assert query.predicate.limit == 3

    def test_terms_casefolded(self):
        assert parse_query("XQuery").terms == ("xquery",)

    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            parse_query("   ")
        with pytest.raises(QueryError):
            parse_query("[size<=3]")

    def test_unterminated_bracket(self):
        with pytest.raises(QueryError, match="unterminated"):
            parse_query("a b [size<=3")

    def test_end_to_end_matches_programmatic(self, figure1):
        from repro.core.query import Query
        parsed = parse_query("xquery optimization [size<=3]")
        programmatic = Query.of("xquery", "optimization",
                                predicate=SizeAtMost(3))
        assert evaluate(figure1, parsed).fragments == \
            evaluate(figure1, programmatic).fragments


class TestParseFilterAtoms:
    def test_empty_is_true(self):
        assert isinstance(parse_filter(""), TrueFilter)
        assert isinstance(parse_filter("true"), TrueFilter)

    @pytest.mark.parametrize("text,kind,attr,value", [
        ("size<=5", SizeAtMost, "limit", 5),
        ("size>=2", SizeAtLeast, "limit", 2),
        ("height<=3", HeightAtMost, "limit", 3),
        ("width<=7", WidthAtMost, "limit", 7),
        ("leaves<=2", LeafCountAtMost, "limit", 2),
        ("rootdepth>=1", RootDepthAtLeast, "depth", 1),
    ])
    def test_comparisons(self, text, kind, attr, value):
        predicate = parse_filter(text)
        assert isinstance(predicate, kind)
        assert getattr(predicate, attr) == value

    def test_keyword_predicates(self):
        has = parse_filter("keyword=Draft")
        assert isinstance(has, ContainsKeyword)
        assert has.keyword == "draft"
        lacks = parse_filter("keyword!=draft")
        assert isinstance(lacks, ExcludesKeyword)

    def test_tags_predicate(self):
        predicate = parse_filter("tags=par,section")
        assert isinstance(predicate, TagsWithin)
        assert predicate.allowed == frozenset({"par", "section"})

    def test_equal_depth(self):
        predicate = parse_filter("equaldepth(A, b)")
        assert isinstance(predicate, EqualDepth)
        assert (predicate.keyword1, predicate.keyword2) == ("a", "b")

    def test_unknown_predicate(self):
        with pytest.raises(QueryError, match="unknown predicate"):
            parse_filter("sized<=3")

    def test_bad_operator(self):
        with pytest.raises(QueryError):
            parse_filter("height>=2")
        with pytest.raises(QueryError):
            parse_filter("rootdepth<=2")

    def test_bad_integer(self):
        with pytest.raises(QueryError, match="integer"):
            parse_filter("size<=many")


class TestParseFilterComposition:
    def test_conjunction(self):
        predicate = parse_filter("size<=3 & height<=2")
        assert isinstance(predicate, And)
        assert predicate.is_anti_monotonic

    def test_disjunction(self):
        predicate = parse_filter("size<=3 | width<=2")
        assert isinstance(predicate, Or)
        assert predicate.is_anti_monotonic

    def test_negation(self):
        predicate = parse_filter("!size<=3")
        assert isinstance(predicate, Not)
        assert not predicate.is_anti_monotonic

    def test_parentheses_and_precedence(self):
        # & binds tighter than |.
        flat = parse_filter("size<=1 | size<=2 & size<=3")
        assert isinstance(flat, Or)
        grouped = parse_filter("(size<=1 | size<=2) & size<=3")
        assert isinstance(grouped, And)

    def test_mixed_loses_anti_monotonicity(self):
        predicate = parse_filter("size<=3 & size>=2")
        assert not predicate.is_anti_monotonic

    def test_trailing_garbage(self):
        with pytest.raises(QueryError, match="unexpected token"):
            parse_filter("size<=3 size<=4")

    def test_unbalanced_parenthesis(self):
        with pytest.raises(QueryError):
            parse_filter("(size<=3")

    def test_semantics_on_fragments(self, figure1):
        from repro.core.fragment import Fragment
        predicate = parse_filter("size<=2 | keyword=xquery")
        assert predicate(Fragment(figure1, [16, 17]))
        assert predicate(Fragment(figure1, [16, 17, 18]))  # has xquery
        assert not predicate(Fragment(figure1, [0, 1, 2]))
