"""Unit tests for Fragment (paper Definition 2)."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.core.fragment import Fragment
from repro.errors import CrossDocumentError, FragmentError

from ..treegen import document_and_fragments, documents


class TestConstruction:
    def test_empty_rejected(self, tiny_doc):
        with pytest.raises(FragmentError, match="at least one"):
            Fragment(tiny_doc, [])

    def test_disconnected_rejected(self, tiny_doc):
        with pytest.raises(FragmentError, match="connected"):
            Fragment(tiny_doc, [2, 5])

    def test_gap_rejected(self, tiny_doc):
        with pytest.raises(FragmentError, match="connected"):
            Fragment(tiny_doc, [0, 2])

    def test_out_of_range_rejected(self, tiny_doc):
        with pytest.raises(FragmentError, match="out of range"):
            Fragment(tiny_doc, [99])

    def test_validate_false_skips_checks(self, tiny_doc):
        # Deliberately invalid but accepted — callers vouch for it.
        frag = Fragment(tiny_doc, [2, 5], validate=False)
        assert frag.size == 2

    def test_from_node(self, tiny_doc):
        assert Fragment.from_node(tiny_doc, 3).nodes == frozenset([3])

    def test_subtree_constructor(self, tiny_doc):
        assert Fragment.subtree(tiny_doc, 1).nodes == frozenset([1, 2, 3])

    def test_whole_document(self, tiny_doc):
        assert Fragment.whole_document(tiny_doc).size == tiny_doc.size


class TestMeasures:
    def test_root_is_min_id(self, tiny_doc):
        assert Fragment(tiny_doc, [1, 2, 3]).root == 1
        assert Fragment(tiny_doc, [4]).root == 4

    def test_size(self, tiny_doc):
        assert Fragment(tiny_doc, [0, 1, 2]).size == 3

    def test_height_single_node_zero(self, tiny_doc):
        assert Fragment(tiny_doc, [3]).height == 0

    def test_height_of_two_levels(self, tiny_doc):
        assert Fragment(tiny_doc, [1, 3]).height == 1
        assert Fragment(tiny_doc, [0, 1, 2]).height == 2

    def test_width_single_node_zero(self, tiny_doc):
        assert Fragment(tiny_doc, [2]).width == 0

    def test_width_is_preorder_span(self, tiny_doc):
        assert Fragment(tiny_doc, [1, 2, 3]).width == 2
        assert Fragment(tiny_doc, [0, 1, 4]).width == 4

    def test_leaves(self, tiny_doc):
        frag = Fragment(tiny_doc, [0, 1, 2, 4])
        assert frag.leaves == frozenset([2, 4])

    def test_keywords_union(self, tiny_doc):
        frag = Fragment(tiny_doc, [2, 1, 3])
        kws = frag.keywords()
        assert {"red", "apple", "green", "pear"} <= kws

    def test_leaf_keywords(self, tiny_doc):
        frag = Fragment(tiny_doc, [1, 2])
        assert "apple" in frag.leaf_keywords()
        assert "colours" not in frag.leaf_keywords()

    def test_contains_keyword(self, tiny_doc):
        frag = Fragment(tiny_doc, [1, 2])
        assert frag.contains_keyword("apple")
        assert not frag.contains_keyword("pear")


class TestContainment:
    def test_subfragment(self, tiny_doc):
        small = Fragment(tiny_doc, [1, 2])
        big = Fragment(tiny_doc, [0, 1, 2, 3])
        assert small.issubfragment(big)
        assert small <= big
        assert small < big
        assert big >= small
        assert big > small
        assert not big.issubfragment(small)

    def test_self_containment(self, tiny_doc):
        frag = Fragment(tiny_doc, [1, 2])
        assert frag <= frag
        assert not frag < frag

    def test_cross_document_rejected(self, tiny_doc, chain_doc):
        f1 = Fragment(tiny_doc, [0])
        f2 = Fragment(chain_doc, [0])
        with pytest.raises(CrossDocumentError):
            f1.issubfragment(f2)


class TestValueSemantics:
    def test_equality_by_nodes(self, tiny_doc):
        assert Fragment(tiny_doc, [1, 2]) == Fragment(tiny_doc, [2, 1])
        assert Fragment(tiny_doc, [1, 2]) != Fragment(tiny_doc, [1, 3])

    def test_not_equal_across_documents(self, tiny_doc, chain_doc):
        assert Fragment(tiny_doc, [0]) != Fragment(chain_doc, [0])

    def test_not_equal_to_other_types(self, tiny_doc):
        assert Fragment(tiny_doc, [0]) != frozenset([0])

    def test_hashable_in_sets(self, tiny_doc):
        bag = {Fragment(tiny_doc, [1, 2]), Fragment(tiny_doc, [2, 1]),
               Fragment(tiny_doc, [3])}
        assert len(bag) == 2

    def test_iteration_sorted(self, tiny_doc):
        assert list(Fragment(tiny_doc, [3, 1, 2])) == [1, 2, 3]

    def test_contains_node(self, tiny_doc):
        frag = Fragment(tiny_doc, [1, 2])
        assert 2 in frag
        assert 5 not in frag

    def test_label_notation(self, tiny_doc):
        assert Fragment(tiny_doc, [2, 1]).label() == "⟨n1,n2⟩"


class TestFragmentProperties:
    @given(document_and_fragments())
    def test_random_fragments_valid(self, doc_and_frags):
        doc, fragments = doc_and_frags
        for frag in fragments:
            # Reconstruct with validation on: must not raise.
            Fragment(doc, frag.nodes)

    @given(document_and_fragments())
    def test_root_is_shallowest(self, doc_and_frags):
        doc, fragments = doc_and_frags
        for frag in fragments:
            root_depth = doc.depth(frag.root)
            assert all(doc.depth(n) >= root_depth for n in frag.nodes)

    @given(document_and_fragments())
    def test_measures_monotone_under_containment(self, doc_and_frags):
        doc, fragments = doc_and_frags
        whole = Fragment.whole_document(doc)
        for frag in fragments:
            assert frag.size <= whole.size
            assert frag.height <= whole.height
            assert frag.width <= whole.width
