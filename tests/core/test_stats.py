"""Unit tests for OperationStats."""

from __future__ import annotations

from repro.core.stats import OperationStats


class TestOperationStats:
    def test_defaults_zero(self):
        stats = OperationStats()
        assert stats.fragment_joins == 0
        assert stats.total_joins == 0
        assert stats.as_dict()["iterations"] == 0

    def test_total_joins(self):
        stats = OperationStats(fragment_joins=3, join_cache_hits=2)
        assert stats.total_joins == 5

    def test_reset(self):
        stats = OperationStats(fragment_joins=3, predicate_checks=1)
        stats.extras["custom"] = 9
        stats.reset()
        assert stats.fragment_joins == 0
        assert stats.extras == {}

    def test_merge(self):
        a = OperationStats(fragment_joins=1, iterations=2)
        b = OperationStats(fragment_joins=4, subset_checks=3)
        b.extras["x"] = 1
        a.merge(b)
        assert a.fragment_joins == 5
        assert a.iterations == 2
        assert a.subset_checks == 3
        assert a.extras["x"] == 1

    def test_merge_extras_accumulate(self):
        a = OperationStats()
        a.extras["x"] = 1
        b = OperationStats()
        b.extras["x"] = 2
        a.merge(b)
        assert a.extras["x"] == 3

    def test_as_dict_includes_extras(self):
        stats = OperationStats()
        stats.extras["rounds"] = 7
        assert stats.as_dict()["rounds"] == 7
