"""Unit tests for OperationStats."""

from __future__ import annotations

from repro.core.stats import OperationStats


class TestOperationStats:
    def test_defaults_zero(self):
        stats = OperationStats()
        assert stats.fragment_joins == 0
        assert stats.total_joins == 0
        assert stats.as_dict()["iterations"] == 0

    def test_total_joins(self):
        stats = OperationStats(fragment_joins=3, join_cache_hits=2)
        assert stats.total_joins == 5

    def test_reset(self):
        stats = OperationStats(fragment_joins=3, predicate_checks=1)
        stats.extras["custom"] = 9
        stats.reset()
        assert stats.fragment_joins == 0
        assert stats.extras == {}

    def test_merge(self):
        a = OperationStats(fragment_joins=1, iterations=2)
        b = OperationStats(fragment_joins=4, subset_checks=3)
        b.extras["x"] = 1
        a.merge(b)
        assert a.fragment_joins == 5
        assert a.iterations == 2
        assert a.subset_checks == 3
        assert a.extras["x"] == 1

    def test_merge_extras_accumulate(self):
        a = OperationStats()
        a.extras["x"] = 1
        b = OperationStats()
        b.extras["x"] = 2
        a.merge(b)
        assert a.extras["x"] == 3

    def test_as_dict_includes_extras(self):
        stats = OperationStats()
        stats.extras["rounds"] = 7
        assert stats.as_dict()["rounds"] == 7


class TestSnapshotDelta:
    def test_snapshot_is_independent(self):
        stats = OperationStats(fragment_joins=2)
        stats.extras["rounds"] = 1
        frozen = stats.snapshot()
        stats.fragment_joins += 5
        stats.extras["rounds"] += 3
        assert frozen.fragment_joins == 2
        assert frozen.extras == {"rounds": 1}

    def test_delta_reports_work_since_snapshot(self):
        stats = OperationStats(fragment_joins=10, predicate_checks=4)
        frozen = stats.snapshot()
        stats.fragment_joins += 3
        stats.subset_checks += 7
        diff = stats.delta(frozen)
        assert diff.fragment_joins == 3
        assert diff.subset_checks == 7
        assert diff.predicate_checks == 0

    def test_delta_extras_differenced_and_zero_dropped(self):
        stats = OperationStats()
        stats.extras["rounds"] = 2
        stats.extras["steady"] = 5
        frozen = stats.snapshot()
        stats.extras["rounds"] = 6
        stats.extras["fresh"] = 1
        diff = stats.delta(frozen)
        assert diff.extras == {"rounds": 4, "fresh": 1}

    def test_delta_of_unchanged_stats_is_all_zero(self):
        stats = OperationStats(fragment_joins=9, iterations=2)
        diff = stats.delta(stats.snapshot())
        assert all(value == 0 for value in diff.as_dict().values())

    def test_snapshot_then_merge_roundtrip(self):
        stats = OperationStats(fragment_joins=1)
        frozen = stats.snapshot()
        stats.fragment_joins += 4
        rebuilt = frozen.snapshot()
        rebuilt.merge(stats.delta(frozen))
        assert rebuilt.as_dict() == stats.as_dict()
