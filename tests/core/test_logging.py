"""Tests for the evaluation layer's logging hooks."""

from __future__ import annotations

import logging

from repro.core.filters import SizeAtMost
from repro.core.query import Query
from repro.core.strategies import Strategy, evaluate


class TestEvaluationLogging:
    QUERY = Query.of("xquery", "optimization", predicate=SizeAtMost(3))

    def test_debug_log_emitted(self, figure1, caplog):
        with caplog.at_level(logging.DEBUG, logger="repro.strategies"):
            evaluate(figure1, self.QUERY, strategy=Strategy.PUSHDOWN)
        messages = [r.message for r in caplog.records
                    if r.name == "repro.strategies"]
        assert any("pushdown" in m and "4 answers" in m
                   for m in messages)

    def test_silent_by_default(self, figure1, caplog):
        with caplog.at_level(logging.INFO, logger="repro.strategies"):
            evaluate(figure1, self.QUERY)
        assert not [r for r in caplog.records
                    if r.name == "repro.strategies"]

    def test_log_includes_join_counts(self, figure1, caplog):
        with caplog.at_level(logging.DEBUG, logger="repro.strategies"):
            evaluate(figure1, self.QUERY, strategy=Strategy.BRUTE_FORCE)
        message = next(r.message for r in caplog.records
                       if r.name == "repro.strategies")
        assert "joins" in message
        assert "pruned" in message
