"""Unit and property tests for filters (paper Definitions 3 & 11)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.enumeration import (find_anti_monotonicity_violation,
                                    iter_subfragments)
from repro.core.filters import (And, ContainsKeyword, EqualDepth, Filter,
                                HeightAtMost, Not, Or, PredicateFilter,
                                SizeAtLeast, SizeAtMost, TrueFilter,
                                WidthAtMost, select)
from repro.core.fragment import Fragment
from repro.core.stats import OperationStats

from ..treegen import document_and_fragments


class TestSizeFilters:
    def test_size_at_most(self, tiny_doc):
        predicate = SizeAtMost(2)
        assert predicate(Fragment(tiny_doc, [2]))
        assert predicate(Fragment(tiny_doc, [1, 2]))
        assert not predicate(Fragment(tiny_doc, [1, 2, 3]))

    def test_size_at_least(self, tiny_doc):
        predicate = SizeAtLeast(2)
        assert not predicate(Fragment(tiny_doc, [2]))
        assert predicate(Fragment(tiny_doc, [1, 2]))

    def test_validation(self):
        with pytest.raises(ValueError):
            SizeAtMost(0)
        with pytest.raises(ValueError):
            SizeAtLeast(0)

    def test_flags(self):
        assert SizeAtMost(3).is_anti_monotonic
        assert not SizeAtLeast(3).is_anti_monotonic

    def test_repr(self):
        assert repr(SizeAtMost(3)) == "size<=3"
        assert repr(SizeAtLeast(3)) == "size>=3"


class TestHeightWidthFilters:
    def test_height(self, tiny_doc):
        assert HeightAtMost(0)(Fragment(tiny_doc, [2]))
        assert HeightAtMost(1)(Fragment(tiny_doc, [1, 2]))
        assert not HeightAtMost(1)(Fragment(tiny_doc, [0, 1, 2]))

    def test_width(self, tiny_doc):
        assert WidthAtMost(0)(Fragment(tiny_doc, [2]))
        assert WidthAtMost(2)(Fragment(tiny_doc, [1, 2, 3]))
        assert not WidthAtMost(3)(Fragment(tiny_doc, [0, 1, 4]))

    def test_validation(self):
        with pytest.raises(ValueError):
            HeightAtMost(-1)
        with pytest.raises(ValueError):
            WidthAtMost(-1)

    def test_flags(self):
        assert HeightAtMost(2).is_anti_monotonic
        assert WidthAtMost(2).is_anti_monotonic


class TestKeywordFilter:
    def test_matches_any_node(self, tiny_doc):
        predicate = ContainsKeyword("apple")
        assert predicate(Fragment(tiny_doc, [1, 2]))
        assert not predicate(Fragment(tiny_doc, [4, 5]))

    def test_not_anti_monotonic_flag(self):
        assert not ContainsKeyword("x").is_anti_monotonic

    def test_counterexample_exists(self, tiny_doc):
        # f = ⟨n1,n2⟩ contains 'apple'; sub-fragment ⟨n1⟩ does not.
        predicate = ContainsKeyword("apple")
        witness = find_anti_monotonicity_violation(
            predicate, Fragment(tiny_doc, [1, 2]))
        assert witness is not None
        assert not predicate(witness)

    def test_validation(self):
        with pytest.raises(ValueError):
            ContainsKeyword("")


class TestEqualDepthFilter:
    def test_figure7_counterexample(self, figure7):
        predicate = EqualDepth("k1", "k2")
        f = figure7.fragment("n0", "n1", "n2", "n3", "n4")
        f_prime = figure7.fragment("n0", "n1", "n2", "n4")
        assert predicate(f)
        assert not predicate(f_prime)
        assert f_prime < f  # genuine anti-monotonicity violation

    def test_vacuous_when_keyword_missing(self, figure7):
        predicate = EqualDepth("k1", "k2")
        assert predicate(figure7.fragment("n0"))
        assert predicate(figure7.fragment("n1", "n2"))

    def test_flag(self):
        assert not EqualDepth("a", "b").is_anti_monotonic

    def test_validation(self):
        with pytest.raises(ValueError):
            EqualDepth("", "b")


class TestCombinators:
    def test_and_semantics(self, tiny_doc):
        predicate = SizeAtMost(2) & ContainsKeyword("apple")
        assert predicate(Fragment(tiny_doc, [2]))
        assert not predicate(Fragment(tiny_doc, [3]))

    def test_or_semantics(self, tiny_doc):
        predicate = ContainsKeyword("apple") | ContainsKeyword("pear")
        assert predicate(Fragment(tiny_doc, [3]))
        assert not predicate(Fragment(tiny_doc, [0]))

    def test_not_semantics(self, tiny_doc):
        predicate = ~ContainsKeyword("apple")
        assert predicate(Fragment(tiny_doc, [3]))
        assert not predicate(Fragment(tiny_doc, [2]))

    def test_and_or_preserve_anti_monotonicity(self):
        am1, am2 = SizeAtMost(3), HeightAtMost(2)
        assert (am1 & am2).is_anti_monotonic
        assert (am1 | am2).is_anti_monotonic

    def test_mixed_composition_loses_property(self):
        am, other = SizeAtMost(3), SizeAtLeast(2)
        assert not (am & other).is_anti_monotonic
        assert not (am | other).is_anti_monotonic

    def test_negation_never_anti_monotonic(self):
        assert not (~SizeAtMost(3)).is_anti_monotonic

    def test_negation_of_am_filter_has_counterexample(self, tiny_doc):
        # ¬(size<=1) holds for ⟨n1,n2⟩ but not for its sub-fragment ⟨n1⟩.
        predicate = ~SizeAtMost(1)
        witness = find_anti_monotonicity_violation(
            predicate, Fragment(tiny_doc, [1, 2]))
        assert witness is not None

    def test_reprs(self):
        assert "∧" in repr(SizeAtMost(1) & SizeAtMost(2))
        assert "∨" in repr(SizeAtMost(1) | SizeAtMost(2))
        assert repr(~SizeAtMost(1)).startswith("¬")


class TestTrueAndPredicateFilter:
    def test_true_filter(self, tiny_doc):
        assert TrueFilter()(Fragment(tiny_doc, [0]))
        assert TrueFilter().is_anti_monotonic

    def test_predicate_filter_wraps_callable(self, tiny_doc):
        predicate = PredicateFilter(lambda f: f.root == 1, name="root=1")
        assert predicate(Fragment(tiny_doc, [1, 2]))
        assert not predicate(Fragment(tiny_doc, [4]))
        assert repr(predicate) == "root=1"
        assert not predicate.is_anti_monotonic

    def test_predicate_filter_can_claim_anti_monotonicity(self):
        predicate = PredicateFilter(lambda f: True, anti_monotonic=True)
        assert predicate.is_anti_monotonic

    def test_base_class_is_abstract(self, tiny_doc):
        with pytest.raises(NotImplementedError):
            Filter().matches(Fragment(tiny_doc, [0]))


class TestSelect:
    def test_selection_semantics(self, tiny_doc):
        frags = frozenset([Fragment(tiny_doc, [2]),
                           Fragment(tiny_doc, [1, 2]),
                           Fragment(tiny_doc, [0, 1, 2])])
        kept = select(SizeAtMost(2), frags)
        assert kept == frozenset([Fragment(tiny_doc, [2]),
                                  Fragment(tiny_doc, [1, 2])])

    def test_stats_counted(self, tiny_doc):
        stats = OperationStats()
        frags = frozenset([Fragment(tiny_doc, [2]),
                           Fragment(tiny_doc, [0, 1, 2])])
        select(SizeAtMost(1), frags, stats=stats)
        assert stats.predicate_checks == 2
        assert stats.fragments_discarded == 1

    def test_empty_input(self):
        assert select(TrueFilter(), frozenset()) == frozenset()


class TestAntiMonotonicityDefinition:
    """Exhaustive Definition-11 checks on small random fragments."""

    @settings(max_examples=40)
    @given(document_and_fragments(max_nodes=8, max_fragments=1))
    def test_size_at_most_is_anti_monotonic(self, doc_and_frags):
        _, (fragment,) = doc_and_frags
        for limit in (1, 2, 3):
            assert find_anti_monotonicity_violation(
                SizeAtMost(limit), fragment) is None

    @settings(max_examples=40)
    @given(document_and_fragments(max_nodes=8, max_fragments=1))
    def test_height_at_most_is_anti_monotonic(self, doc_and_frags):
        _, (fragment,) = doc_and_frags
        for limit in (0, 1, 2):
            assert find_anti_monotonicity_violation(
                HeightAtMost(limit), fragment) is None

    @settings(max_examples=40)
    @given(document_and_fragments(max_nodes=8, max_fragments=1))
    def test_width_at_most_is_anti_monotonic(self, doc_and_frags):
        _, (fragment,) = doc_and_frags
        for limit in (0, 2, 5):
            assert find_anti_monotonicity_violation(
                WidthAtMost(limit), fragment) is None

    @settings(max_examples=40)
    @given(document_and_fragments(max_nodes=7, max_fragments=1))
    def test_conjunction_is_anti_monotonic(self, doc_and_frags):
        _, (fragment,) = doc_and_frags
        predicate = SizeAtMost(3) & HeightAtMost(1)
        assert find_anti_monotonicity_violation(predicate,
                                                fragment) is None

    @settings(max_examples=40)
    @given(document_and_fragments(max_nodes=7, max_fragments=1))
    def test_disjunction_is_anti_monotonic(self, doc_and_frags):
        _, (fragment,) = doc_and_frags
        predicate = SizeAtMost(2) | HeightAtMost(0)
        assert find_anti_monotonicity_violation(predicate,
                                                fragment) is None

    @settings(max_examples=30)
    @given(document_and_fragments(max_nodes=7, max_fragments=1))
    def test_definition_quantifies_all_subfragments(self, doc_and_frags):
        # Cross-check the checker itself: a violation witness must be a
        # genuine sub-fragment failing the predicate.
        _, (fragment,) = doc_and_frags
        predicate = SizeAtLeast(2)
        witness = find_anti_monotonicity_violation(predicate, fragment)
        if witness is not None:
            assert witness <= fragment
            assert predicate(fragment)
            assert not predicate(witness)
        else:
            # No witness: the predicate holds nowhere or on every
            # sub-fragment of f.
            if predicate(fragment):
                assert all(predicate(sub)
                           for sub in iter_subfragments(fragment))
