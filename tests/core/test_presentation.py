"""Unit tests for overlap presentation (paper §5)."""

from __future__ import annotations

import pytest

from repro.core.fragment import Fragment
from repro.core.presentation import (AnswerGroup, OverlapPolicy, arrange,
                                     overlap, overlap_matrix)


@pytest.fixture()
def answers(figure1):
    """The Table 1 final answer set."""
    return [Fragment(figure1, [17]),
            Fragment(figure1, [16, 17]),
            Fragment(figure1, [16, 18]),
            Fragment(figure1, [16, 17, 18])]


class TestArrangeKeep:
    def test_every_answer_is_a_group(self, answers):
        groups = arrange(answers, OverlapPolicy.KEEP)
        assert len(groups) == 4
        assert all(not g.members for g in groups)

    def test_sorted_smallest_first(self, answers):
        groups = arrange(answers, OverlapPolicy.KEEP)
        sizes = [g.representative.size for g in groups]
        assert sizes == sorted(sizes)


class TestArrangeHide:
    def test_only_maximal_remain(self, figure1, answers):
        groups = arrange(answers, OverlapPolicy.HIDE)
        assert [g.representative for g in groups] == \
            [Fragment(figure1, [16, 17, 18])]
        assert groups[0].members == ()

    def test_incomparable_answers_all_kept(self, figure1):
        frags = [Fragment(figure1, [17]), Fragment(figure1, [81])]
        groups = arrange(frags, OverlapPolicy.HIDE)
        assert len(groups) == 2


class TestArrangeGroup:
    def test_members_attached_to_maximal(self, figure1, answers):
        groups = arrange(answers, OverlapPolicy.GROUP)
        assert len(groups) == 1
        group = groups[0]
        assert group.representative == Fragment(figure1, [16, 17, 18])
        assert set(group.members) == {Fragment(figure1, [17]),
                                      Fragment(figure1, [16, 17]),
                                      Fragment(figure1, [16, 18])}
        assert group.total == 4

    def test_member_goes_to_tightest_host(self, figure1):
        frags = [Fragment(figure1, [17]),
                 Fragment(figure1, [16, 17]),
                 Fragment(figure1, [16, 17, 18])]
        # Both ⟨16,17⟩ and ⟨16,17,18⟩ are hosts of ⟨17⟩... but ⟨16,17⟩
        # is itself non-maximal, so the only maximal host wins.
        groups = arrange(frags, OverlapPolicy.GROUP)
        assert len(groups) == 1
        assert groups[0].total == 3

    def test_disjoint_groups(self, figure1):
        frags = [Fragment(figure1, [17]), Fragment(figure1, [16, 17]),
                 Fragment(figure1, [81]), Fragment(figure1, [80, 81])]
        groups = arrange(frags, OverlapPolicy.GROUP)
        assert len(groups) == 2
        assert all(g.total == 2 for g in groups)

    def test_empty_input(self):
        assert arrange([], OverlapPolicy.GROUP) == []


class TestOverlapMeasures:
    def test_identical_fragments(self, figure1):
        f = Fragment(figure1, [16, 17])
        assert overlap(f, f) == 1.0

    def test_disjoint_fragments(self, figure1):
        assert overlap(Fragment(figure1, [17]),
                       Fragment(figure1, [81])) == 0.0

    def test_containment_ratio(self, figure1):
        small = Fragment(figure1, [17])
        big = Fragment(figure1, [16, 17, 18])
        assert overlap(small, big) == pytest.approx(1 / 3)

    def test_matrix_shape_and_diagonal(self, answers):
        matrix = overlap_matrix(answers)
        assert len(matrix) == 4
        for i in range(4):
            assert matrix[i][i] == 1.0
            for j in range(4):
                assert matrix[i][j] == pytest.approx(matrix[j][i])
