"""Unit tests for queries and answer semantics (paper Definitions 7–8)."""

from __future__ import annotations

import pytest

from repro.core.filters import SizeAtMost, TrueFilter
from repro.core.fragment import Fragment
from repro.core.query import (Query, QueryResult, covers_all_terms,
                              is_answer, keyword_fragments)
from repro.errors import QueryError
from repro.index.inverted import InvertedIndex


class TestQueryConstruction:
    def test_terms_normalised(self):
        query = Query.of("XQuery", "OPTIMIZATION")
        assert query.terms == ("xquery", "optimization")

    def test_default_predicate_is_true(self):
        assert isinstance(Query.of("a").predicate, TrueFilter)

    def test_no_terms_rejected(self):
        with pytest.raises(QueryError):
            Query(())

    def test_empty_term_rejected(self):
        with pytest.raises(QueryError):
            Query(("a", ""))

    def test_duplicate_terms_rejected(self):
        with pytest.raises(QueryError):
            Query(("a", "A"))

    def test_describe(self):
        query = Query.of("a", "b", predicate=SizeAtMost(3))
        assert query.describe() == "Q[size<=3]{a, b}"

    def test_frozen(self):
        query = Query.of("a")
        with pytest.raises(AttributeError):
            query.terms = ("b",)


class TestKeywordFragments:
    def test_scan_path(self, tiny_doc):
        frags = keyword_fragments(tiny_doc, "red")
        assert frags == frozenset([Fragment(tiny_doc, [2]),
                                   Fragment(tiny_doc, [5])])

    def test_index_path_matches_scan(self, tiny_doc):
        index = InvertedIndex(tiny_doc)
        assert keyword_fragments(tiny_doc, "red", index=index) == \
            keyword_fragments(tiny_doc, "red")

    def test_unknown_term_empty(self, tiny_doc):
        assert keyword_fragments(tiny_doc, "zebra") == frozenset()

    def test_figure1_keyword_sets(self, figure1):
        F1 = keyword_fragments(figure1, "xquery")
        F2 = keyword_fragments(figure1, "optimization")
        assert {f.root for f in F1} == {17, 18}
        assert {f.root for f in F2} == {16, 17, 81}


class TestIsAnswer:
    def test_target_fragment_is_answer(self, figure1):
        query = Query.of("xquery", "optimization",
                         predicate=SizeAtMost(3))
        target = Fragment(figure1, [16, 17, 18])
        assert is_answer(target, query)

    def test_predicate_must_hold(self, figure1):
        query = Query.of("xquery", "optimization",
                         predicate=SizeAtMost(2))
        assert not is_answer(Fragment(figure1, [16, 17, 18]), query)

    def test_keywords_must_be_on_leaves(self, figure1):
        # ⟨n16,n17⟩: n17 is the only leaf and carries both keywords.
        query = Query.of("xquery", "optimization")
        assert is_answer(Fragment(figure1, [16, 17]), query)
        # ⟨n14,n15,n16⟩ has optimization on leaf n16 but no xquery leaf.
        assert not is_answer(Fragment(figure1, [14, 15, 16]), query)

    def test_missing_keyword_fails(self, figure1):
        query = Query.of("xquery", "optimization")
        assert not is_answer(Fragment(figure1, [18]), query)
        assert is_answer(Fragment(figure1, [17]), query)


class TestCoversAllTerms:
    def test_any_node_counts(self, figure1):
        frag = Fragment(figure1, [16, 17])
        assert covers_all_terms(frag, ("xquery", "optimization"))
        assert not covers_all_terms(Fragment(figure1, [16]),
                                    ("xquery", "optimization"))


class TestQueryResult:
    def _result(self, doc):
        frags = frozenset([
            Fragment(doc, [17]),
            Fragment(doc, [16, 17]),
            Fragment(doc, [16, 17, 18]),
        ])
        return QueryResult(query=Query.of("xquery", "optimization"),
                           fragments=frags, strategy="test",
                           elapsed=0.0, stats={})

    def test_len(self, figure1):
        assert len(self._result(figure1)) == 3

    def test_sorted_smallest_first(self, figure1):
        ordered = self._result(figure1).sorted_fragments()
        assert [f.size for f in ordered] == [1, 2, 3]

    def test_top(self, figure1):
        assert len(self._result(figure1).top(2)) == 2

    def test_non_overlapping_keeps_maximal(self, figure1):
        kept = self._result(figure1).non_overlapping()
        assert kept == [Fragment(figure1, [16, 17, 18])]

    def test_non_overlapping_keeps_incomparable(self, figure1):
        frags = frozenset([Fragment(figure1, [17]),
                           Fragment(figure1, [81])])
        result = QueryResult(query=Query.of("optimization"),
                             fragments=frags, strategy="t", elapsed=0.0,
                             stats={})
        assert set(result.non_overlapping()) == set(frags)
