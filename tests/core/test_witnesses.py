"""Unit tests for answer provenance."""

from __future__ import annotations

from repro.core.fragment import Fragment
from repro.core.witnesses import (highlighted_outline, missing_terms,
                                  witnesses)


class TestWitnesses:
    def test_figure1_target(self, figure1):
        fragment = Fragment(figure1, [16, 17, 18])
        found = witnesses(fragment, ["xquery", "optimization"])
        assert found["xquery"] == [17, 18]
        assert found["optimization"] == [16, 17]

    def test_casefolded(self, figure1):
        fragment = Fragment(figure1, [17])
        assert witnesses(fragment, ["XQuery"])["xquery"] == [17]

    def test_absent_term_empty(self, figure1):
        fragment = Fragment(figure1, [17])
        assert witnesses(fragment, ["zebra"])["zebra"] == []

    def test_witnesses_restricted_to_fragment(self, figure1):
        fragment = Fragment(figure1, [16, 17])
        found = witnesses(fragment, ["xquery"])
        assert 18 not in found["xquery"]


class TestMissingTerms:
    def test_complete_coverage(self, figure1):
        fragment = Fragment(figure1, [16, 17, 18])
        assert missing_terms(fragment, ["xquery", "optimization"]) == []

    def test_reports_gaps(self, figure1):
        fragment = Fragment(figure1, [18])
        assert missing_terms(fragment, ["xquery", "optimization"]) == \
            ["optimization"]


class TestHighlightedOutline:
    def test_annotations_present(self, figure1):
        fragment = Fragment(figure1, [16, 17, 18])
        text = highlighted_outline(fragment,
                                   ["xquery", "optimization"])
        lines = text.splitlines()
        assert len(lines) == 3
        assert "<= optimization" in lines[0]
        assert "<= optimization, xquery" in lines[1]
        assert "<= xquery" in lines[2]

    def test_unwitnessed_nodes_unannotated(self, figure1):
        fragment = Fragment(figure1, [14, 15, 16])
        text = highlighted_outline(fragment, ["optimization"])
        lines = text.splitlines()
        assert "<=" not in lines[0]  # n14
        assert "<=" not in lines[1]  # n15 title
        assert "<= optimization" in lines[2]

    def test_annotations_aligned(self, figure1):
        fragment = Fragment(figure1, [16, 17, 18])
        text = highlighted_outline(fragment, ["xquery"])
        positions = {line.index("<=") for line in text.splitlines()
                     if "<=" in line}
        assert len(positions) == 1
