"""Unit and property tests for the evaluation strategies (paper §4).

The load-bearing property: all four strategies return identical answer
sets (Theorems 2 and 3), while doing measurably different amounts of
work.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.algebra import JoinCache
from repro.core.filters import (EqualDepth, SizeAtLeast, SizeAtMost,
                                TrueFilter)
from repro.core.fragment import Fragment
from repro.core.query import Query, is_answer
from repro.core.strategies import Strategy, answer, evaluate
from repro.errors import QueryError
from repro.index.inverted import InvertedIndex

from ..treegen import documents

ALL_STRATEGIES = list(Strategy)


class TestStrategyParse:
    def test_parse_by_value(self):
        assert Strategy.parse("brute-force") is Strategy.BRUTE_FORCE
        assert Strategy.parse("pushdown") is Strategy.PUSHDOWN

    def test_parse_by_name_case_insensitive(self):
        assert Strategy.parse("SET_REDUCTION") is Strategy.SET_REDUCTION
        assert Strategy.parse("semi_naive") is Strategy.SEMI_NAIVE

    def test_parse_unknown(self):
        with pytest.raises(QueryError, match="unknown strategy"):
            Strategy.parse("quantum")


class TestTable1Answers:
    """The paper's Table 1 final answer set, per strategy."""

    EXPECTED = {
        frozenset([16, 17, 18]),
        frozenset([16, 17]),
        frozenset([16, 18]),
        frozenset([17]),
    }

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES,
                             ids=lambda s: s.value)
    def test_final_answers(self, figure1, strategy):
        query = Query.of("xquery", "optimization",
                         predicate=SizeAtMost(3))
        result = evaluate(figure1, query, strategy=strategy)
        assert {f.nodes for f in result.fragments} == self.EXPECTED

    def test_unfiltered_gives_seven_unique_fragments(self, figure1):
        query = Query.of("xquery", "optimization")
        result = evaluate(figure1, query, strategy=Strategy.BRUTE_FORCE)
        assert len(result.fragments) == 7  # Table 1 rows 1-7


class TestStrategyAgreement:
    @settings(max_examples=40, deadline=None)
    @given(documents(min_nodes=3, max_nodes=10),
           st.integers(min_value=1, max_value=5))
    def test_all_strategies_agree(self, doc, beta):
        query = Query.of("alpha", "beta", predicate=SizeAtMost(beta))
        results = {s: evaluate(doc, query, strategy=s).fragments
                   for s in ALL_STRATEGIES}
        reference = results[Strategy.BRUTE_FORCE]
        for strategy, fragments in results.items():
            assert fragments == reference, strategy

    @settings(max_examples=25, deadline=None)
    @given(documents(min_nodes=3, max_nodes=9))
    def test_agreement_with_non_anti_monotonic_filter(self, doc):
        query = Query.of("alpha", "beta", predicate=SizeAtLeast(2))
        reference = evaluate(doc, query,
                             strategy=Strategy.BRUTE_FORCE).fragments
        for strategy in ALL_STRATEGIES:
            assert evaluate(doc, query, strategy=strategy).fragments \
                == reference

    @settings(max_examples=25, deadline=None)
    @given(documents(min_nodes=3, max_nodes=9))
    def test_agreement_with_equal_depth_filter(self, doc):
        query = Query(("alpha", "beta"), EqualDepth("alpha", "beta"))
        reference = evaluate(doc, query,
                             strategy=Strategy.BRUTE_FORCE).fragments
        for strategy in ALL_STRATEGIES:
            assert evaluate(doc, query, strategy=strategy).fragments \
                == reference

    @settings(max_examples=25, deadline=None)
    @given(documents(min_nodes=2, max_nodes=8))
    def test_three_term_queries_agree(self, doc):
        query = Query.of("alpha", "beta", "gamma",
                         predicate=SizeAtMost(4))
        reference = evaluate(doc, query,
                             strategy=Strategy.BRUTE_FORCE).fragments
        for strategy in ALL_STRATEGIES:
            assert evaluate(doc, query, strategy=strategy).fragments \
                == reference


class TestAnswerSemantics:
    @settings(max_examples=30, deadline=None)
    @given(documents(min_nodes=3, max_nodes=10))
    def test_every_answer_covers_all_terms(self, doc):
        query = Query.of("alpha", "beta")
        result = evaluate(doc, query)
        for fragment in result.fragments:
            assert fragment.contains_keyword("alpha")
            assert fragment.contains_keyword("beta")

    @settings(max_examples=30, deadline=None)
    @given(documents(min_nodes=3, max_nodes=10))
    def test_answers_satisfy_definition8(self, doc):
        # Keyword sets are single nodes, so the induced leaves of every
        # candidate always include keyword-bearing nodes... except when a
        # keyword node became internal; Definition 8 then still holds via
        # another leaf or the fragment is produced anyway (DESIGN.md §4).
        query = Query.of("alpha")
        result = evaluate(doc, query)
        for fragment in result.fragments:
            if len(fragment) == 1:
                assert is_answer(fragment, query)

    def test_empty_term_empties_answer(self, tiny_doc):
        result = answer(tiny_doc, "red", "zebra")
        assert result.fragments == frozenset()

    def test_single_term_query(self, tiny_doc):
        result = answer(tiny_doc, "pear")
        # F+ of {⟨n3⟩, ⟨n5⟩}: both nodes plus their join.
        roots = {f.nodes for f in result.fragments}
        assert frozenset([3]) in roots
        assert frozenset([5]) in roots
        assert frozenset([0, 1, 3, 4, 5]) in roots


class TestEvaluateOptions:
    def test_index_changes_nothing(self, figure1, figure1_index):
        query = Query.of("xquery", "optimization",
                         predicate=SizeAtMost(3))
        plain = evaluate(figure1, query)
        indexed = evaluate(figure1, query, index=figure1_index)
        assert plain.fragments == indexed.fragments

    def test_cache_changes_nothing(self, figure1):
        query = Query.of("xquery", "optimization",
                         predicate=SizeAtMost(3))
        cache = JoinCache()
        first = evaluate(figure1, query, cache=cache)
        second = evaluate(figure1, query, cache=cache)
        assert first.fragments == second.fragments
        assert second.stats["join_cache_hits"] > 0

    def test_keyword_source_override(self, figure1):
        query = Query.of("xquery", "optimization",
                         predicate=SizeAtMost(3))

        def source(term):
            from repro.core.query import keyword_fragments
            return keyword_fragments(figure1, term)

        overridden = evaluate(figure1, query, keyword_source=source)
        assert {f.nodes for f in overridden.fragments} == \
            TestTable1Answers.EXPECTED

    def test_brute_force_guard(self, figure1):
        query = Query.of("section", predicate=TrueFilter())
        with pytest.raises(Exception, match="refused"):
            evaluate(figure1, query, strategy=Strategy.BRUTE_FORCE,
                     max_brute_force_operand=2)

    def test_result_metadata(self, figure1):
        query = Query.of("xquery", "optimization",
                         predicate=SizeAtMost(3))
        result = evaluate(figure1, query, strategy=Strategy.PUSHDOWN)
        assert result.strategy == "pushdown"
        assert result.elapsed >= 0.0
        assert result.stats["fragment_joins"] > 0


class TestWorkOrdering:
    def test_pushdown_does_less_join_work(self, figure1):
        query = Query.of("xquery", "optimization",
                         predicate=SizeAtMost(3))
        brute = evaluate(figure1, query, strategy=Strategy.BRUTE_FORCE)
        pushdown = evaluate(figure1, query, strategy=Strategy.PUSHDOWN)
        assert pushdown.stats["fragment_joins"] <= \
            brute.stats["fragment_joins"]

    def test_pushdown_discards_early(self, figure1):
        query = Query.of("xquery", "optimization",
                         predicate=SizeAtMost(3))
        result = evaluate(figure1, query, strategy=Strategy.PUSHDOWN)
        assert result.stats["fragments_discarded"] > 0

    def test_anti_monotonic_early_exit(self, figure1):
        # A size filter no keyword node can satisfy is impossible, but a
        # height filter of 0 combined with multi-node requirements still
        # returns the single-node answer; use a filter that kills one
        # keyword set entirely via a predicate on fragments.
        from repro.core.filters import PredicateFilter
        never = PredicateFilter(lambda f: False, name="never",
                                anti_monotonic=True)
        query = Query(("xquery", "optimization"), never)
        result = evaluate(figure1, query, strategy=Strategy.PUSHDOWN)
        assert result.fragments == frozenset()
        assert result.stats["fragment_joins"] == 0
