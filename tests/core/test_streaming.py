"""Tests for the streaming operator pipeline (repro.core.streaming).

The load-bearing property is bit-identity: the set of fragments pulled
from a :class:`FragmentStream` must equal the materialized
``evaluate(...)`` answer set for every strategy, and the streaming
top-k consumer must return exactly the ``k`` smallest answers in the
canonical order.  The tie-break keys themselves are pinned here so a
future "equivalent" sort cannot silently reorder results.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.filters import (ExcludesKeyword, SizeAtMost, TagsWithin,
                                TrueFilter)
from repro.core.fragment import Fragment
from repro.core.query import Query
from repro.core.strategies import Strategy, evaluate
from repro.core.streaming import (FragmentStream, TopKHeap,
                                  fragment_order_key, hit_order_key,
                                  ranked_order_key, stream_evaluate,
                                  stream_top_k)
from repro.core.topk import top_k_smallest
from repro.errors import BudgetExceeded
from repro.guard.budget import QueryBudget
from repro.obs import Observability

from ..treegen import documents, make_document

ALL_STRATEGIES = list(Strategy)

QUERIES = [
    Query.of("xquery", "optimization"),
    Query.of("xquery", "optimization", predicate=SizeAtMost(3)),
    Query.of("xquery"),
    Query.of("xquery", "optimization",
             predicate=ExcludesKeyword("semistructured")),
    Query.of("zebra", "xquery"),  # conjunctive miss
]


def _materialized(document, query, strategy, extra_predicate=None):
    if extra_predicate is not None:
        query = Query(query.terms, query.predicate & extra_predicate)
    return evaluate(document, query, strategy=strategy).fragments


class TestStreamMatchesMaterialized:
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    @pytest.mark.parametrize("query", QUERIES,
                             ids=[q.describe() for q in QUERIES])
    def test_figure1_all_strategies(self, figure1, strategy, query):
        streamed = set(stream_evaluate(figure1, query, strategy))
        assert streamed == set(_materialized(figure1, query, strategy))

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_extra_predicate_tightens(self, figure1, strategy):
        query = Query.of("xquery", "optimization")
        extra = SizeAtMost(2)
        streamed = set(stream_evaluate(figure1, query, strategy,
                                       extra_predicate=extra))
        assert streamed == set(
            _materialized(figure1, query, strategy, extra))

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_non_anti_monotonic_extra(self, figure1, strategy):
        # ExcludesKeyword is not anti-monotonic: it must still be
        # applied exactly (at the selection), never pushed unsoundly.
        query = Query.of("xquery", "optimization")
        extra = ExcludesKeyword("xml") & SizeAtMost(4)
        streamed = set(stream_evaluate(figure1, query, strategy,
                                       extra_predicate=extra))
        assert streamed == set(
            _materialized(figure1, query, strategy, extra))

    @settings(max_examples=25, deadline=None)
    @given(documents())
    def test_random_documents_agree(self, doc):
        query = Query.of("alpha", "beta")
        expected = set(_materialized(doc, query, Strategy.PUSHDOWN))
        for strategy in ALL_STRATEGIES:
            assert set(stream_evaluate(doc, query, strategy)) == expected


class TestFragmentStreamBehaviour:
    def test_incremental_pull_and_close(self, figure1):
        query = Query.of("xquery", "optimization")
        stream = stream_evaluate(figure1, query, Strategy.PUSHDOWN)
        first = next(stream)
        assert isinstance(first, Fragment)
        stream.close()  # stop producers early; must be idempotent
        stream.close()

    def test_operator_counters(self, figure1):
        query = Query.of("xquery", "optimization")
        stream = stream_evaluate(figure1, query, Strategy.PUSHDOWN)
        answers = list(stream)
        counters = stream.operator_counters()
        assert counters, "pipeline should expose operator counters"
        for entry in counters:
            assert {"operator", "rows_in", "rows_out"} <= set(entry)
        assert stream.streamed_rows >= len(answers)
        assert stream.stats.extras["streamed_rows"] == \
            stream.streamed_rows

    def test_stream_rows_metric_published(self, figure1):
        obs = Observability()
        query = Query.of("xquery", "optimization")
        list(stream_evaluate(figure1, query, Strategy.PUSHDOWN,
                             obs=obs))
        assert "repro_stream_rows_total" in obs.metrics

    def test_budget_abort_raises(self, figure1):
        query = Query.of("xquery", "optimization")
        budget = QueryBudget(max_join_ops=1)
        with pytest.raises(BudgetExceeded):
            list(stream_evaluate(figure1, query, Strategy.PUSHDOWN,
                                 budget=budget))

    def test_empty_stream_is_clean(self, figure1):
        stream = stream_evaluate(figure1, Query.of("zebra", "xquery"),
                                 Strategy.PUSHDOWN)
        assert list(stream) == []


class TestTopKHeap:
    def test_keeps_k_smallest(self):
        heap = TopKHeap(3)
        for value in [9, 1, 7, 3, 5]:
            heap.offer(value, (value,))
        assert heap.items_sorted() == [1, 3, 5]
        assert heap.bound() == (5,)

    def test_bound_none_until_full(self):
        heap = TopKHeap(2)
        heap.offer("a", (1,))
        assert heap.bound() is None
        assert not heap.full
        heap.offer("b", (2,))
        assert heap.full

    def test_rejects_behind_bound(self):
        heap = TopKHeap(1)
        assert heap.offer("a", (1,))
        assert not heap.offer("b", (2,))
        assert heap.offer("c", (0,))
        assert heap.items_sorted() == ["c"]

    def test_validation(self):
        with pytest.raises(ValueError):
            TopKHeap(0)


class TestStreamTopK:
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_matches_sorted_prefix(self, figure1, strategy):
        query = Query.of("xquery", "optimization")
        full = sorted(_materialized(figure1, query, strategy),
                      key=fragment_order_key)
        for k in (1, 2, 5, 50):
            assert stream_top_k(figure1, query, k,
                                strategy=strategy) == full[:k]

    def test_agrees_with_top_k_smallest(self, figure1):
        query = Query.of("xquery", "optimization")
        assert stream_top_k(figure1, query, 2) == \
            top_k_smallest(figure1, query, k=2)

    def test_early_exit_metric(self, figure1):
        obs = Observability()
        query = Query.of("xquery", "optimization")
        stream_top_k(figure1, query, 1, obs=obs, initial_beta=1)
        assert "repro_stream_early_exits_total" in obs.metrics

    def test_validation(self, figure1):
        query = Query.of("xquery")
        with pytest.raises(ValueError):
            stream_top_k(figure1, query, 0)
        with pytest.raises(ValueError):
            stream_top_k(figure1, query, 1, initial_beta=0)


class TestCanonicalOrderKeys:
    """Regression pin for the tie-break ordering (one source of truth).

    Answers sort by (size, node ids); collection hits break size ties
    by document name before node ids; ranked hits sort by descending
    score first and reuse the same tie chain.  These exact tuples are
    what the collection, ranked search, server and CLI all rely on.
    """

    def test_fragment_key_shape(self, figure1):
        frag = Fragment(figure1, {3, 1, 2}, validate=False)
        assert fragment_order_key(frag) == (3, (1, 2, 3))

    def test_size_before_node_ids(self, figure1):
        small_late = Fragment(figure1, {9}, validate=False)
        big_early = Fragment(figure1, {1, 2}, validate=False)
        assert fragment_order_key(small_late) < \
            fragment_order_key(big_early)

    def test_hit_key_breaks_ties_by_document(self, figure1):
        frag = Fragment(figure1, {1}, validate=False)
        assert hit_order_key("a.xml", frag) < hit_order_key("b.xml", frag)
        # size still dominates the document name
        bigger = Fragment(figure1, {1, 2}, validate=False)
        assert hit_order_key("z.xml", frag) < \
            hit_order_key("a.xml", bigger)

    def test_ranked_key_score_descending(self, figure1):
        frag = Fragment(figure1, {1}, validate=False)
        assert ranked_order_key("d", 0.9, frag) < \
            ranked_order_key("d", 0.1, frag)

    def test_ranked_key_equal_score_falls_back_to_hit_order(self, figure1):
        frag = Fragment(figure1, {1}, validate=False)
        bigger = Fragment(figure1, {1, 2}, validate=False)
        assert ranked_order_key("d", 0.5, frag) < \
            ranked_order_key("d", 0.5, bigger)
        assert ranked_order_key("a", 0.5, frag) < \
            ranked_order_key("b", 0.5, frag)
