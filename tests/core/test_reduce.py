"""Unit and property tests for fixed points and set reduction (paper §3.1).

The central properties:

* Figure 4's worked reduction example;
* Theorem 1: ``⋈_{|⊖(F)|}(F)`` equals the fixed point;
* semi-naive and bounded fixed points agree;
* anti-monotonic pruning inside the fixed point equals filtering after.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.algebra import pairwise_join
from repro.core.filters import SizeAtMost
from repro.core.fragment import Fragment
from repro.core.reduce import (fixed_point, fixed_point_bounded,
                               is_fixed_point, iterate_pairwise,
                               reduction_count, set_reduce)
from repro.core.stats import OperationStats
from repro.core.filters import select

from ..treegen import document_and_nodesets


def naive_fixed_point(fragments):
    """Reference closure: iterate full pairwise join until stable."""
    current = frozenset(fragments)
    while True:
        nxt = current | pairwise_join(current, current)
        if nxt == current:
            return current
        current = nxt


class TestSetReduceUnit:
    def test_figure4_example(self, figure4):
        F = figure4.fragment_set([["n1"], ["n3"], ["n5"], ["n6"], ["n7"]])
        reduced = set_reduce(F)
        labels = {tuple(sorted(figure4.labels_of(f))) for f in reduced}
        assert labels == {("n1",), ("n5",), ("n7",)}

    def test_small_sets_unchanged(self, tiny_doc):
        f1, f2 = Fragment(tiny_doc, [2]), Fragment(tiny_doc, [3])
        assert set_reduce([f1]) == frozenset([f1])
        assert set_reduce([f1, f2]) == frozenset([f1, f2])
        assert set_reduce([]) == frozenset()

    def test_duplicates_collapse(self, tiny_doc):
        f = Fragment(tiny_doc, [2])
        assert set_reduce([f, f, f]) == frozenset([f])

    def test_middle_node_eliminated(self, chain_doc):
        # In a chain, ⟨n2⟩ ⊆ ⟨n1⟩ ⋈ ⟨n3⟩.
        F = [Fragment(chain_doc, [1]), Fragment(chain_doc, [2]),
             Fragment(chain_doc, [3])]
        reduced = set_reduce(F)
        assert reduced == frozenset([Fragment(chain_doc, [1]),
                                     Fragment(chain_doc, [3])])

    def test_subset_checks_counted(self, chain_doc):
        stats = OperationStats()
        set_reduce([Fragment(chain_doc, [i]) for i in (1, 2, 3)],
                   stats=stats)
        assert stats.subset_checks > 0

    def test_reduction_count(self, figure4):
        F = figure4.fragment_set([["n1"], ["n3"], ["n5"], ["n6"], ["n7"]])
        assert reduction_count(F) == 3


class TestIteratePairwise:
    def test_one_round_is_identity(self, tiny_doc):
        frags = frozenset([Fragment(tiny_doc, [2]), Fragment(tiny_doc, [3])])
        assert iterate_pairwise(frags, 1) == frags

    def test_rounds_grow_monotonically(self, tiny_doc):
        frags = frozenset([Fragment(tiny_doc, [2]), Fragment(tiny_doc, [3]),
                           Fragment(tiny_doc, [5])])
        previous = iterate_pairwise(frags, 1)
        for rounds in (2, 3, 4):
            current = iterate_pairwise(frags, rounds)
            assert previous <= current
            previous = current

    def test_invalid_rounds(self, tiny_doc):
        with pytest.raises(ValueError):
            iterate_pairwise(frozenset(), 0)

    def test_predicate_prunes_each_round(self, tiny_doc):
        frags = frozenset([Fragment(tiny_doc, [2]), Fragment(tiny_doc, [5])])
        result = iterate_pairwise(frags, 2, predicate=SizeAtMost(2))
        # The join of 2 and 5 spans 5 nodes and is pruned.
        assert result == frags


class TestFixedPoint:
    def test_figure4_fixed_point_in_three_rounds(self, figure4):
        F = figure4.fragment_set([["n1"], ["n3"], ["n5"], ["n6"], ["n7"]])
        assert reduction_count(F) == 3
        assert iterate_pairwise(F, 3) == fixed_point(F)

    def test_closure_is_a_fixed_point(self, tiny_doc):
        frags = frozenset([Fragment(tiny_doc, [2]), Fragment(tiny_doc, [3]),
                           Fragment(tiny_doc, [5])])
        closure = fixed_point(frags)
        assert is_fixed_point(closure)
        assert not is_fixed_point(frags)

    def test_contains_base_set(self, tiny_doc):
        frags = frozenset([Fragment(tiny_doc, [2]), Fragment(tiny_doc, [5])])
        assert frags <= fixed_point(frags)

    def test_empty_set(self):
        assert fixed_point(frozenset()) == frozenset()
        assert fixed_point_bounded(frozenset()) == frozenset()

    def test_singleton(self, tiny_doc):
        frags = frozenset([Fragment(tiny_doc, [2])])
        assert fixed_point(frags) == frags
        assert fixed_point_bounded(frags) == frags

    def test_iterations_counted(self, tiny_doc):
        stats = OperationStats()
        frags = frozenset([Fragment(tiny_doc, [2]), Fragment(tiny_doc, [3])])
        fixed_point(frags, stats=stats)
        assert stats.iterations >= 1


class TestTheorem1:
    """⋈_n(F) = ⋈_k(F) with k = |⊖(F)| (paper Theorem 1)."""

    @settings(max_examples=50, deadline=None)
    @given(document_and_nodesets(max_sets=1, max_set_size=5))
    def test_bounded_equals_semi_naive(self, doc_and_sets):
        _, (frags,) = doc_and_sets
        assert fixed_point_bounded(frags) == fixed_point(frags)

    @settings(max_examples=50, deadline=None)
    @given(document_and_nodesets(max_sets=1, max_set_size=5))
    def test_bounded_equals_naive_reference(self, doc_and_sets):
        _, (frags,) = doc_and_sets
        assert fixed_point_bounded(frags) == naive_fixed_point(frags)

    @settings(max_examples=50, deadline=None)
    @given(document_and_nodesets(max_sets=1, max_set_size=5))
    def test_k_rounds_suffice_n_rounds_add_nothing(self, doc_and_sets):
        _, (frags,) = doc_and_sets
        n = len(frags)
        if n == 0:
            return
        k = reduction_count(frags)
        assert k <= n
        assert iterate_pairwise(frags, max(k, 1)) == \
            iterate_pairwise(frags, n)

    @settings(max_examples=30, deadline=None)
    @given(document_and_nodesets(max_sets=1, max_set_size=5))
    def test_reduced_set_has_same_fixed_point_upper_bound(self,
                                                          doc_and_sets):
        # The reduced set's closure still contains every original
        # fragment's closure contribution.
        _, (frags,) = doc_and_sets
        if not frags:
            return
        assert fixed_point(frags) >= frozenset(set_reduce(frags))


class TestPredicateThreading:
    """The equation after Theorem 3: pruning inside the fixed point."""

    @settings(max_examples=50, deadline=None)
    @given(document_and_nodesets(max_sets=1, max_set_size=4))
    def test_pruned_fixed_point_equals_filter_after(self, doc_and_sets):
        _, (frags,) = doc_and_sets
        predicate = SizeAtMost(3)
        pruned = fixed_point(frags, predicate=predicate)
        after = select(predicate, fixed_point(frags))
        assert pruned == after

    @settings(max_examples=50, deadline=None)
    @given(document_and_nodesets(max_sets=1, max_set_size=4))
    def test_bounded_pruned_fixed_point_equals_filter_after(self,
                                                            doc_and_sets):
        _, (frags,) = doc_and_sets
        predicate = SizeAtMost(3)
        pruned = fixed_point_bounded(frags, predicate=predicate)
        after = select(predicate, fixed_point_bounded(frags))
        assert pruned == after

    def test_pruning_reduces_work(self, figure1):
        frags = frozenset(Fragment(figure1, [n]) for n in (16, 17, 81))
        free = OperationStats()
        pruned = OperationStats()
        fixed_point(frags, stats=free)
        fixed_point(frags, stats=pruned, predicate=SizeAtMost(3))
        assert pruned.fragment_joins <= free.fragment_joins
