"""Unit tests for adaptive top-k retrieval."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.filters import SizeAtMost, TagsWithin
from repro.core.query import Query
from repro.core.strategies import evaluate
from repro.core.topk import top_k_smallest

from ..treegen import documents


class TestTopKUnit:
    def test_k_smallest_on_figure1(self, figure1):
        query = Query.of("xquery", "optimization")
        top2 = top_k_smallest(figure1, query, k=2)
        assert [sorted(f.nodes) for f in top2] == [[17], [16, 17]]

    def test_k_larger_than_answer_set(self, figure1):
        query = Query.of("xquery", "optimization",
                         predicate=SizeAtMost(3))
        answers = top_k_smallest(figure1, query, k=50)
        assert len(answers) == 4  # Table 1's full filtered answer set

    def test_k_one(self, figure1):
        query = Query.of("xquery", "optimization")
        assert [sorted(f.nodes)
                for f in top_k_smallest(figure1, query, k=1)] == [[17]]

    def test_validation(self, figure1):
        query = Query.of("xquery")
        with pytest.raises(ValueError):
            top_k_smallest(figure1, query, k=0)
        with pytest.raises(ValueError):
            top_k_smallest(figure1, query, k=1, initial_beta=0)

    def test_no_answers(self, figure1):
        assert top_k_smallest(figure1, Query.of("zebra", "xquery"),
                              k=3) == []

    def test_extra_predicate(self, figure1):
        query = Query.of("xquery", "optimization")
        answers = top_k_smallest(
            figure1, query, k=5,
            extra_predicate=TagsWithin({"par", "subsubsection"}))
        for fragment in answers:
            assert all(figure1.tag(n) in ("par", "subsubsection")
                       for n in fragment.nodes)

    def test_query_predicate_respected(self, figure1):
        query = Query.of("xquery", "optimization",
                         predicate=SizeAtMost(2))
        answers = top_k_smallest(figure1, query, k=10)
        assert all(f.size <= 2 for f in answers)


class TestTopKNewKeywords:
    """The streaming rewrite keeps the old signature but adds
    strategy/budget/obs/kernel threading that the original hardcoded."""

    def test_strategy_override(self, figure1):
        from repro.core.strategies import Strategy
        query = Query.of("xquery", "optimization")
        expected = top_k_smallest(figure1, query, k=2)
        for strategy in Strategy:
            assert top_k_smallest(figure1, query, k=2,
                                  strategy=strategy) == expected

    def test_budget_enforced(self, figure1):
        from repro.errors import BudgetExceeded
        from repro.guard.budget import QueryBudget
        query = Query.of("xquery", "optimization")
        with pytest.raises(BudgetExceeded):
            top_k_smallest(figure1, query, k=2,
                           budget=QueryBudget(max_join_ops=1))

    def test_obs_and_kernel_threaded(self, figure1):
        from repro.obs import Observability
        obs = Observability()
        query = Query.of("xquery", "optimization")
        answers = top_k_smallest(figure1, query, k=2, obs=obs,
                                 kernel="bitset")
        assert [sorted(f.nodes) for f in answers] == [[17], [16, 17]]
        assert "repro_stream_rounds_total" in obs.metrics


class TestTopKProperties:
    @settings(max_examples=25, deadline=None)
    @given(documents(min_nodes=3, max_nodes=10))
    def test_matches_full_evaluation(self, doc):
        query = Query.of("alpha", "beta")
        for k in (1, 3):
            adaptive = top_k_smallest(doc, query, k=k)
            full = sorted(evaluate(doc, query).fragments,
                          key=lambda f: (f.size, sorted(f.nodes)))[:k]
            assert adaptive == full
