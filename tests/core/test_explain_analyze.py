"""EXPLAIN ANALYZE tests: per-operator runtime statistics.

Pins the Section-4 strategy → plan mapping, the equality of analysed
execution with ``evaluate``, nonzero per-operator counters for every
strategy, the zero-denominator guard on the cache-hit ratio, and the
accumulate/merge semantics used by collection-wide analysis.
"""

from __future__ import annotations

import pytest

from repro.core import (FixedPoint, KeywordScan, OperatorRunStats,
                        PlanAnalysis, PowersetJoin, Query, SizeAtMost,
                        Strategy, evaluate, explain, explain_analyze,
                        plan_for, run_plan)
from repro.errors import PlanError, QueryError
from repro.index.inverted import InvertedIndex
from repro.workloads.inexlike import InexSpec, generate_collection

ALL_STRATEGIES = tuple(Strategy)


@pytest.fixture(scope="module")
def corpus():
    return generate_collection(
        InexSpec(articles=6, nodes_per_article=120, seed=11))


@pytest.fixture(scope="module")
def query():
    return Query(("needle", "thread"), SizeAtMost(6))


@pytest.fixture(scope="module")
def matching(corpus, query):
    """(document, index) of a document containing every query term."""
    name = next(n for n in corpus.names()
                if all(corpus.index(n).contains(t) for t in query.terms))
    return corpus.document(name), corpus.index(name)


class TestPlanFor:
    def test_brute_force_is_the_canonical_plan(self, query):
        plan = plan_for(query, Strategy.BRUTE_FORCE)
        assert isinstance(plan.children()[0], PowersetJoin)

    def test_set_reduction_has_bounded_fixed_points(self, query):
        plan = plan_for(query, Strategy.SET_REDUCTION)
        fixed = [n for n in plan.walk() if isinstance(n, FixedPoint)]
        assert fixed and all(n.bounded for n in fixed)
        assert not any(n.predicate for n in fixed)  # no push-down

    def test_semi_naive_has_unbounded_fixed_points(self, query):
        plan = plan_for(query, Strategy.SEMI_NAIVE)
        fixed = [n for n in plan.walk() if isinstance(n, FixedPoint)]
        assert fixed and not any(n.bounded for n in fixed)

    def test_pushdown_prunes_inside_fixed_points(self, query):
        plan = plan_for(query, Strategy.PUSHDOWN)
        fixed = [n for n in plan.walk() if isinstance(n, FixedPoint)]
        assert fixed and all(n.predicate is not None for n in fixed)


class TestExplainAnalyze:
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES,
                             ids=lambda s: s.value)
    def test_matches_evaluate_and_counts_work(self, matching, query,
                                              strategy):
        document, index = matching
        reference = evaluate(document, query, strategy=strategy,
                             index=index)
        result, analysis = explain_analyze(document, query,
                                           strategy=strategy,
                                           index=index)
        assert result.fragments == reference.fragments
        assert all(op.calls == 1 for op in analysis.operators)
        total_ops = sum(op.fragment_joins + op.predicate_checks
                        + op.subset_checks
                        for op in analysis.operators)
        assert total_ops > 0
        root = analysis.operators[0]
        assert root.rows == len(result.fragments)
        assert root.total_seconds > 0

    def test_operator_counters_are_self_only(self, matching, query):
        document, index = matching
        _, analysis = explain_analyze(document, query,
                                      strategy=Strategy.SET_REDUCTION,
                                      index=index)
        by_label = {}
        for op in analysis.operators:
            by_label.setdefault(op.label.split("[")[0], []).append(op)
        # Scans perform no joins; the root selection performs no joins;
        # fixed points and the pairwise join own theirs.
        for scan in by_label["scan"]:
            assert scan.fragment_joins == 0
        (select,) = by_label["σa"]
        assert select.fragment_joins == 0
        assert select.predicate_checks > 0
        assert any(op.fragment_joins > 0 for op in by_label["fixpoint"])
        assert all(op.iterations > 0 for op in by_label["fixpoint"])

    def test_total_time_covers_self_time(self, matching, query):
        document, index = matching
        _, analysis = explain_analyze(document, query, index=index)
        for op in analysis.operators:
            assert 0.0 <= op.self_seconds <= op.total_seconds + 1e-9

    def test_render_via_explain(self, matching, query):
        document, index = matching
        _, analysis = explain_analyze(document, query, index=index)
        text = explain(analysis.plan, analyze=analysis)
        assert "rows=" in text and "self=" in text and "ms" in text
        # One line per operator, same tree shape as the bare explain.
        assert len(text.splitlines()) \
            == len(explain(analysis.plan).splitlines())

    def test_explain_rejects_foreign_analysis(self, matching, query):
        document, index = matching
        _, analysis = explain_analyze(document, query, index=index)
        other_plan = plan_for(query, Strategy.BRUTE_FORCE)
        with pytest.raises(PlanError):
            explain(other_plan, analyze=analysis)

    def test_rejects_mismatched_plan_and_analysis(self, matching, query):
        document, index = matching
        analysis = PlanAnalysis(plan_for(query, Strategy.PUSHDOWN))
        with pytest.raises(QueryError):
            explain_analyze(document, query, index=index,
                            plan=plan_for(query, Strategy.PUSHDOWN),
                            analysis=analysis)

    def test_to_dicts_shape(self, matching, query):
        document, index = matching
        _, analysis = explain_analyze(document, query, index=index)
        records = analysis.to_dicts()
        assert len(records) == len(analysis.operators)
        assert {"label", "depth", "calls", "rows", "rows_in",
                "self_seconds", "total_seconds"} <= records[0].keys()


class TestCacheHitRatioGuard:
    def test_no_lookups_means_no_ratio(self):
        stats = OperatorRunStats(label="scan", depth=0, children=())
        assert stats.cache_hit_ratio is None
        assert "cache_hit_ratio" not in stats.to_dict()

    def test_ratio_present_with_lookups(self):
        stats = OperatorRunStats(label="⋈", depth=0, children=(),
                                 fragment_joins=3, join_cache_hits=1)
        assert stats.cache_hit_ratio == pytest.approx(0.25)
        assert stats.to_dict()["cache_hit_ratio"] == pytest.approx(0.25)

    def test_zero_work_operators_render_without_ratio(self, query):
        analysis = PlanAnalysis(plan_for(query, Strategy.PUSHDOWN))
        assert "cached" not in analysis.render()


class TestAccumulation:
    def test_collection_analysis_counts_documents(self, corpus, query):
        result, analysis = corpus.explain_analyze(query)
        evaluated = len(result.per_document)
        assert evaluated >= 1
        assert all(op.calls == evaluated for op in analysis.operators)
        reference = corpus.search(query)
        assert {n: r.fragments for n, r in result.per_document.items()} \
            == {n: r.fragments for n, r in reference.per_document.items()}

    def test_merge_requires_same_shape(self, query):
        pushdown = PlanAnalysis(plan_for(query, Strategy.PUSHDOWN))
        brute = PlanAnalysis(plan_for(query, Strategy.BRUTE_FORCE))
        with pytest.raises(PlanError):
            pushdown.merge(brute)

    def test_merge_accumulates(self, matching, query):
        document, index = matching
        _, first = explain_analyze(document, query, index=index)
        _, second = explain_analyze(document, query, index=index)
        baseline = [op.rows for op in first.operators]
        first.merge(second)
        assert [op.rows for op in first.operators] \
            == [2 * rows for rows in baseline]
        assert all(op.calls == 2 for op in first.operators)

    def test_run_plan_threads_analysis(self, matching, query):
        document, index = matching
        plan = plan_for(query, Strategy.SET_REDUCTION)
        analysis = PlanAnalysis(plan)
        result = run_plan(document, query, plan, index=index,
                          analysis=analysis)
        assert analysis.operators[0].rows == len(result.fragments)
