"""Unit tests for plan rewriting (Theorems 2 & 3 as plan transforms)."""

from __future__ import annotations

from repro.core.cost import CostModel
from repro.core.filters import SizeAtLeast, SizeAtMost
from repro.core.optimizer import (OptimizerSettings, optimize,
                                  push_down_selections, rewrite_powerset)
from repro.core.plan import (FixedPoint, KeywordScan, PairwiseJoin,
                             PowersetJoin, Select, initial_plan)
from repro.core.query import Query
from repro.index.inverted import InvertedIndex


def plan_kinds(plan):
    return [type(n).__name__ for n in plan.walk()]


class TestRewritePowerset:
    def test_binary_rewrite_shape(self):
        plan = initial_plan(Query.of("a", "b"))
        rewritten = rewrite_powerset(plan)
        assert "PowersetJoin" not in plan_kinds(rewritten)
        select = rewritten
        assert isinstance(select, Select)
        join = select.child
        assert isinstance(join, PairwiseJoin)
        assert isinstance(join.left, FixedPoint)
        assert isinstance(join.right, FixedPoint)

    def test_three_way_left_deep(self):
        plan = rewrite_powerset(initial_plan(Query.of("a", "b", "c")))
        join = plan.child
        assert isinstance(join, PairwiseJoin)
        assert isinstance(join.left, PairwiseJoin)
        assert isinstance(join.right, FixedPoint)

    def test_bounded_flag_propagates(self):
        plan = rewrite_powerset(initial_plan(Query.of("a", "b")),
                                bounded=False)
        fps = [n for n in plan.walk() if isinstance(n, FixedPoint)]
        assert fps and all(not fp.bounded for fp in fps)

    def test_idempotent_on_rewritten_plan(self):
        plan = rewrite_powerset(initial_plan(Query.of("a", "b")))
        assert plan_kinds(rewrite_powerset(plan)) == plan_kinds(plan)


class TestPushDown:
    def test_anti_monotonic_selection_reaches_scans(self):
        query = Query.of("a", "b", predicate=SizeAtMost(3))
        plan = push_down_selections(rewrite_powerset(initial_plan(query)))
        # Every scan is now wrapped in a selection.
        scans_selected = [
            n for n in plan.walk()
            if isinstance(n, Select) and isinstance(n.child, KeywordScan)]
        assert len(scans_selected) == 2

    def test_fixed_points_gain_prune_predicate(self):
        query = Query.of("a", "b", predicate=SizeAtMost(3))
        plan = push_down_selections(rewrite_powerset(initial_plan(query)))
        fps = [n for n in plan.walk() if isinstance(n, FixedPoint)]
        assert fps and all(fp.predicate is not None for fp in fps)

    def test_join_reselected(self):
        query = Query.of("a", "b", predicate=SizeAtMost(3))
        plan = push_down_selections(rewrite_powerset(initial_plan(query)))
        # Top: σ(σ(join)) — the outer original plus the pushed copy.
        assert isinstance(plan, Select)
        assert isinstance(plan.child, Select)
        assert isinstance(plan.child.child, PairwiseJoin)

    def test_non_anti_monotonic_untouched(self):
        query = Query.of("a", "b", predicate=SizeAtLeast(3))
        rewritten = rewrite_powerset(initial_plan(query))
        pushed = push_down_selections(rewritten)
        assert plan_kinds(pushed) == plan_kinds(rewritten)

    def test_pushdown_through_powerset(self):
        query = Query.of("a", "b", predicate=SizeAtMost(2))
        plan = push_down_selections(initial_plan(query))
        # Selection pushed into each powerset operand.
        powerset = next(n for n in plan.walk()
                        if isinstance(n, PowersetJoin))
        assert all(isinstance(op, Select) for op in powerset.operands)


class TestOptimize:
    def test_default_settings_produce_pushed_plan(self):
        query = Query.of("a", "b", predicate=SizeAtMost(3))
        plan = optimize(query)
        kinds = plan_kinds(plan)
        assert "PowersetJoin" not in kinds
        assert kinds.count("Select") >= 3

    def test_pushdown_disabled(self):
        query = Query.of("a", "b", predicate=SizeAtMost(3))
        plan = optimize(query, OptimizerSettings(push_down=False))
        assert plan_kinds(plan).count("Select") == 1

    def test_unbounded_fixed_points(self):
        query = Query.of("a", "b")
        plan = optimize(query,
                        OptimizerSettings(bounded_fixed_points=False))
        fps = [n for n in plan.walk() if isinstance(n, FixedPoint)]
        assert all(not fp.bounded for fp in fps)

    def test_cost_model_orders_terms_rarest_first(self, figure1,
                                                  figure1_index):
        model = CostModel(figure1, index=figure1_index)
        # 'xquery' (df=2) is rarer than 'optimization' (df=3).
        plan = optimize(Query.of("optimization", "xquery"),
                        OptimizerSettings(cost_model=model))
        scans = [n for n in plan.walk() if isinstance(n, KeywordScan)]
        assert scans[0].term == "xquery"

    def test_single_term_plan(self):
        plan = optimize(Query.of("a"))
        kinds = plan_kinds(plan)
        assert "PairwiseJoin" not in kinds
        assert "FixedPoint" in kinds
