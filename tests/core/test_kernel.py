"""Property and unit tests for the interval-bitset join kernel.

The kernel (:class:`repro.xmltree.intervals.IntervalKernel`) is an
integer-arithmetic fast path for the spanning closure.  These tests
cross-check it against the frozenset reference implementation on
randomized trees: every closure, join and strategy evaluation must be
**identical** between the two paths.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.algebra import (KERNEL_BITSET, KERNEL_NAMES,
                                KERNEL_REFERENCE, fragment_join,
                                pairwise_join, resolve_kernel)
from repro.core.fragment import Fragment
from repro.core.query import Query
from repro.core.strategies import Strategy, evaluate
from repro.errors import QueryError
from repro.xmltree.intervals import IntervalKernel
from repro.xmltree.navigation import spanning_nodes

from ..treegen import KEYWORD_ALPHABET, documents, random_fragment


@st.composite
def document_and_node_sets(draw, max_nodes: int = 14):
    """A document plus a non-empty random node-id set."""
    doc = draw(documents(min_nodes=1, max_nodes=max_nodes))
    size = draw(st.integers(min_value=1, max_value=min(6, doc.size)))
    ids = draw(st.lists(st.integers(min_value=0, max_value=doc.size - 1),
                        min_size=size, max_size=size, unique=True))
    return doc, ids


class TestSpanningAgreement:
    @given(document_and_node_sets())
    def test_spanning_matches_reference(self, doc_and_ids):
        doc, ids = doc_and_ids
        kernel = doc.interval_kernel()
        assert kernel.spanning(ids) == spanning_nodes(doc, ids)

    @given(document_and_node_sets())
    def test_epoch_reuse_is_clean(self, doc_and_ids):
        # Consecutive closures share the stamp scratch array; a stale
        # epoch must never leak nodes between calls.
        doc, ids = doc_and_ids
        kernel = doc.interval_kernel()
        expected = spanning_nodes(doc, ids)
        for _ in range(3):
            assert kernel.spanning(ids) == expected

    @given(document_and_node_sets(), document_and_node_sets())
    def test_spanning_of_union(self, first, second):
        doc, ids1 = first
        _, ids2raw = second
        ids2 = [n % doc.size for n in ids2raw]
        kernel = doc.interval_kernel()
        assert (kernel.spanning_of_union(ids1, ids2)
                == spanning_nodes(doc, list(ids1) + ids2))


class TestJoinAgreement:
    @given(documents(min_nodes=2, max_nodes=16),
           st.integers(min_value=0, max_value=2 ** 30),
           st.integers(min_value=0, max_value=2 ** 30))
    def test_fragment_join_matches_reference(self, doc, seed1, seed2):
        f1 = random_fragment(doc, seed1)
        f2 = random_fragment(doc, seed2)
        reference = fragment_join(f1, f2)
        fast = fragment_join(f1, f2, kernel=doc.interval_kernel())
        assert fast == reference

    @given(documents(min_nodes=2, max_nodes=12),
           st.lists(st.integers(min_value=0, max_value=2 ** 30),
                    min_size=2, max_size=4))
    def test_pairwise_join_matches_reference(self, doc, seeds):
        frags = [random_fragment(doc, s) for s in seeds]
        left, right = frags[: len(frags) // 2], frags[len(frags) // 2:]
        reference = pairwise_join(left, right)
        fast = pairwise_join(left, right, kernel=doc.interval_kernel())
        assert fast == reference

    @settings(deadline=None, max_examples=30)
    @given(documents(min_nodes=2, max_nodes=12))
    def test_evaluate_matches_reference(self, doc):
        query = Query(KEYWORD_ALPHABET[:2])
        for strategy in (Strategy.BRUTE_FORCE, Strategy.SET_REDUCTION,
                         Strategy.PUSHDOWN):
            reference = evaluate(doc, query, strategy=strategy)
            fast = evaluate(doc, query, strategy=strategy,
                            kernel=KERNEL_BITSET)
            assert fast.fragments == reference.fragments


class TestStructuralMeasures:
    @given(documents(min_nodes=2, max_nodes=16),
           st.integers(min_value=0, max_value=2 ** 30))
    def test_measures_match_fragment_properties(self, doc, seed):
        fragment = random_fragment(doc, seed)
        kernel = doc.interval_kernel()
        assert kernel.height_of(fragment.nodes) == fragment.height
        assert kernel.width_of(fragment.nodes) == fragment.width

    @given(documents(min_nodes=2, max_nodes=16))
    def test_ancestor_check_matches_document(self, doc):
        kernel = doc.interval_kernel()
        for u in range(doc.size):
            for v in range(doc.size):
                assert (kernel.is_ancestor_or_self(u, v)
                        == doc.is_ancestor_or_self(u, v))


class TestKernelSelection:
    def test_resolve_names(self, tiny_doc):
        assert resolve_kernel(None, tiny_doc) is None
        assert resolve_kernel(KERNEL_REFERENCE, tiny_doc) is None
        kernel = resolve_kernel(KERNEL_BITSET, tiny_doc)
        assert isinstance(kernel, IntervalKernel)
        # The kernel is cached per document.
        assert resolve_kernel(KERNEL_BITSET, tiny_doc) is kernel
        assert resolve_kernel(kernel, tiny_doc) is kernel

    def test_unknown_name_rejected(self, tiny_doc):
        with pytest.raises(QueryError, match="unknown join kernel"):
            resolve_kernel("turbo", tiny_doc)

    def test_cross_document_kernel_rejected(self, tiny_doc, chain_doc):
        kernel = tiny_doc.interval_kernel()
        with pytest.raises(QueryError, match="different document"):
            resolve_kernel(kernel, chain_doc)

    def test_kernel_names_constant(self):
        assert KERNEL_NAMES == (KERNEL_REFERENCE, KERNEL_BITSET)

    def test_empty_spanning_rejected(self, tiny_doc):
        with pytest.raises(ValueError):
            tiny_doc.interval_kernel().spanning([])
