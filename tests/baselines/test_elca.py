"""Unit and property tests for ELCA keyword search."""

from __future__ import annotations

import itertools

from hypothesis import given, settings

from repro.baselines.elca import elca_nodes
from repro.baselines.slca import slca_nodes

from ..treegen import documents


def naive_elca(doc, terms):
    """Reference ELCA by definition: v is an ELCA iff its subtree
    contains every term after removing subtrees of descendant nodes
    whose subtrees contain every term."""
    def subtree_full(v):
        nodes = list(doc.subtree(v))
        return all(any(t in doc.keywords(n) for n in nodes)
                   for t in terms)

    result = []
    for v in doc.node_ids():
        if not subtree_full(v):
            continue
        # Occurrences not under any full *proper descendant* of v.
        blocked = set()
        for d in doc.descendants(v):
            if d not in blocked and subtree_full(d):
                blocked.update(doc.subtree(d))
        remaining = [n for n in doc.subtree(v) if n not in blocked]
        if all(any(t in doc.keywords(n) for n in remaining)
               for t in terms):
            result.append(v)
    return result


class TestElcaUnit:
    def test_figure1(self, figure1):
        # n17 carries both terms; no ancestor has independent witnesses
        # for *both* terms outside n17's subtree... n16 has optimization
        # (itself) and xquery at n18 → n16 is also an ELCA.
        result = elca_nodes(figure1, ["xquery", "optimization"])
        assert 17 in result
        assert 16 in result
        assert result == naive_elca(figure1,
                                    ["xquery", "optimization"])

    def test_missing_term_empty(self, tiny_doc):
        assert elca_nodes(tiny_doc, ["red", "zebra"]) == []

    def test_elcas_contain_slcas(self, tiny_doc):
        slcas = set(slca_nodes(tiny_doc, ["red", "pear"]))
        elcas = set(elca_nodes(tiny_doc, ["red", "pear"]))
        assert slcas <= elcas

    def test_sorted_output(self, figure1):
        result = elca_nodes(figure1, ["xquery", "optimization"])
        assert result == sorted(result)


class TestElcaProperties:
    @settings(max_examples=60, deadline=None)
    @given(documents(min_nodes=2, max_nodes=12))
    def test_matches_naive_two_terms(self, doc):
        assert elca_nodes(doc, ["alpha", "beta"]) == \
            naive_elca(doc, ["alpha", "beta"])

    @settings(max_examples=40, deadline=None)
    @given(documents(min_nodes=2, max_nodes=10))
    def test_matches_naive_three_terms(self, doc):
        terms = ["alpha", "beta", "gamma"]
        assert elca_nodes(doc, terms) == naive_elca(doc, terms)

    @settings(max_examples=40, deadline=None)
    @given(documents(min_nodes=2, max_nodes=12))
    def test_slca_subset_of_elca(self, doc):
        slcas = set(slca_nodes(doc, ["alpha", "beta"]))
        elcas = set(elca_nodes(doc, ["alpha", "beta"]))
        assert slcas <= elcas
