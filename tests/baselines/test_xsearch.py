"""Unit and property tests for the XSEarch interconnection baseline."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.baselines.xsearch import interconnected, xsearch_answers
from repro.core.fragment import Fragment
from repro.errors import FragmentError
from repro.xmltree.builder import DocumentBuilder

from ..treegen import documents


@pytest.fixture()
def entity_doc():
    """Two <author> entities under one <book>: the XSEarch motivation.

    Topology::

        0:book ── 1:author ── 2:name "smith"
                │           └─ 3:area "databases"
                └─ 4:author ── 5:name "jones"
                             └─ 6:area "retrieval"
    """
    b = DocumentBuilder(name="entities")
    book = b.add_root("book")
    a1 = b.add_child(book, "author")
    b.add_child(a1, "name", "smith")
    b.add_child(a1, "area", "databases")
    a2 = b.add_child(book, "author")
    b.add_child(a2, "name", "jones")
    b.add_child(a2, "area", "retrieval")
    return b.build()


class TestInterconnected:
    def test_same_node(self, entity_doc):
        assert interconnected(entity_doc, 2, 2)

    def test_within_one_entity(self, entity_doc):
        # name and area of the same author: path 2-1-3, one 'author'.
        assert interconnected(entity_doc, 2, 3)

    def test_across_entities_blocked(self, entity_doc):
        # smith's name and jones's area: path passes both <author>s.
        assert not interconnected(entity_doc, 2, 6)
        assert not interconnected(entity_doc, 5, 3)

    def test_parent_child(self, entity_doc):
        assert interconnected(entity_doc, 1, 2)

    def test_symmetric(self, entity_doc):
        for u in entity_doc.node_ids():
            for v in entity_doc.node_ids():
                assert interconnected(entity_doc, u, v) == \
                    interconnected(entity_doc, v, u)

    def test_figure1_cases(self, figure1):
        # Siblings under one subsubsection: interconnected.
        assert interconnected(figure1, 17, 18)
        # Across distant sections (path holds repeated tags): not.
        assert not interconnected(figure1, 17, 81)


class TestXsearchAnswers:
    def test_entity_doc_query(self, entity_doc):
        answers = xsearch_answers(entity_doc, ["smith", "databases"])
        assert Fragment(entity_doc, [1, 2, 3]) in answers
        # The cross-entity combination is rejected.
        assert not xsearch_answers(entity_doc, ["smith", "retrieval"])

    def test_missing_term(self, entity_doc):
        assert xsearch_answers(entity_doc, ["smith", "zebra"]) == []

    def test_guard(self, figure1):
        with pytest.raises(FragmentError, match="max_tuples"):
            xsearch_answers(figure1, ["par"], max_tuples=10)

    def test_sorted_smallest_first(self, figure1):
        answers = xsearch_answers(figure1, ["xquery", "optimization"])
        sizes = [f.size for f in answers]
        assert sizes == sorted(sizes)

    @settings(max_examples=30, deadline=None)
    @given(documents(min_nodes=2, max_nodes=10))
    def test_answers_cover_terms_and_connected(self, doc):
        for fragment in xsearch_answers(doc, ["alpha", "beta"]):
            Fragment(doc, fragment.nodes)  # validates connectivity
            assert fragment.contains_keyword("alpha")
            assert fragment.contains_keyword("beta")

    @settings(max_examples=30, deadline=None)
    @given(documents(min_nodes=2, max_nodes=10))
    def test_subset_of_algebraic_answers(self, doc):
        """XSEarch answers are spanning fragments of keyword-node
        tuples, hence always members of the unfiltered powerset join."""
        from repro.core.query import Query
        from repro.core.strategies import evaluate
        algebra = evaluate(doc, Query.of("alpha", "beta")).fragments
        xsearch = set(xsearch_answers(doc, ["alpha", "beta"]))
        assert xsearch <= algebra
