"""Unit tests for baseline helpers."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.baselines.common import remove_ancestors, term_postings
from repro.index.inverted import InvertedIndex

from ..treegen import documents


class TestTermPostings:
    def test_matches_index(self, tiny_doc):
        index = InvertedIndex(tiny_doc)
        assert term_postings(tiny_doc, ["red", "pear"]) == \
            [index.postings("red"), index.postings("pear")]

    def test_casefolds_terms(self, tiny_doc):
        assert term_postings(tiny_doc, ["RED"]) == [[2, 5]]

    def test_missing_term_empty(self, tiny_doc):
        assert term_postings(tiny_doc, ["zebra"]) == [[]]

    def test_explicit_index_used(self, tiny_doc):
        index = InvertedIndex(tiny_doc)
        assert term_postings(tiny_doc, ["red"], index=index) == [[2, 5]]


class TestRemoveAncestors:
    def test_keeps_incomparable(self, tiny_doc):
        assert remove_ancestors(tiny_doc, [2, 5]) == [2, 5]

    def test_drops_ancestor(self, tiny_doc):
        assert remove_ancestors(tiny_doc, [1, 2]) == [2]
        assert remove_ancestors(tiny_doc, [0, 2, 5]) == [2, 5]

    def test_deduplicates(self, tiny_doc):
        assert remove_ancestors(tiny_doc, [3, 3]) == [3]

    def test_chain_keeps_deepest(self, chain_doc):
        assert remove_ancestors(chain_doc, [0, 1, 2, 3, 4]) == [4]

    def test_empty(self, tiny_doc):
        assert remove_ancestors(tiny_doc, []) == []

    @given(documents(max_nodes=12),
           st.lists(st.integers(min_value=0, max_value=11), max_size=8))
    def test_result_is_antichain_and_covers(self, doc, raw):
        nodes = [n % doc.size for n in raw]
        kept = remove_ancestors(doc, nodes)
        # No kept node is an ancestor of another.
        for u in kept:
            for v in kept:
                if u != v:
                    assert not doc.is_proper_ancestor(u, v)
        # Every input node is an ancestor-or-self of some kept node.
        for node in set(nodes):
            assert any(doc.is_ancestor_or_self(node, k) for k in kept)
