"""Observability threading through the baseline evaluators.

Each baseline entry point accepts ``obs=``; a live handle wraps the run
in a ``baseline:<name>`` span and records ``baseline=``-labelled
metrics, while the default NOOP path stays untouched.  Composed
baselines (xrank over ELCA, smallest over SLCA) record exactly one
query each.
"""

from __future__ import annotations

import pytest

from repro.baselines import (elca_nodes, slca_nodes, smallest_fragments,
                             xrank_answers, xsearch_answers)
from repro.obs import (BASELINE_QUERIES, NOOP, Observability)
from repro.workloads.inexlike import InexSpec, generate_collection

BASELINES = {
    "slca": slca_nodes,
    "elca": elca_nodes,
    "smallest": smallest_fragments,
    "xrank": xrank_answers,
    "xsearch": xsearch_answers,
}

TERMS = ("needle", "thread")


@pytest.fixture(scope="module")
def target():
    corpus = generate_collection(
        InexSpec(articles=6, nodes_per_article=120, seed=11))
    name = next(n for n in corpus.names()
                if all(corpus.index(n).contains(t) for t in TERMS))
    return corpus.document(name), corpus.index(name)


def _baseline_counts(obs):
    return {record["labels"]["baseline"]: record["value"]
            for record in obs.metrics.to_json()["metrics"]
            if record["name"] == BASELINE_QUERIES}


@pytest.mark.parametrize("name", sorted(BASELINES), ids=str)
class TestPerBaseline:
    def test_obs_does_not_change_answers(self, target, name):
        document, index = target
        fn = BASELINES[name]
        plain = fn(document, TERMS, index=index)
        observed = fn(document, TERMS, index=index,
                      obs=Observability())
        assert observed == plain

    def test_records_one_labelled_query(self, target, name):
        document, index = target
        obs = Observability()
        BASELINES[name](document, TERMS, index=index, obs=obs)
        assert _baseline_counts(obs) == {name: 1}

    def test_span_carries_answer_count(self, target, name):
        document, index = target
        obs = Observability()
        result = BASELINES[name](document, TERMS, index=index, obs=obs)
        (root,) = obs.tracer.roots
        assert root.name == f"baseline:{name}"
        assert root.attributes["answers"] == len(result)

    def test_noop_handle_is_accepted(self, target, name):
        document, index = target
        fn = BASELINES[name]
        assert fn(document, TERMS, index=index, obs=NOOP) \
            == fn(document, TERMS, index=index)


class TestComposition:
    def test_xrank_does_not_double_count_elca(self, target):
        document, index = target
        obs = Observability()
        xrank_answers(document, TERMS, index=index, obs=obs)
        assert _baseline_counts(obs) == {"xrank": 1}

    def test_smallest_does_not_double_count_slca(self, target):
        document, index = target
        obs = Observability()
        smallest_fragments(document, TERMS, index=index, obs=obs)
        assert _baseline_counts(obs) == {"smallest": 1}

    def test_shared_registry_across_baselines(self, target):
        document, index = target
        obs = Observability()
        for fn in BASELINES.values():
            fn(document, TERMS, index=index, obs=obs)
        assert _baseline_counts(obs) == {name: 1 for name in BASELINES}
