"""Unit tests for the smallest-subtree answer semantics."""

from __future__ import annotations

from hypothesis import given, settings

from repro.baselines.slca import slca_nodes
from repro.baselines.smallest import smallest_fragments
from repro.core.fragment import Fragment

from ..treegen import documents


class TestSmallestFragmentsUnit:
    def test_paper_motivation_returns_only_n17(self, figure1):
        """§1: conventional semantics answers {XQuery, optimization}
        with the lone paragraph n17 — not the self-contained fragment
        ⟨n16,n17,n18⟩ the paper argues for."""
        fragments = smallest_fragments(figure1,
                                       ["xquery", "optimization"])
        assert fragments == [Fragment(figure1, [17])]

    def test_missing_term_empty(self, tiny_doc):
        assert smallest_fragments(tiny_doc, ["red", "zebra"]) == []

    def test_one_fragment_per_slca(self, tiny_doc):
        fragments = smallest_fragments(tiny_doc, ["red", "pear"])
        slcas = slca_nodes(tiny_doc, ["red", "pear"])
        assert [f.root for f in fragments] == slcas

    def test_witnesses_inside_slca_subtree(self, tiny_doc):
        for frag in smallest_fragments(tiny_doc, ["red", "pear"]):
            root = frag.root
            subtree = set(tiny_doc.subtree(root))
            assert frag.nodes <= subtree

    def test_fragment_covers_all_terms(self, tiny_doc):
        for frag in smallest_fragments(tiny_doc, ["red", "pear"]):
            assert frag.contains_keyword("red")
            assert frag.contains_keyword("pear")


class TestSmallestFragmentsProperties:
    @settings(max_examples=40, deadline=None)
    @given(documents(min_nodes=2, max_nodes=12))
    def test_fragments_connected_and_cover_terms(self, doc):
        terms = ["alpha", "beta"]
        for frag in smallest_fragments(doc, terms):
            Fragment(doc, frag.nodes)  # validates connectivity
            for term in terms:
                assert frag.contains_keyword(term)

    @settings(max_examples=40, deadline=None)
    @given(documents(min_nodes=2, max_nodes=12))
    def test_roots_are_slcas(self, doc):
        terms = ["alpha", "beta"]
        roots = [f.root for f in smallest_fragments(doc, terms)]
        assert roots == slca_nodes(doc, terms)
