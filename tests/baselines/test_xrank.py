"""Unit tests for the XRank-style ranked baseline."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.baselines.elca import elca_nodes
from repro.baselines.xrank import xrank_answers

from ..treegen import documents


class TestXrankUnit:
    def test_answers_are_elcas(self, figure1):
        terms = ["xquery", "optimization"]
        answers = xrank_answers(figure1, terms)
        assert {a.node for a in answers} == set(elca_nodes(figure1,
                                                           terms))

    def test_ranked_descending(self, figure1):
        answers = xrank_answers(figure1, ["xquery", "optimization"])
        scores = [a.score for a in answers]
        assert scores == sorted(scores, reverse=True)

    def test_node_carrying_both_terms_ranks_first(self, figure1):
        answers = xrank_answers(figure1, ["xquery", "optimization"])
        # n17 contains both terms at depth 0 relative to itself: its
        # score is the maximum possible (one per term).
        assert answers[0].node == 17
        assert answers[0].score == pytest.approx(2.0)

    def test_decay_penalises_deep_witnesses(self, figure1):
        answers = {a.node: a.score
                   for a in xrank_answers(figure1,
                                          ["xquery", "optimization"],
                                          decay=0.5)}
        assert answers[16] < answers[17]

    def test_decay_one_means_no_penalty(self, figure1):
        answers = xrank_answers(figure1, ["xquery", "optimization"],
                                decay=1.0)
        assert all(a.score == pytest.approx(2.0) for a in answers)

    def test_invalid_decay(self, figure1):
        with pytest.raises(ValueError):
            xrank_answers(figure1, ["xquery"], decay=0.0)
        with pytest.raises(ValueError):
            xrank_answers(figure1, ["xquery"], decay=1.5)

    def test_missing_term_empty(self, tiny_doc):
        assert xrank_answers(tiny_doc, ["red", "zebra"]) == []


class TestXrankProperties:
    @settings(max_examples=40, deadline=None)
    @given(documents(min_nodes=2, max_nodes=12))
    def test_scores_bounded_by_term_count(self, doc):
        terms = ["alpha", "beta"]
        for answered in xrank_answers(doc, terms):
            assert 0.0 < answered.score <= len(terms) + 1e-9
