"""Unit and property tests for SLCA keyword search."""

from __future__ import annotations

import itertools

from hypothesis import given, settings

from repro.baselines.slca import slca_candidates_pair, slca_nodes
from repro.index.inverted import InvertedIndex

from ..treegen import documents


def naive_slca(doc, terms):
    """Reference SLCA by full enumeration of witness tuples."""
    postings = [doc.nodes_with_keyword(t) for t in terms]
    if any(not p for p in postings):
        return []
    lcas = {doc.lca_of(combo)
            for combo in itertools.product(*postings)}
    smallest = [v for v in lcas
                if not any(u != v and doc.is_ancestor_or_self(v, u)
                           for u in lcas)]
    return sorted(smallest)


class TestSlcaUnit:
    def test_figure1_slca_is_n17(self, figure1):
        # The motivating example: conventional semantics answers with
        # the lone paragraph n17.
        assert slca_nodes(figure1, ["xquery", "optimization"]) == [17]

    def test_single_term_slca_is_posting_antichain(self, figure1):
        assert slca_nodes(figure1, ["xquery"]) == [17, 18]

    def test_missing_term_empty(self, tiny_doc):
        assert slca_nodes(tiny_doc, ["red", "zebra"]) == []

    def test_two_branches(self, tiny_doc):
        # red={2,5}, pear={3,5}: node 5 carries both; 1 covers {2,3}.
        assert slca_nodes(tiny_doc, ["red", "pear"]) == [1, 5]

    def test_index_argument(self, tiny_doc):
        index = InvertedIndex(tiny_doc)
        assert slca_nodes(tiny_doc, ["red", "pear"], index=index) == \
            slca_nodes(tiny_doc, ["red", "pear"])

    def test_pair_candidates_cover_slcas(self, tiny_doc):
        candidates = slca_candidates_pair(tiny_doc, [2, 5], [3, 5])
        assert set(slca_nodes(tiny_doc, ["red", "pear"])) <= \
            set(candidates)

    def test_pair_candidates_empty_inputs(self, tiny_doc):
        assert slca_candidates_pair(tiny_doc, [], [1]) == []
        assert slca_candidates_pair(tiny_doc, [1], []) == []


class TestSlcaProperties:
    @settings(max_examples=60, deadline=None)
    @given(documents(min_nodes=2, max_nodes=14))
    def test_matches_naive_two_terms(self, doc):
        assert slca_nodes(doc, ["alpha", "beta"]) == \
            naive_slca(doc, ["alpha", "beta"])

    @settings(max_examples=40, deadline=None)
    @given(documents(min_nodes=2, max_nodes=10))
    def test_matches_naive_three_terms(self, doc):
        assert slca_nodes(doc, ["alpha", "beta", "gamma"]) == \
            naive_slca(doc, ["alpha", "beta", "gamma"])

    @settings(max_examples=40, deadline=None)
    @given(documents(min_nodes=2, max_nodes=12))
    def test_results_are_antichain(self, doc):
        result = slca_nodes(doc, ["alpha", "beta"])
        for u in result:
            for v in result:
                if u != v:
                    assert not doc.is_proper_ancestor(u, v)

    @settings(max_examples=40, deadline=None)
    @given(documents(min_nodes=2, max_nodes=12))
    def test_each_slca_subtree_contains_all_terms(self, doc):
        for v in slca_nodes(doc, ["alpha", "beta"]):
            subtree = list(doc.subtree(v))
            for term in ("alpha", "beta"):
                assert any(term in doc.keywords(n) for n in subtree)
