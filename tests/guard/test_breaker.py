"""Tests for repro.guard.breaker: the per-collection circuit breaker.

The unit tests drive the state machine with a fake clock; the
integration tests trip a real breaker through the query-serving
endpoint using injected :class:`~repro.exec.faults.FaultRule`
failures, including the half-open recovery probe.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.exec.faults import FaultPlan, FaultRule
from repro.exec.resilience import FALLBACK_NEVER, RetryPolicy
from repro.guard.breaker import (BREAKER_STATE_CODES, CLOSED, HALF_OPEN,
                                 OPEN, CircuitBreaker)


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def clock() -> FakeClock:
    return FakeClock()


@pytest.fixture()
def breaker(clock) -> CircuitBreaker:
    return CircuitBreaker(failure_threshold=3, reset_s=30.0,
                          clock=clock)


class TestStateMachine:
    def test_starts_closed_and_allows(self, breaker):
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_failures_below_threshold_stay_closed(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        assert breaker.consecutive_failures == 2
        assert breaker.allow()

    def test_success_resets_the_failure_count(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        assert breaker.consecutive_failures == 0
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_threshold_trips_open_and_blocks(self, breaker):
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_half_open_after_cooldown_allows_one_probe(self, breaker,
                                                       clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(30.0)
        assert breaker.allow()           # the probe
        assert breaker.state == HALF_OPEN
        assert not breaker.allow()       # concurrent calls still shed

    def test_successful_probe_closes(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(30.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.consecutive_failures == 0
        assert breaker.allow()

    def test_failed_probe_reopens(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(30.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.trips == 2
        # ... and the next cooldown yields another probe.
        clock.advance(30.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_stale_probe_is_reissued(self, breaker, clock):
        """A probe whose owner died must not wedge the breaker."""
        for _ in range(3):
            breaker.record_failure()
        clock.advance(30.0)
        assert breaker.allow()
        # The probe never reports back; after another cooldown the
        # breaker hands the probe to someone else.
        clock.advance(30.0)
        assert breaker.allow()

    def test_state_codes_cover_every_state(self, breaker, clock):
        assert BREAKER_STATE_CODES[breaker.state] == 0
        for _ in range(3):
            breaker.record_failure()
        assert BREAKER_STATE_CODES[breaker.state] == 2
        clock.advance(30.0)
        breaker.allow()
        assert BREAKER_STATE_CODES[breaker.state] == 1

    def test_to_dict_snapshot(self, breaker):
        breaker.record_failure()
        doc = breaker.to_dict()
        assert doc["state"] == CLOSED
        assert doc["consecutive_failures"] == 1
        assert doc["failure_threshold"] == 3

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_s=-1.0)


class CountedFaults(FaultPlan):
    """Fault the first ``failures`` chunk dispatches *across runs*.

    The stock :class:`FaultPlan` counts attempts per run; tripping a
    breaker needs consecutive whole-run failures, then a recovery.
    """

    def __init__(self, failures: int) -> None:
        super().__init__(FaultRule.flaky(chunk=None, times=failures))
        self.dispatches = 0

    def for_chunk(self, chunk_index, attempt):
        self.dispatches += 1
        if self.dispatches <= self.rules[0].times:
            return {"kind": self.rules[0].kind,
                    "attempt": self.dispatches - 1}
        return None


def _post(url, payload):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"}, method="POST")
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


@pytest.mark.timeout(120)
def test_breaker_trips_and_recovers_through_endpoint(tmp_path):
    """closed -> open (injected faults) -> half-open probe -> closed,
    driven through POST /query with FaultRule-injected worker failures.
    """
    from repro.collection.collection import DocumentCollection
    from repro.obs import Observability
    from repro.obs.server import MetricsServer, QueryGuardrails

    collection = DocumentCollection("c")
    collection.add_xml("<a><b>red pear</b><c>green apple</c></a>",
                       name="d1")
    # Two failing dispatches trip the breaker; the third (the
    # half-open probe, after cooldown) succeeds.
    faults = CountedFaults(failures=2)
    rails = QueryGuardrails(
        workers=1, faults=faults,
        resilience=RetryPolicy(max_retries=0, fallback=FALLBACK_NEVER),
        breaker_failures=2, breaker_reset_s=0.2)
    obs = Observability()
    with MetricsServer(obs, collection=collection,
                       guardrails=rails) as server:
        url = server.url + "/query"
        # Two injected failures: 500s, breaker trips on the second.
        for _ in range(2):
            status, body = _post(url, {"query": "red pear"})
            assert status == 500
            assert body["error"] == "execution-failed"
        guard = server._server.guard
        assert guard.breaker.state == OPEN

        # While open: fail fast, no evaluation happens.
        before = faults.dispatches
        status, body = _post(url, {"query": "red pear"})
        assert (status, body["reason"]) == (503, "breaker-open")
        assert faults.dispatches == before

        # After the cooldown the half-open probe runs for real and
        # closes the breaker.
        import time
        time.sleep(0.25)
        status, body = _post(url, {"query": "red pear"})
        assert status == 200
        assert body["answers"] == 1
        assert guard.breaker.state == CLOSED

        # Closed again: the next query flows normally.
        status, body = _post(url, {"query": "green apple"})
        assert status == 200
