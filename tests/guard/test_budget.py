"""Tests for repro.guard.budget: limits, checkpoints, determinism."""

from __future__ import annotations

import pickle

import pytest

from repro.core.query import Query
from repro.core.strategies import Strategy, evaluate
from repro.errors import BudgetExceeded, ReproError
from repro.guard.budget import QueryBudget, effective_budget
from repro.obs import GUARD_BUDGET_EXCEEDED, Observability, QueryLog
from repro.xmltree.parser import parse


def pathological_document(siblings: int = 12):
    """N siblings that all match both terms: the fixed point has
    2**N fragments (the paper's Definition 6 blow-up), so a tight
    budget must abort long before completion."""
    parts = "".join(f"<b{i}>red pear</b{i}>" for i in range(siblings))
    return parse(f"<a>{parts}</a>")


@pytest.fixture()
def small_doc():
    return parse("<a><b>red pear</b><c>red</c><d>pear tree</d></a>")


class TestQueryBudgetUnit:
    def test_join_ops_limit_raises_with_progress(self):
        budget = QueryBudget(max_join_ops=10)
        budget.start()
        with pytest.raises(BudgetExceeded) as excinfo:
            for _ in range(100):
                budget.tick()
        exc = excinfo.value
        assert exc.reason == "join-ops"
        assert exc.progress["join_ops"] == 11
        assert isinstance(exc, ReproError)

    def test_deadline_checked_amortised(self):
        budget = QueryBudget(deadline_s=1.0, check_interval=4)
        budget.start()
        budget._deadline_at = budget.started_at  # expire immediately
        # The first (interval - 1) ticks never read the clock.
        for _ in range(3):
            budget.tick()
        with pytest.raises(BudgetExceeded) as excinfo:
            budget.tick()
        assert excinfo.value.reason == "deadline"

    def test_poll_checks_deadline_without_charging_work(self):
        budget = QueryBudget(deadline_s=60.0, max_join_ops=5,
                             check_interval=1)
        budget.start()
        for _ in range(50):
            budget.poll()
        assert budget.join_ops == 0

    def test_live_fragment_and_candidate_limits(self):
        budget = QueryBudget(max_live_fragments=3, max_candidates=4)
        budget.start()
        budget.admit_live(3)
        with pytest.raises(BudgetExceeded) as excinfo:
            budget.admit_live(4)
        assert excinfo.value.reason == "live-fragments"
        with pytest.raises(BudgetExceeded) as excinfo:
            budget.admit_candidates(5)
        assert excinfo.value.reason == "candidates"

    def test_fresh_item_clones_limits_but_keeps_deadline(self):
        budget = QueryBudget(deadline_s=60.0, max_join_ops=10)
        budget.start()
        for _ in range(10):
            budget.tick()
        child = budget.fresh_item()
        assert child.join_ops == 0
        assert child.max_join_ops == 10
        # The deadline is absolute: the child inherits the parent's.
        assert child._deadline_at == budget._deadline_at
        child.tick(10)
        with pytest.raises(BudgetExceeded):
            child.tick()

    def test_start_is_idempotent(self):
        budget = QueryBudget(deadline_s=60.0)
        budget.start()
        first = budget.started_at
        budget.start()
        assert budget.started_at == first

    def test_effective_budget_combines_and_tightens(self):
        assert effective_budget(None, None) is None
        only_ms = effective_budget(None, 50.0)
        assert only_ms.deadline_s == pytest.approx(0.05)
        loose = QueryBudget(deadline_s=10.0, max_join_ops=7)
        combined = effective_budget(loose, 50.0)
        assert combined.deadline_s == pytest.approx(0.05)
        assert combined.max_join_ops == 7
        # deadline_ms can only tighten, never loosen.
        tight = QueryBudget(deadline_s=0.01)
        kept = effective_budget(tight, 60_000.0)
        assert kept.deadline_s == pytest.approx(0.01)

    def test_budget_exceeded_pickles(self):
        budget = QueryBudget(max_join_ops=1)
        budget.start()
        with pytest.raises(BudgetExceeded) as excinfo:
            budget.tick(5)
        clone = pickle.loads(pickle.dumps(excinfo.value))
        assert clone.reason == "join-ops"
        assert clone.progress == excinfo.value.progress
        assert clone.to_dict()["error"] == "budget-exceeded"


class TestGuardedEvaluation:
    @pytest.mark.parametrize("strategy", list(Strategy))
    def test_generous_budget_is_bit_identical(self, small_doc, strategy):
        query = Query.of("red", "pear")
        unguarded = evaluate(small_doc, query, strategy=strategy)
        guarded = evaluate(small_doc, query, strategy=strategy,
                           budget=QueryBudget(deadline_s=300.0,
                                              max_join_ops=10**9))
        assert guarded.fragments == unguarded.fragments
        assert guarded.stats == unguarded.stats

    @pytest.mark.parametrize("strategy", list(Strategy))
    def test_join_ops_budget_aborts_blowup(self, strategy):
        document = pathological_document()
        with pytest.raises(BudgetExceeded) as excinfo:
            evaluate(document, Query.of("red", "pear"),
                     strategy=strategy,
                     budget=QueryBudget(max_join_ops=500))
        assert excinfo.value.reason in ("join-ops", "candidates",
                                        "live-fragments")

    @pytest.mark.timeout(30)
    def test_deadline_aborts_within_factor(self):
        import time
        document = pathological_document()
        deadline_s = 0.2
        started = time.monotonic()
        with pytest.raises(BudgetExceeded) as excinfo:
            evaluate(document, Query.of("red", "pear"),
                     strategy=Strategy.BRUTE_FORCE,
                     budget=QueryBudget(deadline_s=deadline_s))
        elapsed = time.monotonic() - started
        assert excinfo.value.reason == "deadline"
        # The acceptance criterion: abort within 1.5x the deadline.
        assert elapsed < deadline_s * 1.5

    def test_live_fragments_budget_aborts_blowup(self):
        document = pathological_document()
        with pytest.raises(BudgetExceeded):
            evaluate(document, Query.of("red", "pear"),
                     strategy=Strategy.SET_REDUCTION,
                     budget=QueryBudget(max_live_fragments=200))


class TestAbortDeterminism:
    """An aborted query must leave telemetry consistent: no partial
    query-log records, no half-counted metrics — and re-running with a
    generous budget must match the unguarded run exactly."""

    def test_aborted_query_leaves_no_query_record(self, small_doc):
        document = pathological_document()
        obs = Observability(query_log=QueryLog())
        with pytest.raises(BudgetExceeded):
            evaluate(document, Query.of("red", "pear"),
                     strategy=Strategy.BRUTE_FORCE, obs=obs,
                     budget=QueryBudget(max_join_ops=100))
        assert obs.query_log.records == []

    def test_rerun_after_abort_matches_unguarded(self, small_doc):
        query = Query.of("red", "pear")
        document = pathological_document(siblings=6)
        obs = Observability(query_log=QueryLog())
        with pytest.raises(BudgetExceeded):
            evaluate(document, query, strategy=Strategy.BRUTE_FORCE,
                     obs=obs, budget=QueryBudget(max_join_ops=50))
        baseline = evaluate(document, query,
                            strategy=Strategy.BRUTE_FORCE)
        rerun = evaluate(document, query, strategy=Strategy.BRUTE_FORCE,
                         obs=obs,
                         budget=QueryBudget(max_join_ops=10**9))
        assert rerun.fragments == baseline.fragments
        assert rerun.stats == baseline.stats
        # Exactly one query record: the successful re-run.
        assert len(obs.query_log.records) == 1
        assert obs.query_log.records[0].answers == len(baseline.fragments)


class TestCollectionAccounting:
    def test_collection_counts_budget_exceeded_once(self):
        from repro.collection.collection import DocumentCollection

        parts = "".join(f"<b{i}>red pear</b{i}>" for i in range(12))
        collection = DocumentCollection("c")
        collection.add_xml(f"<a>{parts}</a>", name="patho")
        obs = Observability()
        with pytest.raises(BudgetExceeded):
            collection.search(Query.of("red", "pear"),
                              strategy=Strategy.BRUTE_FORCE, obs=obs,
                              budget=QueryBudget(max_join_ops=500))
        counter = obs.metrics.get(GUARD_BUDGET_EXCEEDED)
        assert counter is not None and counter.value == 1
