"""Tests for repro.guard.admission: the pre-admission cost screen."""

from __future__ import annotations

import pytest

from repro.collection.collection import DocumentCollection
from repro.core.query import Query
from repro.core.strategies import Strategy
from repro.errors import AdmissionRejected
from repro.guard.admission import (ADMIT, DOWNGRADE, REJECT,
                                   AdmissionPolicy, screen)
from repro.xmltree.parser import parse


@pytest.fixture()
def collection():
    coll = DocumentCollection("c")
    coll.add_xml("<a><b>red pear</b><c>green apple</c></a>", name="d1")
    coll.add_xml("<a><b>red</b><c>pear tree</c><d>red pear</d></a>",
                 name="d2")
    return coll


@pytest.fixture()
def big_collection():
    """Large enough that the cost model ranks brute-force well above
    pushdown (tiny documents can invert that ordering)."""
    parts = "".join(f"<s{i}><b>red pear</b><c>green apple tree</c>"
                    f"</s{i}>" for i in range(20))
    coll = DocumentCollection("big")
    coll.add_xml(f"<a>{parts}</a>", name="big")
    return coll


def _documents(collection):
    return [collection.document(name) for name in collection.names()]


class TestPolicy:
    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(max_cost=0)
        with pytest.raises(ValueError):
            AdmissionPolicy(max_cost=-5.0)

    def test_admits_cheap_query(self, collection):
        policy = AdmissionPolicy(max_cost=1e12)
        decision = screen(policy, Query.of("red", "pear"),
                          Strategy.PUSHDOWN, _documents(collection))
        assert decision.decision == ADMIT
        assert decision.admitted and not decision.downgraded
        assert decision.strategy is Strategy.PUSHDOWN
        assert decision.estimated_cost == decision.requested_cost
        decision.raise_if_rejected()  # no-op for admitted queries

    def test_downgrades_expensive_strategy(self, big_collection):
        documents = _documents(big_collection)
        pushdown = screen(AdmissionPolicy(max_cost=1e12),
                          Query.of("red", "pear"), Strategy.PUSHDOWN,
                          documents)
        brute = screen(AdmissionPolicy(max_cost=1e12),
                       Query.of("red", "pear"), Strategy.BRUTE_FORCE,
                       documents)
        assert brute.requested_cost > pushdown.requested_cost
        # A ceiling between the two costs forces the downgrade.
        ceiling = (pushdown.requested_cost + brute.requested_cost) / 2
        decision = screen(AdmissionPolicy(max_cost=ceiling),
                          Query.of("red", "pear"), Strategy.BRUTE_FORCE,
                          documents)
        assert decision.decision == DOWNGRADE
        assert decision.downgraded
        assert decision.strategy is Strategy.PUSHDOWN
        assert decision.estimated_cost <= ceiling
        decision.raise_if_rejected()

    def test_rejects_when_even_downgrade_is_too_costly(self, collection):
        policy = AdmissionPolicy(max_cost=1e-6)
        decision = screen(policy, Query.of("red", "pear"),
                          Strategy.BRUTE_FORCE, _documents(collection))
        assert decision.decision == REJECT
        with pytest.raises(AdmissionRejected) as excinfo:
            decision.raise_if_rejected()
        exc = excinfo.value
        assert exc.estimated_cost > exc.max_cost
        doc = exc.to_dict()
        assert doc["error"] == "admission-rejected"

    def test_decision_to_dict_round_trips_fields(self, collection):
        decision = screen(AdmissionPolicy(max_cost=1e12),
                          Query.of("red"), Strategy.PUSHDOWN,
                          _documents(collection))
        doc = decision.to_dict()
        assert doc["decision"] == ADMIT
        assert doc["strategy"] == "pushdown"
        assert doc["estimated_cost"] == pytest.approx(
            decision.estimated_cost)


class TestCollectionIntegration:
    def test_search_with_admission_rejects(self, collection):
        with pytest.raises(AdmissionRejected):
            collection.search(Query.of("red", "pear"),
                              strategy=Strategy.BRUTE_FORCE,
                              admission=AdmissionPolicy(max_cost=1e-6))

    def test_search_with_admission_downgrades_and_answers(
            self, collection):
        # On this tiny corpus the cost model rates brute-force below
        # pushdown, so a ceiling between the two forces the requested
        # pushdown strategy down to brute-force; by the equivalence
        # theorems the answers are identical either way.
        query = Query.of("red", "pear")
        # Probe with collection.screen so the costs use the same
        # indexes search() will screen with.
        pushdown = collection.screen(AdmissionPolicy(max_cost=1e12),
                                     query, Strategy.PUSHDOWN)
        brute = collection.screen(AdmissionPolicy(max_cost=1e12),
                                  query, Strategy.BRUTE_FORCE)
        lo = min(pushdown.requested_cost, brute.requested_cost)
        hi = max(pushdown.requested_cost, brute.requested_cost)
        assert lo < hi, "fixture no longer separates strategy costs"
        requested = (Strategy.PUSHDOWN
                     if pushdown.requested_cost == hi
                     else Strategy.BRUTE_FORCE)
        cheaper = (Strategy.BRUTE_FORCE
                   if requested is Strategy.PUSHDOWN
                   else Strategy.PUSHDOWN)
        baseline = collection.search(query, strategy=cheaper)
        policy = AdmissionPolicy(max_cost=(lo + hi) / 2,
                                 downgrade_to=cheaper)
        result = collection.search(query, strategy=requested,
                                   admission=policy)
        assert len(result) == len(baseline)
        assert [(h.document_name, h.fragment) for h in result.hits] \
            == [(h.document_name, h.fragment) for h in baseline.hits]

    def test_screen_uses_collection_indexes(self, collection):
        decision = collection.screen(AdmissionPolicy(max_cost=1e12),
                                     Query.of("red", "pear"))
        assert decision.admitted
        assert decision.estimated_cost > 0
