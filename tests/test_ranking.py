"""Unit tests for the ranking layer."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.fragment import Fragment
from repro.core.query import Query
from repro.core.strategies import evaluate
from repro.core.filters import SizeAtMost
from repro.index.inverted import InvertedIndex
from repro.ranking.scoring import (FragmentScorer, compactness_score,
                                   proximity_score, tf_idf_score)

from .treegen import document_and_fragments


class TestTfIdf:
    def test_bounds(self, figure1, figure1_index):
        frag = Fragment(figure1, [17])
        score = tf_idf_score(frag, ["xquery", "optimization"],
                             figure1_index)
        assert 0.0 < score < 1.0

    def test_absent_term_scores_zero(self, figure1, figure1_index):
        frag = Fragment(figure1, [2])
        assert tf_idf_score(frag, ["xquery"], figure1_index) == 0.0

    def test_dense_fragment_beats_diluted(self, figure1, figure1_index):
        dense = Fragment(figure1, [17])
        diluted = Fragment(figure1, [0, 1, 14, 16, 17])
        terms = ["xquery", "optimization"]
        assert tf_idf_score(dense, terms, figure1_index) > \
            tf_idf_score(diluted, terms, figure1_index)

    def test_rare_term_weighs_more(self, figure1, figure1_index):
        # 'xquery' (df=2) is rarer than 'par' (many nodes).
        frag = Fragment(figure1, [17])
        assert tf_idf_score(frag, ["xquery"], figure1_index) > \
            tf_idf_score(frag, ["par"], figure1_index)


class TestCompactness:
    def test_single_node_is_max(self, figure1):
        assert compactness_score(Fragment(figure1, [17])) == 1.0

    def test_decreases_with_size(self, figure1):
        small = Fragment(figure1, [16, 17])
        large = Fragment(figure1, [14, 15, 16, 17, 18])
        assert compactness_score(small) > compactness_score(large)

    @settings(max_examples=30)
    @given(document_and_fragments(max_fragments=1))
    def test_bounds(self, doc_and_frags):
        _, (frag,) = doc_and_frags
        assert 0.0 < compactness_score(frag) <= 1.0


class TestProximity:
    def test_keyword_at_root_scores_one_per_term(self, figure1):
        frag = Fragment(figure1, [17])
        assert proximity_score(frag, ["xquery"]) == pytest.approx(1.0)

    def test_depth_penalty(self, figure1):
        shallow = Fragment(figure1, [17])
        deep = Fragment(figure1, [14, 15, 16, 17])  # root n14, term at 17
        assert proximity_score(deep, ["xquery"]) < \
            proximity_score(shallow, ["xquery"])

    def test_absent_term_contributes_zero(self, figure1):
        frag = Fragment(figure1, [2])
        assert proximity_score(frag, ["xquery"]) == 0.0

    def test_invalid_decay(self, figure1):
        with pytest.raises(ValueError):
            proximity_score(Fragment(figure1, [17]), ["x"], decay=0.0)

    def test_empty_terms(self, figure1):
        assert proximity_score(Fragment(figure1, [17]), []) == 0.0


class TestFragmentScorer:
    def test_weight_validation(self, figure1_index):
        with pytest.raises(ValueError):
            FragmentScorer(figure1_index, w_tf_idf=-1)
        with pytest.raises(ValueError):
            FragmentScorer(figure1_index, w_tf_idf=0,
                           w_compactness=0, w_proximity=0)

    def test_score_breakdown(self, figure1, figure1_index):
        scorer = FragmentScorer(figure1_index)
        scored = scorer.score(Fragment(figure1, [17]),
                              ["xquery", "optimization"])
        assert 0.0 <= scored.score <= 1.0
        assert scored.tf_idf >= 0.0
        assert scored.compactness == 1.0
        assert scored.proximity == pytest.approx(1.0)

    def test_rank_orders_descending(self, figure1, figure1_index):
        query = Query.of("xquery", "optimization",
                         predicate=SizeAtMost(3))
        answers = evaluate(figure1, query).fragments
        scorer = FragmentScorer(figure1_index)
        ranked = scorer.rank(answers, query.terms)
        scores = [s.score for s in ranked]
        assert scores == sorted(scores, reverse=True)
        # n17 carries both terms at its root: best answer.
        assert ranked[0].fragment == Fragment(figure1, [17])

    def test_rank_limit(self, figure1, figure1_index):
        query = Query.of("xquery", "optimization",
                         predicate=SizeAtMost(3))
        answers = evaluate(figure1, query).fragments
        ranked = FragmentScorer(figure1_index).rank(answers, query.terms,
                                                    limit=2)
        assert len(ranked) == 2

    def test_weights_change_order(self, figure1, figure1_index):
        frags = [Fragment(figure1, [17]),
                 Fragment(figure1, [16, 17, 18])]
        terms = ["xquery", "optimization"]
        compact_first = FragmentScorer(figure1_index, w_tf_idf=0,
                                       w_compactness=1, w_proximity=0)
        ranked = compact_first.rank(frags, terms)
        assert ranked[0].fragment.size == 1
