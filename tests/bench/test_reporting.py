"""Unit tests for bench reporting."""

from __future__ import annotations

from repro.bench.reporting import banner, format_kv, format_table


class TestFormatTable:
    def test_headers_and_rows(self):
        text = format_table(["name", "count"],
                            [["alpha", 3], ["beta", 12]])
        lines = text.splitlines()
        assert "name" in lines[0] and "count" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        assert "alpha" in lines[2]
        assert "12" in lines[3]

    def test_title(self):
        text = format_table(["a"], [[1]], title="Table 1")
        assert text.splitlines()[0] == "Table 1"

    def test_numeric_right_aligned(self):
        text = format_table(["metric"], [[5], [12345]])
        lines = text.splitlines()
        assert lines[-1].endswith("12345")
        assert lines[-2].endswith("    5")

    def test_float_formatting(self):
        text = format_table(["v"], [[0.123456789]])
        assert "0.1235" in text

    def test_bool_rendering(self):
        text = format_table(["flag"], [[True], [False]])
        assert "yes" in text and "no" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert len(text.splitlines()) == 2


class TestFormatKv:
    def test_alignment(self):
        text = format_kv([("short", 1), ("much_longer_key", 2)])
        lines = text.splitlines()
        assert lines[0].index("1") == lines[1].index("2")

    def test_title(self):
        assert format_kv([("a", 1)], title="Stats").startswith("Stats")

    def test_float_value(self):
        assert "3.142" in format_kv([("pi", 3.14159)])

    def test_empty(self):
        assert format_kv([]) == ""


class TestBanner:
    def test_shape(self):
        lines = banner("Experiment S1").splitlines()
        assert len(lines) == 3
        assert lines[0] == lines[2]
        assert len(lines[0]) >= len("Experiment S1")
