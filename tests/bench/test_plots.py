"""Unit tests for ASCII charts."""

from __future__ import annotations

import pytest

from repro.bench.plots import bar_chart, log_bar_chart


class TestBarChart:
    def test_proportional_bars(self):
        chart = bar_chart(["a", "b"], [1.0, 2.0], width=4)
        lines = chart.splitlines()
        assert lines[0].count("█") == 2
        assert lines[1].count("█") == 4

    def test_values_shown(self):
        chart = bar_chart(["x"], [3.25], width=10)
        assert "3.25" in chart

    def test_unit_suffix(self):
        chart = bar_chart(["x"], [5.0], unit="ms")
        assert "5ms" in chart

    def test_title(self):
        chart = bar_chart(["x"], [1.0], title="Latency")
        assert chart.splitlines()[0] == "Latency"

    def test_labels_aligned(self):
        chart = bar_chart(["a", "long-label"], [1, 1], width=4)
        lines = chart.splitlines()
        assert lines[0].index("█") == lines[1].index("█")

    def test_zero_values(self):
        chart = bar_chart(["a", "b"], [0.0, 0.0], width=5)
        assert "█" not in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1, 2])
        with pytest.raises(ValueError):
            bar_chart(["a"], [1], width=0)
        with pytest.raises(ValueError):
            bar_chart(["a"], [-1])


class TestLogBarChart:
    def test_compresses_exponential_series(self):
        linear = bar_chart(["a", "b"], [10, 100000], width=20)
        logged = log_bar_chart(["a", "b"], [10, 100000], width=20)
        small_linear = linear.splitlines()[0].count("█")
        small_logged = logged.splitlines()[0].count("█")
        assert small_logged > small_linear

    def test_monotone(self):
        chart = log_bar_chart(["a", "b", "c"], [10, 1000, 100000],
                              width=30)
        widths = [line.count("█") for line in chart.splitlines()]
        assert widths == sorted(widths)
