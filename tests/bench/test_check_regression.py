"""Tests for the CI bench-regression gate (check_regression.py)."""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

BENCHMARKS = Path(__file__).resolve().parent.parent.parent / "benchmarks"
sys.path.insert(0, str(BENCHMARKS))

from check_regression import check, main  # noqa: E402


def _write(directory: Path, facts: dict) -> None:
    directory.mkdir(exist_ok=True)
    for filename, payload in facts.items():
        (directory / filename).write_text(json.dumps(payload))


@pytest.fixture()
def dirs(tmp_path):
    baseline = tmp_path / "baseline"
    current = tmp_path / "current"
    baseline.mkdir()
    current.mkdir()
    return baseline, current


class TestCheck:
    def test_identical_facts_pass(self, dirs, capsys):
        baseline, current = dirs
        facts = {"BENCH_obs.json": {"noop_overhead": {
            "vs_baseline": {"noop": 1.01, "traced": 1.5}}}}
        _write(baseline, facts)
        _write(current, facts)
        assert check(baseline, current, 0.25) == 0
        assert "0 regressed" in capsys.readouterr().out

    def test_fatter_overhead_regresses(self, dirs, capsys):
        baseline, current = dirs
        _write(baseline, {"BENCH_obs.json": {"noop_overhead": {
            "vs_baseline": {"noop": 1.0}}}})
        _write(current, {"BENCH_obs.json": {"noop_overhead": {
            "vs_baseline": {"noop": 1.4}}}})
        assert check(baseline, current, 0.25) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_shrunken_speedup_regresses(self, dirs, capsys):
        baseline, current = dirs
        _write(baseline, {"BENCH_parallel.json": {"kernel": {
            "evaluate_speedup": 4.0}}})
        _write(current, {"BENCH_parallel.json": {"kernel": {
            "evaluate_speedup": 2.0}}})
        assert check(baseline, current, 0.25) == 1

    def test_slowdown_within_threshold_is_ok(self, dirs, capsys):
        baseline, current = dirs
        _write(baseline, {"BENCH_guard.json": {"guard": {
            "checkpoint_overhead": 1.0}}})
        _write(current, {"BENCH_guard.json": {"guard": {
            "checkpoint_overhead": 1.2}}})
        assert check(baseline, current, 0.25) == 0

    def test_new_metric_without_baseline_never_fails(self, dirs, capsys):
        baseline, current = dirs
        _write(current, {"BENCH_obs.json": {"recorder_overhead": {
            "vs_recorder_off": {"recorder_on": 99.0}}}})
        assert check(baseline, current, 0.25) == 0
        assert "new" in capsys.readouterr().out

    def test_missing_current_metric_never_fails(self, dirs, capsys):
        baseline, current = dirs
        _write(baseline, {"BENCH_obs.json": {"recorder_overhead": {
            "vs_recorder_off": {"recorder_on": 1.0}}}})
        assert check(baseline, current, 0.25) == 0
        assert "missing" in capsys.readouterr().out

    def test_malformed_json_is_tolerated(self, dirs, capsys):
        baseline, current = dirs
        (baseline / "BENCH_obs.json").write_text("{nope")
        (current / "BENCH_obs.json").write_text("{nope")
        assert check(baseline, current, 0.25) == 0


class TestMain:
    def test_missing_baseline_dir_is_exit_2(self, tmp_path, capsys):
        code = main(["--baseline-dir", str(tmp_path / "absent"),
                     "--current-dir", str(tmp_path)])
        assert code == 2

    def test_clean_run_through_main(self, dirs, capsys):
        baseline, current = dirs
        facts = {"BENCH_guard.json": {"guard": {"abort_factor": 1.1}}}
        _write(baseline, facts)
        _write(current, facts)
        assert main(["--baseline-dir", str(baseline),
                     "--current-dir", str(current)]) == 0
