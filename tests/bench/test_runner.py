"""Unit tests for the bench runner."""

from __future__ import annotations

import pytest

from repro.bench.runner import Measurement, compare, measure


class TestMeasure:
    def test_returns_value_and_timing(self):
        result = measure("answer", lambda: 41 + 1, repetitions=2)
        assert result.value == 42
        assert result.seconds >= 0.0
        assert result.spread >= 0.0
        assert result.repetitions == 2

    def test_invalid_repetitions(self):
        with pytest.raises(ValueError):
            measure("x", lambda: None, repetitions=0)

    def test_function_called_each_repetition(self):
        calls = []
        measure("count", lambda: calls.append(1), repetitions=3)
        assert len(calls) == 3


class TestCompare:
    def test_measures_all_cases(self):
        comparison = compare([("a", lambda: 1), ("b", lambda: 2)],
                             repetitions=1)
        assert [m.label for m in comparison.measurements] == ["a", "b"]
        assert [m.value for m in comparison.measurements] == [1, 2]

    def test_fastest(self):
        import time
        comparison = compare(
            [("slow", lambda: time.sleep(0.01)),
             ("fast", lambda: None)], repetitions=1)
        assert comparison.fastest().label == "fast"

    def test_speedup_over_baseline(self):
        comparison = compare([("base", lambda: None),
                              ("other", lambda: None)], repetitions=1)
        speedups = comparison.speedup_over("base")
        assert set(speedups) <= {"base", "other"}
        if "base" in speedups:
            assert speedups["base"] == pytest.approx(1.0)
