"""Experiment S10 — scalability of the push-down strategy.

The paper's efficiency claims are asymptotic; this bench pins the
constants: wall time and join counts of the default strategy as the
document grows from 1k to 16k nodes with per-term selectivity and
filter held fixed, plus the one-time index/LCA build costs.

Expected shape: scan cost grows linearly with document size (posting
lists are built once), join cost grows with keyword-path depth only —
so end-to-end latency should grow sublinearly in document size for
fixed selectivity.
"""

from __future__ import annotations

import time

from repro.bench.reporting import banner, format_table
from repro.core.filters import SizeAtMost
from repro.core.query import Query
from repro.core.strategies import Strategy, evaluate
from repro.index.inverted import InvertedIndex

from .conftest import TERM_A, TERM_B, planted_document
from .util import report

QUERY = Query.of(TERM_A, TERM_B, predicate=SizeAtMost(6))
SIZES = (1000, 2000, 4000, 8000, 16000)


def test_document_scaling(benchmark, capsys):
    docs = {nodes: planted_document(nodes=nodes, occ_a=6, occ_b=6,
                                    clustering=0.5, seed=211)
            for nodes in SIZES}

    def run():
        rows = []
        for nodes, doc in docs.items():
            started = time.perf_counter()
            index = InvertedIndex(doc)
            index_ms = (time.perf_counter() - started) * 1000

            started = time.perf_counter()
            doc.lca(0, doc.size - 1)  # forces the LCA index build
            lca_ms = (time.perf_counter() - started) * 1000

            started = time.perf_counter()
            result = evaluate(doc, QUERY, strategy=Strategy.PUSHDOWN,
                              index=index)
            query_ms = (time.perf_counter() - started) * 1000
            rows.append([nodes, index_ms, lca_ms, query_ms,
                         result.stats["fragment_joins"],
                         len(result.fragments)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(capsys, "\n".join([
        banner("S10: push-down scalability vs document size "
               "(|Fi| = 6, size<=6)"),
        format_table(["nodes", "index build ms", "LCA build ms",
                      "query ms", "fragment joins", "answers"], rows),
        "",
        "expected shape: build costs grow linearly; query latency is "
        "governed by selectivity and tree depth, not raw size."]))
    # Join work must not explode with document size (selectivity is
    # fixed): allow a generous 4x drift across a 16x size increase.
    assert rows[-1][4] <= rows[0][4] * 4


def test_bench_query_16k(benchmark):
    doc = planted_document(nodes=16000, occ_a=6, occ_b=6,
                           clustering=0.5, seed=211)
    index = InvertedIndex(doc)
    result = benchmark(evaluate, doc, QUERY, Strategy.PUSHDOWN, index)
    assert result is not None


def test_bench_index_build_16k(benchmark):
    doc = planted_document(nodes=16000, occ_a=6, occ_b=6,
                           clustering=0.5, seed=211)
    index = benchmark(InvertedIndex, doc)
    assert index.document_frequency(TERM_A) == 6
