"""Experiment S15 — persistent shard index startup and memory shape.

Pins the two startup claims of :mod:`repro.storage.shards`, recorded
in ``BENCH_shard.json`` at the repo root:

1. **Attach beats pickle**: a worker attaching the on-disk shard index
   (mmap + lazy header reads) is at least 5x faster than the
   pickle-based warm-state transfer it replaces (serialising the
   document dict into the child and rebuilding it there).
2. **RSS is flat in shard count**: a worker process maps the same
   corpus bytes whether the index was built with 1 shard or 8, so its
   resident set stays flat as the shard count grows — the opposite of
   per-worker copies, which scale with whatever is pickled in.

A third, machine-dependent fact — cold-query latency through
``DocumentCollection.open_index`` — is recorded for the flight-log but
never asserted or compared (wall-clock seconds do not travel between
runners).

Run ``pytest benchmarks/bench_shard_startup.py --benchmark-only`` for
the full experiment, or add ``--smoke`` for the tiny CI variant
(shape checks only; no performance assertions).
"""

from __future__ import annotations

import json
import multiprocessing
import pickle
from pathlib import Path

from repro.bench.reporting import banner, format_table
from repro.bench.runner import measure
from repro.collection import DocumentCollection
from repro.core.query import Query
from repro.storage.shards import ShardIndex, build_index
from repro.workloads.inexlike import InexSpec, generate_collection

from .conftest import TERM_A, TERM_B
from .util import report

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_shard.json"

SHARD_COUNTS = (1, 4, 8)
QUERY = Query.of(TERM_A, TERM_B)


def _record(section: str, payload: dict, registry) -> None:
    """Merge one experiment's facts + metrics into BENCH_shard.json."""
    data = {}
    if BENCH_JSON.exists():
        try:
            data = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
        except ValueError:
            data = {}
    data[section] = payload
    data.setdefault("metrics", {})[section] = registry.to_json()
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True)
                          + "\n", encoding="utf-8")


def _corpus(smoke: bool):
    spec = (InexSpec(articles=6, nodes_per_article=150,
                     planted_fraction=1.0, occurrences=3, seed=151)
            if smoke else
            InexSpec(articles=24, nodes_per_article=1500,
                     planted_fraction=1.0, occurrences=6, seed=151))
    return generate_collection(spec)


def _rss_kb() -> int:
    """Resident set of the calling process, in KiB (Linux /proc)."""
    with open("/proc/self/status", encoding="ascii") as fh:
        for line in fh:
            if line.startswith("VmRSS:"):
                return int(line.split()[1])
    return 0


def _worker_rss(path: str, queue) -> None:
    """Attach + serve one query, then report this worker's VmRSS."""
    with ShardIndex.attach(path) as index:
        from repro.core.strategies import Strategy, evaluate
        for name in index.names():
            evaluate(index.document(name), QUERY,
                     strategy=Strategy.PUSHDOWN,
                     index=index.inverted_index(name))
        queue.put(_rss_kb())


def test_attach_vs_pickle(benchmark, capsys, bench_metrics, smoke,
                          tmp_path):
    collection = _corpus(smoke)
    documents = {name: collection.document(name)
                 for name in collection.names()}
    out = tmp_path / "index"
    build_index(collection, str(out), shards=4)
    repetitions = 3 if smoke else 5

    def pickle_init():
        # The state transfer a pickle-based pool performs per worker:
        # serialise the corpus into the child, rebuild it there.
        blob = pickle.dumps(documents, pickle.HIGHEST_PROTOCOL)
        return len(pickle.loads(blob))

    def attach_init():
        with ShardIndex.attach(str(out)) as index:
            return index.stats()["documents"]

    def run():
        pickled = measure("startup:pickle", pickle_init,
                          repetitions=repetitions,
                          registry=bench_metrics)
        attached = measure("startup:attach", attach_init,
                           repetitions=repetitions,
                           registry=bench_metrics)
        assert pickled.value == attached.value == len(documents)
        return pickled, attached

    pickled, attached = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = pickled.seconds / attached.seconds

    with DocumentCollection.open_index(str(out)) as shard_collection:
        cold = measure("query:cold",
                       lambda: shard_collection.search(QUERY),
                       repetitions=1, registry=bench_metrics)
    assert len(cold.value) > 0

    report(capsys, "\n".join([
        banner(f"S15: worker warm-init, attach vs pickle "
               f"({len(documents)} docs, 4 shards)"),
        format_table(
            ["case", "median ms"],
            [["pickle round-trip", pickled.seconds * 1000],
             ["shard attach", attached.seconds * 1000],
             ["cold query (open_index + search)",
              cold.seconds * 1000]]),
        "",
        f"attach speedup: {speedup:.1f}x",
        "expected shape: attach maps files and reads only headers, so "
        "it is far cheaper than serialising the corpus per worker."]))
    _record("shard", {
        "smoke": smoke,
        "documents": len(documents),
        "shards": 4,
        "pickle_seconds": pickled.seconds,
        "attach_seconds": attached.seconds,
        "attach_speedup": speedup,
        "cold_query_seconds": cold.seconds,
        "cold_query_answers": len(cold.value),
    }, bench_metrics)
    if not smoke:
        assert speedup >= 5.0, (
            f"expected attach >=5x faster than pickle warm-init, "
            f"got {speedup:.2f}x")


def test_worker_rss_flat(benchmark, capsys, bench_metrics, smoke,
                         tmp_path):
    collection = _corpus(smoke)
    ctx = multiprocessing.get_context("fork")

    def run():
        rss = {}
        for shards in SHARD_COUNTS:
            out = tmp_path / f"index-{shards}"
            if not out.exists():
                build_index(collection, str(out), shards=shards)
            queue = ctx.Queue()
            proc = ctx.Process(target=_worker_rss,
                               args=(str(out), queue))
            proc.start()
            rss[shards] = queue.get(timeout=120)
            proc.join(timeout=30)
        return rss

    rss = benchmark.pedantic(run, rounds=1, iterations=1)
    growth = max(rss.values()) / max(min(rss.values()), 1)
    report(capsys, "\n".join([
        banner("S15: per-worker RSS vs shard count "
               "(attach + full query, fork)"),
        format_table(["shards", "worker VmRSS KiB"],
                     [[s, rss[s]] for s in SHARD_COUNTS]),
        "",
        f"max/min growth: {growth:.2f}x",
        "expected shape: flat — the same corpus bytes are mapped "
        "regardless of how many files they are split across."]))
    _record("rss", {
        "smoke": smoke,
        "per_shard_count_kb": {str(s): rss[s] for s in SHARD_COUNTS},
        "growth": growth,
    }, bench_metrics)
    if not smoke:
        assert growth <= 1.5, (
            f"expected flat per-worker RSS across shard counts, "
            f"got {growth:.2f}x growth")
