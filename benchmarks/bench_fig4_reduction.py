"""Experiment F4 — Figure 4: fragment set reduction.

Reproduces the worked example: ``F = {⟨n1⟩,⟨n3⟩,⟨n5⟩,⟨n6⟩,⟨n7⟩}``
reduces to ``⊖(F) = {⟨n1⟩,⟨n5⟩,⟨n7⟩}`` (n3 and n6 are sub-fragments of
⟨n1⟩⋈⟨n5⟩ and ⟨n1⟩⋈⟨n7⟩), so |⊖(F)| = 3 pairwise-join rounds reach the
fixed point.  Benchmarks ⊖ itself and both fixed-point computations.
"""

from __future__ import annotations

from repro.bench.reporting import banner, format_table
from repro.core.reduce import (fixed_point, fixed_point_bounded,
                               iterate_pairwise, reduction_count,
                               set_reduce)
from repro.core.stats import OperationStats

from .util import report


def _family(figure4):
    return figure4.fragment_set([["n1"], ["n3"], ["n5"], ["n6"], ["n7"]])


def test_reduction_example(benchmark, figure4, capsys):
    F = _family(figure4)
    reduced = benchmark(set_reduce, F)
    labels = sorted(",".join(sorted(figure4.labels_of(f)))
                    for f in reduced)
    assert labels == ["n1", "n5", "n7"]
    report(capsys, "\n".join([
        banner("F4: fragment set reduction (Figure 4)"),
        f"  F      = {{n1, n3, n5, n6, n7}} (|F| = {len(F)})",
        f"  ⊖(F)   = {{{', '.join(labels)}}} (|⊖(F)| = {len(reduced)})",
        "  paper: ⊖(F) = {n1, n5, n7}; n3 ⊆ n1⋈n5, n6 ⊆ n1⋈n7"]))


def test_iteration_bound(benchmark, figure4, capsys):
    F = _family(figure4)

    def run():
        k = reduction_count(F)
        return k, iterate_pairwise(F, k)

    k, bounded = benchmark(run)
    reference = fixed_point(F)
    assert k == 3
    assert bounded == reference
    rows = [[r, len(iterate_pairwise(F, r)),
             iterate_pairwise(F, r) == reference]
            for r in range(1, len(F) + 1)]
    report(capsys, "\n".join([
        banner("F4/Theorem 1: ⋈_r(F) growth until the fixed point"),
        format_table(["rounds r", "|⋈_r(F)|", "equals F+"], rows),
        f"  paper: k = |⊖(F)| = 3 rounds suffice (F has {len(F)} "
        "fragments)"]))


def test_bench_semi_naive_fixed_point(benchmark, figure4):
    F = _family(figure4)
    result = benchmark(fixed_point, F)
    assert result


def test_bench_bounded_fixed_point(benchmark, figure4, capsys):
    F = _family(figure4)
    result = benchmark(fixed_point_bounded, F)
    assert result == fixed_point(F)
    naive = OperationStats()
    bounded = OperationStats()
    fixed_point(F, stats=naive)
    fixed_point_bounded(F, stats=bounded)
    report(capsys, format_table(
        ["method", "fragment joins", "iterations"],
        [["semi-naive (with fixed point checking)",
          naive.fragment_joins, naive.iterations],
         ["Theorem-1 bounded (no checking)",
          bounded.fragment_joins, bounded.iterations]],
        title="F4: fixed-point computation cost"))
