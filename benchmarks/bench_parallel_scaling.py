"""Experiment S11 — parallel collection search and the bitset kernel.

Two claims of the ``repro.exec`` layer are pinned here, with the
numbers recorded in ``BENCH_parallel.json`` at the repo root:

1. **Scaling**: ``search(..., workers=4)`` over the scalability corpus
   is at least 2x faster than the serial path (workers hold warm
   per-document state, so only answer node-id tuples cross the process
   boundary), while returning bit-identical results.
2. **Kernel**: the interval-bitset join kernel beats the frozenset
   reference on single-document joins — both through a full push-down
   evaluation and on the raw ``fragment_join`` loop.

Run ``pytest benchmarks/bench_parallel_scaling.py --benchmark-only``
for the full experiment, or add ``--smoke`` for the tiny CI variant
(shape checks only; no performance assertions, since a loaded CI box
cannot promise speedups).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.bench.reporting import banner, format_table
from repro.bench.runner import measure
from repro.core.algebra import fragment_join
from repro.core.filters import SizeAtMost
from repro.core.fragment import Fragment
from repro.core.query import Query
from repro.core.strategies import Strategy, evaluate
from repro.exec import ParallelExecutor
from repro.workloads.inexlike import InexSpec, generate_collection
from repro.xmltree.navigation import spanning_nodes

from .conftest import TERM_A, TERM_B, planted_document
from .util import report

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"

WORKER_COUNTS = (2, 4, 8)
QUERY = Query.of(TERM_A, TERM_B, predicate=SizeAtMost(12))


def _record(section: str, payload: dict, registry) -> None:
    """Merge one experiment's facts + metrics into BENCH_parallel.json."""
    data = {}
    if BENCH_JSON.exists():
        try:
            data = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
        except ValueError:
            data = {}
    data[section] = payload
    data.setdefault("metrics", {})[section] = registry.to_json()
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True)
                          + "\n", encoding="utf-8")


def _hit_signature(result):
    return [(hit.document_name, tuple(sorted(hit.fragment.nodes)))
            for hit in result.hits]


def test_parallel_scaling(benchmark, capsys, bench_metrics, smoke):
    spec = (InexSpec(articles=6, nodes_per_article=200,
                     planted_fraction=1.0, occurrences=4,
                     clustering=0.6, seed=211)
            if smoke else
            InexSpec(articles=16, nodes_per_article=3000,
                     planted_fraction=1.0, occurrences=8,
                     clustering=0.6, seed=211))
    collection = generate_collection(spec)
    repetitions = 1 if smoke else 3

    def run():
        serial = measure(
            "serial",
            lambda: collection.search(QUERY),
            repetitions=repetitions, registry=bench_metrics)
        reference_hits = _hit_signature(serial.value)
        rows = [["serial", serial.seconds * 1000, 1.0,
                 len(serial.value)]]
        speedups = {}
        for workers in WORKER_COUNTS:
            documents = {name: collection.document(name)
                         for name in collection.names()}
            with ParallelExecutor(documents, workers=workers) as pool:
                pool.search(QUERY)  # warm worker indexes off the clock
                parallel = measure(
                    f"workers={workers}",
                    lambda: pool.search(QUERY),
                    repetitions=repetitions, registry=bench_metrics)
            assert _hit_signature(parallel.value) == reference_hits
            speedup = serial.seconds / parallel.seconds
            speedups[workers] = speedup
            rows.append([f"workers={workers}", parallel.seconds * 1000,
                         speedup, len(parallel.value)])
        return serial, rows, speedups

    serial, rows, speedups = benchmark.pedantic(run, rounds=1,
                                                iterations=1)
    report(capsys, "\n".join([
        banner(f"S11: parallel collection search "
               f"({spec.articles} docs x {spec.nodes_per_article} "
               f"nodes, pushdown, size<=12)"),
        format_table(["case", "median ms", "speedup", "answers"], rows),
        "",
        "expected shape: near-linear speedup until the pool outgrows "
        "the corpus or the physical cores; results are bit-identical "
        "to serial at every width."]))
    _record("parallel_scaling", {
        "smoke": smoke,
        "articles": spec.articles,
        "nodes_per_article": spec.nodes_per_article,
        "serial_seconds": serial.seconds,
        "speedups": {f"workers={w}": s for w, s in speedups.items()},
        "speedup_at_4_workers": speedups[4],
        "answers": len(serial.value),
    }, bench_metrics)
    if not smoke and (os.cpu_count() or 1) >= 4:
        assert speedups[4] >= 2.0, (
            f"expected >=2x speedup at 4 workers, got {speedups[4]:.2f}x")


def test_kernel_vs_reference(benchmark, capsys, bench_metrics, smoke):
    nodes = 600 if smoke else 6000
    doc = planted_document(nodes=nodes, occ_a=8, occ_b=8,
                           clustering=0.6, seed=97)
    kernel = doc.interval_kernel()
    repetitions = 1 if smoke else 5

    # Raw-join workload: random connected fragments, fixed seed.
    import random
    rng = random.Random(5)
    fragments = []
    for _ in range(200):
        seeds = rng.sample(range(doc.size), rng.randint(1, 6))
        fragments.append(Fragment(doc, spanning_nodes(doc, seeds),
                                  validate=False))
    pairs = [(fragments[rng.randrange(200)], fragments[rng.randrange(200)])
             for _ in range(500 if smoke else 4000)]

    def joins(use_kernel):
        k = kernel if use_kernel else None
        def run():
            for f1, f2 in pairs:
                fragment_join(f1, f2, kernel=k)
        return run

    def run():
        eval_ref = measure(
            "evaluate:reference",
            lambda: evaluate(doc, QUERY, strategy=Strategy.PUSHDOWN),
            repetitions=repetitions, registry=bench_metrics)
        eval_bit = measure(
            "evaluate:bitset",
            lambda: evaluate(doc, QUERY, strategy=Strategy.PUSHDOWN,
                             kernel="bitset"),
            repetitions=repetitions, registry=bench_metrics)
        assert eval_bit.value.fragments == eval_ref.value.fragments
        join_ref = measure("join:reference", joins(False),
                           repetitions=repetitions,
                           registry=bench_metrics)
        join_bit = measure("join:bitset", joins(True),
                           repetitions=repetitions,
                           registry=bench_metrics)
        return eval_ref, eval_bit, join_ref, join_bit

    eval_ref, eval_bit, join_ref, join_bit = benchmark.pedantic(
        run, rounds=1, iterations=1)
    eval_speedup = eval_ref.seconds / eval_bit.seconds
    join_speedup = join_ref.seconds / join_bit.seconds
    report(capsys, "\n".join([
        banner(f"S11: interval-bitset kernel vs reference "
               f"({nodes}-node document)"),
        format_table(
            ["case", "median ms"],
            [["evaluate reference", eval_ref.seconds * 1000],
             ["evaluate bitset", eval_bit.seconds * 1000],
             [f"raw joins x{len(pairs)} reference",
              join_ref.seconds * 1000],
             [f"raw joins x{len(pairs)} bitset",
              join_bit.seconds * 1000]]),
        "",
        f"evaluate speedup: {eval_speedup:.2f}x   "
        f"raw-join speedup: {join_speedup:.2f}x",
        "expected shape: the kernel wins by climbing only from the two "
        "fragment roots (O(path)) with C-speed frozenset unions."]))
    _record("kernel", {
        "smoke": smoke,
        "nodes": nodes,
        "evaluate_reference_seconds": eval_ref.seconds,
        "evaluate_bitset_seconds": eval_bit.seconds,
        "evaluate_speedup": eval_speedup,
        "join_reference_seconds": join_ref.seconds,
        "join_bitset_seconds": join_bit.seconds,
        "join_speedup": join_speedup,
        "join_pairs": len(pairs),
    }, bench_metrics)
    if not smoke:
        assert join_speedup > 1.0, (
            f"bitset kernel must beat the reference on raw joins, got "
            f"{join_speedup:.2f}x")
        assert eval_speedup > 1.0, (
            f"bitset kernel must beat the reference end-to-end, got "
            f"{eval_speedup:.2f}x")
