"""Experiment T1 — reproduce the paper's Table 1.

Regenerates, for the running example query {XQuery, optimization} over
the Figure 1 document, the full candidate table: the fragment set joined
per row, the fragment it produces, and the irrelevant/duplicate marks.
Then times the end-to-end query under every strategy.

Paper expectation: 11 candidate joins, 7 unique output fragments, rows
with size > 3 marked irrelevant, four duplicates removed; final answers
⟨n16,n17,n18⟩, ⟨n16,n17⟩, ⟨n16,n18⟩, ⟨n17⟩.
"""

from __future__ import annotations

from repro.bench.reporting import banner, format_table
from repro.core.algebra import join_all, nonempty_subsets
from repro.core.filters import SizeAtMost
from repro.core.query import Query, keyword_fragments
from repro.core.strategies import Strategy, evaluate

from .util import report

QUERY = Query.of("xquery", "optimization", predicate=SizeAtMost(3))


def _table1_rows(figure1):
    F1 = sorted(keyword_fragments(figure1, "xquery"),
                key=lambda f: f.root)
    F2 = sorted(keyword_fragments(figure1, "optimization"),
                key=lambda f: f.root)
    unions = []
    seen_unions = set()
    for sub1 in nonempty_subsets(F1):
        for sub2 in nonempty_subsets(F2):
            union = frozenset(set(sub1) | set(sub2))
            if union not in seen_unions:
                seen_unions.add(union)
                unions.append(union)
    rows = []
    seen_outputs = set()
    for union in unions:
        output = join_all(sorted(union, key=lambda f: f.root))
        duplicate = output.nodes in seen_outputs
        seen_outputs.add(output.nodes)
        irrelevant = output.size > 3
        inputs = " ⋈ ".join(f"f{f.root}"
                            for f in sorted(union, key=lambda f: f.root))
        rows.append((inputs, output, irrelevant, duplicate))
    # Unique rows first, duplicates at the bottom — the paper's layout.
    rows.sort(key=lambda r: (r[3], r[2], r[1].size))
    return rows


def test_table1_rows(benchmark, figure1, capsys):
    rows = benchmark(_table1_rows, figure1)
    assert len(rows) == 11
    unique = [r for r in rows if not r[3]]
    assert len(unique) == 7
    survivors = [r for r in unique if not r[2]]
    assert len(survivors) == 4

    lines = [banner("T1: Table 1 — candidate fragment sets and outputs"),
             format_table(
                 ["No.", "fragment set to be joined",
                  "fragment generated after join", "irrelevant",
                  "duplicate"],
                 [[i + 1, inputs, frag.label(), irrelevant, duplicate]
                  for i, (inputs, frag, irrelevant, duplicate)
                  in enumerate(rows)]),
             "",
             "paper: 11 joins, 7 unique, 4 final answers — measured: "
             f"{len(rows)} joins, {len(unique)} unique, "
             f"{len(survivors)} final answers"]
    report(capsys, "\n".join(lines))


def test_final_answer_set(benchmark, figure1, capsys):
    result = benchmark(evaluate, figure1, QUERY)
    expected = {frozenset([16, 17, 18]), frozenset([16, 17]),
                frozenset([16, 18]), frozenset([17])}
    assert {f.nodes for f in result.fragments} == expected
    lines = [banner("T1: final answers for "
                    "Q[size<=3]{xquery, optimization}")]
    lines += [f"  {f.label()}" for f in result.sorted_fragments()]
    report(capsys, "\n".join(lines))


def test_bench_table1_brute_force(benchmark, figure1):
    result = benchmark(lambda: evaluate(figure1, QUERY,
                                        strategy=Strategy.BRUTE_FORCE))
    assert len(result.fragments) == 4


def test_bench_table1_set_reduction(benchmark, figure1):
    result = benchmark(lambda: evaluate(figure1, QUERY,
                                        strategy=Strategy.SET_REDUCTION))
    assert len(result.fragments) == 4


def test_bench_table1_pushdown(benchmark, figure1, capsys):
    result = benchmark(lambda: evaluate(figure1, QUERY,
                                        strategy=Strategy.PUSHDOWN))
    assert len(result.fragments) == 4
    rows = []
    for strategy in Strategy:
        outcome = evaluate(figure1, QUERY, strategy=strategy)
        rows.append([strategy.value, len(outcome.fragments),
                     outcome.stats["fragment_joins"],
                     outcome.stats["predicate_checks"]])
    report(capsys, format_table(
        ["strategy", "answers", "fragment joins", "predicate checks"],
        rows, title="T1: logical work per strategy (same answers)"))
