"""Experiment S7 — extension ablations (beyond the paper's evaluation).

Covers the future-work features the paper sketches and this library
implements:

* adaptive top-k retrieval (anti-monotonicity as an early-termination
  device) vs full evaluation + truncation;
* IR-style ranking over the algebraic answer set (§6's "can be easily
  incorporated");
* overlap presentation policies (§5) and their answer counts;
* collection-level fan-out search.
"""

from __future__ import annotations

import time

from repro.bench.reporting import banner, format_table
from repro.collection.collection import DocumentCollection
from repro.core.filters import SizeAtMost
from repro.core.presentation import OverlapPolicy, arrange
from repro.core.query import Query
from repro.core.strategies import evaluate
from repro.core.topk import top_k_smallest
from repro.index.inverted import InvertedIndex
from repro.ranking.scoring import FragmentScorer
from repro.workloads.corpora import BOOK_XML, THESIS_XML
from repro.workloads.figure1 import build_figure1_document

from .conftest import TERM_A, TERM_B, planted_document
from .util import report


def test_topk_vs_full_evaluation(benchmark, capsys):
    doc = planted_document(nodes=1200, occ_a=7, occ_b=7,
                           clustering=0.4, seed=141)
    query = Query.of(TERM_A, TERM_B)

    def adaptive():
        return top_k_smallest(doc, query, k=5)

    top = benchmark(adaptive)

    started = time.perf_counter()
    full = sorted(evaluate(doc, query).fragments,
                  key=lambda f: (f.size, sorted(f.nodes)))[:5]
    full_time = time.perf_counter() - started
    started = time.perf_counter()
    adaptive()
    adaptive_time = time.perf_counter() - started

    assert top == full
    report(capsys, "\n".join([
        banner("S7: adaptive top-k vs evaluate-then-truncate"),
        format_table(
            ["method", "time ms", "answers"],
            [["full evaluation + truncate", full_time * 1000, len(full)],
             ["adaptive β doubling", adaptive_time * 1000, len(top)]]),
        "",
        "expected shape: the adaptive scheme touches only fragments "
        "within the final β and wins when the unfiltered answer set "
        "is much larger than k."]))


def test_ranking_over_answer_set(benchmark, figure1, capsys):
    index = InvertedIndex(figure1)
    query = Query.of("xquery", "optimization", predicate=SizeAtMost(3))
    answers = evaluate(figure1, query).fragments
    scorer = FragmentScorer(index)

    ranked = benchmark(scorer.rank, answers, query.terms)
    rows = [[s.fragment.label(), s.score, s.tf_idf, s.compactness,
             s.proximity] for s in ranked]
    report(capsys, "\n".join([
        banner("S7: IR-style ranking of the Table 1 answers (§6)"),
        format_table(["fragment", "score", "tf-idf", "compactness",
                      "proximity"], rows),
        "",
        "n17 (both terms in one tight node) ranks first; the enlarged "
        "self-contained unit follows — ranking and filtering compose."]))
    assert ranked[0].fragment.size == 1


def test_overlap_policies(benchmark, figure1, capsys):
    query = Query.of("xquery", "optimization", predicate=SizeAtMost(3))
    answers = evaluate(figure1, query).fragments

    def run():
        return {policy: arrange(answers, policy)
                for policy in OverlapPolicy}

    groups = benchmark(run)
    rows = []
    for policy, arranged in groups.items():
        shown = sum(1 for _ in arranged)
        nested = sum(len(g.members) for g in arranged)
        rows.append([policy.value, shown, nested])
    report(capsys, "\n".join([
        banner("S7: overlap presentation policies (§5)"),
        format_table(["policy", "top-level answers",
                      "nested sub-answers"], rows),
        "",
        "paper: overlapping answers can be hidden or presented to show "
        "their structural relationships; both policies implemented."]))
    assert len(groups[OverlapPolicy.HIDE]) == 1
    assert groups[OverlapPolicy.GROUP][0].total == 4


def test_collection_fanout(benchmark, capsys):
    collection = DocumentCollection(name="library")
    collection.add_xml(BOOK_XML, name="book")
    collection.add_xml(THESIS_XML, name="thesis")
    collection.add(build_figure1_document())
    query = Query.of("keyword", "search", predicate=SizeAtMost(5))

    result = benchmark(collection.search, query)
    rows = [[name, len(res.fragments), res.elapsed * 1000]
            for name, res in result.per_document.items()]
    report(capsys, "\n".join([
        banner("S7: collection fan-out search (§7 'very large "
               "collection')"),
        format_table(["document", "answers", "ms"], rows),
        "",
        f"documents skipped by the term-presence check: "
        f"{len(collection) - len(result.per_document)} of "
        f"{len(collection)}"]))
    assert result.matched_documents
