"""Experiment S2 — the §5 reduction-factor machinery.

The paper sketches an optimizer that computes RF = (a−b)/a, compares it
to an empirically calibrated threshold v, and applies set reduction
only when RF ≥ v.  This bench:

1. measures the RF distribution of planted keyword sets as clustering
   varies (clustered occurrences → high RF);
2. for each observation, decides whether the Theorem-1 bounded fixed
   point (which pays for ⊖) actually beat the semi-naive one, giving
   the CalibrationPoint set;
3. calibrates v from those points and prints it next to the shipped
   default.
"""

from __future__ import annotations

import time

from repro.bench.reporting import banner, format_table
from repro.core.cost import DEFAULT_RF_THRESHOLD
from repro.core.query import keyword_fragments
from repro.core.reduce import fixed_point, fixed_point_bounded
from repro.core.statistics import (CalibrationPoint, calibrate_threshold,
                                   estimate_reduction_factor,
                                   reduction_factor)
from repro.workloads.generator import (DocumentSpec, generate_document,
                                       plant_keyword)

from .util import report


def _keyword_set(clustering, occurrences, seed, doc_seed=90):
    # One fixed document across clustering levels so the trend is not
    # confounded by tree-shape variation.
    doc = generate_document(DocumentSpec(nodes=500, seed=doc_seed))
    doc = plant_keyword(doc, "needle", occurrences=occurrences,
                        clustering=clustering, seed=seed)
    return keyword_fragments(doc, "needle")


def test_rf_vs_clustering(benchmark, capsys):
    cases = [(clustering, _keyword_set(clustering, 10, seed=91))
             for clustering in (0.0, 0.3, 0.6, 1.0)]

    def run():
        return [[clustering, len(frags), reduction_factor(frags),
                 estimate_reduction_factor(sorted(
                     frags, key=lambda f: f.root), sample_size=6)]
                for clustering, frags in cases]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(capsys, "\n".join([
        banner("S2: reduction factor vs keyword clustering "
               "(|F| = 10, 500-node document)"),
        format_table(["clustering", "|F|", "exact RF", "sampled RF"],
                     rows),
        "",
        "expected shape: clustered occurrences subsume each other "
        "under joins → RF rises with clustering; the sampler tracks "
        "the exact value from below."]))


def test_threshold_calibration(benchmark, capsys):
    observations = []
    for i, clustering in enumerate((0.0, 0.2, 0.4, 0.6, 0.8, 1.0)):
        frags = _keyword_set(clustering, 9, seed=70 + i, doc_seed=71)
        rf = reduction_factor(frags)
        started = time.perf_counter()
        bounded = fixed_point_bounded(frags)
        bounded_time = time.perf_counter() - started
        started = time.perf_counter()
        lazy = fixed_point(frags)
        lazy_time = time.perf_counter() - started
        assert bounded == lazy
        observations.append(
            CalibrationPoint(rf, bounded_time <= lazy_time))

    threshold = benchmark.pedantic(calibrate_threshold,
                                   args=(observations,), rounds=1,
                                   iterations=1)
    assert 0.0 <= threshold <= 1.0
    report(capsys, "\n".join([
        banner("S2: calibrating the RF threshold v"),
        format_table(
            ["observed RF", "reduction paid off"],
            [[p.rf, p.reduction_paid_off] for p in observations]),
        "",
        f"calibrated v = {threshold:.3f} "
        f"(library default: {DEFAULT_RF_THRESHOLD})",
        "paper: the optimizer estimates RF and reduces only when "
        "RF ≥ v; below v the ⊖ computation costs more than the "
        "iterations it saves."]))
