"""Experiment OBS — overhead of the observability layer.

The ``obs=`` parameter threads through every engine entry point, so its
disabled (no-op) path must be free: the ISSUE acceptance bar is < 2%
median regression on the Fig. 8 workload with observability off.  This
bench measures three configurations over the paper's running example:

* ``baseline``  — ``evaluate`` exactly as before this layer existed;
* ``noop``      — ``evaluate`` with the explicit NOOP handle;
* ``traced``    — full span tracing + metrics + query log;
* ``analyzed``  — EXPLAIN ANALYZE: per-operator runtime statistics.

The no-op path should be indistinguishable from baseline; tracing buys
a complete lifecycle record for a bounded, measured cost.  Facts are
recorded in ``BENCH_obs.json`` at the repo root so the driver can
check the no-op envelope across PRs.

Run ``pytest benchmarks/bench_obs_overhead.py --benchmark-only`` for
the full experiment, or add ``--smoke`` for the tiny CI variant (shape
checks only; no performance assertions).
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

from repro.bench.reporting import banner, format_table
from repro.core.filters import SizeAtMost
from repro.core.query import Query
from repro.core.strategies import Strategy, evaluate, explain_analyze
from repro.obs import (NOOP, FlightRecorder, Observability, QueryLog,
                       RecorderConfig)

from .util import report

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_obs.json"

QUERY = Query.of("xquery", "optimization", predicate=SizeAtMost(3))
ROUNDS = 200


def _record(section: str, payload: dict) -> None:
    """Merge one experiment's facts into BENCH_obs.json."""
    data = {}
    if BENCH_JSON.exists():
        try:
            data = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
        except ValueError:
            data = {}
    data[section] = payload
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True)
                          + "\n", encoding="utf-8")


def _median_ms(funcs, rounds=ROUNDS):
    """Round-robin medians so scheduling noise hits every config alike."""
    times = _round_robin(funcs, rounds)
    return {label: statistics.median(samples) * 1000
            for label, samples in times.items()}


def _best_ms(funcs, rounds=ROUNDS):
    """Round-robin minima: the least-interfered-with run per config.

    Medians still carry scheduler noise on busy hosts; for overhead
    *ratios* of a fixed per-query cost the minimum is the stable
    estimator (both configs hit their quietest slice of the machine).
    """
    times = _round_robin(funcs, rounds)
    return {label: min(samples) * 1000
            for label, samples in times.items()}


def _round_robin(funcs, rounds):
    times = {label: [] for label in funcs}
    for _ in range(rounds):
        for label, func in funcs.items():
            started = time.perf_counter()
            func()
            times[label].append(time.perf_counter() - started)
    return times


def test_noop_overhead(benchmark, figure1, figure1_index, capsys, smoke):
    def baseline():
        return evaluate(figure1, QUERY, strategy=Strategy.PUSHDOWN,
                        index=figure1_index)

    def noop():
        return evaluate(figure1, QUERY, strategy=Strategy.PUSHDOWN,
                        index=figure1_index, obs=NOOP)

    def traced():
        obs = Observability(query_log=QueryLog())
        result = evaluate(figure1, QUERY, strategy=Strategy.PUSHDOWN,
                          index=figure1_index, obs=obs)
        obs.tracer.clear()
        return result

    def analyzed():
        result, _ = explain_analyze(figure1, QUERY,
                                    strategy=Strategy.PUSHDOWN,
                                    index=figure1_index)
        return result

    assert baseline().fragments == noop().fragments \
        == traced().fragments == analyzed().fragments

    medians = _median_ms({"baseline": baseline, "noop": noop,
                          "traced": traced, "analyzed": analyzed},
                         rounds=20 if smoke else ROUNDS)
    ratios = {label: median / medians["baseline"]
              for label, median in medians.items()}
    rows = [(label, median, ratios[label])
            for label, median in medians.items()]
    benchmark.pedantic(noop, rounds=5 if smoke else 20, iterations=5)

    report(capsys, "\n".join([
        banner("OBS: observability overhead on the Fig. 8 query"),
        format_table(["configuration", "median ms", "vs baseline"],
                     rows),
        "",
        "acceptance bar: noop within 2% of baseline; tracing buys the "
        "full lifecycle record, EXPLAIN ANALYZE the per-operator "
        "breakdown, for the costs shown."]))
    _record("noop_overhead", {
        "smoke": smoke,
        "rounds": 20 if smoke else ROUNDS,
        "median_ms": medians,
        "vs_baseline": ratios,
    })
    if not smoke:
        # Loose in-bench guard; the tight 2% bar is checked over many
        # rounds by the PR driver where scheduling noise is controlled.
        assert ratios["noop"] < 1.25


def test_recorder_overhead(benchmark, capsys, smoke):
    """The flight recorder must stay within 1.05x of metrics-only obs.

    Three configurations, all with live metrics (the recorder rides on
    an enabled handle, so the fair baseline is obs-on/recorder-off):

    * ``recorder_off`` — metrics registry only, no recorder;
    * ``recorder_on``  — always-on profile ring, no trace retention;
    * ``sampled``      — ring + 100% head-sampled trace retention
                         (worst case; production tail-sampling retains
                         far fewer).

    Measured on an INEX-like article (not the 82-node Fig. 1 toy): the
    recorder's cost is a small per-query constant (~10 µs), so the
    honest denominator is a production-shaped query, not one whose
    whole evaluation fits in 0.15 ms.
    """
    from repro.index.inverted import InvertedIndex
    from repro.workloads.inexlike import InexSpec, generate_collection

    corpus = generate_collection(InexSpec(articles=1,
                                          nodes_per_article=2400,
                                          planted_fraction=1.0,
                                          seed=23))
    article = corpus.document(corpus.names()[0])
    index = InvertedIndex(article)
    query = Query.of("needle", "thread", predicate=SizeAtMost(64))
    # Long-lived handles, as in a serve loop: the recorder's cost-model
    # memo and the metric instruments amortise across queries.
    plain_obs = Observability()
    ring_obs = Observability(
        recorder=FlightRecorder(RecorderConfig(slow_ms=None)))
    sampled_obs = Observability(
        recorder=FlightRecorder(RecorderConfig(slow_ms=None,
                                               sample_rate=1.0,
                                               seed=17)))

    def recorder_off():
        return evaluate(article, query, strategy=Strategy.PUSHDOWN,
                        index=index, obs=plain_obs)

    def recorder_on():
        return evaluate(article, query, strategy=Strategy.PUSHDOWN,
                        index=index, obs=ring_obs)

    def sampled():
        result = evaluate(article, query, strategy=Strategy.PUSHDOWN,
                          index=index, obs=sampled_obs)
        sampled_obs.tracer.clear()
        return result

    assert recorder_off().fragments == recorder_on().fragments \
        == sampled().fragments

    # Warm the cost-model memo, instrument caches and CPU caches so
    # the timed rounds compare steady states.
    for _ in range(5):
        recorder_on()
        sampled()
        recorder_off()
    bests = _best_ms({"recorder_off": recorder_off,
                      "recorder_on": recorder_on,
                      "sampled": sampled},
                     rounds=60 if smoke else ROUNDS)
    ratios = {label: best / bests["recorder_off"]
              for label, best in bests.items()}
    rows = [(label, best, ratios[label])
            for label, best in bests.items()]
    benchmark.pedantic(recorder_on, rounds=5 if smoke else 20,
                       iterations=5)

    report(capsys, "\n".join([
        banner("OBS: flight-recorder overhead on an INEX-like article"),
        format_table(["configuration", "best ms", "vs recorder_off"],
                     rows),
        "",
        "acceptance bar: recorder_on within 1.05x of recorder_off; the "
        "always-on ring buys per-query resource attribution and cost "
        "calibration, trace retention is tail-sampled on top."]))
    _record("recorder_overhead", {
        "smoke": smoke,
        "rounds": 60 if smoke else ROUNDS,
        "best_ms": bests,
        "vs_recorder_off": ratios,
    })
    if not smoke:
        assert ratios["recorder_on"] < 1.25


def test_sampler_overhead(benchmark, capsys, smoke):
    """The time-series sampler must stay within 1.05x of sampler-off.

    The sampler snapshots the registry from its own thread, so the
    cost it can impose on the query path is registry lock contention
    plus background CPU.  Two configurations, both with live metrics:

    * ``sampler_off`` — metrics registry only, nothing sampling it;
    * ``sampler_on``  — a :class:`~repro.obs.MetricsHistory` thread
                        snapshotting the same registry at 100 Hz — two
                        orders of magnitude hotter than the 5 s
                        serving default, so the gate bounds the worst
                        case, not the configured one.
    """
    from repro.index.inverted import InvertedIndex
    from repro.obs import MetricsHistory
    from repro.workloads.inexlike import InexSpec, generate_collection

    corpus = generate_collection(InexSpec(articles=1,
                                          nodes_per_article=2400,
                                          planted_fraction=1.0,
                                          seed=23))
    article = corpus.document(corpus.names()[0])
    index = InvertedIndex(article)
    query = Query.of("needle", "thread", predicate=SizeAtMost(64))
    off_obs = Observability()
    on_obs = Observability()

    def sampler_off():
        return evaluate(article, query, strategy=Strategy.PUSHDOWN,
                        index=index, obs=off_obs)

    def sampler_on():
        return evaluate(article, query, strategy=Strategy.PUSHDOWN,
                        index=index, obs=on_obs)

    assert sampler_off().fragments == sampler_on().fragments

    for _ in range(5):
        sampler_off()
        sampler_on()
    with MetricsHistory(on_obs.metrics, interval_s=0.01):
        bests = _best_ms({"sampler_off": sampler_off,
                          "sampler_on": sampler_on},
                         rounds=60 if smoke else ROUNDS)
    ratios = {label: best / bests["sampler_off"]
              for label, best in bests.items()}
    rows = [(label, best, ratios[label])
            for label, best in bests.items()]
    benchmark.pedantic(sampler_on, rounds=5 if smoke else 20,
                       iterations=5)

    report(capsys, "\n".join([
        banner("OBS: time-series sampler overhead at 100 Hz"),
        format_table(["configuration", "best ms", "vs sampler_off"],
                     rows),
        "",
        "acceptance bar: sampler_on within 1.05x of sampler_off; the "
        "sampler buys windowed rates, quantile sketches and burn-rate "
        "alerting without touching the query hot path."]))
    _record("sampler_overhead", {
        "smoke": smoke,
        "rounds": 60 if smoke else ROUNDS,
        "sample_interval_s": 0.01,
        "best_ms": bests,
        "vs_sampler_off": ratios,
    })
    if not smoke:
        assert ratios["sampler_on"] < 1.25
