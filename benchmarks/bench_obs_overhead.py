"""Experiment OBS — overhead of the observability layer.

The ``obs=`` parameter threads through every engine entry point, so its
disabled (no-op) path must be free: the ISSUE acceptance bar is < 2%
median regression on the Fig. 8 workload with observability off.  This
bench measures three configurations over the paper's running example:

* ``baseline``  — ``evaluate`` exactly as before this layer existed;
* ``noop``      — ``evaluate`` with the explicit NOOP handle;
* ``traced``    — full span tracing + metrics + query log.

The no-op path should be indistinguishable from baseline; tracing buys
a complete lifecycle record for a bounded, measured cost.
"""

from __future__ import annotations

import statistics
import time

from repro.bench.reporting import banner, format_table
from repro.core.filters import SizeAtMost
from repro.core.query import Query
from repro.core.strategies import Strategy, evaluate
from repro.obs import NOOP, Observability, QueryLog

from .util import report

QUERY = Query.of("xquery", "optimization", predicate=SizeAtMost(3))
ROUNDS = 200


def _median_ms(funcs, rounds=ROUNDS):
    """Round-robin medians so scheduling noise hits every config alike."""
    times = {label: [] for label in funcs}
    for _ in range(rounds):
        for label, func in funcs.items():
            started = time.perf_counter()
            func()
            times[label].append(time.perf_counter() - started)
    return {label: statistics.median(samples) * 1000
            for label, samples in times.items()}


def test_noop_overhead(benchmark, figure1, figure1_index, capsys):
    def baseline():
        return evaluate(figure1, QUERY, strategy=Strategy.PUSHDOWN,
                        index=figure1_index)

    def noop():
        return evaluate(figure1, QUERY, strategy=Strategy.PUSHDOWN,
                        index=figure1_index, obs=NOOP)

    def traced():
        obs = Observability(query_log=QueryLog())
        result = evaluate(figure1, QUERY, strategy=Strategy.PUSHDOWN,
                          index=figure1_index, obs=obs)
        obs.tracer.clear()
        return result

    assert baseline().fragments == noop().fragments \
        == traced().fragments

    medians = _median_ms({"baseline": baseline, "noop": noop,
                          "traced": traced})
    rows = [(label, median, median / medians["baseline"])
            for label, median in medians.items()]
    benchmark.pedantic(noop, rounds=20, iterations=5)

    report(capsys, "\n".join([
        banner("OBS: observability overhead on the Fig. 8 query"),
        format_table(["configuration", "median ms", "vs baseline"],
                     rows),
        "",
        "acceptance bar: noop within 2% of baseline; tracing buys the "
        "full lifecycle record for the cost shown."]))
    # Loose in-bench guard; the tight 2% bar is checked over many
    # rounds by the PR driver where scheduling noise is controlled.
    assert medians["noop"] / medians["baseline"] < 1.25
