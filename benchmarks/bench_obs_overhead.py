"""Experiment OBS — overhead of the observability layer.

The ``obs=`` parameter threads through every engine entry point, so its
disabled (no-op) path must be free: the ISSUE acceptance bar is < 2%
median regression on the Fig. 8 workload with observability off.  This
bench measures three configurations over the paper's running example:

* ``baseline``  — ``evaluate`` exactly as before this layer existed;
* ``noop``      — ``evaluate`` with the explicit NOOP handle;
* ``traced``    — full span tracing + metrics + query log;
* ``analyzed``  — EXPLAIN ANALYZE: per-operator runtime statistics.

The no-op path should be indistinguishable from baseline; tracing buys
a complete lifecycle record for a bounded, measured cost.  Facts are
recorded in ``BENCH_obs.json`` at the repo root so the driver can
check the no-op envelope across PRs.

Run ``pytest benchmarks/bench_obs_overhead.py --benchmark-only`` for
the full experiment, or add ``--smoke`` for the tiny CI variant (shape
checks only; no performance assertions).
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

from repro.bench.reporting import banner, format_table
from repro.core.filters import SizeAtMost
from repro.core.query import Query
from repro.core.strategies import Strategy, evaluate, explain_analyze
from repro.obs import NOOP, Observability, QueryLog

from .util import report

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_obs.json"

QUERY = Query.of("xquery", "optimization", predicate=SizeAtMost(3))
ROUNDS = 200


def _record(section: str, payload: dict) -> None:
    """Merge one experiment's facts into BENCH_obs.json."""
    data = {}
    if BENCH_JSON.exists():
        try:
            data = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
        except ValueError:
            data = {}
    data[section] = payload
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True)
                          + "\n", encoding="utf-8")


def _median_ms(funcs, rounds=ROUNDS):
    """Round-robin medians so scheduling noise hits every config alike."""
    times = {label: [] for label in funcs}
    for _ in range(rounds):
        for label, func in funcs.items():
            started = time.perf_counter()
            func()
            times[label].append(time.perf_counter() - started)
    return {label: statistics.median(samples) * 1000
            for label, samples in times.items()}


def test_noop_overhead(benchmark, figure1, figure1_index, capsys, smoke):
    def baseline():
        return evaluate(figure1, QUERY, strategy=Strategy.PUSHDOWN,
                        index=figure1_index)

    def noop():
        return evaluate(figure1, QUERY, strategy=Strategy.PUSHDOWN,
                        index=figure1_index, obs=NOOP)

    def traced():
        obs = Observability(query_log=QueryLog())
        result = evaluate(figure1, QUERY, strategy=Strategy.PUSHDOWN,
                          index=figure1_index, obs=obs)
        obs.tracer.clear()
        return result

    def analyzed():
        result, _ = explain_analyze(figure1, QUERY,
                                    strategy=Strategy.PUSHDOWN,
                                    index=figure1_index)
        return result

    assert baseline().fragments == noop().fragments \
        == traced().fragments == analyzed().fragments

    medians = _median_ms({"baseline": baseline, "noop": noop,
                          "traced": traced, "analyzed": analyzed},
                         rounds=20 if smoke else ROUNDS)
    ratios = {label: median / medians["baseline"]
              for label, median in medians.items()}
    rows = [(label, median, ratios[label])
            for label, median in medians.items()]
    benchmark.pedantic(noop, rounds=5 if smoke else 20, iterations=5)

    report(capsys, "\n".join([
        banner("OBS: observability overhead on the Fig. 8 query"),
        format_table(["configuration", "median ms", "vs baseline"],
                     rows),
        "",
        "acceptance bar: noop within 2% of baseline; tracing buys the "
        "full lifecycle record, EXPLAIN ANALYZE the per-operator "
        "breakdown, for the costs shown."]))
    _record("noop_overhead", {
        "smoke": smoke,
        "rounds": 20 if smoke else ROUNDS,
        "median_ms": medians,
        "vs_baseline": ratios,
    })
    if not smoke:
        # Loose in-bench guard; the tight 2% bar is checked over many
        # rounds by the PR driver where scheduling noise is controlled.
        assert ratios["noop"] < 1.25
