"""Experiment F6 — Figure 6: anti-monotonic filters.

Demonstrates the size/height/width filters of §3.3.1–§3.3.2 on the
Figure 1 document: for each filter, the fragments of the unfiltered
answer set it keeps, plus an exhaustive Definition-11 verification on a
small subtree (every sub-fragment of every accepted fragment is also
accepted).
"""

from __future__ import annotations

from repro.bench.reporting import banner, format_table
from repro.core.enumeration import verify_anti_monotonic
from repro.core.filters import (HeightAtMost, SizeAtMost, WidthAtMost,
                                select)
from repro.core.query import Query
from repro.core.strategies import Strategy, evaluate
from repro.workloads.papertrees import build_figure3_tree

from .util import report

UNFILTERED = Query.of("xquery", "optimization")

FILTERS = [SizeAtMost(3), SizeAtMost(8), HeightAtMost(1), HeightAtMost(2),
           WidthAtMost(2), WidthAtMost(10)]


def test_filters_on_answer_set(benchmark, figure1, capsys):
    candidates = evaluate(figure1, UNFILTERED,
                          strategy=Strategy.SET_REDUCTION).fragments

    def run():
        return {repr(f): len(select(f, candidates)) for f in FILTERS}

    kept = benchmark(run)
    assert kept["size<=3"] == 4  # Table 1's surviving answers
    rows = [[name, len(candidates), count]
            for name, count in kept.items()]
    report(capsys, "\n".join([
        banner("F6: anti-monotonic filters over the Table 1 candidates"),
        format_table(["filter", "candidates", "kept"], rows),
        "  paper: size<=3 keeps exactly the four Table 1 answers; "
        "looser bounds keep more."]))


def test_definition11_verified_exhaustively(benchmark, capsys):
    tree = build_figure3_tree()

    def run():
        return {repr(f): verify_anti_monotonic(f, tree.document)
                for f in FILTERS}

    verdicts = benchmark(run)
    assert all(verdicts.values())
    report(capsys, format_table(
        ["filter", "anti-monotonic (exhaustive check)"],
        [[name, ok] for name, ok in verdicts.items()],
        title="F6: Definition 11 verified over every fragment of the "
              "Figure 3 tree"))
