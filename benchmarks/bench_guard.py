"""Experiment S13 — the cost of query guard rails.

Two questions about ``repro.guard``, with the numbers recorded in
``BENCH_guard.json`` at the repo root:

1. **Checkpoint overhead on the unguarded path**: the budget
   checkpoints are ``if budget is not None`` guards in the hot loops,
   so running *without* a budget must stay within noise of the
   pre-guard code — and running with a generous budget should cost at
   most a couple of percent (the 2% target from the robustness plan).
2. **Time-to-abort on a pathological query**: a dense dual-keyword
   sibling set whose fixed point is ``2^N`` fragments (the paper's
   Definition 6 blow-up) must be cut off within 1.5x the configured
   deadline instead of running for hours.

Run ``pytest benchmarks/bench_guard.py --benchmark-only`` for the full
experiment, or add ``--smoke`` for the tiny CI variant (shape checks
only; no performance assertions).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.bench.reporting import banner, format_table
from repro.core.filters import SizeAtMost
from repro.core.query import Query
from repro.core.strategies import Strategy, evaluate
from repro.errors import BudgetExceeded
from repro.guard.budget import QueryBudget
from repro.obs.metrics import LATENCY_BUCKETS
from repro.workloads.inexlike import InexSpec, generate_collection
from repro.xmltree.parser import parse

from .conftest import TERM_A, TERM_B
from .util import report

BENCH_JSON = (Path(__file__).resolve().parent.parent
              / "BENCH_guard.json")

QUERY = Query.of(TERM_A, TERM_B, predicate=SizeAtMost(12))


def _record(section: str, payload: dict, registry) -> None:
    """Merge one experiment's facts + metrics into the JSON report."""
    data = {}
    if BENCH_JSON.exists():
        try:
            data = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
        except ValueError:
            data = {}
    data[section] = payload
    data.setdefault("metrics", {})[section] = registry.to_json()
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True)
                          + "\n", encoding="utf-8")


def _hit_signature(result):
    return [(hit.document_name, tuple(sorted(hit.fragment.nodes)))
            for hit in result.hits]


def pathological_document(siblings: int):
    """N siblings that each contain both query terms: the fixed point
    holds ``2^N`` fragments, far beyond any useful answer set."""
    parts = "".join(f"<b{i}>{TERM_A} {TERM_B}</b{i}>"
                    for i in range(siblings))
    return parse(f"<a>{parts}</a>")


def test_guard_overhead_and_abort(benchmark, capsys, bench_metrics,
                                  smoke):
    spec = (InexSpec(articles=6, nodes_per_article=200,
                     planted_fraction=1.0, occurrences=4,
                     clustering=0.6, seed=313)
            if smoke else
            InexSpec(articles=12, nodes_per_article=1500,
                     planted_fraction=1.0, occurrences=8,
                     clustering=0.6, seed=313))
    collection = generate_collection(spec)
    repetitions = 1 if smoke else 5
    deadline_s = 0.1 if smoke else 0.3
    siblings = 12 if smoke else 16

    generous = QueryBudget(deadline_s=3600.0, max_join_ops=10**12)

    def run():
        collection.search(QUERY)  # warm indexes/caches off the clock
        # Interleave the two variants so clock drift / cache warmth
        # hits both equally, and take the per-variant best: the min is
        # the robust estimator for an overhead ratio.
        unguarded_times, guarded_times = [], []
        unguarded_result = guarded_result = None
        for _ in range(repetitions):
            started = time.perf_counter()
            unguarded_result = collection.search(QUERY)
            unguarded_times.append(time.perf_counter() - started)
            started = time.perf_counter()
            guarded_result = collection.search(
                QUERY, budget=generous.fresh_item())
            guarded_times.append(time.perf_counter() - started)
        assert _hit_signature(guarded_result) \
            == _hit_signature(unguarded_result)
        for label, seconds in (("unguarded", min(unguarded_times)),
                               ("guarded", min(guarded_times))):
            bench_metrics.histogram(
                "bench_seconds", "Median bench latency.",
                buckets=LATENCY_BUCKETS,
                labels={"case": label}).observe(seconds)

        # Time-to-abort: the blow-up query dies near its deadline.
        document = pathological_document(siblings)
        started = time.monotonic()
        with pytest.raises(BudgetExceeded) as excinfo:
            evaluate(document, Query.of(TERM_A, TERM_B),
                     strategy=Strategy.BRUTE_FORCE,
                     budget=QueryBudget(deadline_s=deadline_s))
        abort_elapsed = time.monotonic() - started
        return (min(unguarded_times), min(guarded_times),
                abort_elapsed, excinfo.value)

    (unguarded_s, guarded_s, abort_elapsed,
     abort_exc) = benchmark.pedantic(run, rounds=1, iterations=1)
    overhead = guarded_s / unguarded_s
    abort_factor = abort_elapsed / deadline_s
    rows = [
        ["unguarded search", unguarded_s * 1000, ""],
        ["generous budget", guarded_s * 1000,
         f"{overhead:.3f}x vs unguarded"],
        [f"2^{siblings} blow-up, {deadline_s:g}s deadline",
         abort_elapsed * 1000,
         f"aborted at {abort_factor:.2f}x the deadline"],
    ]
    report(capsys, "\n".join([
        banner(f"S13: guard-rail cost "
               f"({spec.articles} docs x {spec.nodes_per_article} "
               f"nodes, pushdown, size<=12)"),
        format_table(["case", "median ms", "note"], rows),
        "",
        "expected shape: budget checkpoints are amortised (one clock "
        "read per check_interval join ops), so the guarded run tracks "
        "the unguarded one (<2% target); the pathological query is "
        "cut off within 1.5x its deadline with structured progress "
        "instead of running for 2^N fragments."]))
    _record("guard", {
        "smoke": smoke,
        "articles": spec.articles,
        "nodes_per_article": spec.nodes_per_article,
        "unguarded_seconds": unguarded_s,
        "guarded_seconds": guarded_s,
        "checkpoint_overhead": overhead,
        "abort_deadline_s": deadline_s,
        "abort_elapsed_s": abort_elapsed,
        "abort_factor": abort_factor,
        "abort_reason": abort_exc.reason,
        "abort_join_ops": abort_exc.progress.get("join_ops", 0),
    }, bench_metrics)
    assert abort_exc.reason == "deadline"
    assert abort_factor < 1.5, (
        f"pathological query must abort within 1.5x its deadline, "
        f"took {abort_factor:.2f}x")
    if not smoke:
        # Loose ceiling: single-run medians are noisy, the recorded
        # number is the real deliverable (the 2% target is asserted
        # against the median of `repetitions` runs, with headroom).
        assert overhead < 1.10, (
            f"budget checkpoints should be near-free, got "
            f"{overhead:.3f}x")
