"""Experiment S3 — algebra vs related-work baselines (§6).

The paper positions the algebra against smallest-LCA style systems:
"existing methods are ineffective in achieving our goal in the first
place" but faster, a natural effectiveness/efficiency trade-off that
anti-monotonic filters partly recover.  This bench quantifies both
sides on synthetic corpora:

* effectiveness — how often the baselines' answer sets contain the
  enclosing self-contained fragment (the paper's target shape) that the
  algebra retrieves;
* efficiency — wall time of SLCA / ELCA / XRank / smallest-fragment vs
  the push-down algebra.
"""

from __future__ import annotations

import time

from repro.baselines.elca import elca_nodes
from repro.baselines.slca import slca_nodes
from repro.baselines.smallest import smallest_fragments
from repro.baselines.xrank import xrank_answers
from repro.baselines.xsearch import xsearch_answers
from repro.bench.reporting import banner, format_table
from repro.core.filters import SizeAtMost
from repro.core.query import Query
from repro.core.strategies import Strategy, evaluate
from repro.workloads.figure1 import build_figure1_document

from .conftest import TERM_A, TERM_B, planted_document
from .util import report

TERMS = [TERM_A, TERM_B]
QUERY = Query.of(TERM_A, TERM_B, predicate=SizeAtMost(6))


def test_effectiveness_comparison(benchmark, capsys):
    doc = planted_document(nodes=800, occ_a=5, occ_b=5,
                           clustering=0.7, seed=101)

    def run():
        algebra = evaluate(doc, QUERY).fragments
        slca_sets = {frozenset(doc.subtree(v))
                     for v in slca_nodes(doc, TERMS)}
        smallest = {f.nodes for f in smallest_fragments(doc, TERMS)}
        # Fragments the algebra finds that strictly extend every
        # conventional answer they contain — the paper's "more
        # informative, self-contained" units.
        extended = [f for f in algebra
                    if any(s < f.nodes for s in smallest)]
        return algebra, smallest, extended, slca_sets

    algebra, smallest, extended, _ = benchmark.pedantic(
        run, rounds=1, iterations=1)
    assert extended, ("algebra should offer enlarged units beyond the "
                      "smallest-subtree answers")
    report(capsys, "\n".join([
        banner("S3: effectiveness — answer units offered"),
        format_table(
            ["semantics", "answers", "enlarged self-contained units"],
            [["smallest-subtree", len(smallest), 0],
             ["algebra (size<=6)", len(algebra), len(extended)]]),
        "",
        "paper: conventional semantics cannot produce the enlarged "
        "units at all; the algebra produces them plus the conventional "
        "answers as sub-fragments."]))


def test_efficiency_comparison(benchmark, capsys):
    doc = planted_document(nodes=1500, occ_a=6, occ_b=6,
                           clustering=0.5, seed=103)

    def run():
        rows = []
        for name, fn in (
                ("slca", lambda: slca_nodes(doc, TERMS)),
                ("elca", lambda: elca_nodes(doc, TERMS)),
                ("xrank", lambda: xrank_answers(doc, TERMS)),
                ("smallest-fragments",
                 lambda: smallest_fragments(doc, TERMS)),
                ("algebra/pushdown",
                 lambda: evaluate(doc, QUERY,
                                  strategy=Strategy.PUSHDOWN))):
            started = time.perf_counter()
            fn()
            rows.append([name, (time.perf_counter() - started) * 1000])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(capsys, "\n".join([
        banner("S3: efficiency — baselines vs algebra "
               "(1500 nodes, |Fi| = 6)"),
        format_table(["method", "latency ms"], rows),
        "",
        "expected shape: LCA-style baselines are faster (they compute "
        "far less); the filtered algebra stays within practical range "
        "— the effectiveness/efficiency trade-off of §6."]))


def _known_relevance_corpus(sections: int = 12, distractors: int = 40):
    """A document with ``sections`` known-relevant units.

    Each relevant unit is a subsection whose two paragraphs carry one
    query term each — the Figure 1 pattern repeated; the relevant
    answer is the 3-node subsection fragment.  Distractor subsections
    carry unrelated text.
    """
    from repro.core.fragment import Fragment
    from repro.xmltree.builder import DocumentBuilder

    # Each relevant unit repeats the Figure 1 pattern: the subsection
    # heading mentions one term, the first paragraph carries *both*
    # terms, the second carries one — so the smallest-subtree
    # semantics collapses to the first paragraph alone while the
    # intended unit is the whole 3-node subsection.
    b = DocumentBuilder(name="relevance")
    root = b.add_root("article")
    relevant_nodes = []
    for i in range(sections):
        sec = b.add_child(root, "subsection",
                          f"techniques for thread handling {i}")
        p1 = b.add_child(sec, "par",
                         "thread analysis of the needle approach")
        p2 = b.add_child(sec, "par", "the needle approach in detail")
        relevant_nodes.append((sec, p1, p2))
        for _ in range(distractors // sections):
            b.add_child(sec, "note", "unrelated filler prose")
    doc = b.build()
    relevant = [Fragment(doc, nodes) for nodes in relevant_nodes]
    return doc, relevant


def test_effectiveness_metrics(benchmark, capsys):
    from repro.baselines.xsearch import xsearch_answers
    from repro.core.fragment import Fragment
    from repro.ranking.metrics import evaluate_effectiveness

    doc, relevant = _known_relevance_corpus()
    terms = ["needle", "thread"]
    query = Query.of(*terms, predicate=SizeAtMost(3))

    def run():
        systems = {
            "algebra size<=3 (maximal answers)":
                evaluate(doc, query).non_overlapping(),
            "smallest-fragments": smallest_fragments(doc, terms),
            "slca subtrees":
                [Fragment.subtree(doc, v)
                 for v in slca_nodes(doc, terms)],
            "xsearch": xsearch_answers(doc, terms),
        }
        return {name: evaluate_effectiveness(answers, relevant)
                for name, answers in systems.items()}

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[name] + report.as_row()
            for name, report in reports.items()]
    report(capsys, "\n".join([
        banner("S3: effectiveness metrics against known relevant "
               "units (12 planted subsections)"),
        format_table(["system", "precision", "recall", "f1",
                      "overlap-P", "overlap-R"], rows),
        "",
        "relevant unit = the 3-node subsection; the filtered algebra "
        "retrieves it exactly (plus sub-answers), the baselines "
        "under- or over-shoot it."]))
    assert reports["algebra size<=3 (maximal answers)"].recall == 1.0


def test_bench_slca(benchmark, medium_doc):
    benchmark(slca_nodes, medium_doc, TERMS)


def test_bench_elca(benchmark, medium_doc):
    benchmark(elca_nodes, medium_doc, TERMS)


def test_bench_xrank(benchmark, medium_doc):
    benchmark(xrank_answers, medium_doc, TERMS)


def test_bench_smallest_fragments(benchmark, medium_doc):
    benchmark(smallest_fragments, medium_doc, TERMS)


def test_figure1_answers_side_by_side(benchmark, capsys):
    doc = build_figure1_document()
    terms = ["xquery", "optimization"]

    def run():
        return (slca_nodes(doc, terms), elca_nodes(doc, terms),
                [f.label() for f in smallest_fragments(doc, terms)],
                [f.label() for f in xsearch_answers(doc, terms)],
                [f.label() for f in evaluate(
                    doc, Query.of(*terms, predicate=SizeAtMost(3))
                ).sorted_fragments()])

    slca, elca, smallest, xsearch, algebra = benchmark(run)
    report(capsys, "\n".join([
        format_table(
            ["method", "answers on the Figure 1 example"],
            [["slca", ", ".join(f"n{v}" for v in slca)],
             ["elca", ", ".join(f"n{v}" for v in elca)],
             ["smallest-fragments", ", ".join(smallest)],
             ["xsearch (interconnection)", ", ".join(xsearch)],
             ["algebra size<=3", ", ".join(algebra)]],
            title="S3: all methods on the running example"),
        "",
        "note: XSEarch's witness pair (n17, n18) happens to span "
        "⟨n16,n17,n18⟩ here, but its retrieval unit is the node pair — "
        "only the algebra returns the subsection as a single "
        "self-contained answer unit with filter guarantees."]))
