"""Experiment F7 — Figure 7: a filter without the anti-monotonic property.

The equal-depth filter selects fragments in which an occurrence of k1
and an occurrence of k2 sit at the same depth.  Figure 7 shows a
fragment f satisfying it whose sub-fragment f′ does not; this bench
finds that witness mechanically, shows ``SizeAtLeast`` failing the
property too (§3.4's first example), and demonstrates why such filters
must not be pushed below joins (pushing them would change the answers).
"""

from __future__ import annotations

from repro.bench.reporting import banner, format_table
from repro.core.algebra import pairwise_join
from repro.core.enumeration import (find_anti_monotonicity_violation,
                                    verify_anti_monotonic)
from repro.core.filters import EqualDepth, SizeAtLeast, SizeAtMost, select
from repro.core.query import keyword_fragments

from .util import report


def test_equal_depth_violation_witness(benchmark, figure7, capsys):
    predicate = EqualDepth("k1", "k2")
    f = figure7.fragment("n0", "n1", "n2", "n3", "n4")

    witness = benchmark(find_anti_monotonicity_violation, predicate, f)
    assert witness is not None
    assert witness < f
    report(capsys, "\n".join([
        banner("F7: equal-depth filter is not anti-monotonic"),
        f"  f  = ⟨{','.join(sorted(figure7.labels_of(f)))}⟩ "
        f"satisfies {predicate!r}: {predicate(f)}",
        f"  f' = ⟨{','.join(sorted(figure7.labels_of(witness)))}⟩ "
        f"⊆ f satisfies it: {predicate(witness)}",
        "  paper: fragment f satisfies the filter while its "
        "sub-fragment f' does not (Figure 7)."]))


def test_non_anti_monotonic_filters_fail_verification(benchmark, figure7,
                                                      capsys):
    doc = figure7.document

    def run():
        return {
            "equal-depth(k1,k2)": verify_anti_monotonic(
                EqualDepth("k1", "k2"), doc),
            "size>=2": verify_anti_monotonic(SizeAtLeast(2), doc),
            "size<=2": verify_anti_monotonic(SizeAtMost(2), doc),
        }

    verdicts = benchmark(run)
    assert not verdicts["equal-depth(k1,k2)"]
    assert not verdicts["size>=2"]
    assert verdicts["size<=2"]
    report(capsys, format_table(
        ["filter", "anti-monotonic"],
        [[name, ok] for name, ok in verdicts.items()],
        title="F7: §3.4 — not all filters have the property"))


def test_pushing_equal_depth_would_be_unsound(benchmark, figure7, capsys):
    doc = figure7.document
    predicate = EqualDepth("k1", "k2")
    F1 = keyword_fragments(doc, "k1")
    F2 = keyword_fragments(doc, "k2")

    def run():
        correct = select(predicate, pairwise_join(F1, F2))
        wrongly_pushed = select(
            predicate, pairwise_join(select(predicate, F1),
                                     select(predicate, F2)))
        return correct, wrongly_pushed

    correct, wrongly_pushed = benchmark(run)
    # For this filter the two happen to coincide or not; the relevant
    # guarantee is only one-directional, so the optimizer must not push.
    assert correct >= wrongly_pushed & correct
    report(capsys, format_table(
        ["evaluation", "answers"],
        [["σ_P after join (correct)", len(correct)],
         ["σ_P pushed below join (unsound in general)",
          len(wrongly_pushed)]],
        title="F7: why non-anti-monotonic selections stay above joins"))
