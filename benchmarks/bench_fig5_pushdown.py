"""Experiment F5 — Figure 5: the push-down query evaluation trees.

Builds the two plans of Figure 5 — σ_Pa over a join of fixed points vs
the equivalent plan with the selection pushed onto every scan, into the
fixed points and above every join — prints both operator trees, proves
they compute identical answers, and compares their logical work.
"""

from __future__ import annotations

from repro.bench.reporting import banner, format_table
from repro.core.evaluator import PlanEvaluator
from repro.core.filters import SizeAtMost
from repro.core.optimizer import (OptimizerSettings, optimize,
                                  push_down_selections)
from repro.core.plan import explain
from repro.core.query import Query
from repro.core.stats import OperationStats

from .util import report

QUERY = Query.of("xquery", "optimization", predicate=SizeAtMost(3))


def test_plans_equivalent(benchmark, figure1, capsys):
    unpushed = optimize(QUERY, OptimizerSettings(push_down=False))
    pushed = push_down_selections(unpushed)
    evaluator = PlanEvaluator(figure1)

    def run():
        return (evaluator.execute(unpushed), evaluator.execute(pushed))

    before, after = benchmark(run)
    assert before == after
    report(capsys, "\n".join([
        banner("F5: query evaluation trees (Figure 5)"),
        "(a) initial tree:",
        explain(unpushed, indent="    "),
        "",
        "(b) equivalent tree with 'push-down' strategy:",
        explain(pushed, indent="    "),
        "",
        f"identical answers: {before == after} "
        f"({len(before)} fragments)"]))


def test_pushdown_work_comparison(benchmark, figure1, capsys):
    unpushed = optimize(QUERY, OptimizerSettings(push_down=False))
    pushed = push_down_selections(unpushed)
    evaluator = PlanEvaluator(figure1)

    def run():
        stats = OperationStats()
        evaluator.execute(pushed, stats=stats)
        return stats

    pushed_stats = benchmark(run)
    unpushed_stats = OperationStats()
    evaluator.execute(unpushed, stats=unpushed_stats)
    assert pushed_stats.fragment_joins <= unpushed_stats.fragment_joins
    report(capsys, format_table(
        ["plan", "fragment joins", "fragments discarded early"],
        [["(a) selection last", unpushed_stats.fragment_joins,
          unpushed_stats.fragments_discarded],
         ["(b) selection pushed down", pushed_stats.fragment_joins,
          pushed_stats.fragments_discarded]],
        title="F5: logical work, selection last vs pushed down"))


def test_bench_unpushed_plan(benchmark, figure1):
    plan = optimize(QUERY, OptimizerSettings(push_down=False))
    evaluator = PlanEvaluator(figure1)
    result = benchmark(evaluator.execute, plan)
    assert len(result) == 4


def test_bench_pushed_plan(benchmark, figure1):
    plan = optimize(QUERY)
    evaluator = PlanEvaluator(figure1)
    result = benchmark(evaluator.execute, plan)
    assert len(result) == 4
