"""Experiment S8 — collection scale (§7's "very large collection").

Runs the paper's query shape over INEX-like synthetic collections,
sweeping the number of articles, and measures the collection machinery:
fan-out search latency, term-presence skipping, and the multi-document
sqlite3 store (shred / collection-wide keyword SQL).
"""

from __future__ import annotations

import time

from repro.bench.reporting import banner, format_table
from repro.core.filters import SizeAtMost
from repro.core.query import Query
from repro.storage.multistore import CollectionStore
from repro.workloads.inexlike import InexSpec, generate_collection

from .util import report

QUERY = Query.of("needle", "thread", predicate=SizeAtMost(8))


def test_collection_size_sweep(benchmark, capsys):
    collections = {
        articles: generate_collection(InexSpec(
            articles=articles, nodes_per_article=200,
            planted_fraction=0.4, occurrences=4, seed=171))
        for articles in (5, 10, 20, 40)}

    def run():
        rows = []
        for articles, collection in collections.items():
            started = time.perf_counter()
            result = collection.search(QUERY)
            elapsed = time.perf_counter() - started
            rows.append([articles, collection.total_nodes,
                         len(result.per_document),
                         len(result), elapsed * 1000])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(capsys, "\n".join([
        banner("S8: collection fan-out vs number of articles"),
        format_table(["articles", "total nodes", "docs evaluated",
                      "answers", "ms"], rows),
        "",
        "expected shape: latency grows with the number of documents "
        "actually *evaluated* (those containing every term), not with "
        "raw collection size — the term-presence skip does the rest."]))
    # Skipping must be visible: evaluated docs < articles.
    for articles, _, evaluated, _, _ in rows:
        assert evaluated <= articles


def test_multistore_round_trip(benchmark, capsys):
    collection = generate_collection(InexSpec(
        articles=10, nodes_per_article=200, seed=173))

    def run():
        rows = []
        store = CollectionStore()
        started = time.perf_counter()
        store.add_collection(collection)
        rows.append(["shred 10 articles (2000 nodes)",
                     (time.perf_counter() - started) * 1000])
        started = time.perf_counter()
        hits = store.keyword_nodes("needle")
        rows.append(["collection-wide keyword SQL",
                     (time.perf_counter() - started) * 1000])
        started = time.perf_counter()
        loaded = store.load_collection()
        rows.append(["load whole collection back",
                     (time.perf_counter() - started) * 1000])
        store.close()
        assert loaded.names() == collection.names()
        return rows, len(hits)

    rows, hit_count = benchmark.pedantic(run, rounds=1, iterations=1)
    report(capsys, "\n".join([
        banner("S8: multi-document relational store"),
        format_table(["operation", "ms"], rows),
        "",
        f"one SQL query found {hit_count} keyword occurrences across "
        "all stored documents — the relational counterpart of the "
        "collection fan-out."]))


def test_bench_fanout_search(benchmark):
    collection = generate_collection(InexSpec(
        articles=10, nodes_per_article=150, seed=177))
    result = benchmark(collection.search, QUERY)
    assert result is not None


def test_bench_ranked_collection_search(benchmark):
    collection = generate_collection(InexSpec(
        articles=8, nodes_per_article=150, seed=179))
    ranked = benchmark(collection.ranked_search, QUERY, 5)
    assert isinstance(ranked, list)
