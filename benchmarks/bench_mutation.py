"""Experiment S17 — live mutation: ingest, commit, recovery, reads.

The crash-safe mutation layer buys durability with two fsync-bounded
file flips per commit, so the costs worth watching are (a) how much a
*batched* commit amortises that protocol over per-document commits,
(b) how fast recovery replays a committed WAL, and (c) what an
epoch-pinned consistent read costs over the plain in-memory
collection.  Facts land in ``BENCH_mutation.json`` at the repo root;
``mutation.batch_commit_speedup`` and ``mutation.read_overhead`` are
headline ratios watched by ``check_regression.py``.

Run ``pytest benchmarks/bench_mutation.py --benchmark-only`` for the
full experiment, or add ``--smoke`` for the tiny CI variant (shape
checks only; no performance assertions).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.bench.reporting import banner, format_table
from repro.collection.collection import DocumentCollection
from repro.collection.mutable import MutableDocumentCollection
from repro.core.query import Query
from repro.storage.mutation import MutableIndex
from repro.workloads.inexlike import InexSpec, generate_collection

from .util import report

BENCH_JSON = (Path(__file__).resolve().parent.parent
              / "BENCH_mutation.json")


def _record(section: str, payload: dict) -> None:
    """Merge one experiment's facts into BENCH_mutation.json."""
    data = {}
    if BENCH_JSON.exists():
        try:
            data = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
        except ValueError:
            data = {}
    data[section] = payload
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True)
                          + "\n", encoding="utf-8")


def _corpus(smoke: bool) -> dict:
    spec = (InexSpec(articles=8, nodes_per_article=80, seed=53)
            if smoke else
            InexSpec(articles=24, nodes_per_article=300, seed=53))
    collection = generate_collection(spec)
    return {name: collection.document(name)
            for name in collection.names()}


def test_ingest_commit_recovery(benchmark, capsys, smoke, tmp_path):
    docs = _corpus(smoke)
    names = sorted(docs)
    half = len(names) // 2
    seed = {n: docs[n] for n in names[:half]}
    incoming = names[half:]

    def run():
        # Per-document commits: one full WAL-fsync + two file flips
        # per document.
        single = MutableIndex.create(tmp_path / "single", dict(seed),
                                     shards=4)
        started = time.perf_counter()
        for name in incoming:
            single.add(docs[name], name)
        t_single = time.perf_counter() - started
        single.close()

        # Batched: the same documents, one commit at the end.
        batched = MutableIndex.create(tmp_path / "batched", dict(seed),
                                      shards=4)
        started = time.perf_counter()
        for name in incoming:
            batched.add(docs[name], name, commit=False)
        batched.commit()
        t_batched = time.perf_counter() - started
        batched.close()

        # Recovery replays the committed WAL prefix on open.
        started = time.perf_counter()
        recovered = MutableIndex.open(tmp_path / "batched")
        t_recover = time.perf_counter() - started
        replayed = recovered.recovery["wal_records_replayed"]
        visible = len(recovered)
        recovered.close()
        return t_single, t_batched, t_recover, replayed, visible

    t_single, t_batched, t_recover, replayed, visible = \
        benchmark.pedantic(run, rounds=1, iterations=1)

    # Correctness before speed: every ingested document recovered.
    assert visible == len(names)
    assert replayed == len(incoming)

    speedup = t_single / t_batched if t_batched > 0 else 0.0
    _record("mutation", {
        "documents_ingested": len(incoming),
        "per_doc_commit_ms": round(t_single * 1000, 3),
        "batched_commit_ms": round(t_batched * 1000, 3),
        "batch_commit_speedup": round(speedup, 6),
        "recovery_ms": round(t_recover * 1000, 3),
        "wal_records_replayed": replayed,
        "smoke": smoke,
    })
    report(capsys, "\n".join([
        banner("S17: WAL ingest, commit amortisation, recovery"),
        format_table(
            ["metric", "value"],
            [["documents ingested", len(incoming)],
             ["per-document commits (ms)", f"{t_single * 1000:.1f}"],
             ["one batched commit (ms)", f"{t_batched * 1000:.1f}"],
             ["batch commit speedup", f"{speedup:.2f}x"],
             ["recovery / reopen (ms)", f"{t_recover * 1000:.1f}"],
             ["WAL records replayed", replayed]]),
        "",
        "the commit protocol (WAL fsync + manifest flip + CURRENT "
        "flip) is per-commit, not per-document, so batching N "
        "documents under one commit pays it once."]))
    if not smoke:
        assert speedup >= 1.0, (
            f"batched commits came in {speedup:.2f}x — the protocol "
            f"overhead should amortise, not grow")


def test_epoch_pinned_read_overhead(benchmark, capsys, smoke,
                                    tmp_path):
    docs = _corpus(smoke)
    query = Query.of("needle")
    rounds = 3 if smoke else 10

    plain = DocumentCollection("plain")
    for name, doc in docs.items():
        plain.add(doc, name)
    mutable = MutableDocumentCollection.create(tmp_path / "idx", docs,
                                               shards=4)

    def run():
        # Warm both paths (index build / snapshot caches), then time.
        reference = plain.search(query)
        pinned = mutable.search(query)
        assert ([h.label() for h in pinned.hits]
                == [h.label() for h in reference.hits])

        started = time.perf_counter()
        for _ in range(rounds):
            plain.search(query)
        t_plain = time.perf_counter() - started

        started = time.perf_counter()
        for _ in range(rounds):
            mutable.search(query)
        t_pinned = time.perf_counter() - started
        return t_plain, t_pinned, len(reference.hits)

    t_plain, t_pinned, hits = benchmark.pedantic(run, rounds=1,
                                                 iterations=1)
    mutable.close()

    overhead = t_pinned / t_plain if t_plain > 0 else 0.0
    _record("reads", {
        "hits": hits,
        "rounds": rounds,
        "plain_ms": round(t_plain * 1000, 3),
        "epoch_pinned_ms": round(t_pinned * 1000, 3),
        "read_overhead": round(overhead, 6),
        "smoke": smoke,
    })
    report(capsys, "\n".join([
        banner("S17: epoch-pinned reads vs in-memory collection"),
        format_table(
            ["metric", "value"],
            [["hits per query", hits],
             ["plain collection (ms)", f"{t_plain * 1000:.1f}"],
             ["epoch-pinned (ms)", f"{t_pinned * 1000:.1f}"],
             ["read overhead", f"{overhead:.2f}x"]]),
        "",
        "an epoch pin is a refcount bump plus a merged base+delta "
        "view; the documents themselves are served from the same "
        "mmap pages either way."]))
