"""Experiment E1 — data-centric vs document-centric (§1's contrast).

The paper's introduction claims the smallest-subtree semantics "seems
logical enough in the realm of data-centric XML documents" but fails on
document-centric ones.  This bench makes the claim measurable:

* on a DBLP-like bibliography, the conventional answers (per-record
  subtrees) coincide with what the algebra's filtered answers offer —
  smallest-subtree is adequate;
* on the document-centric Figure 1 article, the algebra's answer set
  strictly extends the conventional answers with the self-contained
  unit the user wants.
"""

from __future__ import annotations

from repro.baselines.smallest import smallest_fragments
from repro.bench.reporting import banner, format_table
from repro.core.filters import HeightAtMost, SizeAtMost
from repro.core.query import Query
from repro.core.strategies import evaluate
from repro.workloads.datacentric import (BibliographySpec,
                                         generate_bibliography)
from repro.workloads.figure1 import build_figure1_document

from .util import report


def test_data_centric_conventional_is_adequate(benchmark, capsys):
    doc = generate_bibliography(BibliographySpec(records=80, seed=51))
    # Author-name + topic query: the classic data-centric lookup.
    query = Query.of("turing", "database",
                     predicate=SizeAtMost(6) & HeightAtMost(1))

    def run():
        algebra = evaluate(doc, query).fragments
        conventional = smallest_fragments(doc, list(query.terms))
        return algebra, conventional

    algebra, conventional = benchmark(run)
    # Conventional answers that fit the record-shaped filter (SLCAs
    # spanning several records fail it by design) must all reappear in
    # the algebraic answer set...
    convention_sets = {f.nodes for f in conventional
                       if query.predicate(f)}
    assert convention_sets <= {f.nodes for f in algebra}
    # ...and the *tightest* algebraic answer is a conventional one —
    # on schematic records the smallest-subtree semantics is adequate.
    smallest_algebra = sorted(algebra, key=lambda f: f.size)
    adequate = (smallest_algebra[0].nodes in convention_sets
                if convention_sets else not algebra)
    rows = [["bibliography (data-centric)", len(conventional),
             len(algebra), adequate]]

    fig1 = build_figure1_document()
    fig1_query = Query.of("xquery", "optimization",
                          predicate=SizeAtMost(3))
    fig1_algebra = evaluate(fig1, fig1_query).fragments
    fig1_conventional = smallest_fragments(fig1,
                                           list(fig1_query.terms))
    enlarged = [f for f in fig1_algebra
                if any(c.nodes < f.nodes for c in fig1_conventional)]
    rows.append(["figure1 article (document-centric)",
                 len(fig1_conventional), len(fig1_algebra),
                 not enlarged])

    report(capsys, "\n".join([
        banner("E1: where does smallest-subtree semantics suffice?"),
        format_table(
            ["corpus", "conventional answers", "algebra answers",
             "conventional adequate"], rows),
        "",
        "paper (§1): adequate for schematic data-centric records; on "
        "document-centric text the algebra's enlarged self-contained "
        "units are the ones users actually want."]))
    assert enlarged  # the document-centric gap must exist


def test_bench_bibliography_query(benchmark):
    doc = generate_bibliography(BibliographySpec(records=150, seed=53))
    query = Query.of("hopper", "retrieval",
                     predicate=SizeAtMost(6) & HeightAtMost(1))
    result = benchmark(evaluate, doc, query)
    assert result is not None
