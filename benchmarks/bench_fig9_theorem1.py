"""Experiment F9 — Figure 9 / Theorem 1: the iteration-bound proof,
verified empirically at scale.

Theorem 1 states that the fixed point of a fragment set F is reached
after exactly |⊖(F)| pairwise-join rounds.  The appendix proves it via
a case analysis (Figure 9); here we verify the claim over many random
keyword sets drawn from synthetic documents, and measure how often and
how much ⊖ shrinks realistic keyword sets.
"""

from __future__ import annotations

import random

from repro.bench.reporting import banner, format_table
from repro.core.fragment import Fragment
from repro.core.reduce import (fixed_point, iterate_pairwise,
                               reduction_count)
from repro.workloads.generator import DocumentSpec, generate_document

from .util import report


def _random_sets(doc, count, max_size, seed):
    rng = random.Random(seed)
    sets = []
    for _ in range(count):
        size = rng.randint(2, max_size)
        ids = rng.sample(range(doc.size), size)
        sets.append(frozenset(Fragment(doc, (i,)) for i in ids))
    return sets


def test_theorem1_holds_over_random_sets(benchmark, capsys):
    doc = generate_document(DocumentSpec(nodes=300, seed=31))
    sets = _random_sets(doc, count=40, max_size=6, seed=7)

    def run():
        checked = 0
        for frags in sets:
            k = reduction_count(frags)
            assert iterate_pairwise(frags, max(k, 1)) == \
                fixed_point(frags)
            checked += 1
        return checked

    checked = benchmark(run)
    assert checked == 40
    report(capsys, "\n".join([
        banner("F9/Theorem 1: ⋈_k(F) = F+ with k = |⊖(F)|"),
        f"  verified on {checked} random fragment sets over a "
        f"{doc.size}-node document — no counterexample.",
        "  paper: proof in the appendix (Figure 9); here verified "
        "empirically."]))


def test_reduction_statistics(benchmark, capsys):
    doc = generate_document(DocumentSpec(nodes=300, seed=33))

    def run():
        rows = []
        for size in (3, 5, 8, 12):
            sets = _random_sets(doc, count=15, max_size=size, seed=size)
            ks = [(len(s), reduction_count(s)) for s in sets]
            shrunk = sum(1 for n, k in ks if k < n)
            avg_rf = sum((n - k) / n for n, k in ks) / len(ks)
            rows.append([size, shrunk, len(ks), avg_rf])
        return rows

    rows = benchmark(run)
    report(capsys, format_table(
        ["max |F|", "sets shrunk by ⊖", "sets tested", "mean RF"],
        rows,
        title="F9: how often ⊖ reduces random keyword sets"))
