"""Helpers shared by the benchmark files."""

from __future__ import annotations


def report(capsys, text: str) -> None:
    """Print ``text`` directly to the terminal, bypassing pytest capture.

    Benchmarks run under ``pytest --benchmark-only``, which captures
    stdout of passing tests; the paper-shape tables must still reach the
    console (and the bench_output.txt tee).
    """
    with capsys.disabled():
        print()
        print(text)
