"""Experiment S12 — the cost of fault tolerance.

Two questions about ``repro.exec.resilience``, with the numbers
recorded in ``BENCH_resilience.json`` at the repo root:

1. **Overhead when nothing fails**: the resilient dispatch loop
   (deadline bookkeeping, per-chunk fault lookups, outcome tracking)
   must be close to free next to real query work — the clean-run
   pooled search is compared with and without an armed
   :class:`~repro.exec.resilience.RetryPolicy`.
2. **Recovery cost under injected faults**: one killed worker and one
   transiently flaky chunk, measuring how much wall clock a retry +
   pool respawn adds while results stay bit-identical to serial.

Run ``pytest benchmarks/bench_resilience.py --benchmark-only`` for the
full experiment, or add ``--smoke`` for the tiny CI variant (shape
checks only; no performance assertions).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench.reporting import banner, format_table
from repro.bench.runner import measure
from repro.core.filters import SizeAtMost
from repro.core.query import Query
from repro.exec import (FaultPlan, FaultRule, ParallelExecutor,
                        RetryPolicy)
from repro.workloads.inexlike import InexSpec, generate_collection

from .conftest import TERM_A, TERM_B
from .util import report

BENCH_JSON = (Path(__file__).resolve().parent.parent
              / "BENCH_resilience.json")

QUERY = Query.of(TERM_A, TERM_B, predicate=SizeAtMost(12))
FAST = RetryPolicy(backoff_s=0.01, jitter=0.0)


def _record(section: str, payload: dict, registry) -> None:
    """Merge one experiment's facts + metrics into the JSON report."""
    data = {}
    if BENCH_JSON.exists():
        try:
            data = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
        except ValueError:
            data = {}
    data[section] = payload
    data.setdefault("metrics", {})[section] = registry.to_json()
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True)
                          + "\n", encoding="utf-8")


def _hit_signature(result):
    return [(hit.document_name, tuple(sorted(hit.fragment.nodes)))
            for hit in result.hits]


def test_resilience_overhead_and_recovery(benchmark, capsys,
                                          bench_metrics, smoke):
    spec = (InexSpec(articles=6, nodes_per_article=200,
                     planted_fraction=1.0, occurrences=4,
                     clustering=0.6, seed=211)
            if smoke else
            InexSpec(articles=12, nodes_per_article=1500,
                     planted_fraction=1.0, occurrences=8,
                     clustering=0.6, seed=211))
    collection = generate_collection(spec)
    documents = {name: collection.document(name)
                 for name in collection.names()}
    repetitions = 1 if smoke else 3
    reference_hits = _hit_signature(collection.search(QUERY))

    def timed_pool(label, faults=None, policy=FAST):
        with ParallelExecutor(documents, workers=4, resilience=policy,
                              faults=faults) as pool:
            pool.search(QUERY)  # warm worker indexes off the clock
            timing = measure(
                label, lambda: pool.search(QUERY, faults=faults),
                repetitions=repetitions, registry=bench_metrics)
            report_after = pool.last_report
        assert _hit_signature(timing.value) == reference_hits
        return timing, report_after

    def run():
        clean, _ = timed_pool("clean")
        armed, _ = timed_pool(
            "armed", policy=RetryPolicy(timeout_s=60.0, backoff_s=0.01,
                                        jitter=0.0))
        killed, kill_report = timed_pool(
            "kill-worker", faults=FaultPlan(FaultRule.kill(chunk=0)))
        flaky, flaky_report = timed_pool(
            "flaky-chunk",
            faults=FaultPlan(FaultRule.flaky(chunk=0, times=1)))
        return clean, armed, killed, kill_report, flaky, flaky_report

    (clean, armed, killed, kill_report,
     flaky, flaky_report) = benchmark.pedantic(run, rounds=1,
                                               iterations=1)
    overhead = armed.seconds / clean.seconds
    rows = [
        ["clean (default policy)", clean.seconds * 1000, ""],
        ["clean (deadline armed)", armed.seconds * 1000,
         f"{overhead:.2f}x vs clean"],
        ["1 worker killed", killed.seconds * 1000,
         f"{kill_report.respawns} respawn(s)"],
        ["1 flaky chunk", flaky.seconds * 1000,
         f"{flaky_report.retries} retry(ies)"],
    ]
    report(capsys, "\n".join([
        banner(f"S12: fault-tolerance cost "
               f"({spec.articles} docs x {spec.nodes_per_article} "
               f"nodes, 4 workers, pushdown, size<=12)"),
        format_table(["case", "median ms", "note"], rows),
        "",
        "expected shape: the armed deadline is within noise of the "
        "clean run; a killed worker costs one pool respawn + one "
        "chunk re-dispatch; a flaky chunk costs one backoff + retry. "
        "Results are bit-identical to serial in every case."]))
    _record("resilience", {
        "smoke": smoke,
        "articles": spec.articles,
        "nodes_per_article": spec.nodes_per_article,
        "clean_seconds": clean.seconds,
        "armed_seconds": armed.seconds,
        "armed_overhead": overhead,
        "kill_seconds": killed.seconds,
        "kill_respawns": kill_report.respawns,
        "flaky_seconds": flaky.seconds,
        "flaky_retries": flaky_report.retries,
    }, bench_metrics)
    assert kill_report.crashes >= 1 and kill_report.respawns >= 1
    assert flaky_report.retries >= 1
    if not smoke:
        assert overhead < 1.5, (
            f"armed resilience should be near-free on clean runs, got "
            f"{overhead:.2f}x")
