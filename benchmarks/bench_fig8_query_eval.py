"""Experiment F8 — Figure 8: the full query evaluation example.

Figure 8 frames the paper's twin objectives over the example tree:
(a) the query {XQuery, optimization}, (b) the fragment of interest
⟨n16,n17,n18⟩ that must be generated, and (c) a potentially irrelevant
fragment (the 9-node root-spanning one) that must be excluded as early
as possible.  This bench verifies both objectives per strategy and
shows *when* the irrelevant fragment is discarded (late for brute
force, never materialised further under push-down).
"""

from __future__ import annotations

from repro.bench.reporting import banner, format_table
from repro.core.filters import SizeAtMost
from repro.core.fragment import Fragment
from repro.core.query import Query
from repro.core.strategies import Strategy, evaluate

from .util import report

QUERY = Query.of("xquery", "optimization", predicate=SizeAtMost(3))


def test_objectives_met_per_strategy(benchmark, figure1, capsys):
    target = Fragment(figure1, [16, 17, 18])
    irrelevant = Fragment(figure1, [0, 1, 14, 16, 17, 18, 79, 80, 81])

    def run():
        rows = []
        for strategy in Strategy:
            result = evaluate(figure1, QUERY, strategy=strategy)
            rows.append((strategy.value,
                         target in result.fragments,
                         irrelevant in result.fragments,
                         result.stats["fragment_joins"],
                         result.stats["fragments_discarded"]))
        return rows

    rows = benchmark(run)
    for _, has_target, has_irrelevant, _, _ in rows:
        assert has_target
        assert not has_irrelevant
    report(capsys, "\n".join([
        banner("F8: objectives — generate (b), exclude (c) early"),
        format_table(
            ["strategy", "target ⟨n16,n17,n18⟩ in answers",
             "irrelevant 9-node fragment in answers",
             "fragment joins", "discarded early"],
            [list(r) for r in rows]),
        "",
        "paper: every strategy meets both objectives; push-down "
        "discards doomed fragments before joining them."]))


def test_bench_objective_query_with_index(benchmark, figure1,
                                          figure1_index):
    result = benchmark(evaluate, figure1, QUERY, Strategy.PUSHDOWN,
                       figure1_index)
    assert len(result.fragments) == 4
