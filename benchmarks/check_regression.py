"""Compare fresh ``BENCH_*.json`` facts against committed baselines.

CI snapshots the committed bench facts before the smoke run, lets the
smoke benches overwrite them, then calls this script to compare the
two sets::

    python benchmarks/check_regression.py \
        --baseline-dir .bench-baseline --current-dir . --threshold 0.25

Only *headline ratios* are compared — dimensionless speedups/overheads
that are stable across machines — never raw wall-clock seconds, which
vary with the runner.  A headline regresses when it moves more than
``threshold`` in its bad direction (slower speedup, fatter overhead).
Metrics present on one side only are reported but never fail the
check, so new benches can land before their baseline is committed.

Exit status: 0 clean, 1 when any headline regressed, 2 on bad input.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: (file, dotted path, direction) — direction says which way is good:
#: ``higher`` for speedups, ``lower`` for overhead factors.
HEADLINES = [
    ("BENCH_parallel.json", "kernel.evaluate_speedup", "higher"),
    ("BENCH_parallel.json", "kernel.join_speedup", "higher"),
    ("BENCH_parallel.json", "parallel_scaling.speedup_at_4_workers",
     "higher"),
    ("BENCH_obs.json", "noop_overhead.vs_baseline.noop", "lower"),
    ("BENCH_obs.json", "noop_overhead.vs_baseline.traced", "lower"),
    ("BENCH_obs.json",
     "recorder_overhead.vs_recorder_off.recorder_on", "lower"),
    ("BENCH_obs.json",
     "recorder_overhead.vs_recorder_off.sampled", "lower"),
    ("BENCH_obs.json",
     "sampler_overhead.vs_sampler_off.sampler_on", "lower"),
    ("BENCH_resilience.json", "resilience.armed_overhead", "lower"),
    ("BENCH_guard.json", "guard.checkpoint_overhead", "lower"),
    ("BENCH_guard.json", "guard.abort_factor", "lower"),
    ("BENCH_shard.json", "shard.attach_speedup", "higher"),
    ("BENCH_shard.json", "rss.growth", "lower"),
    ("BENCH_streaming.json", "streaming.topk_vs_full", "lower"),
    ("BENCH_mutation.json", "mutation.batch_commit_speedup", "higher"),
    ("BENCH_mutation.json", "reads.read_overhead", "lower"),
]


def _lookup(doc: dict, dotted: str):
    node = doc
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node if isinstance(node, (int, float)) \
        and not isinstance(node, bool) else None


def _load(path: Path) -> dict:
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}


def check(baseline_dir: Path, current_dir: Path,
          threshold: float) -> int:
    """Print a comparison table; return the process exit code."""
    regressions = 0
    compared = 0
    for filename, dotted, direction in HEADLINES:
        baseline = _lookup(_load(baseline_dir / filename), dotted)
        current = _lookup(_load(current_dir / filename), dotted)
        label = f"{filename}:{dotted}"
        if baseline is None and current is None:
            continue
        if baseline is None:
            print(f"  new      {label} = {current:.4f} (no baseline)")
            continue
        if current is None:
            print(f"  missing  {label} (baseline {baseline:.4f}; "
                  f"bench did not run?)")
            continue
        compared += 1
        if direction == "higher":
            # A speedup: regression when it shrinks past the envelope.
            bad = current < baseline / (1.0 + threshold)
            change = baseline / current - 1.0 if current else float("inf")
        else:
            # An overhead factor: regression when it grows past it.
            bad = current > baseline * (1.0 + threshold)
            change = current / baseline - 1.0 if baseline else float("inf")
        verdict = "REGRESSED" if bad else "ok"
        print(f"  {verdict:9s}{label}: baseline {baseline:.4f} -> "
              f"current {current:.4f} ({change:+.1%} toward "
              f"{'slower' if direction == 'higher' else 'fatter'})")
        if bad:
            regressions += 1
    print(f"{compared} headline(s) compared, {regressions} regressed "
          f"(threshold {threshold:.0%})")
    return 1 if regressions else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline-dir", type=Path, required=True,
                        help="directory holding the committed "
                             "BENCH_*.json snapshots")
    parser.add_argument("--current-dir", type=Path, default=Path("."),
                        help="directory holding the fresh BENCH_*.json "
                             "(default: .)")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional slowdown before a "
                             "headline fails (default: 0.25)")
    args = parser.parse_args(argv)
    if not args.baseline_dir.is_dir():
        print(f"error: baseline dir {args.baseline_dir} not found",
              file=sys.stderr)
        return 2
    return check(args.baseline_dir, args.current_dir, args.threshold)


if __name__ == "__main__":
    sys.exit(main())
