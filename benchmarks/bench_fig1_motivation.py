"""Experiment F1 — the Figure 1 / §1 motivation.

The paper's opening argument: for {XQuery, optimization} on the Figure 1
document, the conventional smallest-subtree semantics answers with the
lone paragraph n17, while a user would prefer the self-contained
fragment ⟨n16,n17,n18⟩.  This bench shows the baseline missing the
target fragment and the algebra producing it, and times both.
"""

from __future__ import annotations

from repro.baselines.slca import slca_nodes
from repro.baselines.smallest import smallest_fragments
from repro.bench.reporting import banner, format_table
from repro.core.filters import SizeAtMost
from repro.core.fragment import Fragment
from repro.core.query import Query
from repro.core.strategies import evaluate

from .util import report

QUERY = Query.of("xquery", "optimization", predicate=SizeAtMost(3))


def test_baseline_misses_target_fragment(benchmark, figure1, capsys):
    fragments = benchmark(smallest_fragments, figure1,
                          ["xquery", "optimization"])
    target = Fragment(figure1, [16, 17, 18])
    assert fragments == [Fragment(figure1, [17])]
    assert target not in fragments

    algebra = evaluate(figure1, QUERY)
    assert target in algebra.fragments

    rows = [["smallest subtree (SLCA)",
             ", ".join(f.label() for f in fragments), "no"],
            ["algebraic model (this paper)",
             ", ".join(f.label()
                       for f in algebra.sorted_fragments()), "yes"]]
    report(capsys, "\n".join([
        banner("F1: motivation — who retrieves ⟨n16,n17,n18⟩?"),
        format_table(["semantics", "answers", "target retrieved"],
                     rows),
        "",
        "paper: conventional semantics returns only n17; the algebra "
        "additionally returns the self-contained fragment."]))


def test_bench_slca_speed(benchmark, figure1):
    nodes = benchmark(slca_nodes, figure1, ["xquery", "optimization"])
    assert nodes == [17]


def test_bench_algebra_speed(benchmark, figure1):
    result = benchmark(evaluate, figure1, QUERY)
    assert len(result.fragments) == 4
