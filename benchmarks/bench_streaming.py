"""Experiment S16 — streaming top-k vs full materialization.

The streaming pipeline's promise is that a ranked/limited query does
not pay for the full answer set: the top-k consumer raises its β size
bound adaptively and stops as soon as the k smallest answers are
proven.  On a Zipf-planted document whose answer set blows up into the
thousands, ``stream_top_k(k=10)`` must come in at or below 0.5x the
full-materialization wall time (the ISSUE 9 acceptance bar; in
practice it is orders of magnitude below), and the first streamed
answer must arrive before the materialized path would have returned
at all.  Facts are recorded in ``BENCH_streaming.json`` at the repo
root; ``streaming.topk_vs_full`` is a headline ratio watched by
``check_regression.py``.

Run ``pytest benchmarks/bench_streaming.py --benchmark-only`` for the
full experiment, or add ``--smoke`` for the tiny CI variant (shape
checks only; no performance assertions).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.bench.reporting import banner, format_table
from repro.core.filters import SizeAtMost
from repro.core.query import Query
from repro.core.strategies import evaluate
from repro.core.streaming import (fragment_order_key, stream_evaluate,
                                  stream_top_k)
from repro.workloads.inexlike import InexSpec, generate_collection

from .conftest import TERM_A, TERM_B, planted_document
from .util import report

BENCH_JSON = (Path(__file__).resolve().parent.parent
              / "BENCH_streaming.json")

K = 10


def _record(section: str, payload: dict) -> None:
    """Merge one experiment's facts into BENCH_streaming.json."""
    data = {}
    if BENCH_JSON.exists():
        try:
            data = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
        except ValueError:
            data = {}
    data[section] = payload
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True)
                          + "\n", encoding="utf-8")


def test_topk_vs_full_materialization(benchmark, capsys, smoke):
    if smoke:
        # Still a real blow-up (hundred-answer scale): tiny corpora
        # make the ratio meaningless because constant per-query
        # overhead dominates both sides.
        doc = planted_document(nodes=1200, occ_a=8, occ_b=8,
                               clustering=0.8, seed=427)
        query = Query.of(TERM_A, TERM_B, predicate=SizeAtMost(10))
    else:
        doc = planted_document(nodes=3000, occ_a=12, occ_b=12,
                               clustering=0.8, seed=427)
        query = Query.of(TERM_A, TERM_B, predicate=SizeAtMost(14))

    def run():
        started = time.perf_counter()
        full = evaluate(doc, query)
        t_full = time.perf_counter() - started
        reference = sorted(full.fragments, key=fragment_order_key)[:K]

        started = time.perf_counter()
        top = stream_top_k(doc, query, K)
        t_topk = time.perf_counter() - started

        started = time.perf_counter()
        stream = stream_evaluate(doc, query)
        first = next(iter(stream), None)
        t_first = time.perf_counter() - started
        stream.close()
        return (len(full.fragments), reference, top, t_full, t_topk,
                t_first, first)

    (answers, reference, top, t_full, t_topk, t_first, first) = \
        benchmark.pedantic(run, rounds=1, iterations=1)

    # Correctness before speed: the early-terminated consumer must
    # return exactly the k smallest answers of the full set.
    assert top == reference
    assert first is not None

    ratio = t_topk / t_full if t_full > 0 else 0.0
    _record("streaming", {
        "answers": answers,
        "k": K,
        "full_ms": round(t_full * 1000, 3),
        "topk_ms": round(t_topk * 1000, 3),
        "time_to_first_result_ms": round(t_first * 1000, 3),
        "topk_vs_full": round(ratio, 6),
        "smoke": smoke,
    })
    report(capsys, "\n".join([
        banner("S16: streaming top-k vs full materialization"),
        format_table(
            ["metric", "value"],
            [["answer set size", answers],
             ["full materialization (ms)", f"{t_full * 1000:.1f}"],
             [f"stream_top_k k={K} (ms)", f"{t_topk * 1000:.1f}"],
             ["time to first result (ms)", f"{t_first * 1000:.1f}"],
             ["top-k / full ratio", f"{ratio:.4f}"]]),
        "",
        "the β ladder stops at the first round holding k answers, so "
        "the blow-up region beyond β is never materialized."]))
    if not smoke:
        assert ratio <= 0.5, (
            f"streaming top-k took {ratio:.2f}x the full "
            f"materialization; the acceptance bar is 0.5x")


def test_collection_stream_first_hit(benchmark, capsys, smoke):
    spec = (InexSpec(articles=4, nodes_per_article=80,
                     planted_fraction=1.0, occurrences=3, seed=29)
            if smoke else
            InexSpec(articles=12, nodes_per_article=400,
                     planted_fraction=1.0, occurrences=6, seed=29))
    collection = generate_collection(spec)
    query = Query.of(TERM_A, TERM_B, predicate=SizeAtMost(8))

    def run():
        started = time.perf_counter()
        full = collection.search(query)
        t_full = time.perf_counter() - started

        started = time.perf_counter()
        hits = iter(collection.search(query, stream=True, limit=K))
        first = next(hits, None)
        t_first = time.perf_counter() - started
        page = [first] + list(hits) if first is not None else []

        reference = full.hits[:K]
        return t_full, t_first, page, reference, len(full.hits)

    t_full, t_first, page, reference, total = benchmark.pedantic(
        run, rounds=1, iterations=1)

    def sig(hits):
        return [(h.document_name, tuple(sorted(h.fragment.nodes)))
                for h in hits]

    assert sig(page) == sig(reference)
    _record("collection_stream", {
        "total_hits": total,
        "limit": K,
        "full_search_ms": round(t_full * 1000, 3),
        "time_to_first_hit_ms": round(t_first * 1000, 3),
        "smoke": smoke,
    })
    report(capsys, "\n".join([
        banner("S16: collection streaming, time to first hit"),
        format_table(
            ["metric", "value"],
            [["total hits (materialized)", total],
             ["full search (ms)", f"{t_full * 1000:.1f}"],
             ["first streamed hit (ms)", f"{t_first * 1000:.1f}"]]),
        "",
        "limit-bounded streaming returns the identical first page "
        "without scoring or sorting the blow-up tail."]))
