"""Experiment F2 — Figure 2: keyword-split variations.

Figure 2 illustrates that two query keywords can be split across target
subtrees in many ways (same node, sibling leaves, ancestor/descendant,
different branches, …) and that there is "no prior knowledge of how
keywords would be split".  This bench constructs one document per split
shape and verifies the algebra retrieves the intended subtree in every
case — the point the smallest-subtree semantics fails on.
"""

from __future__ import annotations

from repro.baselines.smallest import smallest_fragments
from repro.bench.reporting import banner, format_table
from repro.core.filters import SizeAtMost
from repro.core.query import Query
from repro.core.strategies import evaluate
from repro.xmltree.builder import DocumentBuilder

from .util import report


def _split_cases():
    """(name, document, expected answer node-set) per Figure 2 shape."""
    cases = []

    # 1. Both keywords in one node.
    b = DocumentBuilder(name="same-node")
    root = b.add_root("sec")
    b.add_child(root, "par", "k1 k2 together")
    cases.append(("same node", b.build(), frozenset([1])))

    # 2. Keywords in sibling leaves.
    b = DocumentBuilder(name="siblings")
    root = b.add_root("sec")
    b.add_child(root, "par", "k1 here")
    b.add_child(root, "par", "k2 here")
    cases.append(("sibling leaves", b.build(), frozenset([0, 1, 2])))

    # 3. Ancestor / descendant.
    b = DocumentBuilder(name="ancestor")
    root = b.add_root("sec", "k1 in the heading")
    child = b.add_child(root, "sub")
    b.add_child(child, "par", "k2 in a paragraph")
    cases.append(("ancestor/descendant", b.build(),
                  frozenset([0, 1, 2])))

    # 4. Different branches (deep split).
    b = DocumentBuilder(name="branches")
    root = b.add_root("sec")
    left = b.add_child(root, "sub")
    b.add_child(left, "par", "k1 left branch")
    right = b.add_child(root, "sub")
    b.add_child(right, "par", "k2 right branch")
    cases.append(("different branches", b.build(),
                  frozenset([0, 1, 2, 3, 4])))

    # 5. One keyword repeated near the other.
    b = DocumentBuilder(name="repeat")
    root = b.add_root("sec")
    mid = b.add_child(root, "sub")
    b.add_child(mid, "par", "k1 and k2 mixed")
    b.add_child(mid, "par", "k2 again")
    cases.append(("repeated keyword", b.build(), frozenset([2])))

    return cases


def _retrieved(document, expected):
    result = evaluate(document,
                      Query.of("k1", "k2", predicate=SizeAtMost(5)))
    return expected in {f.nodes for f in result.fragments}


def test_all_split_variations_retrieved(benchmark, capsys):
    cases = _split_cases()

    def run():
        return [(name, _retrieved(doc, expected))
                for name, doc, expected in cases]

    outcomes = benchmark(run)
    assert all(ok for _, ok in outcomes)

    rows = []
    for name, doc, expected in cases:
        baseline = {f.nodes for f in smallest_fragments(doc,
                                                        ["k1", "k2"])}
        rows.append([name, _retrieved(doc, expected),
                     expected in baseline])
    report(capsys, "\n".join([
        banner("F2: keyword-split variations (Figure 2)"),
        format_table(["split shape", "algebra finds target",
                      "smallest-subtree finds target"], rows),
        "",
        "paper: the algebra must retrieve the target subtree under "
        "every split; the conventional semantics misses enlarged "
        "units."]))
