"""Experiment F3 — Figure 3: the three join operations.

Reproduces the operator examples on Figure 3's nine-node tree:

* (b) fragment join: ⟨n4,n5⟩ ⋈ ⟨n7,n9⟩ = ⟨n3,n4,n5,n6,n7,n9⟩;
* (c) pairwise fragment join of F1 = {f11,f12}, F2 = {f21,f22};
* (d) powerset fragment join producing strictly more fragments than the
  pairwise variant, with duplicates collapsing.

Each operation is also micro-benchmarked.
"""

from __future__ import annotations

from repro.bench.reporting import banner, format_table
from repro.core.algebra import fragment_join, pairwise_join, powerset_join

from .util import report


def _sets(figure3):
    F1 = figure3.fragment_set([["n4", "n5"], ["n2"]])
    F2 = figure3.fragment_set([["n7", "n9"], ["n8"]])
    return F1, F2


def test_fragment_join_example(benchmark, figure3, capsys):
    f11 = figure3.fragment("n4", "n5")
    f21 = figure3.fragment("n7", "n9")
    joined = benchmark(fragment_join, f11, f21)
    assert figure3.labels_of(joined) == {"n3", "n4", "n5", "n6", "n7",
                                         "n9"}
    report(capsys, "\n".join([
        banner("F3(b): fragment join"),
        f"  ⟨n4,n5⟩ ⋈ ⟨n7,n9⟩ = "
        f"⟨{','.join(sorted(figure3.labels_of(joined)))}⟩",
        "  paper: ⟨n3,n4,n5,n6,n7,n9⟩"]))


def test_pairwise_join_example(benchmark, figure3, capsys):
    F1, F2 = _sets(figure3)
    result = benchmark(pairwise_join, F1, F2)
    assert len(result) <= 4  # 2x2 pairs, deduplicated
    rows = [[", ".join(sorted(figure3.labels_of(f)))] for f in
            sorted(result, key=lambda f: sorted(f.nodes))]
    report(capsys, "\n".join([
        banner("F3(c): pairwise fragment join F1 ⋈ F2"),
        format_table(["fragment"], rows),
        f"  paper: one fragment per pair "
        f"(4 pairs → {len(result)} distinct)"]))


def test_powerset_join_example(benchmark, figure3, capsys):
    F1, F2 = _sets(figure3)
    power = benchmark(powerset_join, F1, F2)
    pairs = pairwise_join(F1, F2)
    assert pairs <= power
    assert len(power) >= len(pairs)
    report(capsys, "\n".join([
        banner("F3(d): powerset fragment join F1 ⋈* F2"),
        format_table(
            ["join variant", "fragments produced"],
            [["pairwise (c)", len(pairs)], ["powerset (d)", len(power)]]),
        "  paper: powerset join produces more fragments than pairwise; "
        "duplicates collapse by the algebraic laws."]))
