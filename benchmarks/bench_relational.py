"""Experiment S4 — the relational implementation (paper ref [13], §7).

The conclusions claim the model "can be easily implemented on top of an
existing relational database".  This bench shreds documents into
sqlite3, verifies the relational engine returns byte-identical answers,
and measures the storage layer: shredding throughput, SQL keyword
selection vs in-memory index lookup, and end-to-end query latency in
both engines.
"""

from __future__ import annotations

import time

from repro.bench.reporting import banner, format_table
from repro.core.filters import SizeAtMost
from repro.core.query import Query
from repro.core.strategies import Strategy, evaluate
from repro.index.inverted import InvertedIndex
from repro.storage.engine import RelationalQueryEngine
from repro.storage.relational import RelationalStore

from .conftest import TERM_A, TERM_B, planted_document
from .util import report

QUERY = Query.of(TERM_A, TERM_B, predicate=SizeAtMost(6))


def test_relational_round_trip_identical_answers(benchmark, capsys):
    doc = planted_document(nodes=700, occ_a=5, occ_b=6, seed=111)
    store = RelationalStore()
    store.save(doc)
    engine = RelationalQueryEngine(store)

    def run():
        return engine.evaluate(QUERY)

    relational = benchmark(run)
    in_memory = evaluate(doc, QUERY)
    assert {f.nodes for f in relational.fragments} == \
        {f.nodes for f in in_memory.fragments}
    report(capsys, "\n".join([
        banner("S4: relational engine correctness"),
        f"  in-memory answers:  {len(in_memory.fragments)}",
        f"  relational answers: {len(relational.fragments)}",
        "  identical node sets: yes",
        "  paper (§7): the model can be implemented on top of a "
        "relational database [13]."]))
    store.close()


def test_storage_layer_costs(benchmark, capsys):
    doc = planted_document(nodes=2000, occ_a=8, occ_b=8, seed=113)

    def run():
        rows = []
        store = RelationalStore()
        started = time.perf_counter()
        store.save(doc)
        rows.append(["shred 2000 nodes into sqlite3",
                     (time.perf_counter() - started) * 1000])

        started = time.perf_counter()
        loaded = store.load()
        rows.append(["load document back",
                     (time.perf_counter() - started) * 1000])
        assert loaded.size == doc.size

        started = time.perf_counter()
        for _ in range(100):
            store.keyword_nodes(TERM_A)
        rows.append(["100 keyword selections (SQL)",
                     (time.perf_counter() - started) * 1000])

        index = InvertedIndex(doc)
        started = time.perf_counter()
        for _ in range(100):
            index.postings(TERM_A)
        rows.append(["100 keyword selections (in-memory index)",
                     (time.perf_counter() - started) * 1000])
        store.close()
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(capsys, "\n".join([
        banner("S4: storage layer costs"),
        format_table(["operation", "time ms"], rows),
        "",
        "expected shape: SQL keyword selection costs more per lookup "
        "than the in-memory index but stays in the same practical "
        "range; shredding is a one-time cost."]))


def test_all_sql_join(benchmark, capsys):
    """σ_{size<=β}(F1 ⋈ F2) as ONE SQL statement vs in-memory."""
    from repro.core.algebra import pairwise_join
    from repro.core.filters import select
    from repro.core.query import keyword_fragments
    from repro.storage.sqlalgebra import SqlAlgebra

    doc = planted_document(nodes=600, occ_a=5, occ_b=5, seed=117)
    store = RelationalStore()
    store.save(doc)
    algebra = SqlAlgebra(store)

    sql_result = benchmark(algebra.filtered_pairwise_join,
                           TERM_A, TERM_B, 6)
    started = time.perf_counter()
    F1 = keyword_fragments(doc, TERM_A)
    F2 = keyword_fragments(doc, TERM_B)
    mem = select(SizeAtMost(6), pairwise_join(F1, F2))
    mem_ms = (time.perf_counter() - started) * 1000
    started = time.perf_counter()
    algebra.filtered_pairwise_join(TERM_A, TERM_B, 6)
    sql_ms = (time.perf_counter() - started) * 1000

    assert sql_result == frozenset(f.nodes for f in mem)
    report(capsys, "\n".join([
        banner("S4: the whole σ(F1 ⋈ F2) as one SQL statement "
               "(ref [13])"),
        format_table(
            ["engine", "fragments", "ms"],
            [["recursive-CTE SQL", len(sql_result), sql_ms],
             ["in-memory algebra", len(mem), mem_ms]]),
        "",
        "identical fragment sets; the size filter runs as HAVING "
        "inside the database — selection pushed below the join at the "
        "storage layer."]))
    store.close()


def test_bench_sql_keyword_selection(benchmark, medium_doc):
    store = RelationalStore()
    store.save(medium_doc)
    try:
        nodes = benchmark(store.keyword_nodes, TERM_A)
        assert nodes
    finally:
        store.close()


def test_bench_relational_query(benchmark, medium_doc):
    store = RelationalStore()
    store.save(medium_doc)
    try:
        engine = RelationalQueryEngine(store)
        result = benchmark(engine.evaluate, QUERY,
                           Strategy.PUSHDOWN)
        assert result is not None
    finally:
        store.close()


def test_bench_recursive_cte_root_path(benchmark, medium_doc):
    store = RelationalStore()
    store.save(medium_doc)
    try:
        deepest = max(medium_doc.node_ids(), key=medium_doc.depth)
        path = benchmark(store.root_path_sql, deepest)
        assert path[-1] == medium_doc.root
    finally:
        store.close()
