"""Experiment S9 — join memo cache ablation.

DESIGN.md calls out the per-document join memo cache as a
performance-critical choice; this bench quantifies it: the same query
workload with and without the cache, reporting computed joins vs cache
hits and wall time, plus the cross-query reuse a shared cache enables.
"""

from __future__ import annotations

import time

from repro.bench.reporting import banner, format_table
from repro.core.algebra import JoinCache
from repro.core.filters import SizeAtMost
from repro.core.query import Query
from repro.core.strategies import Strategy, evaluate

from .conftest import TERM_A, TERM_B, planted_document
from .util import report

QUERY = Query.of(TERM_A, TERM_B, predicate=SizeAtMost(8))


def test_cache_within_one_query(benchmark, capsys):
    doc = planted_document(nodes=900, occ_a=7, occ_b=7,
                           clustering=0.7, seed=191)

    def run():
        rows = []
        for label, cache in (("no cache", None),
                             ("memo cache", JoinCache())):
            started = time.perf_counter()
            result = evaluate(doc, QUERY,
                              strategy=Strategy.SET_REDUCTION,
                              cache=cache)
            elapsed = time.perf_counter() - started
            rows.append([label, result.stats["fragment_joins"],
                         result.stats["join_cache_hits"],
                         elapsed * 1000])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(capsys, "\n".join([
        banner("S9: join memo cache, single query"),
        format_table(["configuration", "joins computed", "cache hits",
                      "ms"], rows),
        "",
        "set reduction re-joins the same pairs across ⊖ and the "
        "iteration rounds; the memo turns those into hits."]))
    assert rows[1][1] <= rows[0][1]


def test_cache_across_queries(benchmark, capsys):
    doc = planted_document(nodes=900, occ_a=6, occ_b=6,
                           clustering=0.5, seed=193)
    betas = (4, 6, 8, 10)

    def run():
        shared = JoinCache()
        reused_hits = 0
        cold_joins = 0
        for beta in betas:
            query = Query.of(TERM_A, TERM_B,
                             predicate=SizeAtMost(beta))
            result = evaluate(doc, query, strategy=Strategy.PUSHDOWN,
                              cache=shared)
            reused_hits += result.stats["join_cache_hits"]
            cold = evaluate(doc, query, strategy=Strategy.PUSHDOWN)
            cold_joins += cold.stats["fragment_joins"]
        return reused_hits, cold_joins, len(shared)

    reused_hits, cold_joins, cache_size = benchmark.pedantic(
        run, rounds=1, iterations=1)
    report(capsys, "\n".join([
        banner("S9: shared cache across a query session"),
        format_table(
            ["metric", "value"],
            [["joins computed without sharing", cold_joins],
             ["hits served by the shared cache", reused_hits],
             ["entries in the cache afterwards", cache_size]]),
        "",
        "a session re-running related queries (e.g. the top-k β "
        "ladder) re-derives most joins from the memo."]))
    assert reused_hits > 0


def test_bench_cached_query(benchmark, medium_doc):
    cache = JoinCache()
    evaluate(medium_doc, QUERY, cache=cache)  # warm
    result = benchmark(evaluate, medium_doc, QUERY, Strategy.PUSHDOWN,
                       None, cache)
    assert result is not None


def test_bench_uncached_query(benchmark, medium_doc):
    result = benchmark(evaluate, medium_doc, QUERY, Strategy.PUSHDOWN)
    assert result is not None
