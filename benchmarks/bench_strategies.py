"""Experiment S1 — the strategy comparison the paper proposes (§4).

§4.1 says the brute-force strategy "will provide the basis for
performance comparison with other available alternative strategies";
this bench runs that comparison: wall time and join counts for the
three strategies across (a) keyword selectivity (|Fi|) and (b) document
size.

Expected shape (paper's analysis):
* brute force explodes exponentially in |Fi| and is hopeless beyond
  toy selectivities;
* set reduction scales polynomially;
* push-down is fastest whenever the filter is selective and never
  returns different answers.
"""

from __future__ import annotations

import time

from repro.bench.reporting import banner, format_table
from repro.bench.runner import measure
from repro.core.filters import SizeAtMost
from repro.core.query import Query
from repro.core.strategies import Strategy, evaluate

from .conftest import TERM_A, TERM_B, planted_document
from .util import report

QUERY = Query.of(TERM_A, TERM_B, predicate=SizeAtMost(6))


def _measure(doc, strategy, registry=None):
    """Median-of-one measurement carrying the operation counters."""
    outcome = measure(strategy.value,
                      lambda: evaluate(doc, QUERY, strategy=strategy),
                      repetitions=1, registry=registry)
    return outcome.seconds, outcome.value


def test_selectivity_sweep(benchmark, capsys, bench_metrics):
    docs = {occ: planted_document(nodes=600, occ_a=occ, occ_b=occ,
                                  clustering=0.5, seed=60 + occ)
            for occ in (2, 4, 6, 8)}

    def run():
        rows = []
        for occ, doc in docs.items():
            cells = [occ]
            answers = None
            for strategy in (Strategy.BRUTE_FORCE,
                             Strategy.SET_REDUCTION,
                             Strategy.PUSHDOWN):
                elapsed, result = _measure(doc, strategy,
                                           registry=bench_metrics)
                cells.append(elapsed * 1000)
                cells.append(result.stats["fragment_joins"])
                if answers is None:
                    answers = result.fragments
                else:
                    assert result.fragments == answers
            rows.append(cells)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    from repro.bench.plots import log_bar_chart
    report(capsys, "\n".join([
        banner("S1(a): strategy comparison vs keyword selectivity "
               "(600-node document, size<=6)"),
        format_table(
            ["|Fi|", "brute ms", "brute joins", "reduce ms",
             "reduce joins", "pushdown ms", "pushdown joins"], rows),
        "",
        log_bar_chart(
            [f"{name} |Fi|={r[0]}"
             for r in rows for name in ("brute ", "pushdn")],
            [value
             for r in rows for value in (r[2], r[6])],
            width=36, title="fragment joins (log scale):"),
        "",
        "expected shape: brute-force joins grow ~2^|Fi|; push-down "
        "stays flat and wins everywhere."]))
    # The headline claim: at the largest selectivity push-down does
    # strictly less join work than brute force.
    last = rows[-1]
    assert last[6] < last[2]


def test_document_size_sweep(benchmark, capsys):
    docs = {nodes: planted_document(nodes=nodes, occ_a=5, occ_b=5,
                                    clustering=0.5, seed=80)
            for nodes in (250, 500, 1000, 2000)}

    def run():
        rows = []
        for nodes, doc in docs.items():
            cells = [nodes]
            for strategy in (Strategy.BRUTE_FORCE,
                             Strategy.SET_REDUCTION,
                             Strategy.PUSHDOWN):
                elapsed, result = _measure(doc, strategy)
                cells.append(elapsed * 1000)
            rows.append(cells)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(capsys, "\n".join([
        banner("S1(b): strategy comparison vs document size "
               "(|Fi| = 5, size<=6)"),
        format_table(["nodes", "brute ms", "reduce ms", "pushdown ms"],
                     rows),
        "",
        "expected shape: document size affects join *cost* (deeper "
        "paths) but selectivity dominates; ordering is stable."]))


def test_strategy_work_table(benchmark, capsys, medium_doc,
                             bench_metrics):
    """Median wall time next to logical-work counters, per strategy."""
    from repro.bench.runner import compare

    def run():
        return compare(
            [(strategy.value,
              lambda s=strategy: evaluate(medium_doc, QUERY, strategy=s))
             for strategy in (Strategy.BRUTE_FORCE,
                              Strategy.SET_REDUCTION,
                              Strategy.SEMI_NAIVE,
                              Strategy.PUSHDOWN)],
            repetitions=3, registry=bench_metrics)

    comparison = benchmark.pedantic(run, rounds=1, iterations=1)
    answers = {frozenset(m.value.fragments)
               for m in comparison.measurements}
    assert len(answers) == 1  # Theorems 2 and 3: identical answer sets
    report(capsys, "\n".join([
        banner("S1(c): wall time and logical work per strategy "
               "(1500-node document, size<=6)"),
        comparison.work_table(),
        "",
        "the counters are the paper's quantities: push-down wins by "
        "doing fewer joins and discarding doomed fragments early."]))


def test_bench_pushdown_medium(benchmark, medium_doc, medium_index):
    result = benchmark(evaluate, medium_doc, QUERY, Strategy.PUSHDOWN,
                       medium_index)
    assert result.fragments is not None


def test_bench_set_reduction_medium(benchmark, medium_doc, medium_index):
    result = benchmark(evaluate, medium_doc, QUERY,
                       Strategy.SET_REDUCTION, medium_index)
    assert result.fragments is not None
