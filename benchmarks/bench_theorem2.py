"""Experiment S5 — Theorem 2: the powerset-join rewrite.

``F1 ⋈* F2 = F1+ ⋈ F2+``.  The left side enumerates
(2^|F1|−1)(2^|F2|−1) subset pairs; the right side computes two fixed
points and one pairwise join.  This bench verifies the equality on
real keyword sets and measures the cost gap as selectivity grows — the
paper's §3.1 argument that the rewrite makes the operation
implementable.
"""

from __future__ import annotations

import time

from repro.bench.reporting import banner, format_table
from repro.core.algebra import pairwise_join, powerset_join
from repro.core.query import keyword_fragments
from repro.core.reduce import fixed_point, fixed_point_bounded
from repro.core.stats import OperationStats

from .conftest import TERM_A, TERM_B, planted_document
from .util import report


def _keyword_sets(occ, seed):
    doc = planted_document(nodes=500, occ_a=occ, occ_b=occ, seed=seed)
    return (keyword_fragments(doc, TERM_A),
            keyword_fragments(doc, TERM_B))


def test_theorem2_equality(benchmark, capsys):
    F1, F2 = _keyword_sets(occ=4, seed=121)

    def run():
        return powerset_join(F1, F2), \
            pairwise_join(fixed_point_bounded(F1),
                          fixed_point_bounded(F2))

    direct, rewritten = benchmark(run)
    assert direct == rewritten
    report(capsys, "\n".join([
        banner("S5/Theorem 2: F1 ⋈* F2 = F1+ ⋈ F2+"),
        f"  |F1| = {len(F1)}, |F2| = {len(F2)}",
        f"  direct enumeration: {len(direct)} fragments",
        f"  fixed-point rewrite: {len(rewritten)} fragments",
        "  equal: yes"]))


def test_cost_gap_vs_selectivity(benchmark, capsys):
    def run():
        rows = []
        for occ in (2, 4, 6, 8):
            F1, F2 = _keyword_sets(occ=occ, seed=120 + occ)
            naive_stats = OperationStats()
            started = time.perf_counter()
            direct = powerset_join(F1, F2, stats=naive_stats)
            naive_time = time.perf_counter() - started

            rewrite_stats = OperationStats()
            started = time.perf_counter()
            rewritten = pairwise_join(
                fixed_point(F1, stats=rewrite_stats),
                fixed_point(F2, stats=rewrite_stats),
                stats=rewrite_stats)
            rewrite_time = time.perf_counter() - started
            assert direct == rewritten
            rows.append([occ, naive_stats.fragment_joins,
                         naive_time * 1000,
                         rewrite_stats.fragment_joins,
                         rewrite_time * 1000])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(capsys, "\n".join([
        banner("S5: powerset enumeration vs Theorem-2 rewrite"),
        format_table(
            ["|Fi|", "enum joins", "enum ms", "rewrite joins",
             "rewrite ms"], rows),
        "",
        "expected shape: enumeration joins grow exponentially in |Fi| "
        "while the rewrite grows with the (much smaller) fixed-point "
        "size; identical outputs throughout."]))
    assert rows[-1][3] < rows[-1][1]


def test_bench_powerset_enumeration(benchmark):
    F1, F2 = _keyword_sets(occ=5, seed=127)
    result = benchmark(powerset_join, F1, F2)
    assert result


def test_bench_fixed_point_rewrite(benchmark):
    F1, F2 = _keyword_sets(occ=5, seed=127)

    def run():
        return pairwise_join(fixed_point_bounded(F1),
                             fixed_point_bounded(F2))

    result = benchmark(run)
    assert result == powerset_join(F1, F2)
