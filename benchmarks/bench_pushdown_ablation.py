"""Experiment S6 — Theorem-3 push-down ablation.

Sweeps the size-filter bound β with push-down on and off, holding
everything else fixed.  Theorem 3 guarantees identical answers; the
paper's claim is that the benefit of pushing grows as the filter grows
more selective (small β prunes almost everything before it is joined).
Also ablates the bounded fixed point (Theorem 1) against semi-naive
iteration — the two design choices DESIGN.md calls out.
"""

from __future__ import annotations

import time

from repro.bench.reporting import banner, format_table
from repro.core.filters import SizeAtMost
from repro.core.query import Query
from repro.core.strategies import Strategy, evaluate

from .conftest import TERM_A, TERM_B, planted_document
from .util import report


def test_beta_sweep(benchmark, capsys):
    doc = planted_document(nodes=800, occ_a=6, occ_b=6,
                           clustering=0.5, seed=131)

    def run():
        rows = []
        for beta in (2, 4, 8, 16, 32):
            query = Query.of(TERM_A, TERM_B,
                             predicate=SizeAtMost(beta))
            # SEMI_NAIVE is PUSHDOWN minus the Theorem-3 pruning (same
            # semi-naive fixed-point machinery), isolating the effect.
            off = evaluate(doc, query, strategy=Strategy.SEMI_NAIVE)
            on = evaluate(doc, query, strategy=Strategy.PUSHDOWN)
            assert on.fragments == off.fragments
            rows.append([beta, len(on.fragments),
                         off.stats["fragment_joins"],
                         on.stats["fragment_joins"],
                         off.stats["fragment_joins"]
                         / max(1, on.stats["fragment_joins"])])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(capsys, "\n".join([
        banner("S6: push-down ablation — join work vs filter bound β"),
        format_table(
            ["β (size<=β)", "answers", "joins (pushdown off)",
             "joins (pushdown on)", "saving factor"], rows),
        "",
        "expected shape: identical answers at every β (Theorem 3); "
        "the saving factor is largest for small β and decays towards "
        "1 as the filter stops pruning."]))
    assert rows[0][4] >= rows[-1][4]


def test_fixed_point_mode_ablation(benchmark, capsys):
    doc = planted_document(nodes=800, occ_a=7, occ_b=7,
                           clustering=0.8, seed=137)
    query = Query.of(TERM_A, TERM_B, predicate=SizeAtMost(8))

    def run():
        rows = []
        for strategy, label in (
                (Strategy.SEMI_NAIVE,
                 "semi-naive (fixed point checking)"),
                (Strategy.SET_REDUCTION,
                 "Theorem-1 bounded (pays for ⊖)")):
            started = time.perf_counter()
            result = evaluate(doc, query, strategy=strategy)
            elapsed = time.perf_counter() - started
            rows.append([label, elapsed * 1000,
                         result.stats["fragment_joins"],
                         result.stats["subset_checks"],
                         len(result.fragments)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    assert rows[0][4] == rows[1][4]
    report(capsys, "\n".join([
        banner("S6: fixed-point computation ablation (clustered "
               "keywords, RF high)"),
        format_table(
            ["method", "time ms", "fragment joins", "subset checks",
             "answers"], rows),
        "",
        "paper (§3.1.4/§5): the bounded mode buys freedom from fixed-"
        "point checking at the price of computing ⊖ — worthwhile only "
        "when RF is large; this run makes the trade explicit."]))


def test_bench_pushdown_on(benchmark, medium_doc):
    query = Query.of(TERM_A, TERM_B, predicate=SizeAtMost(4))
    result = benchmark(evaluate, medium_doc, query, Strategy.PUSHDOWN)
    assert result is not None


def test_bench_pushdown_off(benchmark, medium_doc):
    query = Query.of(TERM_A, TERM_B, predicate=SizeAtMost(4))
    result = benchmark(evaluate, medium_doc, query,
                       Strategy.SET_REDUCTION)
    assert result is not None
