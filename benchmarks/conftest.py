"""Shared fixtures for the benchmark harness.

Documents are generated once per session.  The "planted" corpora carry
two synthetic query terms (``needle`` / ``thread``) whose selectivity
and clustering are controlled per experiment.
"""

from __future__ import annotations

import pytest

from repro.index.inverted import InvertedIndex
from repro.obs.metrics import MetricsRegistry
from repro.workloads.figure1 import build_figure1_document
from repro.workloads.generator import (DocumentSpec, generate_document,
                                       plant_keyword)
from repro.workloads.papertrees import (build_figure3_tree,
                                        build_figure4_tree,
                                        build_figure7_tree)

TERM_A = "needle"
TERM_B = "thread"


def pytest_addoption(parser):
    parser.addoption(
        "--smoke", action="store_true", default=False,
        help="run benchmarks on tiny workloads (CI smoke mode; shape "
             "checks only, no performance assertions)")


@pytest.fixture(scope="session")
def smoke(request) -> bool:
    """Whether the session runs in --smoke (tiny-workload) mode."""
    return request.config.getoption("--smoke")


def planted_document(nodes: int, occ_a: int, occ_b: int,
                     clustering: float = 0.5, seed: int = 42):
    """A synthetic document with both query terms planted."""
    doc = generate_document(DocumentSpec(nodes=nodes, seed=seed))
    doc = plant_keyword(doc, TERM_A, occurrences=occ_a,
                        clustering=clustering, seed=seed + 1)
    doc = plant_keyword(doc, TERM_B, occurrences=occ_b,
                        clustering=clustering, seed=seed + 2)
    return doc


@pytest.fixture(scope="session")
def figure1():
    return build_figure1_document()


@pytest.fixture(scope="session")
def figure1_index(figure1):
    return InvertedIndex(figure1)


@pytest.fixture(scope="session")
def figure3():
    return build_figure3_tree()


@pytest.fixture(scope="session")
def figure4():
    return build_figure4_tree()


@pytest.fixture(scope="session")
def figure7():
    return build_figure7_tree()


@pytest.fixture(scope="session")
def bench_metrics():
    """One metrics registry shared by the whole bench session.

    Comparative benches that time work through
    :func:`repro.bench.runner.measure` pass this registry so median
    latencies and logical-work counters aggregate across experiments;
    the summed registry is printed when the session ends.
    """
    registry = MetricsRegistry()
    yield registry
    if len(registry):
        print("\n=== bench session metrics (repro.obs) ===")
        print(registry.summary())


@pytest.fixture(scope="session")
def medium_doc():
    """A 1500-node document with moderately selective planted terms."""
    return planted_document(nodes=1500, occ_a=6, occ_b=8)


@pytest.fixture(scope="session")
def medium_index(medium_doc):
    return InvertedIndex(medium_doc)
