"""Constant-time lowest-common-ancestor queries.

Implements the classic reduction of LCA to range-minimum queries over the
Euler tour of the tree, answered with a sparse table: O(n log n)
preprocessing, O(1) per query.  A simple binary-lifting implementation is
also provided; the two are cross-checked in the test suite.

Fragment join (paper Definition 4) reduces to LCA plus path climbing, so
this index is on the hot path of every algebra operation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..xmltree.document import Document

__all__ = ["LcaIndex", "BinaryLiftingLca"]


class LcaIndex:
    """Euler tour + sparse table LCA index over a document tree."""

    __slots__ = ("_euler", "_euler_depth", "_first", "_table", "_log")

    def __init__(self, document: "Document") -> None:
        n = document.size
        depth = document.labels.depth
        euler: list[int] = []
        first = [-1] * n
        # Iterative Euler tour: push (node, child index); record the node
        # on entry and after each child returns.
        stack: list[tuple[int, int]] = [(document.root, 0)]
        first[document.root] = 0
        euler.append(document.root)
        while stack:
            node, child_idx = stack[-1]
            kids = document.children(node)
            if child_idx < len(kids):
                stack[-1] = (node, child_idx + 1)
                child = kids[child_idx]
                first[child] = len(euler)
                euler.append(child)
                stack.append((child, 0))
            else:
                stack.pop()
                if stack:
                    euler.append(stack[-1][0])
        self._euler = euler
        self._euler_depth = [depth[v] for v in euler]
        self._first = first

        m = len(euler)
        log = [0] * (m + 1)
        for i in range(2, m + 1):
            log[i] = log[i >> 1] + 1
        self._log = log
        # table[k][i] = index (into euler) of the min-depth entry in
        # euler[i : i + 2**k].
        table: list[list[int]] = [list(range(m))]
        k = 1
        while (1 << k) <= m:
            prev = table[k - 1]
            half = 1 << (k - 1)
            row = []
            ed = self._euler_depth
            for i in range(m - (1 << k) + 1):
                a = prev[i]
                b = prev[i + half]
                row.append(a if ed[a] <= ed[b] else b)
            table.append(row)
            k += 1
        self._table = table

    def lca(self, u: int, v: int) -> int:
        """Return the lowest common ancestor of nodes ``u`` and ``v``."""
        if u == v:
            return u
        i = self._first[u]
        j = self._first[v]
        if i > j:
            i, j = j, i
        k = self._log[j - i + 1]
        a = self._table[k][i]
        b = self._table[k][j - (1 << k) + 1]
        ed = self._euler_depth
        return self._euler[a if ed[a] <= ed[b] else b]


class BinaryLiftingLca:
    """Binary-lifting LCA: O(n log n) build, O(log n) query.

    Slower per query than :class:`LcaIndex` but simpler; used as a
    correctness oracle in tests and available for callers who prefer the
    lower memory footprint on huge documents.
    """

    __slots__ = ("_up", "_depth", "_levels")

    def __init__(self, document: "Document") -> None:
        n = document.size
        depth = document.labels.depth
        levels = max(1, (n - 1).bit_length())
        up = [[0] * n for _ in range(levels)]
        for v in range(n):
            p = document.parent(v)
            up[0][v] = p if p is not None else v
        for k in range(1, levels):
            prev = up[k - 1]
            row = up[k]
            for v in range(n):
                row[v] = prev[prev[v]]
        self._up = up
        self._depth = depth
        self._levels = levels

    def lca(self, u: int, v: int) -> int:
        """Return the lowest common ancestor of nodes ``u`` and ``v``."""
        depth = self._depth
        up = self._up
        if depth[u] < depth[v]:
            u, v = v, u
        diff = depth[u] - depth[v]
        k = 0
        while diff:
            if diff & 1:
                u = up[k][u]
            diff >>= 1
            k += 1
        if u == v:
            return u
        for k in range(self._levels - 1, -1, -1):
            if up[k][u] != up[k][v]:
                u = up[k][u]
                v = up[k][v]
        return up[0][u]
