"""Keyword tokenization.

The paper treats the contents of a node as a bag of *representative
keywords* (``keywords(n)``) without committing to a particular text
pipeline.  We implement a conventional, deterministic IR tokenizer:

* Unicode-aware word splitting on non-alphanumeric boundaries,
* case folding,
* optional stopword removal (a small built-in English list),
* optional minimum token length.

The tokenizer is deliberately free of stemming so that queries match the
paper's exact-keyword semantics (``keyword = k``); callers who want
stemming can subclass and override :meth:`Tokenizer.normalize`.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator

__all__ = ["Tokenizer", "DEFAULT_STOPWORDS"]

# A compact, conventional English stopword list.  Kept small on purpose:
# document-centric XML search should not silently drop content words.
DEFAULT_STOPWORDS: frozenset[str] = frozenset("""
a an and are as at be by for from has have in is it its of on or that the
to was were will with this these those
""".split())

_WORD_RE = re.compile(r"[0-9A-Za-z_]+(?:'[0-9A-Za-z_]+)?")


class Tokenizer:
    """Turn raw text into a normalised keyword stream.

    Parameters
    ----------
    stopwords:
        Words to drop after normalisation.  Defaults to a small English
        list; pass an empty set to keep everything.
    min_length:
        Tokens shorter than this are dropped (default 1 = keep all).
    """

    def __init__(self, stopwords: Iterable[str] = DEFAULT_STOPWORDS,
                 min_length: int = 1) -> None:
        self._stopwords = frozenset(self.normalize(w) for w in stopwords)
        if min_length < 1:
            raise ValueError("min_length must be >= 1")
        self._min_length = min_length

    def normalize(self, token: str) -> str:
        """Normalise a single token (case folding)."""
        return token.casefold()

    def iter_tokens(self, text: str) -> Iterator[str]:
        """Yield normalised tokens of ``text`` in order, with duplicates."""
        for match in _WORD_RE.finditer(text):
            token = self.normalize(match.group())
            if len(token) < self._min_length:
                continue
            if token in self._stopwords:
                continue
            yield token

    def tokenize(self, text: str) -> list[str]:
        """Return the normalised tokens of ``text`` as a list."""
        return list(self.iter_tokens(text))

    def keyword_set(self, text: str) -> frozenset[str]:
        """Return the distinct normalised tokens of ``text``."""
        return frozenset(self.iter_tokens(text))
