"""Inverted keyword index: keyword -> sorted node-id posting list.

The paper's keyword selection ``σ_{keyword=k}(nodes(D))`` (Definition 3)
needs, for each query term, the set of nodes whose ``keywords(n)``
contains the term.  A linear scan works but is O(|D|) per term; this
index precomputes posting lists once in O(total keywords) and answers
each term in O(1).

Posting lists are sorted by node id (= preorder rank), which is also
what the SLCA/ELCA baselines require.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..xmltree.document import Document

__all__ = ["InvertedIndex"]


class InvertedIndex:
    """Keyword → posting-list index over one document."""

    __slots__ = ("_document", "_postings")

    def __init__(self, document: "Document") -> None:
        self._document = document
        postings: dict[str, list[int]] = {}
        for nid in document.node_ids():
            for word in document.keywords(nid):
                postings.setdefault(word, []).append(nid)
        # Node ids are visited in increasing order, so lists are sorted.
        self._postings = postings

    @classmethod
    def from_postings(cls, document: "Document",
                      postings: dict[str, list[int]]) -> "InvertedIndex":
        """Adopt pre-built posting lists without rescanning the document.

        Used by :mod:`repro.storage.shards`, which persists the postings
        section at build time.  Lists must already be sorted by node id
        (the shard writer guarantees this); they are adopted as-is, so
        callers must hand over ownership.
        """
        self = object.__new__(cls)
        self._document = document
        self._postings = postings
        return self

    @property
    def document(self) -> "Document":
        """The indexed document."""
        return self._document

    def postings(self, keyword: str) -> list[int]:
        """Sorted node ids containing ``keyword`` (empty if absent)."""
        return list(self._postings.get(keyword, ()))

    def document_frequency(self, keyword: str) -> int:
        """Number of nodes whose keyword set contains ``keyword``."""
        return len(self._postings.get(keyword, ()))

    def contains(self, keyword: str) -> bool:
        """Whether any node contains ``keyword``."""
        return keyword in self._postings

    def vocabulary(self) -> frozenset[str]:
        """Every indexed keyword."""
        return frozenset(self._postings)

    def selectivity(self, keyword: str) -> float:
        """Fraction of document nodes matching ``keyword`` (0.0 - 1.0)."""
        return self.document_frequency(keyword) / self._document.size

    def rarest_first(self, keywords: Iterable[str]) -> list[str]:
        """Order query terms by ascending document frequency.

        Joining the smallest fragment sets first keeps the intermediate
        results of multi-keyword evaluation small; the planner uses this
        ordering.
        """
        return sorted(keywords, key=self.document_frequency)

    def __len__(self) -> int:
        return len(self._postings)

    def __repr__(self) -> str:
        return (f"InvertedIndex(document={self._document.name!r}, "
                f"terms={len(self._postings)})")
