"""Index substrate: tokenization, inverted keyword index, and LCA index."""

from .inverted import InvertedIndex
from .lca import BinaryLiftingLca, LcaIndex
from .tokenizer import DEFAULT_STOPWORDS, Tokenizer

__all__ = [
    "Tokenizer",
    "DEFAULT_STOPWORDS",
    "InvertedIndex",
    "LcaIndex",
    "BinaryLiftingLca",
]
