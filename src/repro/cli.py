"""Command-line keyword search over XML files.

Installed as ``repro-search``::

    repro-search article.xml xquery optimization --max-size 3
    repro-search article.xml storage engine --strategy brute-force -n 5
    repro-search article.xml join filter --explain
    repro-search corpus-dir/ xquery optimization --max-size 3

Prints the answer fragments as outlines (default, with witness-term
annotations) or serialised XML (``--xml``), smallest answers first.
Pointing at a directory searches every ``*.xml`` file in it as a
collection.

Observability (see ``docs/observability.md``)::

    repro-search article.xml xquery optimization --trace
    repro-search article.xml xquery optimization --metrics-out m.json
    repro-search corpus-dir/ xquery opt --slow-query-ms 50 --query-log q.jsonl
    repro-search metrics m.json            # summarise a metrics dump
    repro-search serve corpus-dir/ --profile-queries --profile-dump fr.jsonl
    repro-search serve corpus-dir/ --slo 'p99(repro_query_latency_seconds) < 0.5'
    repro-search top http://127.0.0.1:9100  # live ops console
    repro-search flightrecorder fr.jsonl   # summarise a recorder dump
    repro-search flightrecorder fr.jsonl --trace q1a2b-000007 --out t.json

Persistent shard index (see ``docs/storage.md``)::

    repro-search index build corpus-dir/ corpus.idx --shards 8
    repro-search index inspect corpus.idx --verify
    repro-search serve --index corpus.idx --workers 4
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional, Sequence

from .core.filters import (Filter, HeightAtMost, SizeAtMost, TrueFilter,
                           WidthAtMost)
from .core.optimizer import optimize
from .core.plan import explain as explain_plan
from .core.presentation import OverlapPolicy, arrange
from .core.query import Query
from .core.strategies import Strategy, evaluate, explain_analyze
from .errors import AdmissionRejected, BudgetExceeded, ReproError
from .index.inverted import InvertedIndex
from .obs import (NOOP, MetricsRegistry, Observability, QueryLog,
                  SpanTracer)
from .obs.tracer import NULL_TRACER
from .ranking.scoring import FragmentScorer
from .xmltree.parser import parse_file
from .xmltree.serializer import fragment_outline, fragment_to_xml

__all__ = ["main", "build_parser", "metrics_main", "serve_main",
           "flightrecorder_main", "index_main", "top_main"]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-search`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-search",
        description="Keyword search for XML fragments using the "
                    "algebraic query model (Pradhan, VLDB 2006).")
    parser.add_argument("file", help="XML document to search")
    parser.add_argument("keywords", nargs="*",
                        help="query keywords (conjunctive); optional "
                             "with --batch")
    parser.add_argument("--max-size", type=int, default=None, metavar="N",
                        help="anti-monotonic filter: size(f) <= N")
    parser.add_argument("--max-height", type=int, default=None,
                        metavar="H",
                        help="anti-monotonic filter: height(f) <= H")
    parser.add_argument("--max-width", type=int, default=None, metavar="W",
                        help="anti-monotonic filter: width(f) <= W")
    parser.add_argument("--filter", default=None, metavar="EXPR",
                        dest="filter_expr",
                        help="filter expression, e.g. "
                             "'size<=4 & height<=2' or "
                             "'(width<=5 | leaves<=2) & keyword!=draft'")
    parser.add_argument("--strategy", default=Strategy.PUSHDOWN.value,
                        choices=[s.value for s in Strategy],
                        help="evaluation strategy (default: pushdown)")
    parser.add_argument("--kernel", default=None,
                        choices=["reference", "bitset"],
                        help="join kernel: the frozenset reference path "
                             "or the interval-bitset fast path "
                             "(identical answers)")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="evaluate documents on a process pool of N "
                             "workers (directory/batch searches; results "
                             "are identical to serial)")
    parser.add_argument("--timeout-ms", type=float, default=None,
                        metavar="MS", dest="timeout_ms",
                        help="per-chunk deadline for pooled execution; "
                             "chunks over the deadline are retried and "
                             "then evaluated serially in-process")
    parser.add_argument("--retries", type=int, default=None, metavar="N",
                        help="retry a crashed/timed-out/failed chunk at "
                             "most N times before falling back "
                             "(default: 2)")
    parser.add_argument("--no-fallback", action="store_true",
                        dest="no_fallback",
                        help="fail the run instead of degrading to "
                             "serial in-process evaluation when a "
                             "chunk exhausts its retries")
    parser.add_argument("--deadline-ms", type=float, default=None,
                        metavar="MS", dest="deadline_ms",
                        help="abort the query once it has run MS "
                             "milliseconds of wall clock (exit code 3; "
                             "see docs/robustness.md)")
    parser.add_argument("--max-join-ops", type=int, default=None,
                        metavar="N", dest="max_join_ops",
                        help="abort the query after N join operations "
                             "(a work budget independent of wall clock)")
    parser.add_argument("--batch", default=None, metavar="FILE",
                        help="evaluate one query per FILE line "
                             "(whitespace-separated keywords, # comments) "
                             "over the target, amortising index and pool "
                             "setup; the filter flags apply to every "
                             "query")
    parser.add_argument("-n", "--limit", type=int, default=10,
                        metavar="N", help="show at most N answers")
    parser.add_argument("--stream", action="store_true",
                        help="stream answers incrementally through the "
                             "operator pipeline, stopping early once "
                             "--limit answers are proven (smallest "
                             "first; directory searches print hits as "
                             "they arrive)")
    parser.add_argument("--xml", action="store_true",
                        help="print answers as XML instead of outlines")
    parser.add_argument("--hide-overlaps", action="store_true",
                        help="suppress answers contained in other answers")
    parser.add_argument("--overlap-policy", default=None,
                        choices=[p.value for p in OverlapPolicy],
                        help="how to present overlapping answers "
                             "(keep | hide | group)")
    parser.add_argument("--rank", action="store_true",
                        help="order answers by relevance score instead "
                             "of size")
    parser.add_argument("--explain", action="store_true",
                        help="print the optimised query plan and exit")
    parser.add_argument("--explain-analyze", action="store_true",
                        dest="explain_analyze",
                        help="execute the strategy's plan and print it "
                             "annotated with measured per-operator "
                             "statistics (rows, joins, cache hits, "
                             "checks, pruning, self/total time)")
    parser.add_argument("--stats", action="store_true",
                        help="print operation counters after the answers")
    parser.add_argument("--trace", action="store_true",
                        help="print the span tree of the query lifecycle "
                             "(parse → plan → optimize → execute → rank)")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        dest="metrics_out",
                        help="write collected metrics to PATH (JSON, or "
                             "Prometheus text when PATH ends in .prom)")
    parser.add_argument("--slow-query-ms", type=float, default=None,
                        metavar="MS", dest="slow_query_ms",
                        help="flag queries at or over MS milliseconds; "
                             "slow queries are reported on stderr")
    parser.add_argument("--query-log", default=None, metavar="PATH",
                        dest="query_log",
                        help="append one JSON record per evaluated query "
                             "to PATH (JSONL)")
    parser.add_argument("--metrics-port", type=int, default=None,
                        metavar="PORT", dest="metrics_port",
                        help="serve live /metrics, /healthz, /varz and "
                             "/slow on PORT (0 picks a free port) while "
                             "the search runs; implies metrics "
                             "collection")
    return parser


def _build_observability(args: argparse.Namespace
                         ) -> tuple[Observability, Optional[object]]:
    """The CLI's obs handle plus the query-log file to close, if any."""
    wants_obs = (args.trace or args.metrics_out
                 or args.slow_query_ms is not None or args.query_log
                 or args.metrics_port is not None)
    if not wants_obs:
        return NOOP, None
    log_file = None
    query_log = None
    if args.query_log or args.slow_query_ms is not None:
        if args.query_log:
            log_file = open(args.query_log, "a", encoding="utf-8")
        query_log = QueryLog(sink=log_file,
                             slow_query_ms=args.slow_query_ms)
    tracer = SpanTracer() if args.trace else NULL_TRACER
    return Observability(tracer=tracer, metrics=MetricsRegistry(),
                         query_log=query_log), log_file


def _finish_observability(args: argparse.Namespace, obs: Observability,
                          log_file) -> None:
    """Emit trace/metrics/slow-query output after the answers."""
    if obs is NOOP:
        return
    if args.trace:
        print("\ntrace:")
        print(obs.tracer.render())
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            if args.metrics_out.endswith(".prom"):
                handle.write(obs.metrics.to_prometheus())
            else:
                handle.write(obs.metrics.to_json_text() + "\n")
    if obs.query_log is not None and args.slow_query_ms is not None:
        for record in obs.query_log.slow_queries():
            print(f"slow-query: {record.to_json()}", file=sys.stderr)
    if log_file is not None:
        log_file.close()


def _build_resilience(args: argparse.Namespace):
    """A :class:`RetryPolicy` from the CLI flags (``None`` = defaults)."""
    if (args.timeout_ms is None and args.retries is None
            and not args.no_fallback):
        return None
    from .exec import FALLBACK_NEVER, FALLBACK_SERIAL, RetryPolicy
    return RetryPolicy(
        timeout_s=(args.timeout_ms / 1000.0
                   if args.timeout_ms is not None else None),
        max_retries=(args.retries if args.retries is not None
                     else RetryPolicy.max_retries),
        fallback=(FALLBACK_NEVER if args.no_fallback
                  else FALLBACK_SERIAL))


def _build_budget(args: argparse.Namespace):
    """A fresh :class:`QueryBudget` from the CLI flags (or ``None``)."""
    if args.deadline_ms is None and args.max_join_ops is None:
        return None
    from .guard.budget import QueryBudget
    return QueryBudget(
        deadline_s=(args.deadline_ms / 1000.0
                    if args.deadline_ms is not None else None),
        max_join_ops=args.max_join_ops)


def _load_collection_dir(path: str):
    """Load every parseable ``*.xml`` under *path* as a collection.

    Malformed files are skipped with a warning on stderr; returns the
    collection plus the list of skipped paths so callers can report
    the count (and fail only when *nothing* parsed).
    """
    from .collection.collection import DocumentCollection

    skipped: list[str] = []

    def on_error(file_path: str, exc: Exception) -> None:
        skipped.append(file_path)
        print(f"warning: skipping {file_path}: {exc}", file=sys.stderr)

    return DocumentCollection.from_directory(path,
                                             on_error=on_error), skipped


def _empty_collection_error(path: str, skipped: Sequence[str]) -> str:
    if skipped:
        return (f"error: all {len(skipped)} .xml file(s) in {path} "
                f"failed to parse")
    return f"error: no .xml files in {path}"


def _build_predicate(args: argparse.Namespace) -> Filter:
    predicate: Filter = TrueFilter()
    if args.max_size is not None:
        predicate = predicate & SizeAtMost(args.max_size)
    if args.max_height is not None:
        predicate = predicate & HeightAtMost(args.max_height)
    if args.max_width is not None:
        predicate = predicate & WidthAtMost(args.max_width)
    if args.filter_expr:
        from .core.queryparser import parse_filter
        predicate = predicate & parse_filter(args.filter_expr)
    return predicate


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "metrics":
        return metrics_main(argv[1:])
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "flightrecorder":
        return flightrecorder_main(argv[1:])
    if argv and argv[0] == "index":
        return index_main(argv[1:])
    if argv and argv[0] == "top":
        return top_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    if not args.keywords and not args.batch:
        parser.error("query keywords are required unless --batch is given")
    if args.explain_analyze and args.batch:
        parser.error("--explain-analyze analyses one query; it cannot "
                     "be combined with --batch")
    if args.explain:
        try:
            query = Query(tuple(args.keywords), _build_predicate(args))
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"query: {query.describe()}")
        print(explain_plan(optimize(query)))
        return 0
    obs, log_file = _build_observability(args)
    server = None
    if args.metrics_port is not None:
        from .obs.server import MetricsServer
        server = MetricsServer(obs, port=args.metrics_port).start()
        print(f"metrics: {server.url}/metrics", file=sys.stderr)
    try:
        with obs.span("query", file=args.file):
            code = _run_search(args, obs)
    except BudgetExceeded as exc:
        print(f"error: {json.dumps(exc.to_dict())}", file=sys.stderr)
        return 3
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if server is not None:
            server.stop()
    _finish_observability(args, obs, log_file)
    return code


def _run_search(args: argparse.Namespace, obs: Observability) -> int:
    """Parse, plan, evaluate and present one single-document search."""
    if args.batch:
        return _run_batch(args, obs)
    if os.path.isdir(args.file):
        return _search_collection(args, obs)
    if args.workers is not None:
        print("note: --workers only applies to directory or --batch "
              "searches; evaluating serially", file=sys.stderr)
    with obs.span("parse", file=args.file) as span:
        document = parse_file(args.file)
        index = InvertedIndex(document)
        span.set(nodes=document.size)
    with obs.span("plan"):
        query = Query(tuple(args.keywords), _build_predicate(args))
    if args.explain_analyze:
        result, analysis = explain_analyze(
            document, query, strategy=Strategy.parse(args.strategy),
            index=index, obs=obs, kernel=args.kernel)
        _print_analysis(query, analysis, answers=len(result),
                        strategy=result.strategy,
                        elapsed=result.elapsed)
        return 0
    if obs.enabled:
        # The strategy dispatcher does not consume the plan tree, but
        # the optimized shape belongs in the trace; the rewrite is
        # microseconds next to evaluation.
        optimize(query, obs=obs)
    if args.stream:
        return _stream_single_document(args, document, index, query, obs)
    result = evaluate(document, query,
                      strategy=Strategy.parse(args.strategy),
                      index=index, obs=obs, kernel=args.kernel,
                      budget=_build_budget(args))

    if args.rank:
        with obs.span("rank"):
            scorer = FragmentScorer(index, obs=obs)
            scored = scorer.rank(result.fragments, query.terms)
        answers = [s.fragment for s in scored]
        scores = {s.fragment: s.score for s in scored}
    else:
        scores = {}
        if args.overlap_policy == OverlapPolicy.GROUP.value:
            groups = arrange(result.fragments, OverlapPolicy.GROUP)
            answers = []
            for group in groups:
                answers.append(group.representative)
                answers.extend(group.members)
        elif args.hide_overlaps \
                or args.overlap_policy == OverlapPolicy.HIDE.value:
            answers = result.non_overlapping()
        else:
            answers = result.sorted_fragments()

    shown = answers[:args.limit]
    print(f"{len(result)} answer(s) for {query.describe()} "
          f"[{result.strategy}, {result.elapsed * 1000:.1f} ms]"
          + (f", showing {len(shown)}" if len(shown) < len(answers)
             else ""))
    for rank, fragment in enumerate(shown, start=1):
        score_note = (f", score={scores[fragment]:.3f}"
                      if fragment in scores else "")
        print(f"\n#{rank}  {fragment.label()}  "
              f"(size={fragment.size}, height={fragment.height}"
              f"{score_note})")
        if args.xml:
            print(fragment_to_xml(fragment).rstrip())
        else:
            from .core.witnesses import highlighted_outline
            print(highlighted_outline(fragment, query.terms))
    if args.stats:
        print("\noperation counters:")
        for key, value in sorted(result.stats.items()):
            print(f"  {key}: {value}")
    return 0


def _stream_single_document(args: argparse.Namespace, document, index,
                            query: Query, obs: Observability) -> int:
    """Answer a single-document search via the streaming top-k path.

    Returns the ``--limit`` smallest answers without materialising the
    full answer set: the streaming consumer raises its size bound in
    rounds and stops as soon as the k smallest answers are proven.
    """
    import time

    from .core.streaming import stream_top_k

    if args.rank or args.hide_overlaps or args.overlap_policy:
        print("note: --stream returns the smallest --limit answers; "
              "ranking and overlap presentation flags are ignored",
              file=sys.stderr)
    k = max(args.limit, 1)
    start = time.perf_counter()
    answers = stream_top_k(document, query, k,
                           strategy=Strategy.parse(args.strategy),
                           index=index, obs=obs, kernel=args.kernel,
                           budget=_build_budget(args))
    elapsed = (time.perf_counter() - start) * 1000
    print(f"{len(answers)} streamed answer(s) for {query.describe()} "
          f"[stream-{args.strategy}, {elapsed:.1f} ms]")
    for rank, fragment in enumerate(answers, start=1):
        print(f"\n#{rank}  {fragment.label()}  "
              f"(size={fragment.size}, height={fragment.height})")
        if args.xml:
            print(fragment_to_xml(fragment).rstrip())
        else:
            from .core.witnesses import highlighted_outline
            print(highlighted_outline(fragment, query.terms))
    return 0


def _print_analysis(query: Query, analysis, *, answers: int,
                    strategy: str, elapsed: float,
                    documents: Optional[int] = None) -> None:
    """Print an EXPLAIN ANALYZE report for one evaluated query."""
    print(f"query: {query.describe()}")
    scope = (f" over {documents} document(s)"
             if documents is not None else "")
    print(f"{answers} answer(s){scope} "
          f"[{strategy}, {elapsed * 1000:.1f} ms]")
    print(explain_plan(analysis.plan, analyze=analysis))


def metrics_main(argv: Optional[Sequence[str]] = None) -> int:
    """``repro-search metrics``: summarise a ``--metrics-out`` dump."""
    parser = argparse.ArgumentParser(
        prog="repro-search metrics",
        description="Summarise a metrics dump written by --metrics-out.")
    parser.add_argument("path", help="metrics JSON file")
    parser.add_argument("--format", default="summary",
                        choices=("summary", "prom", "json"),
                        help="output format (default: summary)")
    args = parser.parse_args(argv)
    try:
        with open(args.path, encoding="utf-8") as handle:
            registry = MetricsRegistry.from_json(json.load(handle))
    except (OSError, ValueError, KeyError, TypeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "prom":
        print(registry.to_prometheus(), end="")
    elif args.format == "json":
        print(registry.to_json_text())
    else:
        print(f"metrics from {args.path}:")
        print(registry.summary())
    return 0


def flightrecorder_main(argv: Optional[Sequence[str]] = None) -> int:
    """``repro-search flightrecorder``: inspect a recorder JSONL dump.

    Summarises the per-query profiles (outcomes, latency percentiles,
    per-strategy cost calibration) written by ``serve
    --profile-dump`` / :meth:`FlightRecorder.dump`, or exports one
    retained trace as Chrome trace-event JSON for chrome://tracing or
    Perfetto.
    """
    from .obs.recorder import load_dump

    parser = argparse.ArgumentParser(
        prog="repro-search flightrecorder",
        description="Summarise a flight-recorder JSONL dump or export "
                    "one retained trace as Chrome trace-event JSON.")
    parser.add_argument("path", help="recorder JSONL dump file")
    parser.add_argument("--trace", default=None, metavar="ID",
                        dest="trace_id",
                        help="export the retained trace ID instead of "
                             "printing the summary")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the exported trace to PATH instead "
                             "of stdout (only with --trace)")
    parser.add_argument("--json", action="store_true",
                        help="print the summary as one JSON document")
    args = parser.parse_args(argv)
    try:
        profiles, traces = load_dump(args.path)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.trace_id is not None:
        body = traces.get(args.trace_id)
        if body is None:
            known = ", ".join(sorted(traces)) or "(none)"
            print(f"error: no trace {args.trace_id!r} in {args.path}; "
                  f"retained: {known}", file=sys.stderr)
            return 2
        doc = {"traceEvents": body.get("events", []),
               "displayTimeUnit": "ms",
               "metadata": {"trace_id": args.trace_id,
                            "source": args.path}}
        text = json.dumps(doc, indent=2) + "\n"
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"wrote {len(doc['traceEvents'])} event(s) to "
                  f"{args.out}", file=sys.stderr)
        else:
            print(text, end="")
        return 0
    summary = _summarize_profiles(profiles, traces)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    print(f"flight recorder dump {args.path}: "
          f"{summary['profiles']} profile(s), "
          f"{summary['traces']} retained trace(s)")
    if summary["outcomes"]:
        outcomes = ", ".join(f"{k}={v}" for k, v in
                             sorted(summary["outcomes"].items()))
        print(f"  outcomes: {outcomes}")
    latency = summary["latency"]
    if latency["samples"]:
        print(f"  latency: p50={latency['p50_ms']:.3f} ms  "
              f"p90={latency['p90_ms']:.3f} ms  "
              f"p99={latency['p99_ms']:.3f} ms")
    for strategy, ratio in sorted(summary["calibration"].items()):
        print(f"  calibration[{strategy}]: actual/predicted = "
              f"{ratio:.4f}")
    if summary["traces"]:
        print("  traces: " + ", ".join(summary["trace_ids"]))
        print("  export one with: repro-search flightrecorder "
              f"{args.path} --trace <id> --out trace.json")
    return 0


def _summarize_profiles(profiles, traces) -> dict:
    """Aggregate a loaded dump the way the live snapshot endpoint does."""
    from .obs.recorder import _percentile

    outcomes: dict[str, int] = {}
    sums: dict[str, list] = {}
    for profile in profiles:
        outcomes[profile.outcome] = outcomes.get(profile.outcome, 0) + 1
        if profile.predicted_cost and profile.actual_cost is not None:
            bucket = sums.setdefault(profile.strategy, [0.0, 0.0])
            bucket[0] += profile.predicted_cost
            bucket[1] += profile.actual_cost
    values = sorted(p.wall_ms for p in profiles)
    return {
        "profiles": len(profiles),
        "traces": len(traces),
        "trace_ids": sorted(traces),
        "outcomes": outcomes,
        "latency": {"p50_ms": round(_percentile(values, 0.50), 4),
                    "p90_ms": round(_percentile(values, 0.90), 4),
                    "p99_ms": round(_percentile(values, 0.99), 4),
                    "samples": len(values)},
        "calibration": {strategy: round(actual / predicted, 6)
                        for strategy, (predicted, actual) in sums.items()
                        if predicted > 0},
    }


def index_main(argv: Optional[Sequence[str]] = None) -> int:
    """``repro-search index``: build or inspect a persistent shard index.

    ``build`` serialises a directory of XML files into N shard files
    plus a checksummed manifest (see ``docs/storage.md``); ``inspect``
    attaches an existing index and reports its health, optionally
    verifying every document checksum (``--verify``).
    """
    parser = argparse.ArgumentParser(
        prog="repro-search index",
        description="Build or inspect a persistent sharded index.")
    sub = parser.add_subparsers(dest="command", required=True)
    build = sub.add_parser(
        "build", help="serialise a directory of XML files into an index")
    build.add_argument("source", help="directory of *.xml files")
    build.add_argument("out", help="index output directory")
    build.add_argument("--shards", type=int, default=4, metavar="N",
                       help="number of shard files (default: 4)")
    inspect = sub.add_parser(
        "inspect", help="attach an index and report its health")
    inspect.add_argument("path", help="index directory")
    inspect.add_argument("--json", action="store_true",
                         help="print the stats snapshot as JSON")
    inspect.add_argument("--verify", action="store_true",
                         help="checksum-verify every document "
                              "(exit 1 on any failure)")
    ingest = sub.add_parser(
        "ingest", help="add/replace/remove documents in a writable "
                       "(WAL-backed) index, committing one new epoch")
    ingest.add_argument("path", help="mutable index directory")
    ingest.add_argument("source", nargs="?", default=None,
                        help="XML file or directory of *.xml files "
                             "to add/replace")
    ingest.add_argument("--create", action="store_true",
                        help="initialise a new mutable index at PATH "
                             "if none exists")
    ingest.add_argument("--shards", type=int, default=4, metavar="N",
                        help="shard count for --create (default: 4)")
    ingest.add_argument("--remove", action="append", default=[],
                        metavar="NAME",
                        help="remove a document by name (repeatable)")
    compact = sub.add_parser(
        "compact", help="fold a writable index's delta segment into a "
                        "new base generation")
    compact.add_argument("path", help="mutable index directory")
    fsck = sub.add_parser(
        "fsck", help="verify a writable index (CURRENT, manifest, WAL "
                     "checksums, base shards); --repair truncates torn "
                     "tails and sweeps orphans")
    fsck.add_argument("path", help="mutable index directory")
    fsck.add_argument("--repair", action="store_true",
                      help="repair what can be repaired (truncate the "
                           "WAL to its committed prefix, re-point "
                           "CURRENT, delete orphans)")
    fsck.add_argument("--json", action="store_true",
                      help="print the full report as JSON")
    args = parser.parse_args(argv)
    if args.command == "build":
        return _index_build(args)
    if args.command == "ingest":
        return _index_ingest(args)
    if args.command == "compact":
        return _index_compact(args)
    if args.command == "fsck":
        return _index_fsck(args)
    return _index_inspect(args)


def _index_build(args: argparse.Namespace) -> int:
    from .errors import ShardError
    from .storage.shards import build_index

    if not os.path.isdir(args.source):
        print(f"error: {args.source} is not a directory", file=sys.stderr)
        return 2
    collection, skipped = _load_collection_dir(args.source)
    if not len(collection):
        print(_empty_collection_error(args.source, skipped),
              file=sys.stderr)
        return 2
    try:
        manifest = build_index(collection, args.out, shards=args.shards)
    except (ShardError, ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    skip_note = (f", {len(skipped)} file(s) skipped" if skipped else "")
    print(f"built {args.out}: {len(manifest['documents'])} document(s) "
          f"in {manifest['shards']} shard(s), "
          f"{manifest['total_nodes']} node(s), "
          f"{manifest['total_bytes']} byte(s){skip_note}")
    return 0


def _index_ingest(args: argparse.Namespace) -> int:
    from .storage.mutation import MutableIndex, read_current

    if args.source is None and not args.remove:
        print("error: nothing to do — give a SOURCE and/or --remove",
              file=sys.stderr)
        return 2
    documents: dict = {}
    if args.source is not None:
        if os.path.isdir(args.source):
            collection, skipped = _load_collection_dir(args.source)
            if skipped:
                print(f"warning: {len(skipped)} file(s) skipped",
                      file=sys.stderr)
            documents = {name: collection.document(name)
                         for name in collection.names()}
        elif os.path.isfile(args.source):
            document = parse_file(args.source)
            documents = {document.name: document}
        else:
            print(f"error: {args.source} does not exist",
                  file=sys.stderr)
            return 2
    try:
        if read_current(args.path) is None:
            if not args.create:
                print(f"error: no mutable index at {args.path}; pass "
                      f"--create to initialise one", file=sys.stderr)
                return 2
            index = MutableIndex.create(args.path, shards=args.shards)
        else:
            index = MutableIndex.open(args.path)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        for name, document in sorted(documents.items()):
            index.add(document, name, commit=False)
        for name in args.remove:
            index.remove(name, commit=False)
        epoch = index.commit()
        print(f"ingested into {args.path}: {len(documents)} "
              f"document(s) added/replaced, {len(args.remove)} "
              f"removed; epoch {epoch}, "
              f"{len(index)} document(s) visible")
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        index.close()


def _index_compact(args: argparse.Namespace) -> int:
    from .storage.mutation import MutableIndex

    try:
        index = MutableIndex.open(args.path)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        before = index.stats()
        epoch = index.compact()
        print(f"compacted {args.path}: generation "
              f"{index.generation}, epoch {epoch}, "
              f"{before['delta']['documents']} delta document(s) "
              f"folded into the base, {len(index)} document(s) "
              f"visible")
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        index.close()


def _index_fsck(args: argparse.Namespace) -> int:
    from .storage.mutation import fsck

    try:
        report = fsck(args.path, repair=args.repair)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        state = "healthy" if report["healthy"] else "DAMAGED"
        print(f"fsck {args.path}: {state}, epoch {report['epoch']}")
        for issue in report["issues"]:
            marker = "FATAL" if issue["fatal"] else "issue"
            print(f"  {marker} [{issue['kind']}]: {issue['detail']}")
        for repair in report["repairs"]:
            print(f"  repaired: {repair}")
        if report["wal"] is not None:
            wal = report["wal"]
            print(f"  wal: {wal['committed_records']} committed "
                  f"record(s), {wal['excess_bytes']} byte(s) past the "
                  f"commit, torn={wal['torn']}")
    return 0 if report["healthy"] else 1


def _index_inspect(args: argparse.Namespace) -> int:
    from .errors import ShardError
    from .storage.shards import ShardIndex

    try:
        index = ShardIndex.attach(args.path, on_error="skip")
    except ShardError as exc:
        print(f"error: {json.dumps(exc.to_dict(), sort_keys=True)}",
              file=sys.stderr)
        return 2
    try:
        stats = index.stats()
        verification = index.verify_all() if args.verify else None
        if args.json:
            doc = dict(stats)
            if verification is not None:
                doc["verification"] = verification
            print(json.dumps(doc, indent=2, sort_keys=True))
        else:
            print(f"index {stats['path']}: format v"
                  f"{stats['format_version']}, "
                  f"{stats['shards_attached']}/{stats['shards']} "
                  f"shard(s) attached, "
                  f"{stats['documents_servable']}/{stats['documents']} "
                  f"document(s) servable, "
                  f"{stats['bytes_mapped']} byte(s) mapped")
            for shard, failure in sorted(stats["shards_failed"].items()):
                print(f"  shard {shard} FAILED: "
                      f"{json.dumps(failure, sort_keys=True)}")
            if verification is not None:
                if verification["failures"]:
                    for failure in verification["failures"]:
                        print(f"  verify FAILED: "
                              f"{json.dumps(failure, sort_keys=True)}")
                else:
                    print(f"  verify: all {verification['documents']} "
                          f"document(s) OK")
        if stats["shards_failed"]:
            return 1
        if verification is not None and verification["failures"]:
            return 1
        return 0
    finally:
        index.close()


def top_main(argv: Optional[Sequence[str]] = None,
             out=None) -> int:
    """``repro-search top``: live terminal console over a running server.

    Scrapes ``/varz``, ``/alertz`` and ``/timeseries`` from a
    ``repro-search serve`` instance and redraws a compact ANSI frame —
    QPS and latency sparklines, guard-rail and admission state, SLO
    burn rates, per-shard health — every ``--interval`` seconds until
    Ctrl-C.
    """
    from .obs.console import HttpSource, OpsConsole

    parser = argparse.ArgumentParser(
        prog="repro-search top",
        description="Live ops console for a running "
                    "'repro-search serve' metrics endpoint.")
    parser.add_argument("url",
                        help="server base URL, e.g. "
                             "http://127.0.0.1:9100")
    parser.add_argument("--interval", type=float, default=2.0,
                        metavar="S",
                        help="refresh interval in seconds (default: 2)")
    parser.add_argument("--frames", type=int, default=None, metavar="N",
                        help="draw N frames then exit (default: run "
                             "until Ctrl-C)")
    parser.add_argument("--width", type=int, default=100, metavar="COLS",
                        help="frame width in columns (default: 100)")
    args = parser.parse_args(argv)
    if args.interval <= 0:
        parser.error("--interval must be positive")
    if args.frames is not None and args.frames <= 0:
        parser.error("--frames must be positive")
    console = OpsConsole(HttpSource(args.url),
                         out=out if out is not None else sys.stdout,
                         interval_s=args.interval, width=args.width)
    return console.run(frames=args.frames)


def serve_main(argv: Optional[Sequence[str]] = None,
               stdin=None) -> int:
    """``repro-search serve``: evaluate stdin queries, serving metrics.

    Loads the target (file or directory) once, starts a
    :class:`~repro.obs.server.MetricsServer`, then evaluates one query
    per stdin line (whitespace-separated keywords, ``#`` comments)
    until EOF — /metrics, /healthz, /varz and /slow stay live the
    whole time.
    """
    from .collection.collection import DocumentCollection
    from .core.queryparser import parse_query
    from .obs import GUARD_REJECTED
    from .obs.server import MetricsServer, QueryGuardrails

    parser = argparse.ArgumentParser(
        prog="repro-search serve",
        description="Serve live metrics while evaluating queries read "
                    "from stdin (one query per line).")
    parser.add_argument("file", nargs="?", default=None,
                        help="XML document or directory")
    parser.add_argument("--index", default=None, metavar="PATH",
                        dest="index_path",
                        help="serve a persistent shard index (built "
                             "with 'repro-search index build') instead "
                             "of parsing XML; documents attach by mmap "
                             "and corrupt shards degrade instead of "
                             "failing")
    parser.add_argument("--writable", action="store_true",
                        help="treat --index as a WAL-backed mutable "
                             "index (see 'repro-search index ingest'): "
                             "POST /ingest adds/removes documents "
                             "live, each query pins a consistent "
                             "epoch, and /varz reports epoch state")
    parser.add_argument("--port", type=int, default=0,
                        help="metrics port (default: 0 = any free port)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--strategy", default=Strategy.PUSHDOWN.value,
                        choices=[s.value for s in Strategy])
    parser.add_argument("--kernel", default=None,
                        choices=["reference", "bitset"])
    parser.add_argument("--workers", type=int, default=None, metavar="N")
    parser.add_argument("--max-size", type=int, default=None, metavar="N")
    parser.add_argument("--max-height", type=int, default=None,
                        metavar="H")
    parser.add_argument("--max-width", type=int, default=None,
                        metavar="W")
    parser.add_argument("--filter", default=None, metavar="EXPR",
                        dest="filter_expr")
    parser.add_argument("--slow-query-ms", type=float, default=None,
                        metavar="MS", dest="slow_query_ms")
    parser.add_argument("--timeout-ms", type=float, default=None,
                        metavar="MS", dest="timeout_ms",
                        help="per-chunk deadline for pooled execution")
    parser.add_argument("--retries", type=int, default=None, metavar="N",
                        help="chunk retry budget before serial fallback")
    parser.add_argument("--no-fallback", action="store_true",
                        dest="no_fallback",
                        help="fail a query instead of degrading to "
                             "serial evaluation")
    parser.add_argument("--deadline-ms", type=float, default=None,
                        metavar="MS", dest="deadline_ms",
                        help="per-query wall-clock budget; queries over "
                             "it are aborted and reported, the server "
                             "keeps serving")
    parser.add_argument("--max-join-ops", type=int, default=None,
                        metavar="N", dest="max_join_ops",
                        help="per-query join-operation budget")
    parser.add_argument("--max-cost", type=float, default=None,
                        metavar="C", dest="max_cost",
                        help="admission ceiling: reject queries whose "
                             "estimated plan cost exceeds C before any "
                             "evaluation work runs")
    parser.add_argument("--max-log-records", type=int, default=2048,
                        metavar="N", dest="max_log_records",
                        help="query-log ring size; oldest records are "
                             "evicted past N (default: 2048)")
    parser.add_argument("--profile-queries", action="store_true",
                        dest="profile_queries",
                        help="attach a flight recorder: per-query "
                             "resource profiles, cost calibration and "
                             "tail-sampled traces, served on "
                             "/debug/flightrecorder and /debug/trace/<id>")
    parser.add_argument("--profile-ring-size", type=int, default=512,
                        metavar="N", dest="profile_ring_size",
                        help="flight-recorder profile ring size "
                             "(default: 512)")
    parser.add_argument("--profile-sample-rate", type=float, default=0.0,
                        metavar="R", dest="profile_sample_rate",
                        help="head-sample rate in [0,1] for retaining "
                             "traces of ordinary queries; slow, errored "
                             "and budget-aborted queries are always "
                             "retained (default: 0)")
    parser.add_argument("--profile-slow-ms", type=float, default=100.0,
                        metavar="MS", dest="profile_slow_ms",
                        help="retain a full trace for queries at or "
                             "over MS milliseconds (default: 100)")
    parser.add_argument("--profile-dump", default=None, metavar="PATH",
                        dest="profile_dump",
                        help="dump the recorder ring as JSONL to PATH "
                             "on exit, SIGTERM or crash; inspect with "
                             "'repro-search flightrecorder PATH'")
    parser.add_argument("--sample-interval", type=float, default=5.0,
                        metavar="S", dest="sample_interval",
                        help="metrics sampler interval in seconds, "
                             "feeding /timeseries ring buffers and SLO "
                             "evaluation; 0 disables the sampler "
                             "(default: 5)")
    parser.add_argument("--history-capacity", type=int, default=720,
                        metavar="N", dest="history_capacity",
                        help="retained samples per time series "
                             "(default: 720 = 1h at 5s)")
    parser.add_argument("--slo", action="append", default=[],
                        metavar="SPEC", dest="slo_specs",
                        help="declarative SLO evaluated as fast/slow "
                             "burn rates, e.g. "
                             "'p99(repro_query_latency_seconds) < 0.5' "
                             "or 'errors:ratio(repro_exec_chunk_retries"
                             "_total/repro_pool_chunks_total) < 0.05"
                             ";fast=60;slow=300'; repeatable; critical "
                             "alerts flip /healthz to degraded "
                             "(served on /alertz)")
    parser.add_argument("--slo-feedback", action="store_true",
                        dest="slo_feedback",
                        help="let critical burn-rate alerts act: "
                             "tighten the admission cost ceiling and "
                             "pre-trip suspect shard breakers until "
                             "the alert clears")
    args = parser.parse_args(argv)
    if (args.file is None) == (args.index_path is None):
        parser.error("exactly one of FILE or --index is required")
    if args.writable and args.index_path is None:
        parser.error("--writable requires --index")
    stdin = stdin if stdin is not None else sys.stdin

    recorder = None
    uninstall_dump = None
    if args.profile_queries or args.profile_dump:
        from .obs import FlightRecorder, RecorderConfig
        try:
            recorder = FlightRecorder(RecorderConfig(
                ring_size=args.profile_ring_size,
                slow_ms=args.profile_slow_ms,
                sample_rate=args.profile_sample_rate))
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.profile_dump:
            uninstall_dump = recorder.install_dump_hook(args.profile_dump)
    obs = Observability(
        query_log=QueryLog(max_records=args.max_log_records,
                           slow_query_ms=args.slow_query_ms),
        recorder=recorder)
    skipped: list = []
    try:
        if args.index_path is not None and args.writable:
            collection = DocumentCollection.open_mutable(args.index_path)
        elif args.index_path is not None:
            collection = DocumentCollection.open_index(args.index_path)
            if collection.degraded:
                failed = collection.shard_stats()["index"]["shards_failed"]
                print(f"warning: serving degraded — shard(s) failed to "
                      f"attach: {json.dumps(failed, sort_keys=True)}",
                      file=sys.stderr)
        elif os.path.isdir(args.file):
            collection, skipped = _load_collection_dir(args.file)
        else:
            collection = DocumentCollection(
                name=os.path.basename(args.file))
            collection.add(parse_file(args.file))
        predicate = _build_predicate(args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not len(collection) and not args.writable:
        # A writable index may legitimately start empty: documents
        # arrive over POST /ingest.
        print(_empty_collection_error(args.file or args.index_path,
                                      skipped), file=sys.stderr)
        return 2
    strategy = Strategy.parse(args.strategy)
    resilience = _build_resilience(args)
    admission = None
    if args.max_cost is not None:
        from .guard.admission import AdmissionPolicy
        admission = AdmissionPolicy(max_cost=args.max_cost)
    guardrails = QueryGuardrails(
        default_deadline_ms=args.deadline_ms,
        max_join_ops=args.max_join_ops,
        admission=admission, strategy=strategy,
        kernel=args.kernel, workers=args.workers,
        resilience=resilience)
    history = slo = None
    if args.sample_interval > 0:
        from .obs import MetricsHistory, SLOMonitor, parse_slo
        history = MetricsHistory(obs.metrics,
                                 interval_s=args.sample_interval,
                                 capacity=args.history_capacity)
        if args.slo_specs:
            try:
                objectives = [parse_slo(spec) for spec in args.slo_specs]
                slo = SLOMonitor(history, objectives,
                                 metrics=obs.metrics)
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
    elif args.slo_specs:
        print("error: --slo requires the sampler "
              "(--sample-interval > 0)", file=sys.stderr)
        return 2
    server = MetricsServer(obs, host=args.host, port=args.port,
                           collection=collection,
                           guardrails=guardrails,
                           history=history, slo=slo,
                           slo_feedback=args.slo_feedback).start()
    skip_note = (f" ({len(skipped)} file(s) skipped)" if skipped else "")
    ingest_note = (", POST /ingest" if args.writable else "")
    print(f"metrics: {server.url}/metrics  "
          f"(also /healthz /varz /slow, POST /query{ingest_note}); "
          f"queries from stdin, one per line{skip_note}",
          file=sys.stderr)
    if history is not None:
        slo_note = (f"; {len(slo.objectives)} SLO(s) on /alertz"
                    if slo is not None else "")
        print(f"timeseries: sampling every {args.sample_interval:g}s "
              f"on /timeseries{slo_note} — watch live with "
              f"'repro-search top {server.url}'", file=sys.stderr)

    def reject(reason: str, detail: dict) -> None:
        """Report one bad line and keep serving."""
        obs.metrics.counter(
            GUARD_REJECTED, "Queries rejected before evaluation.",
            labels={"reason": reason}).inc()
        print(f"error: {json.dumps(detail, sort_keys=True)}",
              file=sys.stderr)

    code = 0
    try:
        for line in stdin:
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            # A bad line must never take the server down (nor stop the
            # stdin loop): parser errors are reported, counted and
            # skipped.
            try:
                query = parse_query(stripped)
            except ReproError as exc:
                reject("parse", {"error": "bad-query",
                                 "line": stripped,
                                 "message": str(exc)})
                continue
            if not isinstance(predicate, TrueFilter):
                query = Query(query.terms,
                              query.predicate & predicate)
            try:
                result = collection.search(
                    query, strategy=strategy, obs=obs,
                    workers=args.workers, kernel=args.kernel,
                    resilience=resilience, admission=admission,
                    budget=_build_budget(args))
            except AdmissionRejected as exc:
                reject("admission", exc.to_dict())
                continue
            except BudgetExceeded as exc:
                # Already counted (repro_guard_budget_exceeded_total)
                # by the collection layer.
                print(f"error: {json.dumps(exc.to_dict(), sort_keys=True)}",
                      file=sys.stderr)
                continue
            except ReproError as exc:
                print(f"error: {exc}", file=sys.stderr)
                continue
            print(f"{query.describe()}: {len(result)} answer(s) in "
                  f"{len(result.matched_documents)} of "
                  f"{len(collection)} document(s)")
    except KeyboardInterrupt:
        print("\ninterrupted; shutting down", file=sys.stderr)
        code = 130
    finally:
        server.stop()
        collection.close()
        if recorder is not None:
            _report_recorder_exit(recorder, obs, args.profile_dump,
                                  uninstall_dump)
    return code


def _report_recorder_exit(recorder, obs: Observability,
                          dump_path: Optional[str],
                          uninstall_dump) -> None:
    """Exit-time flight-recorder summary (stderr) + explicit dump.

    Dumping here (rather than relying on the atexit hook) pins the
    artifact's write to server shutdown; the hook stays armed for the
    crash/signal paths and is uninstalled once the dump succeeds.
    """
    if dump_path:
        try:
            lines = recorder.dump(dump_path)
        except OSError as exc:
            print(f"warning: could not dump flight recorder: {exc}",
                  file=sys.stderr)
        else:
            print(f"flight recorder: wrote {lines} line(s) to "
                  f"{dump_path}", file=sys.stderr)
            if uninstall_dump is not None:
                uninstall_dump()
    latency = recorder.latency_percentiles()
    calibration = recorder.publish_calibration(obs.metrics)
    if latency["samples"]:
        print(f"flight recorder: {latency['samples']} profile(s), "
              f"p50={latency['p50_ms']:.3f} ms "
              f"p99={latency['p99_ms']:.3f} ms", file=sys.stderr)
    for strategy, ratio in sorted(calibration.items()):
        print(f"flight recorder: calibration[{strategy}] "
              f"actual/predicted = {ratio:.4f}", file=sys.stderr)


def _search_collection(args: argparse.Namespace,
                       obs: Observability) -> int:
    """Search every XML file of a directory as one collection."""
    from .core.witnesses import highlighted_outline

    with obs.span("parse", directory=args.file) as span:
        collection, skipped = _load_collection_dir(args.file)
        span.set(documents=len(collection), skipped=len(skipped))
    if not len(collection):
        print(_empty_collection_error(args.file, skipped),
              file=sys.stderr)
        return 2
    with obs.span("plan"):
        query = Query(tuple(args.keywords), _build_predicate(args))
    if args.explain_analyze:
        if args.workers is not None:
            print("note: --explain-analyze accumulates one analysis "
                  "in-process; evaluating serially", file=sys.stderr)
        result, analysis = collection.explain_analyze(
            query, strategy=Strategy.parse(args.strategy), obs=obs,
            kernel=args.kernel)
        _print_analysis(query, analysis, answers=len(result),
                        strategy=args.strategy,
                        elapsed=result.total_elapsed,
                        documents=len(collection))
        return 0
    if args.stream:
        skip_note = (f", {len(skipped)} file(s) skipped"
                     if skipped else "")
        print(f"streaming up to {max(args.limit, 1)} answer(s) from "
              f"{len(collection)} document(s){skip_note} for "
              f"{query.describe()}")
        shown = 0
        try:
            for rank, hit in enumerate(
                    collection.search(
                        query, strategy=Strategy.parse(args.strategy),
                        obs=obs, workers=args.workers,
                        kernel=args.kernel,
                        resilience=_build_resilience(args),
                        budget=_build_budget(args),
                        stream=True, limit=max(args.limit, 1)),
                    start=1):
                shown = rank
                print(f"\n#{rank}  {hit.label()}  "
                      f"(size={hit.fragment.size})")
                if args.xml:
                    print(fragment_to_xml(hit.fragment).rstrip())
                else:
                    print(highlighted_outline(hit.fragment,
                                              query.terms))
        finally:
            collection.close()
        print(f"\n{shown} answer(s) streamed")
        return 0
    try:
        result = collection.search(
            query, strategy=Strategy.parse(args.strategy), obs=obs,
            workers=args.workers, kernel=args.kernel,
            resilience=_build_resilience(args),
            budget=_build_budget(args))
    finally:
        collection.close()
    hits = result.hits[:args.limit]
    skip_note = (f", {len(skipped)} file(s) skipped" if skipped else "")
    print(f"{len(result)} answer(s) in "
          f"{len(result.matched_documents)} of {len(collection)} "
          f"document(s){skip_note} for {query.describe()} "
          f"[{result.total_elapsed * 1000:.1f} ms]"
          + (f", showing {len(hits)}" if len(hits) < len(result)
             else ""))
    for rank, hit in enumerate(hits, start=1):
        print(f"\n#{rank}  {hit.label()}  "
              f"(size={hit.fragment.size})")
        if args.xml:
            print(fragment_to_xml(hit.fragment).rstrip())
        else:
            print(highlighted_outline(hit.fragment, query.terms))
    return 0


def _run_batch(args: argparse.Namespace, obs: Observability) -> int:
    """Evaluate every query of a ``--batch`` file over the target."""
    from .collection.collection import DocumentCollection
    from .exec import BatchRunner

    predicate = _build_predicate(args)
    queries = []
    with open(args.batch, encoding="utf-8") as handle:
        for line in handle:
            terms = line.split()
            if not terms or terms[0].startswith("#"):
                continue
            queries.append(Query(tuple(terms), predicate))
    if not queries:
        print(f"error: no queries in {args.batch}", file=sys.stderr)
        return 2
    skipped: list = []
    with obs.span("parse", target=args.file) as span:
        if os.path.isdir(args.file):
            collection, skipped = _load_collection_dir(args.file)
        else:
            collection = DocumentCollection(
                name=os.path.basename(args.file))
            collection.add(parse_file(args.file))
        span.set(documents=len(collection), skipped=len(skipped))
    if not len(collection):
        print(_empty_collection_error(args.file, skipped),
              file=sys.stderr)
        return 2
    if skipped:
        print(f"note: searching {len(collection)} document(s), "
              f"{len(skipped)} file(s) skipped", file=sys.stderr)
    runner = BatchRunner(collection, workers=args.workers,
                         strategy=Strategy.parse(args.strategy),
                         kernel=args.kernel, obs=obs,
                         resilience=_build_resilience(args))
    with runner:
        results = runner.run(queries, budget=_build_budget(args))
    for query, result in zip(queries, results):
        hits = result.hits[:args.limit]
        print(f"{query.describe()}: {len(result)} answer(s) in "
              f"{len(result.matched_documents)} of {len(collection)} "
              f"document(s)"
              + (f", showing {len(hits)}" if len(hits) < len(result)
                 else ""))
        for hit in hits:
            print(f"  {hit.label()}  (size={hit.fragment.size})")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
