"""Command-line keyword search over XML files.

Installed as ``repro-search``::

    repro-search article.xml xquery optimization --max-size 3
    repro-search article.xml storage engine --strategy brute-force -n 5
    repro-search article.xml join filter --explain
    repro-search corpus-dir/ xquery optimization --max-size 3

Prints the answer fragments as outlines (default, with witness-term
annotations) or serialised XML (``--xml``), smallest answers first.
Pointing at a directory searches every ``*.xml`` file in it as a
collection.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from .core.filters import (Filter, HeightAtMost, SizeAtMost, TrueFilter,
                           WidthAtMost)
from .core.optimizer import optimize
from .core.plan import explain as explain_plan
from .core.presentation import OverlapPolicy, arrange
from .core.query import Query
from .core.strategies import Strategy, evaluate
from .errors import ReproError
from .index.inverted import InvertedIndex
from .ranking.scoring import FragmentScorer
from .xmltree.parser import parse_file
from .xmltree.serializer import fragment_outline, fragment_to_xml

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-search`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-search",
        description="Keyword search for XML fragments using the "
                    "algebraic query model (Pradhan, VLDB 2006).")
    parser.add_argument("file", help="XML document to search")
    parser.add_argument("keywords", nargs="+",
                        help="query keywords (conjunctive)")
    parser.add_argument("--max-size", type=int, default=None, metavar="N",
                        help="anti-monotonic filter: size(f) <= N")
    parser.add_argument("--max-height", type=int, default=None,
                        metavar="H",
                        help="anti-monotonic filter: height(f) <= H")
    parser.add_argument("--max-width", type=int, default=None, metavar="W",
                        help="anti-monotonic filter: width(f) <= W")
    parser.add_argument("--filter", default=None, metavar="EXPR",
                        dest="filter_expr",
                        help="filter expression, e.g. "
                             "'size<=4 & height<=2' or "
                             "'(width<=5 | leaves<=2) & keyword!=draft'")
    parser.add_argument("--strategy", default=Strategy.PUSHDOWN.value,
                        choices=[s.value for s in Strategy],
                        help="evaluation strategy (default: pushdown)")
    parser.add_argument("-n", "--limit", type=int, default=10,
                        metavar="N", help="show at most N answers")
    parser.add_argument("--xml", action="store_true",
                        help="print answers as XML instead of outlines")
    parser.add_argument("--hide-overlaps", action="store_true",
                        help="suppress answers contained in other answers")
    parser.add_argument("--overlap-policy", default=None,
                        choices=[p.value for p in OverlapPolicy],
                        help="how to present overlapping answers "
                             "(keep | hide | group)")
    parser.add_argument("--rank", action="store_true",
                        help="order answers by relevance score instead "
                             "of size")
    parser.add_argument("--explain", action="store_true",
                        help="print the optimised query plan and exit")
    parser.add_argument("--stats", action="store_true",
                        help="print operation counters after the answers")
    return parser


def _build_predicate(args: argparse.Namespace) -> Filter:
    predicate: Filter = TrueFilter()
    if args.max_size is not None:
        predicate = predicate & SizeAtMost(args.max_size)
    if args.max_height is not None:
        predicate = predicate & HeightAtMost(args.max_height)
    if args.max_width is not None:
        predicate = predicate & WidthAtMost(args.max_width)
    if args.filter_expr:
        from .core.queryparser import parse_filter
        predicate = predicate & parse_filter(args.filter_expr)
    return predicate


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        query = Query(tuple(args.keywords), _build_predicate(args))
        if args.explain:
            print(f"query: {query.describe()}")
            print(explain_plan(optimize(query)))
            return 0
        if os.path.isdir(args.file):
            return _search_collection(args, query)
        document = parse_file(args.file)
        index = InvertedIndex(document)
        result = evaluate(document, query,
                          strategy=Strategy.parse(args.strategy),
                          index=index)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.rank:
        scorer = FragmentScorer(index)
        scored = scorer.rank(result.fragments, query.terms)
        answers = [s.fragment for s in scored]
        scores = {s.fragment: s.score for s in scored}
    else:
        scores = {}
        if args.overlap_policy == OverlapPolicy.GROUP.value:
            groups = arrange(result.fragments, OverlapPolicy.GROUP)
            answers = []
            for group in groups:
                answers.append(group.representative)
                answers.extend(group.members)
        elif args.hide_overlaps \
                or args.overlap_policy == OverlapPolicy.HIDE.value:
            answers = result.non_overlapping()
        else:
            answers = result.sorted_fragments()

    shown = answers[:args.limit]
    print(f"{len(result)} answer(s) for {query.describe()} "
          f"[{result.strategy}, {result.elapsed * 1000:.1f} ms]"
          + (f", showing {len(shown)}" if len(shown) < len(answers)
             else ""))
    for rank, fragment in enumerate(shown, start=1):
        score_note = (f", score={scores[fragment]:.3f}"
                      if fragment in scores else "")
        print(f"\n#{rank}  {fragment.label()}  "
              f"(size={fragment.size}, height={fragment.height}"
              f"{score_note})")
        if args.xml:
            print(fragment_to_xml(fragment).rstrip())
        else:
            from .core.witnesses import highlighted_outline
            print(highlighted_outline(fragment, query.terms))
    if args.stats:
        print("\noperation counters:")
        for key, value in sorted(result.stats.items()):
            print(f"  {key}: {value}")
    return 0


def _search_collection(args: argparse.Namespace, query: Query) -> int:
    """Search every XML file of a directory as one collection."""
    from .collection.collection import DocumentCollection
    from .core.witnesses import highlighted_outline

    collection = DocumentCollection.from_directory(args.file)
    if not len(collection):
        print(f"error: no .xml files in {args.file}", file=sys.stderr)
        return 2
    result = collection.search(
        query, strategy=Strategy.parse(args.strategy))
    hits = result.hits[:args.limit]
    print(f"{len(result)} answer(s) in "
          f"{len(result.matched_documents)} of {len(collection)} "
          f"document(s) for {query.describe()} "
          f"[{result.total_elapsed * 1000:.1f} ms]"
          + (f", showing {len(hits)}" if len(hits) < len(result)
             else ""))
    for rank, hit in enumerate(hits, start=1):
        print(f"\n#{rank}  {hit.label()}  "
              f"(size={hit.fragment.size})")
        if args.xml:
            print(fragment_to_xml(hit.fragment).rstrip())
        else:
            print(highlighted_outline(hit.fragment, query.terms))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
