"""Scoring functions for answer fragments.

The paper deliberately stays database-style ("we provide a filtering
mechanism, instead of ranking techniques") but notes in §6 that
"ranking techniques described in those studies can be easily
incorporated into our work".  This module is that incorporation: a
small, composable scoring layer over :class:`QueryResult` answer sets.

Three classic signals, each normalised to [0, 1]:

``tf_idf_score``
    Sum over query terms of tf·idf inside the fragment, where term
    frequency counts keyword-bearing nodes of the fragment and document
    frequency counts keyword-bearing nodes of the whole document.
``compactness_score``
    Smaller, shallower fragments score higher — the filter intuition
    (§3.3) turned into a graded signal.
``proximity_score``
    XRank-style decayed distance between the fragment root and the
    nearest occurrence of each term (cf. baselines.xrank).

:class:`FragmentScorer` combines them with configurable weights.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from ..core.fragment import Fragment
from ..obs import FRAGMENTS_RANKED, NOOP, Observability

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..index.inverted import InvertedIndex

__all__ = ["FragmentScorer", "ScoredFragment", "tf_idf_score",
           "compactness_score", "proximity_score"]


def tf_idf_score(fragment: Fragment, terms: Sequence[str],
                 index: "InvertedIndex") -> float:
    """Normalised tf·idf of ``terms`` within ``fragment``.

    tf is the fraction of fragment nodes carrying the term; idf is the
    standard ``log(N / df)`` over document nodes.  The sum over terms
    is squashed to [0, 1] by ``1 - exp(-x)``.
    """
    doc = fragment.document
    n = doc.size
    total = 0.0
    for term in terms:
        df = index.document_frequency(term)
        if df == 0:
            continue
        tf = sum(1 for node in fragment.nodes
                 if term in doc.keywords(node)) / fragment.size
        total += tf * math.log(1.0 + n / df)
    return 1.0 - math.exp(-total)


def compactness_score(fragment: Fragment) -> float:
    """Graded preference for small, shallow fragments.

    1.0 for a single node, decaying harmonically with size and height.
    """
    return 1.0 / (1.0 + math.log1p(fragment.size - 1)
                  + 0.5 * fragment.height)


def proximity_score(fragment: Fragment, terms: Sequence[str],
                    decay: float = 0.8) -> float:
    """Decayed distance from the fragment root to each term's nearest
    occurrence (0 when a term is absent).  Averaged over terms."""
    if not 0.0 < decay <= 1.0:
        raise ValueError("decay must be in (0, 1]")
    if not terms:
        return 0.0
    doc = fragment.document
    root_depth = doc.depth(fragment.root)
    total = 0.0
    for term in terms:
        best = 0.0
        for node in fragment.nodes:
            if term in doc.keywords(node):
                best = max(best,
                           decay ** (doc.depth(node) - root_depth))
        total += best
    return total / len(terms)


@dataclass(frozen=True)
class ScoredFragment:
    """A fragment with its combined score and per-signal breakdown."""

    fragment: Fragment
    score: float
    tf_idf: float
    compactness: float
    proximity: float


class FragmentScorer:
    """Weighted combination of the three ranking signals.

    Parameters
    ----------
    index:
        Inverted index of the queried document (for idf statistics).
    w_tf_idf, w_compactness, w_proximity:
        Non-negative signal weights; they are normalised internally, so
        only ratios matter.  All-zero weights are rejected.
    decay:
        Depth decay for the proximity signal.
    obs:
        Optional :class:`~repro.obs.Observability` handle; when enabled,
        each :meth:`rank` call is wrapped in a ``rank-fragments`` span
        and counted in ``repro_fragments_ranked_total``.
    """

    def __init__(self, index: "InvertedIndex",
                 w_tf_idf: float = 1.0,
                 w_compactness: float = 1.0,
                 w_proximity: float = 1.0,
                 decay: float = 0.8,
                 obs: Optional[Observability] = None) -> None:
        weights = (w_tf_idf, w_compactness, w_proximity)
        if any(w < 0 for w in weights):
            raise ValueError("weights must be non-negative")
        total = sum(weights)
        if total == 0:
            raise ValueError("at least one weight must be positive")
        self._index = index
        self._weights = tuple(w / total for w in weights)
        self._decay = decay
        self._obs = obs if obs is not None else NOOP

    @property
    def weights(self) -> tuple[float, float, float]:
        """Normalised ``(w_tf_idf, w_compactness, w_proximity)``."""
        return self._weights

    def score_upper_bound(self, fragment: Fragment) -> float:
        """A cheap, sound upper bound on ``score(fragment, ·).score``.

        tf·idf and proximity are bounded by 1 for any term set, and
        compactness depends only on the fragment's shape, so
        ``w1 + w3 + w2·compactness`` over-approximates the real score
        without touching the index.  A bounded ranking heap uses this to
        skip full scoring of fragments that provably cannot enter the
        current top-k.
        """
        w1, w2, w3 = self._weights
        return w1 + w3 + w2 * compactness_score(fragment)

    def size_score_bound(self, min_size: int) -> float:
        """Upper bound on the score of *any* fragment of size ≥ ``min_size``.

        Compactness decays monotonically with size, and height only
        lowers it further, so the best a fragment of size ≥ s can do is
        ``w1 + w3 + w2 / (1 + log1p(s - 1))``.  This is the
        anti-monotonic threshold that lets a streaming ranked top-k stop
        once every unseen fragment is provably behind the k-th held
        score.
        """
        s = max(int(min_size), 1)
        w1, w2, w3 = self._weights
        return w1 + w3 + w2 * (1.0 / (1.0 + math.log1p(s - 1)))

    def score(self, fragment: Fragment,
              terms: Sequence[str]) -> ScoredFragment:
        """Score one fragment against the query terms."""
        tfidf = tf_idf_score(fragment, terms, self._index)
        compact = compactness_score(fragment)
        prox = proximity_score(fragment, terms, decay=self._decay)
        w1, w2, w3 = self._weights
        return ScoredFragment(
            fragment=fragment,
            score=w1 * tfidf + w2 * compact + w3 * prox,
            tf_idf=tfidf, compactness=compact, proximity=prox)

    def rank(self, fragments, terms: Sequence[str],
             limit: Optional[int] = None,
             obs: Optional[Observability] = None) -> list[ScoredFragment]:
        """Score and sort fragments, best first; ties by smaller size.

        ``obs`` overrides the constructor handle for this call — cached
        scorers (e.g. per-document in a collection) stay reusable across
        calls with different observability settings.
        """
        ob = obs if obs is not None else self._obs
        with ob.span("rank-fragments") as span:
            scored = [self.score(f, terms) for f in fragments]
            scored.sort(key=lambda s: (-s.score, s.fragment.size,
                                       sorted(s.fragment.nodes)))
            if ob.enabled:
                span.set(fragments=len(scored))
                ob.metrics.counter(
                    FRAGMENTS_RANKED, "Fragments scored by the ranker."
                ).inc(len(scored))
        return scored[:limit] if limit is not None else scored
