"""IR-style ranking over algebraic answer sets (paper §6's extension).

The algebra produces a *set* of answers restricted by filters; this
package adds the optional ranked presentation the paper says can "be
easily incorporated": tf·idf, compactness and proximity signals,
combined by :class:`FragmentScorer`.
"""

from .metrics import (EffectivenessReport, evaluate_effectiveness,
                      f1_score, overlap_precision, overlap_recall,
                      precision, recall)
from .scoring import (FragmentScorer, ScoredFragment, compactness_score,
                      proximity_score, tf_idf_score)

__all__ = [
    "FragmentScorer",
    "ScoredFragment",
    "tf_idf_score",
    "compactness_score",
    "proximity_score",
    "EffectivenessReport",
    "evaluate_effectiveness",
    "precision",
    "recall",
    "f1_score",
    "overlap_precision",
    "overlap_recall",
]
