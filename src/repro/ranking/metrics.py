"""IR effectiveness metrics over fragment answer sets.

Quantifies the S3 effectiveness comparison: given a *relevant* set of
fragments (e.g. the planted subtree units a synthetic workload knows to
be the right answers), score a system's answer set with set-based and
overlap-aware measures.

Fragment retrieval complicates the classic measures: an answer can be
*partially* right (it overlaps a relevant fragment without equalling
it).  Following the INEX tradition the module offers both views:

``precision`` / ``recall`` / ``f1``
    Strict node-set equality between answers and relevant fragments.
``overlap_precision`` / ``overlap_recall``
    Each answer (resp. relevant fragment) is credited with its best
    Jaccard overlap against the other side — graded relevance in
    [0, 1].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..core.fragment import Fragment
from ..core.presentation import overlap

__all__ = ["EffectivenessReport", "evaluate_effectiveness", "precision",
           "recall", "f1_score", "overlap_precision", "overlap_recall"]


def precision(answers: Iterable[Fragment],
              relevant: Iterable[Fragment]) -> float:
    """|answers ∩ relevant| / |answers| (1.0 for empty answer sets)."""
    answer_set = set(answers)
    if not answer_set:
        return 1.0
    relevant_set = set(relevant)
    return len(answer_set & relevant_set) / len(answer_set)


def recall(answers: Iterable[Fragment],
           relevant: Iterable[Fragment]) -> float:
    """|answers ∩ relevant| / |relevant| (1.0 for empty relevant sets)."""
    relevant_set = set(relevant)
    if not relevant_set:
        return 1.0
    answer_set = set(answers)
    return len(answer_set & relevant_set) / len(relevant_set)


def f1_score(answers: Iterable[Fragment],
             relevant: Iterable[Fragment]) -> float:
    """Harmonic mean of strict precision and recall."""
    answer_set = set(answers)
    relevant_set = set(relevant)
    p = precision(answer_set, relevant_set)
    r = recall(answer_set, relevant_set)
    if p + r == 0.0:
        return 0.0
    return 2 * p * r / (p + r)


def _best_overlap(fragment: Fragment,
                  others: list[Fragment]) -> float:
    return max((overlap(fragment, other) for other in others),
               default=0.0)


def overlap_precision(answers: Iterable[Fragment],
                      relevant: Iterable[Fragment]) -> float:
    """Mean best-overlap of each answer against the relevant set."""
    answer_list = list(answers)
    if not answer_list:
        return 1.0
    relevant_list = list(relevant)
    return sum(_best_overlap(a, relevant_list)
               for a in answer_list) / len(answer_list)


def overlap_recall(answers: Iterable[Fragment],
                   relevant: Iterable[Fragment]) -> float:
    """Mean best-overlap of each relevant fragment against the answers."""
    relevant_list = list(relevant)
    if not relevant_list:
        return 1.0
    answer_list = list(answers)
    return sum(_best_overlap(r, answer_list)
               for r in relevant_list) / len(relevant_list)


@dataclass(frozen=True)
class EffectivenessReport:
    """All five measures for one (answers, relevant) pair."""

    precision: float
    recall: float
    f1: float
    overlap_precision: float
    overlap_recall: float

    def as_row(self) -> list[float]:
        """The measures as a list (bench table row)."""
        return [self.precision, self.recall, self.f1,
                self.overlap_precision, self.overlap_recall]


def evaluate_effectiveness(answers: Iterable[Fragment],
                           relevant: Iterable[Fragment]
                           ) -> EffectivenessReport:
    """Compute the full effectiveness report."""
    answer_list = list(answers)
    relevant_list = list(relevant)
    return EffectivenessReport(
        precision=precision(answer_list, relevant_list),
        recall=recall(answer_list, relevant_list),
        f1=f1_score(answer_list, relevant_list),
        overlap_precision=overlap_precision(answer_list, relevant_list),
        overlap_recall=overlap_recall(answer_list, relevant_list),
    )
