"""Algebra operations evaluated entirely inside SQL (paper ref [13]).

:mod:`repro.storage.engine` runs keyword *selection* in SQL and joins
in Python.  This module goes the rest of the way for the binary case:
``σ_{size<=β}(F1 ⋈ F2)`` as **one SQL statement** over the shredded
tables, using recursive CTEs for the root paths, a join for the LCA,
and set arithmetic for the spanning subtree:

    spanning(a, b) = (path(a) Δ path(b)) ∪ {lca(a, b)}

where ``path(x)`` is x's root path and Δ the symmetric difference —
the common ancestors strictly above the LCA cancel out.  The size
filter becomes a ``HAVING COUNT(*)`` clause, i.e. the anti-monotonic
selection is evaluated by the database before fragments ever reach
Python, which is exactly the architecture the companion paper [13]
argues for.
"""

from __future__ import annotations

from typing import Optional

from ..errors import StorageError
from .relational import RelationalStore

__all__ = ["SqlAlgebra"]

_FILTERED_PAIRWISE_JOIN = """
WITH RECURSIVE
pairs(pid, a, b) AS (
    SELECT k1.node * :ncount + k2.node, k1.node, k2.node
    FROM keywords k1, keywords k2
    WHERE k1.word = :term1 AND k2.word = :term2
),
climb_a(pid, node) AS (
    SELECT pid, a FROM pairs
    UNION
    SELECT c.pid, n.parent FROM climb_a c
    JOIN nodes n ON n.id = c.node
    WHERE n.parent IS NOT NULL
),
climb_b(pid, node) AS (
    SELECT pid, b FROM pairs
    UNION
    SELECT c.pid, n.parent FROM climb_b c
    JOIN nodes n ON n.id = c.node
    WHERE n.parent IS NOT NULL
),
common(pid, node, depth) AS (
    SELECT ca.pid, ca.node, n.depth
    FROM climb_a ca
    JOIN climb_b cb ON cb.pid = ca.pid AND cb.node = ca.node
    JOIN nodes n ON n.id = ca.node
),
lca(pid, node) AS (
    SELECT pid, node FROM common c
    WHERE depth = (SELECT MAX(depth) FROM common c2
                   WHERE c2.pid = c.pid)
),
spanning(pid, node) AS (
    SELECT ca.pid, ca.node FROM climb_a ca
    WHERE NOT EXISTS (SELECT 1 FROM common c
                      WHERE c.pid = ca.pid AND c.node = ca.node)
    UNION
    SELECT cb.pid, cb.node FROM climb_b cb
    WHERE NOT EXISTS (SELECT 1 FROM common c
                      WHERE c.pid = cb.pid AND c.node = cb.node)
    UNION
    SELECT pid, node FROM lca
)
SELECT GROUP_CONCAT(node) AS nodes
FROM (SELECT pid, node FROM spanning ORDER BY pid, node)
GROUP BY pid
HAVING COUNT(*) <= :max_size
"""


class SqlAlgebra:
    """Binary algebra operations pushed into the relational engine.

    Parameters
    ----------
    store:
        A :class:`RelationalStore` with a saved document.
    """

    def __init__(self, store: RelationalStore) -> None:
        self._store = store

    @property
    def _conn(self):
        return self._store._conn  # shared connection, same module family

    def filtered_pairwise_join(self, term1: str, term2: str,
                               max_size: Optional[int] = None
                               ) -> frozenset[frozenset[int]]:
        """``σ_{size<=max_size}(F1 ⋈ F2)`` evaluated wholly in SQL.

        Returns the fragments as node-id frozensets (the caller wraps
        them in :class:`~repro.core.fragment.Fragment` against the
        loaded document).  ``max_size=None`` disables the filter.

        Raises
        ------
        StorageError
            If no document is stored.
        """
        node_count = self._store.node_count
        if node_count == 0:
            raise StorageError("no document stored")
        limit = max_size if max_size is not None else node_count
        rows = self._conn.execute(
            _FILTERED_PAIRWISE_JOIN,
            {"ncount": node_count, "term1": term1.casefold(),
             "term2": term2.casefold(), "max_size": limit})
        fragments = set()
        for (joined,) in rows:
            fragments.add(frozenset(int(part)
                                    for part in joined.split(",")))
        return frozenset(fragments)

    def filtered_pairwise_join_count(self, term1: str, term2: str,
                                     max_size: Optional[int] = None
                                     ) -> int:
        """Number of distinct fragments the SQL join produces."""
        return len(self.filtered_pairwise_join(term1, term2,
                                               max_size=max_size))
