"""Persistent sharded index: build once, mmap-attach everywhere.

The write side (:func:`build_index`) serialises a corpus into N shard
files plus a checksummed manifest; the read side (:class:`ShardIndex`)
attaches by ``mmap`` (or shared memory) in O(shards) and materialises
documents lazily; :class:`ShardRouter` scatter-gathers queries across
shards with per-shard circuit breakers.  See ``docs/storage.md`` for
the file layout and lifecycle.
"""

from .format import FORMAT_VERSION, MANIFEST_NAME, shard_of
from .reader import ShardIndex
from .writer import build_index

__all__ = [
    "build_index", "ShardIndex", "ShardRouter", "RouterReport",
    "FORMAT_VERSION", "MANIFEST_NAME", "shard_of",
]


def __getattr__(name):
    # The router pulls in repro.exec (and through it the collection
    # layer); import it lazily so `repro.storage` stays import-light
    # and free of cycles for build/attach-only users.
    if name in ("ShardRouter", "RouterReport"):
        from .router import RouterReport, ShardRouter
        return {"ShardRouter": ShardRouter,
                "RouterReport": RouterReport}[name]
    raise AttributeError(name)
