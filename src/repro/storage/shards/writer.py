"""Shard index builder: documents -> on-disk sharded index.

:func:`build_index` serialises a corpus into the layout described in
:mod:`repro.storage.shards.format`.  The build is fully deterministic:
document names are sorted before assignment, shard membership is a
stable crc32 hash, and all JSON is dumped with sorted keys — building
the same corpus twice yields byte-identical files, which the test
suite asserts and which makes the manifest checksums meaningful across
machines.
"""

from __future__ import annotations

import json
import os
import time
from typing import TYPE_CHECKING, Mapping

from ...errors import ShardError
from ...obs import NOOP, SHARD_BUILD_SECONDS, SHARD_BYTES_WRITTEN
from . import format as fmt

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ...xmltree.document import Document

__all__ = ["build_index", "encode_document"]


def _document_postings(document: "Document") -> dict:
    """keyword -> sorted node ids, scanned once in preorder."""
    postings: dict[str, list[int]] = {}
    for nid in document.node_ids():
        for word in document.keywords(nid):
            postings.setdefault(word, []).append(nid)
    return postings


def encode_document(document: "Document") -> dict:
    """Encode one document's sections; returns ``{section: bytes}``.

    The nine sections are exactly the shard-file layout of
    :data:`repro.storage.shards.format.SECTION_NAMES`; the write-ahead
    log (:mod:`repro.storage.mutation`) reuses them verbatim so a WAL
    record and a compacted shard hold byte-identical document payloads.
    """
    n = document.size
    labels = document.labels
    parents = [(-1 if (p := document.parent(i)) is None else p)
               for i in range(n)]
    attrs = [dict(document.attributes(i)) for i in range(n)]
    return {
        "parents": fmt.encode_int64(parents),
        "depth": fmt.encode_int64(labels.depth),
        "pre": fmt.encode_int64(labels.pre),
        "size": fmt.encode_int64(labels.size),
        "post": fmt.encode_int64(labels.post),
        "tags": fmt.encode_strings(document.tag(i) for i in range(n)),
        "texts": fmt.encode_strings(document.text(i) for i in range(n)),
        "attrs": json.dumps(attrs, ensure_ascii=False,
                            separators=(",", ":")).encode("utf-8"),
        "postings": fmt.encode_postings(_document_postings(document)),
    }


def _as_mapping(documents) -> Mapping:
    """Accept a plain mapping or anything with names()/document()."""
    if isinstance(documents, Mapping):
        return documents
    if hasattr(documents, "names") and hasattr(documents, "document"):
        return {name: documents.document(name)
                for name in documents.names()}
    raise TypeError("build_index expects a name->Document mapping or a "
                    "DocumentCollection-like object")


def build_index(documents, path, *, shards: int = 4, obs=NOOP) -> dict:
    """Write a sharded index for ``documents`` under directory ``path``.

    Parameters
    ----------
    documents:
        ``{name: Document}`` mapping or a
        :class:`~repro.collection.collection.DocumentCollection`.
    path:
        Target directory; created if missing.  Existing shard files and
        manifest are overwritten (the build is atomic per file: each is
        written to a ``.tmp`` sibling and renamed into place, manifest
        last, so a crashed build never masquerades as a complete one).
    shards:
        Number of shard files.  More shards than documents is allowed;
        the empty shards are still written so attach cost stays uniform.

    Returns the manifest dict that was written.
    """
    docs = _as_mapping(documents)
    if not docs:
        raise ShardError("cannot build an index over zero documents",
                         reason="empty", path=path)
    if shards < 1:
        raise ShardError(f"shard count must be >= 1, got {shards}",
                         reason="bad-shards", path=path)
    os.makedirs(path, exist_ok=True)
    names = sorted(docs)
    assignment = {name: fmt.shard_of(name, shards) for name in names}

    files = []
    total_nodes = 0
    total_bytes = 0
    started = time.perf_counter()
    with obs.tracer.span("shard-index-build",
                         shards=shards, documents=len(names)):
        for shard in range(shards):
            members = [n for n in names if assignment[n] == shard]
            blob, header = _build_shard(shard, shards, members, docs)
            file_name = fmt.shard_file_name(shard)
            target = os.path.join(path, file_name)
            _atomic_write(target, blob)
            files.append({
                "file": file_name,
                "shard": shard,
                "bytes": len(blob),
                "documents": members,
                "header_crc32": header["crc32"],
                "crc32": fmt.crc32(blob),
            })
            total_nodes += sum(docs[n].size for n in members)
            total_bytes += len(blob)
    obs.metrics.histogram(
        SHARD_BUILD_SECONDS, "Wall seconds per shard-index build."
    ).observe(time.perf_counter() - started)

    manifest = {
        "format": "repro-shard-index",
        "format_version": fmt.FORMAT_VERSION,
        "shards": shards,
        "documents": assignment,
        "total_nodes": total_nodes,
        "total_bytes": total_bytes,
        "files": files,
    }
    _atomic_write(os.path.join(path, fmt.MANIFEST_NAME),
                  fmt.dump_json(manifest) + b"\n")
    obs.metrics.counter(
        SHARD_BYTES_WRITTEN, "Bytes written by shard-index builds."
    ).inc(total_bytes)
    return manifest


def _build_shard(shard: int, shards: int, members, docs):
    """Assemble one shard file; returns ``(bytes, header_info)``."""
    entries = []
    payloads = []  # (aligned_offset, bytes) relative to payload start
    cursor = 0
    for name in members:
        sections = encode_document(docs[name])
        entry_sections = {}
        for section in fmt.SECTION_NAMES:
            data = sections[section]
            cursor = fmt.align8(cursor)
            entry_sections[section] = [cursor, len(data),
                                       fmt.crc32(data)]
            payloads.append((cursor, data))
            cursor += len(data)
        entries.append({"name": name, "nodes": docs[name].size,
                        "sections": entry_sections})

    header = fmt.dump_json({
        "format_version": fmt.FORMAT_VERSION,
        "shard": shard,
        "shards": shards,
        "documents": entries,
    })
    payload_start = fmt.align8(len(fmt.MAGIC) + 4 + len(header))
    out = bytearray(payload_start + cursor)
    out[:len(fmt.MAGIC)] = fmt.MAGIC
    out[len(fmt.MAGIC):len(fmt.MAGIC) + 4] = len(header).to_bytes(
        4, "little")
    out[len(fmt.MAGIC) + 4:len(fmt.MAGIC) + 4 + len(header)] = header
    for offset, data in payloads:
        out[payload_start + offset:payload_start + offset + len(data)] \
            = data
    return bytes(out), {"crc32": fmt.crc32(header)}


def _atomic_write(target: str, data: bytes) -> None:
    tmp = target + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, target)
