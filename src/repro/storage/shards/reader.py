"""Attach-side of the sharded index: mmap / shared-memory readers.

:class:`ShardIndex` opens an index directory written by
:func:`repro.storage.shards.writer.build_index` and exposes the corpus
*lazily*:

* **attach** maps every shard file (``mmap``, or
  ``multiprocessing.shared_memory`` when a spec carries segment names
  for the spawn path) and verifies only the manifest, magic, version
  and header checksums — O(shards), independent of corpus size;
* **probe** (:meth:`contains`) binary-searches the mapped postings
  section of one document without materialising it, so the executor's
  index early-exit works straight off the page cache;
* **materialise** (:meth:`document`) decodes one document on first
  touch, verifies its section checksums exactly once, and hands the
  structural arrays to :meth:`IntervalKernel.from_arrays` as zero-copy
  ``memoryview.cast("q")`` windows onto the map.

Every failure raises a structured :class:`~repro.errors.ShardError`
(``reason`` ∈ missing / truncated / bad-magic / version-skew /
checksum / bad-header / bad-manifest / unknown-document) — attach with
``on_error="skip"`` records bad shards in :attr:`failed_shards` and
serves the remaining ones, which is what the
:class:`~repro.storage.shards.router.ShardRouter` builds its
skip-and-degrade behaviour on.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import time
from collections import OrderedDict
from typing import Optional

from ...errors import ShardError
from ...index.inverted import InvertedIndex
from ...obs import (NOOP, SHARD_ATTACH_FAILURES, SHARD_ATTACH_SECONDS,
                    SHARD_BYTES_MAPPED, SHARD_DOCS_MATERIALIZED,
                    SHARDS_ATTACHED)
from ...xmltree.document import Document
from ...xmltree.labeling import TreeLabels
from . import format as fmt

__all__ = ["ShardIndex", "build_document"]

#: Shared-memory handles whose buffers were still exported (e.g. a
#: caller keeps a materialised Document alive) when their index was
#: closed.  Dropping the handle would make SharedMemory.__del__ raise a
#: spurious BufferError at GC time, so we pin it instead; the OS frees
#: the mapping at process exit regardless.
_PINNED_SEGMENTS: list = []


def build_document(name: str, nodes: int, section_of):
    """Build a :class:`Document` from encoded sections.

    ``section_of(section_name)`` returns a bytes-like object holding
    that section's payload (a mapped window for shard files, plain
    bytes for WAL records).  Returns ``(document, postings)``; the
    structural arrays are handed to the kernel as zero-copy
    ``memoryview.cast("q")`` windows, so the backing buffer must stay
    alive as long as the document does.
    """
    n = nodes
    parents_q = memoryview(section_of("parents")).cast("q")
    depth_q = memoryview(section_of("depth")).cast("q")
    pre_q = memoryview(section_of("pre")).cast("q")
    size_q = memoryview(section_of("size")).cast("q")
    post_q = memoryview(section_of("post")).cast("q")
    if len(parents_q) != n:
        raise ShardError(
            f"document {name!r} structural arrays do not match its "
            f"node count", reason="bad-header")
    parents = [None if parents_q[i] < 0 else parents_q[i]
               for i in range(n)]
    children: list[list[int]] = [[] for _ in range(n)]
    for i in range(n):
        p = parents_q[i]
        if p >= 0:
            children[p].append(i)
    pre = list(pre_q)
    preorder = [0] * n
    for node, rank in enumerate(pre):
        preorder[rank] = node
    labels = TreeLabels(list(depth_q), pre, list(size_q),
                        list(post_q), preorder)
    tags = fmt.decode_strings(section_of("tags"))
    texts = fmt.decode_strings(section_of("texts"))
    attrs = json.loads(bytes(section_of("attrs")))
    postings = fmt.decode_postings(section_of("postings"))
    per_node: list[list[str]] = [[] for _ in range(n)]
    for term, ids in postings.items():
        for nid in ids:
            per_node[nid].append(term)
    keywords = [frozenset(k) for k in per_node]
    doc = Document(tags, texts, parents, children, keywords,
                   attrs, name=name, labels=labels)
    # Hand the kernel the mapped windows: building it later is a
    # scratch-bitset allocation, never a per-node copy loop.
    doc._kernel_arrays = (parents_q, depth_q, pre_q, size_q)
    return doc, postings


class _ShardFile:
    """One mapped shard: buffer, parsed header, per-document entries."""

    __slots__ = ("shard", "path", "mv", "payload", "entries", "nbytes",
                 "verified", "_mmap", "_shm")

    def __init__(self, shard: int, path: str, mv, payload, entries,
                 nbytes: int, mm=None, shm=None) -> None:
        self.shard = shard
        self.path = path
        self.mv = mv
        self.payload = payload
        self.entries = entries
        self.nbytes = nbytes
        self.verified: set = set()
        self._mmap = mm
        self._shm = shm

    def close(self) -> None:
        # Materialised documents may still hold exported views into the
        # buffer; closing then would raise BufferError.  Release what we
        # can and leave the rest to garbage collection.
        self.payload = None
        self.mv = None
        try:
            if self._mmap is not None:
                self._mmap.close()
        except BufferError:
            pass
        self._mmap = None
        try:
            if self._shm is not None:
                self._shm.close()
        except BufferError:
            _PINNED_SEGMENTS.append(self._shm)
        self._shm = None


def _load_manifest(path: str) -> dict:
    manifest_path = os.path.join(path, fmt.MANIFEST_NAME)
    try:
        with open(manifest_path, "rb") as fh:
            raw = fh.read()
    except OSError as exc:
        raise ShardError(f"no shard manifest at {manifest_path}: {exc}",
                         reason="missing", path=manifest_path) from exc
    try:
        manifest = json.loads(raw)
    except ValueError as exc:
        raise ShardError(f"shard manifest is not valid JSON: {exc}",
                         reason="bad-manifest", path=manifest_path) from exc
    if not isinstance(manifest, dict) \
            or manifest.get("format") != "repro-shard-index":
        raise ShardError("file is not a repro shard-index manifest",
                         reason="bad-manifest", path=manifest_path)
    version = manifest.get("format_version")
    if version != fmt.FORMAT_VERSION:
        raise ShardError(
            f"index format version {version!r} does not match reader "
            f"version {fmt.FORMAT_VERSION} (rebuild the index)",
            reason="version-skew", path=manifest_path)
    for key in ("shards", "documents", "files"):
        if key not in manifest:
            raise ShardError(f"manifest is missing the {key!r} key",
                             reason="bad-manifest", path=manifest_path)
    return manifest


def _open_shard(shard: int, path: str, file_entry: dict,
                shm_name: Optional[str]) -> _ShardFile:
    """Map one shard file (or shm segment) and verify its header."""
    mm = None
    shm = None
    if shm_name is not None:
        from multiprocessing import resource_tracker, shared_memory
        try:
            shm = shared_memory.SharedMemory(name=shm_name)
        except OSError as exc:
            raise ShardError(
                f"shard {shard} shared-memory segment {shm_name!r} "
                f"unavailable: {exc}", reason="missing", shard=shard,
                path=path) from exc
        # The creating process owns the segment's lifetime; detach this
        # process's tracker registration so worker exit does not unlink
        # (or warn about) a segment the parent still serves.
        try:  # pragma: no cover - tracker internals vary by platform
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
        # Segment sizes are page-rounded by the kernel; trim the view to
        # the manifest's byte count so checks and offsets line up.
        expected = file_entry.get("bytes")
        mv = memoryview(shm.buf)
        if expected is not None and len(mv) >= expected:
            mv = mv[:expected]
        nbytes = len(mv)
    else:
        try:
            size = os.path.getsize(path)
            with open(path, "rb") as fh:
                mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        except OSError as exc:
            raise ShardError(f"cannot map shard {shard}: {exc}",
                             reason="missing", shard=shard,
                             path=path) from exc
        mv = memoryview(mm)
        nbytes = size

    try:
        expected = file_entry.get("bytes")
        if expected is not None and nbytes != expected:
            raise ShardError(
                f"shard {shard} is {nbytes} bytes, manifest says "
                f"{expected} (truncated or partially written file)",
                reason="truncated", shard=shard, path=path)
        magic_len = len(fmt.MAGIC)
        if nbytes < magic_len + 4 or bytes(mv[:magic_len]) != fmt.MAGIC:
            raise ShardError(f"shard {shard} lacks the shard magic",
                             reason="bad-magic", shard=shard, path=path)
        (header_len,) = struct.unpack_from("<I", mv, magic_len)
        header_end = magic_len + 4 + header_len
        if header_end > nbytes:
            raise ShardError(
                f"shard {shard} header overruns the file",
                reason="truncated", shard=shard, path=path)
        header_bytes = bytes(mv[magic_len + 4:header_end])
        expected_crc = file_entry.get("header_crc32")
        if expected_crc is not None \
                and fmt.crc32(header_bytes) != expected_crc:
            raise ShardError(
                f"shard {shard} header checksum mismatch",
                reason="checksum", shard=shard, path=path)
        try:
            header = json.loads(header_bytes)
        except ValueError as exc:
            raise ShardError(
                f"shard {shard} header is not valid JSON: {exc}",
                reason="bad-header", shard=shard, path=path) from exc
        version = header.get("format_version")
        if version != fmt.FORMAT_VERSION:
            raise ShardError(
                f"shard {shard} format version {version!r} does not "
                f"match reader version {fmt.FORMAT_VERSION}",
                reason="version-skew", shard=shard, path=path)
        if header.get("shard") != shard:
            raise ShardError(
                f"file claims to be shard {header.get('shard')!r}, "
                f"manifest placed it at shard {shard}",
                reason="bad-header", shard=shard, path=path)
        payload_start = fmt.align8(header_end)
        payload = mv[payload_start:]
        entries = {}
        for doc in header.get("documents", ()):
            sections = {}
            for section in fmt.SECTION_NAMES:
                triple = doc.get("sections", {}).get(section)
                if (not isinstance(triple, (list, tuple))
                        or len(triple) != 3):
                    raise ShardError(
                        f"document {doc.get('name')!r} in shard {shard} "
                        f"lacks the {section!r} section",
                        reason="bad-header", shard=shard, path=path)
                off, length, crc = triple
                if payload_start + off + length > nbytes:
                    raise ShardError(
                        f"section {section!r} of document "
                        f"{doc.get('name')!r} overruns shard {shard}",
                        reason="truncated", shard=shard, path=path)
                sections[section] = (off, length, crc)
            entries[doc["name"]] = {"nodes": doc["nodes"],
                                    "sections": sections}
        expected_docs = set(file_entry.get("documents", entries))
        if set(entries) != expected_docs:
            raise ShardError(
                f"shard {shard} document list disagrees with the "
                f"manifest", reason="bad-header", shard=shard, path=path)
        return _ShardFile(shard, path, mv, payload, entries, nbytes,
                          mm=mm, shm=shm)
    except ShardError:
        # The traceback keeps this frame's locals (and thus any derived
        # views) alive, so closing the buffers may legitimately fail
        # with BufferError; garbage collection finishes the job.
        try:
            mv.release()
            if mm is not None:
                mm.close()
            if shm is not None:
                shm.close()
        except BufferError:
            pass
        raise


class ShardIndex:
    """A read-only handle onto one attached shard index.

    Build with :meth:`attach` (mmap) or :meth:`from_spec` (the
    picklable form shipped to pool workers, optionally carrying
    shared-memory segment names for the spawn path).  Not thread-safe —
    one handle per process/worker, like the kernels it feeds.
    """

    def __init__(self, path: str, manifest: dict, files: dict,
                 failed: dict, *, cache_limit: Optional[int],
                 obs=NOOP) -> None:
        self._path = path
        self._manifest = manifest
        self._files = files  # shard -> _ShardFile
        self.failed_shards = failed  # shard -> ShardError
        self._cache_limit = cache_limit
        self._obs = obs
        self._documents: OrderedDict[str, Document] = OrderedDict()
        self._indexes: dict[str, InvertedIndex] = {}
        self._names = [name for name in sorted(manifest["documents"])
                       if manifest["documents"][name] in files]
        self._name_set = frozenset(self._names)
        self._materialized_total = 0
        self._shm_owned: list = []
        self._shm_names: Optional[dict] = None
        self._closed = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def attach(cls, path, *, on_error: str = "raise",
               cache_limit: Optional[int] = None, obs=NOOP,
               _shm_names: Optional[dict] = None) -> "ShardIndex":
        """Map the index at ``path`` and verify manifest + headers.

        ``on_error="raise"`` (default) propagates the first
        :class:`ShardError`; ``"skip"`` keeps going, records bad shards
        in :attr:`failed_shards` and serves the healthy remainder —
        attach only fails outright when the *manifest* itself is bad or
        no shard survives.
        """
        if on_error not in ("raise", "skip"):
            raise ValueError(f"on_error must be 'raise' or 'skip', "
                             f"got {on_error!r}")
        path = os.fspath(path)
        started = time.perf_counter()
        manifest = _load_manifest(path)
        by_shard = {entry["shard"]: entry for entry in manifest["files"]}
        files: dict[int, _ShardFile] = {}
        failed: dict[int, ShardError] = {}
        for shard in range(manifest["shards"]):
            entry = by_shard.get(shard)
            if entry is None:
                error = ShardError(
                    f"manifest lists no file for shard {shard}",
                    reason="bad-manifest", shard=shard, path=path)
            else:
                shard_path = os.path.join(path, entry["file"])
                shm_name = (_shm_names or {}).get(str(shard))
                try:
                    files[shard] = _open_shard(shard, shard_path, entry,
                                               shm_name)
                    continue
                except ShardError as exc:
                    error = exc
            if on_error == "raise":
                for sf in files.values():
                    sf.close()
                raise error
            failed[shard] = error
        if not files:
            raise ShardError(
                f"every shard of {path} failed to attach",
                reason="bad-manifest", path=path)
        index = cls(path, manifest, files, failed,
                    cache_limit=cache_limit, obs=obs)
        metrics = obs.metrics
        metrics.histogram(
            SHARD_ATTACH_SECONDS, "Wall seconds per index attach."
        ).observe(time.perf_counter() - started)
        metrics.gauge(
            SHARDS_ATTACHED, "Shards currently mapped.").set(len(files))
        metrics.gauge(
            SHARD_BYTES_MAPPED, "Bytes of shard files currently mapped."
        ).set(index.bytes_mapped)
        if failed:
            metrics.counter(
                SHARD_ATTACH_FAILURES, "Shards that failed to attach."
            ).inc(len(failed))
        return index

    @classmethod
    def from_spec(cls, spec: dict, obs=NOOP) -> "ShardIndex":
        """Re-attach from the picklable spec of :meth:`attach_spec`."""
        return cls.attach(spec["path"],
                          on_error=spec.get("on_error", "raise"),
                          cache_limit=spec.get("cache_limit"),
                          obs=obs, _shm_names=spec.get("shm"))

    def attach_spec(self, *, shared_memory: bool = False) -> dict:
        """A picklable recipe workers use to attach their own handle.

        With ``shared_memory=True`` the shard bytes are copied once
        into ``multiprocessing.shared_memory`` segments owned by this
        process, and the spec carries the segment names — spawn-started
        workers then attach without re-reading the files.
        """
        spec = {"path": self._path,
                "on_error": "skip" if self.failed_shards else "raise",
                "cache_limit": self._cache_limit}
        if shared_memory:
            spec["shm"] = self._ensure_shared_segments()
        return spec

    def _ensure_shared_segments(self) -> dict:
        if self._shm_names is None:
            from multiprocessing import shared_memory
            names = {}
            for shard, sf in self._files.items():
                shm = shared_memory.SharedMemory(create=True,
                                                 size=sf.nbytes)
                shm.buf[:sf.nbytes] = sf.mv[:sf.nbytes]
                names[str(shard)] = shm.name
                self._shm_owned.append(shm)
            self._shm_names = names
        return dict(self._shm_names)

    # ------------------------------------------------------------------
    # Corpus surface
    # ------------------------------------------------------------------

    @property
    def path(self) -> str:
        return self._path

    @property
    def shards(self) -> int:
        """Total shard count declared by the manifest."""
        return self._manifest["shards"]

    @property
    def attached_shards(self) -> list[int]:
        """Shards this handle successfully mapped, ascending."""
        return sorted(self._files)

    @property
    def degraded(self) -> bool:
        """True when at least one shard failed to attach."""
        return bool(self.failed_shards)

    @property
    def bytes_mapped(self) -> int:
        return sum(sf.nbytes for sf in self._files.values())

    def names(self) -> list[str]:
        """Names of every *servable* document (healthy shards only)."""
        return list(self._names)

    def __contains__(self, name: str) -> bool:
        return name in self._name_set

    def __len__(self) -> int:
        return len(self._names)

    def shard_of(self, name: str) -> int:
        """The shard a document lives in (from the manifest)."""
        try:
            return self._manifest["documents"][name]
        except KeyError:
            raise ShardError(f"unknown document {name!r}",
                             reason="unknown-document",
                             path=self._path) from None

    def shard_documents(self, shard: int) -> list[str]:
        """Servable document names in one shard, sorted."""
        return [n for n in self._names
                if self._manifest["documents"][n] == shard]

    def node_count(self, name: str) -> int:
        """Node count of a document, read from the header (no decode)."""
        sf, entry = self._locate(name)
        return entry["nodes"]

    # ------------------------------------------------------------------
    # Probing and materialisation
    # ------------------------------------------------------------------

    def _locate(self, name: str):
        shard = self.shard_of(name)
        sf = self._files.get(shard)
        if sf is None:
            error = self.failed_shards.get(shard)
            raise ShardError(
                f"document {name!r} lives in shard {shard}, which "
                f"failed to attach"
                + (f": {error}" if error is not None else ""),
                reason=(error.reason if error is not None
                        else "missing"),
                shard=shard, path=self._path)
        try:
            return sf, sf.entries[name]
        except KeyError:
            raise ShardError(
                f"manifest places {name!r} in shard {shard} but the "
                f"shard header does not list it",
                reason="bad-header", shard=shard,
                path=sf.path) from None

    def _verify(self, sf: _ShardFile, name: str, entry: dict) -> None:
        """Checksum every section of a document, once per handle."""
        if name in sf.verified:
            return
        for section, (off, length, crc) in entry["sections"].items():
            actual = fmt.crc32(sf.payload[off:off + length])
            if actual != crc:
                raise ShardError(
                    f"section {section!r} of document {name!r} fails "
                    f"its checksum (shard {sf.shard})",
                    reason="checksum", shard=sf.shard, path=sf.path)
        sf.verified.add(name)

    def _section(self, sf: _ShardFile, entry: dict, section: str):
        off, length, _ = entry["sections"][section]
        return sf.payload[off:off + length]

    def contains(self, name: str, term: str) -> bool:
        """Does ``name`` contain ``term``?  Pure mapped-postings probe."""
        sf, entry = self._locate(name)
        if name in self._indexes:
            return self._indexes[name].contains(term)
        self._verify(sf, name, entry)
        return fmt.postings_lookup(
            self._section(sf, entry, "postings"), term) is not None

    def document(self, name: str) -> Document:
        """Materialise (and cache) one document from the mapped bytes."""
        doc = self._documents.get(name)
        if doc is not None:
            self._documents.move_to_end(name)
            return doc
        sf, entry = self._locate(name)
        self._verify(sf, name, entry)
        doc, postings = self._materialize(sf, entry, name)
        self._documents[name] = doc
        self._indexes[name] = InvertedIndex.from_postings(doc, postings)
        self._materialized_total += 1
        self._obs.metrics.counter(
            SHARD_DOCS_MATERIALIZED,
            "Documents decoded from mapped shards.").inc()
        if self._cache_limit is not None \
                and len(self._documents) > self._cache_limit:
            evicted, _ = self._documents.popitem(last=False)
            self._indexes.pop(evicted, None)
        return doc

    def inverted_index(self, name: str) -> InvertedIndex:
        """The document's inverted index, built from mapped postings."""
        if name not in self._indexes:
            self.document(name)
        return self._indexes[name]

    def _materialize(self, sf: _ShardFile, entry: dict, name: str):
        try:
            return build_document(
                name, entry["nodes"],
                lambda section: self._section(sf, entry, section))
        except ShardError as exc:
            if exc.shard is None:
                # Re-raise with this shard's context attached.
                raise ShardError(str(exc), reason=exc.reason,
                                 shard=sf.shard, path=sf.path) from None
            raise

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Plain-dict snapshot for /varz and the CLI inspect command."""
        return {
            "path": self._path,
            "format_version": self._manifest["format_version"],
            "shards": self.shards,
            "shards_attached": len(self._files),
            "shards_failed": {str(s): e.to_dict()
                              for s, e in self.failed_shards.items()},
            "documents": len(self._manifest["documents"]),
            "documents_servable": len(self._names),
            "bytes_mapped": self.bytes_mapped,
            "documents_materialized": self._materialized_total,
            "documents_cached": len(self._documents),
            "cache_limit": self._cache_limit,
            "shared_segments": len(self._shm_owned),
        }

    def verify_all(self) -> dict:
        """Checksum every document of every attached shard (slow path).

        Used by ``repro-search index inspect --verify``; returns
        ``{"documents": n, "failures": [ShardError dicts]}``.
        """
        checked = 0
        failures = []
        for sf in self._files.values():
            for name, entry in sf.entries.items():
                try:
                    self._verify(sf, name, entry)
                    checked += 1
                except ShardError as exc:
                    failures.append(exc.to_dict())
        return {"documents": checked, "failures": failures}

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._closed

    def close(self) -> None:
        """Drop caches and release the maps (deterministic, idempotent).

        Clearing the document/index caches first drops the only views
        this handle itself holds into the mapped payload, so — unless
        the *caller* still holds a materialised :class:`Document` — the
        ``mmap``/shared-memory buffers release immediately rather than
        at an unpredictable GC point.  A second call is a no-op.
        """
        if self._closed:
            return
        self._closed = True
        self._documents.clear()
        self._indexes.clear()
        for sf in self._files.values():
            sf.close()
        for shm in self._shm_owned:
            try:
                shm.unlink()
            except OSError:  # pragma: no cover - already unlinked
                pass
            try:
                shm.close()
            except BufferError:  # pragma: no cover - views still out
                _PINNED_SEGMENTS.append(shm)
        self._shm_owned = []
        self._shm_names = None

    def __enter__(self) -> "ShardIndex":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ShardIndex(path={self._path!r}, "
                f"shards={len(self._files)}/{self.shards}, "
                f"documents={len(self._names)})")
