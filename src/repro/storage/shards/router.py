"""Scatter-gather query routing over an attached shard index.

:class:`ShardRouter` sits between a collection-level caller and the
``index_path=`` mode of :class:`~repro.exec.parallel.ParallelExecutor`.
The executor already scatters ``(document, query)`` items so that no
chunk straddles a shard boundary; the router adds the *health* layer on
top:

* shards that failed to attach (``on_error="skip"``) are excluded from
  the fan-out and reported, never silently dropped;
* every shard gets its own :class:`~repro.guard.CircuitBreaker` —
  a shard whose chunks keep exhausting their retry budget is taken out
  of the fan-out for ``breaker_reset_s`` seconds, then probed
  (half-open) with real traffic;
* a :class:`~repro.errors.ShardError` raised mid-run (for example a
  checksum failure surfacing at first materialisation) trips that
  shard's breaker and the run is re-routed over the surviving shards —
  bounded by the shard count, so a fully corrupt index still
  terminates.

Every run produces a :class:`RouterReport` (``router.last_report``)
naming the shards queried and skipped, mirrored into
``repro_shard_router_*`` metrics and the ``/varz`` shard section.
Results for the routed documents remain bit-identical to the serial
in-memory path; degradation only ever *narrows* the document set, and
always observably.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ...errors import ShardError
from ...guard.breaker import CircuitBreaker
from ...obs import (NOOP, SHARD_BREAKER_STATE, SHARD_ROUTER_EXCLUSIONS,
                    SHARD_ROUTER_FANOUT, SHARD_ROUTER_REROUTES,
                    SHARD_ROUTER_SKIPPED, Observability)
from .reader import ShardIndex

__all__ = ["ShardRouter", "RouterReport"]


@dataclass
class RouterReport:
    """What one routed run fanned out to — and what it had to avoid.

    ``skipped`` maps shard number to the reason it was excluded:
    an attach-time failure reason (``"truncated"``, ``"checksum"``,
    ``"version-skew"`` ...), ``"breaker-open"`` for a tripped breaker,
    or a mid-run :class:`~repro.errors.ShardError` reason for shards
    evicted while the run was in flight.  ``documents_skipped`` counts
    requested documents that lived on those shards.  ``reroutes``
    counts mid-run evictions (each one re-dispatches the surviving
    shards).  ``resilience`` is the underlying executor's
    :class:`~repro.exec.resilience.ResilienceReport` for the final
    dispatch.
    """

    fanout: int = 0
    shards_queried: list = field(default_factory=list)
    skipped: dict = field(default_factory=dict)
    evicted: list = field(default_factory=list)
    documents_routed: int = 0
    documents_skipped: int = 0
    reroutes: int = 0
    resilience: Optional[object] = None

    @property
    def degraded(self) -> bool:
        """True when any shard was excluded or any chunk fell back."""
        if self.skipped:
            return True
        return bool(self.resilience is not None
                    and self.resilience.degraded)

    @property
    def clean(self) -> bool:
        return not self.degraded and not self.reroutes

    def to_dict(self) -> dict:
        return {
            "fanout": self.fanout,
            "shards_queried": list(self.shards_queried),
            "skipped": {str(k): v for k, v in self.skipped.items()},
            "evicted": list(self.evicted),
            "documents_routed": self.documents_routed,
            "documents_skipped": self.documents_skipped,
            "reroutes": self.reroutes,
            "degraded": self.degraded,
            "resilience": (self.resilience.to_dict()
                           if self.resilience is not None else None),
        }


class ShardRouter:
    """Health-aware scatter-gather over a sharded on-disk index.

    Parameters
    ----------
    index:
        A manifest directory path (attached here with
        ``on_error="skip"``, so a partially corrupt index degrades
        instead of failing) or an already-attached
        :class:`~repro.storage.shards.ShardIndex`.
    workers / start_method / chunk_size / obs / resilience / faults /
    shared_memory:
        Forwarded to the pooled executor (see
        :class:`~repro.exec.parallel.ParallelExecutor`).
    breaker_failures / breaker_reset_s:
        Per-shard circuit breaker tuning: consecutive failed *runs*
        (not chunks) before a shard is taken out of the fan-out, and
        seconds before the half-open probe.
    strict:
        When true, any exclusion (attach failure, open breaker,
        mid-run eviction) raises the underlying
        :class:`~repro.errors.ShardError` instead of degrading.
        Default false: degrade, report, keep serving.
    """

    def __init__(self, index, *,
                 workers: Optional[int] = None,
                 start_method: Optional[str] = None,
                 chunk_size: Optional[int] = None,
                 obs: Optional[Observability] = None,
                 resilience=None, faults=None,
                 shared_memory: Optional[bool] = None,
                 cache_limit: Optional[int] = 64,
                 breaker_failures: int = 3,
                 breaker_reset_s: float = 30.0,
                 strict: bool = False,
                 clock=time.monotonic) -> None:
        self._obs = obs if obs is not None else NOOP
        if isinstance(index, ShardIndex):
            self.index = index
            self._owns_index = False
        else:
            self.index = ShardIndex.attach(index, on_error="skip",
                                           cache_limit=cache_limit,
                                           obs=self._obs)
            self._owns_index = True
        self.strict = strict
        self._breakers: dict[int, CircuitBreaker] = {
            shard: CircuitBreaker(failure_threshold=breaker_failures,
                                  reset_s=breaker_reset_s, clock=clock)
            for shard in self.index.attached_shards
        }
        # Cumulative per-shard health (survives across runs; the
        # /varz shards section and the ops console read it to show
        # *which* shard is sick, not just that one is).
        self.history: dict[int, dict] = {
            shard: self._fresh_history()
            for shard in self.index.attached_shards
        }
        from ...exec.parallel import ParallelExecutor
        self.executor = ParallelExecutor(
            index_path=self.index, workers=workers,
            start_method=start_method, chunk_size=chunk_size,
            obs=self._obs, resilience=resilience, faults=faults,
            shared_memory=shared_memory)
        self.last_report = RouterReport()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def _route(self, documents: Optional[Iterable[str]],
               report: RouterReport) -> tuple[list[str], set[int]]:
        """Partition the requested documents into routable targets.

        Returns ``(targets, healthy_shards)``.  Shards excluded by an
        attach failure or an open breaker land in ``report.skipped``
        with their reason; in ``strict`` mode the first attach failure
        re-raises instead.
        """
        for shard, error in sorted(self.index.failed_shards.items()):
            if self.strict:
                raise error
            report.skipped[shard] = error.reason
        healthy: set[int] = set()
        for shard in self.index.attached_shards:
            if shard in report.skipped:
                continue
            if self._breakers[shard].allow():
                healthy.add(shard)
            else:
                if self.strict:
                    raise ShardError(
                        f"shard {shard} circuit breaker is open",
                        reason="breaker-open", shard=shard,
                        path=self.index.path)
                report.skipped[shard] = "breaker-open"
        requested = (list(documents) if documents is not None
                     else self.index.names())
        if documents is None:
            # names() already excludes attach-failed shards; their
            # documents are skipped work and must be accounted for.
            report.documents_skipped += (
                self.index.stats()["documents"] - len(requested))
        targets: list[str] = []
        for name in requested:
            # Unknown names raise here (unknown-document), exactly as
            # the in-memory executor raises DocumentError.
            shard = self.index.shard_of(name)
            if shard in healthy:
                targets.append(name)
            else:
                report.documents_skipped += 1
                self._shard_history(shard)["documents_skipped"] += 1
        return targets, healthy

    @staticmethod
    def _fresh_history() -> dict:
        return {"runs": 0, "failed_runs": 0, "excluded_runs": 0,
                "reroutes": 0, "documents_skipped": 0,
                "exclusions": {}, "last_exclusion": None}

    def _shard_history(self, shard: int) -> dict:
        # Attach-failed shards have no breaker but still need a ledger.
        return self.history.setdefault(shard, self._fresh_history())

    def _evict(self, shard: int, reason: str, targets: list[str],
               healthy: set[int], report: RouterReport) -> list[str]:
        """Take a shard out of an in-flight run after a ShardError."""
        self._breakers[shard].record_failure()
        report.skipped[shard] = reason
        report.evicted.append(shard)
        report.reroutes += 1
        healthy.discard(shard)
        kept = []
        for name in targets:
            if self.index.shard_of(name) == shard:
                report.documents_skipped += 1
            else:
                kept.append(name)
        self._shard_history(shard)["documents_skipped"] += (
            len(targets) - len(kept))
        return kept

    def run(self, queries: Sequence, strategy=None,
            documents: Optional[Iterable[str]] = None,
            kernel: Optional[str] = None,
            obs: Optional[Observability] = None,
            resilience=None, faults=None, budget=None) -> list:
        """Evaluate a query batch across the healthy shards.

        Returns one ``CollectionResult`` per query, in query order —
        bit-identical to the in-memory path over the routed documents.
        ``router.last_report`` names anything that was excluded.
        """
        from ...core.strategies import Strategy
        if strategy is None:
            strategy = Strategy.PUSHDOWN
        ob = obs if obs is not None else self._obs
        report = RouterReport()
        targets, healthy = self._route(documents, report)
        results = None
        while True:
            queried = sorted({self.index.shard_of(n) for n in targets})
            try:
                results = self.executor.run(
                    list(queries), strategy=strategy, documents=targets,
                    kernel=kernel, obs=ob, resilience=resilience,
                    faults=faults, budget=budget)
            except ShardError as exc:
                # A shard went bad mid-flight (e.g. lazy checksum
                # verification failing at first materialisation).
                # Evict it, charge its breaker, re-route the rest.
                if (self.strict or exc.shard is None
                        or exc.shard not in healthy):
                    raise
                targets = self._evict(exc.shard, exc.reason, targets,
                                      healthy, report)
                continue
            break
        report.resilience = self.executor.last_report
        report.fanout = len(queried)
        report.shards_queried = queried
        report.documents_routed = len(targets)
        # Charge the breakers: a shard whose chunks exhausted their
        # retry budget this run (the executor's serial fallback) counts
        # as one failure; a cleanly-served shard resets its breaker.
        failed_groups = report.resilience.failed_groups
        for shard in queried:
            if failed_groups.get(shard):
                self._breakers[shard].record_failure()
            else:
                self._breakers[shard].record_success()
        self.last_report = report
        self._remember(report)
        self._observe(ob, report)
        return results

    def search(self, query, strategy=None,
               documents: Optional[Iterable[str]] = None,
               kernel: Optional[str] = None,
               obs: Optional[Observability] = None,
               resilience=None, faults=None, budget=None):
        """Route one query; returns a single ``CollectionResult``."""
        return self.run([query], strategy=strategy, documents=documents,
                        kernel=kernel, obs=obs, resilience=resilience,
                        faults=faults, budget=budget)[0]

    def _remember(self, report: RouterReport) -> None:
        """Fold one run's report into the cumulative per-shard ledger."""
        failed_groups = (report.resilience.failed_groups
                         if report.resilience is not None else {})
        for shard in report.shards_queried:
            entry = self._shard_history(shard)
            entry["runs"] += 1
            if failed_groups.get(shard):
                entry["failed_runs"] += 1
        for shard, reason in report.skipped.items():
            entry = self._shard_history(shard)
            entry["excluded_runs"] += 1
            entry["exclusions"][reason] = (
                entry["exclusions"].get(reason, 0) + 1)
            entry["last_exclusion"] = reason
        for shard in report.evicted:
            self._shard_history(shard)["reroutes"] += 1

    def _observe(self, ob: Observability, report: RouterReport) -> None:
        if not ob.enabled:
            return
        m = ob.metrics
        m.histogram(SHARD_ROUTER_FANOUT,
                    "Shards queried per routed run.").observe(
                        report.fanout)
        if report.skipped:
            m.counter(SHARD_ROUTER_SKIPPED,
                      "Shards excluded from routed runs.").inc(
                          len(report.skipped))
        for shard, reason in report.skipped.items():
            m.counter(SHARD_ROUTER_EXCLUSIONS,
                      "Shards excluded from routed runs, by shard "
                      "and reason.",
                      labels={"shard": str(shard), "reason": reason}
                      ).inc()
        for shard in report.evicted:
            m.counter(SHARD_ROUTER_REROUTES,
                      "Mid-run shard evictions rerouted to the "
                      "surviving shards.",
                      labels={"shard": str(shard)}).inc()
        for shard, breaker in self._breakers.items():
            m.gauge(SHARD_BREAKER_STATE,
                    "Per-shard breaker state (0 closed, 1 half-open, "
                    "2 open).", labels={"shard": str(shard)}
                    ).set(breaker.state_code)

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------

    def breaker(self, shard: int) -> CircuitBreaker:
        """The circuit breaker guarding one attached shard."""
        return self._breakers[shard]

    def pretrip_suspect_shards(self, min_failures: int = 1,
                               reason: str = "pre-tripped"
                               ) -> list[int]:
        """Force-open the breakers of shards already showing trouble.

        The SLO feedback loop calls this when a burn-rate alert goes
        critical: instead of waiting for ``breaker_failures``
        consecutive failed runs, any shard with at least
        ``min_failures`` recent consecutive failures is taken out of
        the fan-out immediately.  Healthy shards (zero consecutive
        failures) are never touched.  Returns the shards tripped.
        """
        tripped: list[int] = []
        for shard, breaker in sorted(self._breakers.items()):
            if breaker.consecutive_failures < min_failures:
                continue
            if breaker.trip():
                tripped.append(shard)
                entry = self._shard_history(shard)
                entry["exclusions"][reason] = (
                    entry["exclusions"].get(reason, 0) + 1)
                entry["last_exclusion"] = reason
        return tripped

    @property
    def degraded(self) -> bool:
        """True when the index is partially attached, any breaker is
        off-closed, or the last run degraded."""
        if self.index.degraded or self.last_report.degraded:
            return True
        return any(b.state_code != 0 for b in self._breakers.values())

    def stats(self) -> dict:
        """One JSON-ready snapshot for ``/varz`` and debugging."""
        return {
            "index": self.index.stats(),
            "breakers": {str(s): b.to_dict()
                         for s, b in sorted(self._breakers.items())},
            "history": {str(s): dict(h, exclusions=dict(h["exclusions"]))
                        for s, h in sorted(self.history.items())},
            "last_run": self.last_report.to_dict(),
            "degraded": self.degraded,
        }

    def close(self) -> None:
        """Shut the pool down; detach the index if this router owns it."""
        self.executor.shutdown()
        if self._owns_index:
            self.index.close()

    #: Executor-compatible alias, so a router can stand in wherever a
    #: :class:`~repro.exec.parallel.ParallelExecutor` is shut down.
    shutdown = close

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"ShardRouter(path={self.index.path!r}, "
                f"shards={self.index.shards}, "
                f"attached={len(self.index.attached_shards)}, "
                f"workers={self.executor.workers})")
