"""Binary layout of the persistent sharded index.

One index is a directory::

    index/
      manifest.json     global manifest (version, shard map, checksums)
      shard-0000.bin    one file per shard
      shard-0001.bin
      ...

Documents are partitioned across shards by a *stable* hash of their
name (``zlib.crc32(name) % shards``), so the same corpus always lands
in the same shards regardless of filesystem enumeration order or
Python hash randomisation.

Shard file layout (all integers little-endian)::

    magic      8 bytes   b"RXSHRD01"
    header_len u32       byte length of the JSON header
    header     JSON      {format_version, shard, shards, documents: [...]}
    payload    8-byte aligned binary sections

Each document entry in the header names its sections with
``[offset, length, crc32]`` triples; offsets are relative to the start
of the payload region (``align8(12 + header_len)``).  Five sections
mirror :class:`~repro.xmltree.intervals.IntervalKernel`'s flat layout
exactly — ``parents`` / ``depth`` / ``pre`` / ``size`` / ``post`` as
int64 arrays (root parent encoded as ``-1``) — so a reader can hand
``memoryview.cast("q")`` windows straight to
:meth:`IntervalKernel.from_arrays` with zero copies.  The remaining
sections carry the non-structural state: ``tags`` and ``texts`` as
offset-table string blobs, ``attrs`` as JSON (object key order is
preserved, round-tripping XML attribute order), and ``postings`` as a
bisectable keyword → node-id table (see :func:`encode_postings`).

Nothing here imports the tree model; this module is pure bytes in /
bytes out so both the writer and reader build on it.
"""

from __future__ import annotations

import json
import struct
import zlib

__all__ = [
    "MAGIC", "FORMAT_VERSION", "MANIFEST_NAME", "SECTION_NAMES",
    "shard_file_name", "shard_of", "align8",
    "encode_int64", "encode_strings", "decode_strings",
    "encode_postings", "decode_postings", "postings_lookup",
    "postings_terms", "dump_json", "crc32",
]

MAGIC = b"RXSHRD01"
FORMAT_VERSION = 1
MANIFEST_NAME = "manifest.json"

#: Section order inside each document's payload block.
SECTION_NAMES = ("parents", "depth", "pre", "size", "post",
                 "tags", "texts", "attrs", "postings")

_U32 = struct.Struct("<I")


def shard_file_name(shard: int) -> str:
    """Canonical file name of shard ``shard`` inside the index dir."""
    return f"shard-{shard:04d}.bin"


def shard_of(name: str, shards: int) -> int:
    """Stable shard assignment for a document name.

    crc32 is deterministic across processes and platforms (unlike
    ``hash()`` under PYTHONHASHSEED randomisation), so shard layout is
    reproducible byte-for-byte.
    """
    return zlib.crc32(name.encode("utf-8")) % shards


def align8(offset: int) -> int:
    """Round ``offset`` up to the next 8-byte boundary."""
    return (offset + 7) & ~7


# ----------------------------------------------------------------------
# int64 arrays (the IntervalKernel mirror sections)
# ----------------------------------------------------------------------

def encode_int64(values) -> bytes:
    """Pack a sequence of ints as little-endian int64."""
    return struct.pack(f"<{len(values)}q", *values)


# ----------------------------------------------------------------------
# String tables (tags / texts)
# ----------------------------------------------------------------------

def encode_strings(items) -> bytes:
    """``u32 N, u32 offsets[N+1], utf-8 blob`` — decoded in one pass."""
    blobs = [s.encode("utf-8") for s in items]
    offsets = [0]
    for b in blobs:
        offsets.append(offsets[-1] + len(b))
    n = len(blobs)
    return b"".join([_U32.pack(n),
                     struct.pack(f"<{n + 1}I", *offsets),
                     *blobs])


def decode_strings(buf) -> list:
    """Inverse of :func:`encode_strings` over any bytes-like object."""
    mv = memoryview(buf)
    (n,) = _U32.unpack_from(mv, 0)
    offsets = mv[4:4 + 4 * (n + 1)].cast("I")
    blob_start = 4 + 4 * (n + 1)
    blob = mv[blob_start:]
    return [str(blob[offsets[i]:offsets[i + 1]], "utf-8")
            for i in range(n)]


# ----------------------------------------------------------------------
# Postings (keyword -> sorted node ids), bisectable without decoding
# ----------------------------------------------------------------------
#
#   u32 T              term count
#   u32 total          total posting entries
#   u32 term_offs[T+1] byte offsets into the term blob
#   u32 id_offs[T+1]   entry offsets into the ids array
#   term blob          utf-8 terms, concatenated, sorted bytewise,
#                      zero-padded to a 4-byte boundary
#   u32 ids[total]     concatenated sorted posting lists
#
# Terms are sorted by their utf-8 bytes, which equals code-point order,
# so ``postings_lookup`` can binary-search the blob directly against an
# encoded query term — answering "does this document contain the term?"
# from the mapped file without materialising anything.

def encode_postings(postings: dict) -> bytes:
    """Serialise ``{term: sorted node ids}`` into the bisectable layout."""
    terms = sorted(postings)
    blobs = [t.encode("utf-8") for t in terms]
    term_offs = [0]
    for b in blobs:
        term_offs.append(term_offs[-1] + len(b))
    id_offs = [0]
    for t in terms:
        id_offs.append(id_offs[-1] + len(postings[t]))
    t = len(terms)
    total = id_offs[-1]
    blob = b"".join(blobs)
    pad = (-len(blob)) % 4
    ids = []
    for term in terms:
        ids.extend(postings[term])
    return b"".join([
        _U32.pack(t), _U32.pack(total),
        struct.pack(f"<{t + 1}I", *term_offs),
        struct.pack(f"<{t + 1}I", *id_offs),
        blob, b"\x00" * pad,
        struct.pack(f"<{total}I", *ids),
    ])


class _PostingsView:
    """Parsed offsets of one mapped postings section (no data copies)."""

    __slots__ = ("count", "term_offs", "id_offs", "blob", "ids")

    def __init__(self, buf) -> None:
        mv = memoryview(buf)
        (self.count,) = _U32.unpack_from(mv, 0)
        (total,) = _U32.unpack_from(mv, 4)
        t1 = self.count + 1
        self.term_offs = mv[8:8 + 4 * t1].cast("I")
        self.id_offs = mv[8 + 4 * t1:8 + 8 * t1].cast("I")
        blob_start = 8 + 8 * t1
        blob_len = self.term_offs[self.count]
        self.blob = mv[blob_start:blob_start + blob_len]
        ids_start = blob_start + blob_len + ((-blob_len) % 4)
        self.ids = mv[ids_start:ids_start + 4 * total].cast("I")

    def find(self, term: str) -> int:
        """Binary-search the term blob; return the term slot or -1."""
        target = term.encode("utf-8")
        offs = self.term_offs
        blob = self.blob
        lo, hi = 0, self.count
        while lo < hi:
            mid = (lo + hi) // 2
            cand = bytes(blob[offs[mid]:offs[mid + 1]])
            if cand < target:
                lo = mid + 1
            elif cand > target:
                hi = mid
            else:
                return mid
        return -1


def postings_lookup(buf, term: str):
    """Posting list for ``term`` from a mapped section, or ``None``.

    Pure index arithmetic plus one binary search over the mapped term
    blob — no dict is built, so probing a cold document touches only a
    handful of pages.
    """
    view = _PostingsView(buf)
    slot = view.find(term)
    if slot < 0:
        return None
    return list(view.ids[view.id_offs[slot]:view.id_offs[slot + 1]])


def postings_terms(buf) -> list:
    """Every term in a mapped postings section (decoded, sorted)."""
    view = _PostingsView(buf)
    offs = view.term_offs
    blob = view.blob
    return [str(blob[offs[i]:offs[i + 1]], "utf-8")
            for i in range(view.count)]


def decode_postings(buf) -> dict:
    """Full inverse of :func:`encode_postings` (used at materialise)."""
    view = _PostingsView(buf)
    offs = view.term_offs
    id_offs = view.id_offs
    blob = view.blob
    ids = view.ids
    out = {}
    for i in range(view.count):
        term = str(blob[offs[i]:offs[i + 1]], "utf-8")
        out[term] = list(ids[id_offs[i]:id_offs[i + 1]])
    return out


# ----------------------------------------------------------------------
# Headers and manifest
# ----------------------------------------------------------------------

def dump_json(doc: dict) -> bytes:
    """Deterministic JSON bytes (sorted keys, no whitespace drift)."""
    return json.dumps(doc, sort_keys=True, ensure_ascii=False,
                      separators=(",", ":")).encode("utf-8")


def crc32(data) -> int:
    """crc32 of any bytes-like object, as an unsigned int."""
    return zlib.crc32(data) & 0xFFFFFFFF
