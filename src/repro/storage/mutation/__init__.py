"""Crash-safe live index mutation (``repro.storage.mutation``).

A write-ahead log + epoch-versioned snapshot layer over
:mod:`repro.storage.shards`: documents can be added, replaced and
removed while queries run, every write is durable before it is
visible, and every reader sees one consistent epoch.

* :class:`MutableIndex` — the single-writer handle (create / open /
  add / remove / commit / compact / snapshot / fsck).
* :class:`Snapshot` / :func:`attach_snapshot` — epoch-pinned consistent
  read views, in-process or rebuilt from disk by pool workers.
* :class:`WriteAheadLog` / :func:`read_records` — the checksummed
  record log and its torn-tail-aware scanner.
* :class:`EpochManager` — manifest publication (the atomic ``CURRENT``
  flip), refcounted pins and garbage collection.
* :func:`fsck` — offline verify/repair, surfaced as
  ``repro-search index fsck``.
"""

from .delta import DeltaView
from .epochs import EpochManager, load_manifest, read_current
from .mutable import MutableIndex, Snapshot, attach_snapshot, fsck
from .wal import (OP_ADD, OP_REMOVE, OP_REPLACE, WriteAheadLog,
                  read_records)

__all__ = [
    "MutableIndex", "Snapshot", "attach_snapshot", "fsck",
    "DeltaView", "EpochManager", "WriteAheadLog", "read_records",
    "read_current", "load_manifest",
    "OP_ADD", "OP_REPLACE", "OP_REMOVE",
]
