"""The mutable index facade: WAL + delta + epochs over shard files.

:class:`MutableIndex` is the single-writer handle on a live index
directory::

    CURRENT               -> "manifest.000007.json"
    manifest.000007.json  epoch manifest (generation, base, WAL prefix)
    gen-0001/             base generation (a normal sharded index)
    wal-000001.log        this generation's write-ahead log

Writes (``add`` / ``replace`` / ``remove``) append a WAL record and
update the in-memory delta; :meth:`commit` makes them durable and
visible by fsyncing the WAL and publishing a new epoch manifest.
Readers take :meth:`snapshot` — an immutable, epoch-pinned view merging
the mmap base with the delta — or, in pool workers,
:func:`attach_snapshot` rebuilds the same view from disk.
:meth:`compact` folds the delta into a fresh generation directory
(built with the ordinary shard writer, so readers attach it with the
ordinary reader) and starts an empty WAL.

Recovery is the open path itself: :meth:`open` replays exactly the
committed WAL prefix named by the current manifest, truncates anything
past it (torn tails *and* intact-but-uncommitted records — a write
whose commit never published is reported failed, not resurrected), and
the index comes up at precisely the last committed epoch.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Optional

from ...errors import ShardError, WALError
from ...index.inverted import InvertedIndex
from ...obs import (MUTATION_COMMITS, MUTATION_COMPACTIONS,
                    MUTATION_DELTA_DOCUMENTS, MUTATION_EPOCH,
                    MUTATION_EPOCHS_GCED, MUTATION_EPOCHS_PINNED,
                    MUTATION_RECOVERY_SECONDS, MUTATION_WAL_BYTES,
                    MUTATION_WAL_RECORDS, MUTATION_WAL_TAIL_DISCARDED,
                    NOOP)
from ..shards.reader import ShardIndex
from ..shards.writer import build_index, encode_document
from . import epochs as ep
from .delta import DeltaView
from .wal import (OP_ADD, OP_REMOVE, OP_REPLACE, WriteAheadLog,
                  read_records, wal_file_name)

__all__ = ["MutableIndex", "Snapshot", "attach_snapshot", "fsck"]


class Snapshot:
    """An immutable, epoch-consistent view of a mutable index.

    Merges a (shared or owned) base :class:`ShardIndex` with one
    :class:`DeltaView`: delta documents shadow base documents of the
    same name, tombstones hide base documents entirely.  Delta
    documents report shard ``-1`` so executor chunk grouping keeps them
    separate from (and sortable against) real shards.

    Close the snapshot when the query finishes — that releases the
    epoch pin so the writer may garbage-collect the files.
    """

    def __init__(self, path: str, epoch: int, manifest: dict,
                 base: Optional[ShardIndex], delta: DeltaView, *,
                 owns_base: bool = False, on_close=None) -> None:
        self.path = path
        self.epoch = epoch
        self.manifest = manifest
        self._base = base
        self._delta = delta
        self._owns_base = owns_base
        self._on_close = on_close
        self._names: Optional[list] = None
        self._indexes: dict[str, InvertedIndex] = {}
        self._closed = False

    # -- corpus surface -------------------------------------------------

    def names(self) -> list[str]:
        if self._names is None:
            names = set(self._base.names()) if self._base is not None \
                else set()
            names -= set(self._delta.tombstones)
            names.update(self._delta.names())
            self._names = sorted(names)
        return list(self._names)

    def __contains__(self, name: object) -> bool:
        if name in self._delta:
            return True
        if name in self._delta.tombstones:
            return False
        return self._base is not None and name in self._base

    def __len__(self) -> int:
        return len(self.names())

    def _unknown(self, name: str):
        return WALError(f"unknown document {name!r} at epoch "
                        f"{self.epoch}", reason="unknown-document",
                        path=self.path)

    def document(self, name: str):
        if name in self._delta:
            return self._delta.document(name)
        if name in self._delta.tombstones or self._base is None:
            raise self._unknown(name)
        return self._base.document(name)

    def contains(self, name: str, term: str) -> bool:
        if name in self._delta:
            return self._delta.contains(name, term)
        if name in self._delta.tombstones or self._base is None:
            raise self._unknown(name)
        return self._base.contains(name, term)

    def inverted_index(self, name: str) -> InvertedIndex:
        if name in self._delta:
            index = self._indexes.get(name)
            if index is None:
                doc = self._delta.document(name)
                index = InvertedIndex.from_postings(
                    doc, self._delta.postings(name))
                self._indexes[name] = index
            return index
        if name in self._delta.tombstones or self._base is None:
            raise self._unknown(name)
        return self._base.inverted_index(name)

    def node_count(self, name: str) -> int:
        if name in self._delta:
            return self._delta.node_count(name)
        if name in self._delta.tombstones or self._base is None:
            raise self._unknown(name)
        return self._base.node_count(name)

    def shard_of(self, name: str) -> int:
        """Shard for chunk grouping; delta documents report ``-1``."""
        if name in self._delta:
            return -1
        if name in self._delta.tombstones or self._base is None:
            raise self._unknown(name)
        return self._base.shard_of(name)

    @property
    def degraded(self) -> bool:
        return self._base is not None and self._base.degraded

    @property
    def delta(self) -> DeltaView:
        return self._delta

    @property
    def base(self) -> Optional[ShardIndex]:
        return self._base

    def stats(self) -> dict:
        return {"path": self.path, "epoch": self.epoch,
                "generation": self.manifest.get("generation"),
                "documents": len(self),
                "delta": self._delta.stats(),
                "base": (self._base.stats()
                         if self._base is not None else None)}

    # -- lifecycle ------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._indexes.clear()
        if self._owns_base and self._base is not None:
            self._base.close()
        if self._on_close is not None:
            callback, self._on_close = self._on_close, None
            callback()

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"Snapshot(epoch={self.epoch}, "
                f"documents={len(self)}, "
                f"delta={len(self._delta)})")


def _attach_base(path: str, manifest: dict, *, obs=NOOP,
                 cache_limit: Optional[int] = 64) \
        -> Optional[ShardIndex]:
    base = manifest.get("base")
    if not base:
        return None
    return ShardIndex.attach(os.path.join(path, base), on_error="skip",
                             cache_limit=cache_limit, obs=obs)


def _committed_view(path: str, manifest: dict) -> tuple[DeltaView, dict]:
    """Replay the committed WAL prefix named by ``manifest``.

    Returns ``(view, wal_scan)`` where ``wal_scan`` is the full
    :func:`read_records` result (so callers can see what lies beyond
    the committed prefix).
    """
    wal_path = os.path.join(path, manifest["wal"])
    committed = int(manifest.get("wal_records", 0))
    try:
        scan = read_records(wal_path)
    except WALError:
        if committed == 0:
            # An empty WAL that was GC'd or never flushed carries no
            # committed state; treat it as the empty log it stands for.
            scan = {"records": [], "offsets": [], "good_bytes": 0,
                    "torn": False, "torn_reason": None, "file_bytes": 0}
        else:
            raise
    if len(scan["records"]) < committed:
        raise WALError(
            f"epoch {manifest['epoch']} commits {committed} WAL "
            f"records but only {len(scan['records'])} are intact",
            reason="torn", path=wal_path)
    view = DeltaView.from_records(scan["records"][:committed])
    return view, scan


def attach_snapshot(path: str, epoch: Optional[int] = None, *,
                    obs=NOOP, cache_limit: Optional[int] = 64) \
        -> Snapshot:
    """Attach a read-only snapshot of one epoch (pool-worker path).

    Never mutates the directory: the WAL is read, not truncated, and
    the base attaches through the ordinary mmap reader.  The parent
    pins ``epoch`` for the duration of the dispatch, so the files are
    guaranteed to outlive this handle.
    """
    path = os.fspath(path)
    if epoch is None:
        epoch = ep.read_current(path)
        if epoch is None:
            raise WALError(f"no mutable index at {path}",
                           reason="missing", path=path)
    manifest = ep.load_manifest(path, epoch)
    base = _attach_base(path, manifest, obs=obs,
                        cache_limit=cache_limit)
    try:
        view, _ = _committed_view(path, manifest)
    except BaseException:
        if base is not None:
            base.close()
        raise
    return Snapshot(path, epoch, manifest, base, view, owns_base=True)


class MutableIndex:
    """Single-writer, multi-reader handle on a live index directory.

    Construct with :meth:`create` (new directory) or :meth:`open`
    (existing — this *is* crash recovery).  All mutation methods are
    thread-safe; reads should go through :meth:`snapshot` for epoch
    consistency.

    Parameters
    ----------
    faults:
        Optional :class:`~repro.exec.faults.CrashPlan` threaded through
        the WAL and the epoch commit protocol (test-only).
    """

    def __init__(self, path: str, *, faults=None, obs=NOOP,
                 cache_limit: Optional[int] = 64) -> None:
        path = os.fspath(path)
        started = time.perf_counter()
        self.path = path
        self._faults = faults
        self._obs = obs
        self._cache_limit = cache_limit
        self._lock = threading.RLock()
        self._epochs = ep.EpochManager(path, faults=faults)
        epoch = self._epochs.current_epoch
        if epoch is None:
            raise WALError(f"no mutable index at {path} (no CURRENT "
                           f"pointer); use MutableIndex.create",
                           reason="missing", path=path)
        manifest = ep.load_manifest(path, epoch)
        self._manifest = manifest
        self.generation = int(manifest.get("generation", 0))
        self.shards = int(manifest.get("shards", 4))
        self._bases: dict[str, ShardIndex] = {}
        view, scan = _committed_view(path, manifest)
        committed = int(manifest.get("wal_records", 0))
        committed_bytes = (scan["offsets"][committed - 1]
                           if committed else 0)
        discarded = scan["file_bytes"] - committed_bytes
        wal_path = os.path.join(path, manifest["wal"])
        # Recovery: truncate everything past the committed prefix —
        # torn tails and intact-but-unpublished records alike.
        self._wal = WriteAheadLog(wal_path, records=committed,
                                  start_bytes=committed_bytes,
                                  faults=faults)
        self._live_sections = dict(view._sections)
        self._live_tombstones = set(view.tombstones)
        self._published: dict[int, tuple[dict, DeltaView]] = {
            epoch: (manifest, view)}
        self._closed = False
        self.recovery = {
            "epoch": epoch,
            "wal_records_replayed": committed,
            "wal_bytes_discarded": discarded,
            "wal_torn": bool(scan["torn"]),
            "seconds": time.perf_counter() - started,
        }
        metrics = obs.metrics
        metrics.histogram(
            MUTATION_RECOVERY_SECONDS,
            "Wall seconds per mutable-index open/recovery."
        ).observe(self.recovery["seconds"])
        if discarded:
            metrics.counter(
                MUTATION_WAL_TAIL_DISCARDED,
                "WAL bytes discarded at recovery (torn or uncommitted)."
            ).inc(discarded)
        metrics.gauge(
            MUTATION_EPOCH, "Current committed epoch.").set(epoch)
        metrics.gauge(
            MUTATION_DELTA_DOCUMENTS,
            "Documents in the committed delta segment.").set(len(view))

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def create(cls, path, documents=None, *, shards: int = 4,
               faults=None, obs=NOOP,
               cache_limit: Optional[int] = 64) -> "MutableIndex":
        """Initialise a new mutable index directory at ``path``.

        ``documents`` (a ``{name: Document}`` mapping, optional) seeds
        generation 0 through the ordinary shard builder; an empty index
        starts with no base and everything flowing through the WAL.
        """
        path = os.fspath(path)
        os.makedirs(path, exist_ok=True)
        if ep.read_current(path) is not None:
            raise WALError(f"{path} already holds a mutable index",
                           reason="bad-epoch", path=path)
        base = None
        if documents:
            base = ep.generation_dir_name(0)
            build_index(documents, os.path.join(path, base),
                        shards=shards, obs=obs)
        wal_name = wal_file_name(0)
        with open(os.path.join(path, wal_name), "ab") as fh:
            fh.flush()
            os.fsync(fh.fileno())
        manifest = {
            "format": ep.MUTABLE_FORMAT,
            "format_version": ep.MUTABLE_FORMAT_VERSION,
            "epoch": 1,
            "generation": 0,
            "base": base,
            "wal": wal_name,
            "wal_records": 0,
            "wal_bytes": 0,
            "shards": shards,
        }
        ep.EpochManager(path, faults=faults).publish(manifest)
        return cls(path, faults=faults, obs=obs,
                   cache_limit=cache_limit)

    @classmethod
    def open(cls, path, *, faults=None, obs=NOOP,
             cache_limit: Optional[int] = 64) -> "MutableIndex":
        """Open (and recover) an existing mutable index."""
        return cls(path, faults=faults, obs=obs,
                   cache_limit=cache_limit)

    # ------------------------------------------------------------------
    # Live visibility (committed + pending, writer's own view)
    # ------------------------------------------------------------------

    def _visible(self, name: str) -> bool:
        if name in self._live_sections:
            return True
        if name in self._live_tombstones:
            return False
        base = self._base_handle(self._manifest)
        return base is not None and name in base

    def _base_handle(self, manifest: dict) -> Optional[ShardIndex]:
        base = manifest.get("base")
        if not base:
            return None
        handle = self._bases.get(base)
        if handle is None:
            handle = _attach_base(self.path, manifest, obs=self._obs,
                                  cache_limit=self._cache_limit)
            self._bases[base] = handle
        return handle

    @property
    def epoch(self) -> int:
        """The last committed epoch."""
        return int(self._manifest["epoch"])

    @property
    def pending_records(self) -> int:
        """WAL records appended but not yet published by a commit."""
        return self._wal.records - int(self._manifest["wal_records"])

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def _require_open(self) -> None:
        if self._closed:
            raise WALError("mutable index is closed", reason="closed",
                           path=self.path)

    def add(self, document, name: Optional[str] = None, *,
            commit: bool = True) -> str:
        """Add (or replace) one document; returns its name.

        With ``commit=True`` (default) the write is durable and
        visible on return; ``commit=False`` batches — call
        :meth:`commit` to publish.
        """
        resolved = name if name is not None \
            else getattr(document, "name", None)
        if not resolved:
            raise WALError("document needs a name to be added",
                           reason="bad-op", path=self.path)
        sections = encode_document(document)
        with self._lock:
            self._require_open()
            op = OP_REPLACE if self._visible(resolved) else OP_ADD
            self._append(op, resolved, sections)
            self._live_sections[resolved] = sections
            self._live_tombstones.discard(resolved)
            if commit:
                self.commit()
        return resolved

    def remove(self, name: str, *, commit: bool = True) -> None:
        """Remove one document (WAL tombstone; base is untouched)."""
        with self._lock:
            self._require_open()
            if not self._visible(name):
                raise WALError(f"unknown document {name!r}",
                               reason="unknown-document",
                               path=self.path)
            self._append(OP_REMOVE, name, None)
            self._live_sections.pop(name, None)
            self._live_tombstones.add(name)
            if commit:
                self.commit()

    def _append(self, op: str, name: str, sections) -> None:
        before = self._wal.bytes
        self._wal.append(op, name, sections)
        metrics = self._obs.metrics
        metrics.counter(
            MUTATION_WAL_RECORDS,
            "WAL records appended.").inc()
        metrics.counter(
            MUTATION_WAL_BYTES,
            "WAL bytes appended.").inc(self._wal.bytes - before)

    def commit(self) -> int:
        """Publish pending writes as a new epoch; returns the epoch.

        No-op (returning the current epoch) when nothing is pending.
        The sequence is the commit protocol the crash tests drive:
        WAL fsync → manifest publish → ``CURRENT`` flip.
        """
        with self._lock:
            self._require_open()
            if self.pending_records == 0:
                return self.epoch
            self._wal.sync()
            manifest = dict(self._manifest)
            manifest["epoch"] = self.epoch + 1
            manifest["wal_records"] = self._wal.records
            manifest["wal_bytes"] = self._wal.bytes
            epoch = self._epochs.publish(manifest)
            view = DeltaView(dict(self._live_sections),
                             frozenset(self._live_tombstones),
                             self._wal.records)
            self._manifest = manifest
            self._published[epoch] = (manifest, view)
            self._collect()
            metrics = self._obs.metrics
            metrics.counter(
                MUTATION_COMMITS, "Epoch commits published.").inc()
            metrics.gauge(
                MUTATION_EPOCH, "Current committed epoch.").set(epoch)
            metrics.gauge(
                MUTATION_DELTA_DOCUMENTS,
                "Documents in the committed delta segment."
            ).set(len(view))
            return epoch

    def compact(self) -> int:
        """Fold the delta into a new base generation; returns the epoch.

        Publishes any pending writes first, then rebuilds every visible
        document into ``gen-<N+1>/`` with the ordinary shard writer,
        starts an empty WAL for the new generation and commits an epoch
        pointing at them.  Old generations linger until no pinned epoch
        references them.
        """
        with self._lock:
            self._require_open()
            self.commit()
            snapshot = self.snapshot()
            try:
                docs = {name: snapshot.document(name)
                        for name in snapshot.names()}
            finally:
                snapshot.close()
            generation = self.generation + 1
            base = None
            if docs:
                base = ep.generation_dir_name(generation)
                build_index(docs, os.path.join(self.path, base),
                            shards=self.shards, obs=self._obs)
            wal_name = wal_file_name(generation)
            with open(os.path.join(self.path, wal_name), "ab") as fh:
                fh.flush()
                os.fsync(fh.fileno())
            manifest = {
                "format": ep.MUTABLE_FORMAT,
                "format_version": ep.MUTABLE_FORMAT_VERSION,
                "epoch": self.epoch + 1,
                "generation": generation,
                "base": base,
                "wal": wal_name,
                "wal_records": 0,
                "wal_bytes": 0,
                "shards": self.shards,
            }
            epoch = self._epochs.publish(manifest)
            old_wal = self._wal
            self._wal = WriteAheadLog(
                os.path.join(self.path, wal_name), records=0,
                faults=self._faults)
            old_wal.close()
            self._manifest = manifest
            self.generation = generation
            self._live_sections = {}
            self._live_tombstones = set()
            view = DeltaView.empty()
            self._published[epoch] = (manifest, view)
            self._collect()
            metrics = self._obs.metrics
            metrics.counter(
                MUTATION_COMPACTIONS,
                "Delta-into-base compactions completed.").inc()
            metrics.gauge(
                MUTATION_EPOCH, "Current committed epoch.").set(epoch)
            metrics.gauge(
                MUTATION_DELTA_DOCUMENTS,
                "Documents in the committed delta segment.").set(0)
            return epoch

    # ------------------------------------------------------------------
    # Snapshots and pins
    # ------------------------------------------------------------------

    def snapshot(self, epoch: Optional[int] = None) -> Snapshot:
        """An epoch-pinned consistent view (default: latest committed).

        Close it to release the pin.  Raises for epochs that were never
        published by this handle or already garbage-collected.
        """
        with self._lock:
            self._require_open()
            if epoch is None:
                epoch = self.epoch
            entry = self._published.get(epoch)
            if entry is None:
                raise WALError(
                    f"epoch {epoch} is not available (current is "
                    f"{self.epoch})", reason="bad-epoch",
                    path=self.path)
            manifest, view = entry
            base = self._base_handle(manifest)
            self._epochs.pin(epoch)
            self._gauge_pins()
            return Snapshot(self.path, epoch, manifest, base, view,
                            owns_base=False,
                            on_close=lambda: self._unpin(epoch))

    def _unpin(self, epoch: int) -> None:
        self._epochs.unpin(epoch)
        self._gauge_pins()

    def _gauge_pins(self) -> None:
        self._obs.metrics.gauge(
            MUTATION_EPOCHS_PINNED,
            "Distinct epochs currently pinned by readers."
        ).set(len(self._epochs.pinned_epochs()))

    def _collect(self) -> None:
        """Drop unpinned stale epochs and their files (writer-only)."""
        live = self._epochs.live_epochs()
        stale = [e for e in self._published if e not in live]
        for e in stale:
            del self._published[e]
        if stale:
            self._obs.metrics.counter(
                MUTATION_EPOCHS_GCED,
                "Stale epochs garbage-collected.").inc(len(stale))
        live_bases = {m.get("base") for m, _ in self._published.values()
                      if m.get("base")}
        for base in [b for b in self._bases if b not in live_bases]:
            self._bases.pop(base).close()
        self._epochs.collect()

    def pinned_epochs(self) -> dict[int, int]:
        return self._epochs.pinned_epochs()

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------

    def names(self) -> list[str]:
        """Names visible at the last committed epoch."""
        _, view = self._published[self.epoch]
        names = set()
        base = self._base_handle(self._manifest)
        if base is not None:
            names.update(base.names())
        names -= set(view.tombstones)
        names.update(view.names())
        return sorted(names)

    def __contains__(self, name: object) -> bool:
        _, view = self._published[self.epoch]
        if name in view:
            return True
        if name in view.tombstones:
            return False
        base = self._base_handle(self._manifest)
        return base is not None and name in base

    def __len__(self) -> int:
        return len(self.names())

    def stats(self) -> dict:
        """Plain-dict snapshot for /varz and the CLI."""
        _, view = self._published[self.epoch]
        base = self._base_handle(self._manifest)
        return {
            "path": self.path,
            "epoch": self.epoch,
            "generation": self.generation,
            "shards": self.shards,
            "documents": len(self.names()),
            "wal": {"file": self._manifest["wal"],
                    "records": self._wal.records,
                    "bytes": self._wal.bytes,
                    "pending_records": self.pending_records},
            "delta": view.stats(),
            "pinned_epochs": {str(e): n for e, n
                              in self._epochs.pinned_epochs().items()},
            "published_epochs": sorted(self._published),
            "recovery": dict(self.recovery),
            "base": base.stats() if base is not None else None,
        }

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release the WAL handle and every attached base (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._wal.close()
            for handle in self._bases.values():
                handle.close()
            self._bases.clear()
            self._published.clear()

    def __enter__(self) -> "MutableIndex":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"MutableIndex(path={self.path!r}, epoch={self.epoch}, "
                f"generation={self.generation}, "
                f"pending={self.pending_records})")


# ----------------------------------------------------------------------
# fsck
# ----------------------------------------------------------------------

def fsck(path, *, repair: bool = False, obs=NOOP) -> dict:
    """Verify (and optionally repair) a mutable index directory.

    Checks, in order: the ``CURRENT`` pointer, the current epoch
    manifest, the WAL's committed prefix (CRCs, torn tail, records
    beyond the commit), the base generation (attach + full checksum
    sweep), and orphaned files from crashed commits or skipped GC.

    With ``repair=True`` the safe subset is fixed: torn/uncommitted WAL
    tails are truncated to the committed prefix, orphan manifests,
    generations, WAL files and ``*.tmp`` leftovers are deleted, and a
    missing/corrupt ``CURRENT`` is re-pointed at the highest epoch
    manifest whose content checks out.  Unrepairable damage (missing
    committed records, checksum failures inside the base) is reported
    with ``healthy: false``.

    Returns a JSON-ready report.
    """
    path = os.fspath(path)
    issues: list[dict] = []
    repairs: list[str] = []

    def issue(kind: str, detail: str, fatal: bool = False) -> None:
        issues.append({"kind": kind, "detail": detail, "fatal": fatal})

    try:
        epoch = ep.read_current(path)
    except WALError as exc:
        epoch = None
        issue("bad-current", str(exc), fatal=not repair)
    if epoch is None and not issues:
        issue("no-current", f"{path} has no CURRENT pointer",
              fatal=not repair)

    manifest: Optional[dict] = None
    if epoch is not None:
        try:
            manifest = ep.load_manifest(path, epoch)
        except WALError as exc:
            issue("bad-manifest", str(exc), fatal=not repair)
            epoch = None

    if manifest is None and repair:
        # Adopt the highest epoch whose manifest + WAL prefix verify.
        candidates = sorted(
            (int(m.group(1)) for m in
             (ep._MANIFEST_RE.match(e) for e in os.listdir(path))
             if m is not None), reverse=True)
        for candidate in candidates:
            try:
                trial = ep.load_manifest(path, candidate)
                _committed_view(path, trial)
            except WALError:
                continue
            manifest, epoch = trial, candidate
            tmp = os.path.join(path, ep.CURRENT_NAME + ".tmp")
            with open(tmp, "wb") as fh:
                fh.write((ep.epoch_manifest_name(candidate)
                          + "\n").encode("utf-8"))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, os.path.join(path, ep.CURRENT_NAME))
            repairs.append(f"re-pointed CURRENT at epoch {candidate}")
            break
        else:
            if candidates:
                issue("no-valid-epoch",
                      "no epoch manifest verifies", fatal=True)

    wal_report: Optional[dict] = None
    if manifest is not None:
        committed = int(manifest.get("wal_records", 0))
        wal_path = os.path.join(path, manifest["wal"])
        try:
            _, scan = _committed_view(path, manifest)
        except WALError as exc:
            issue("wal", str(exc), fatal=True)
            scan = None
        if scan is not None:
            committed_bytes = (scan["offsets"][committed - 1]
                               if committed else 0)
            excess = scan["file_bytes"] - committed_bytes
            wal_report = {"file": manifest["wal"],
                          "committed_records": committed,
                          "intact_records": len(scan["records"]),
                          "torn": scan["torn"],
                          "torn_reason": scan["torn_reason"],
                          "excess_bytes": excess}
            if excess:
                kind = "wal-torn" if scan["torn"] else "wal-uncommitted"
                issue(kind, f"{excess} bytes past the committed prefix")
                if repair and os.path.exists(wal_path):
                    with open(wal_path, "r+b") as fh:
                        fh.truncate(committed_bytes)
                        fh.flush()
                        os.fsync(fh.fileno())
                    repairs.append(
                        f"truncated {manifest['wal']} to "
                        f"{committed_bytes} bytes")

    base_report: Optional[dict] = None
    if manifest is not None and manifest.get("base"):
        base_dir = os.path.join(path, manifest["base"])
        try:
            handle = ShardIndex.attach(base_dir, on_error="skip",
                                       obs=obs)
        except ShardError as exc:
            issue("base", str(exc), fatal=True)
        else:
            try:
                sweep = handle.verify_all()
                base_report = {
                    "dir": manifest["base"],
                    "shards_attached": len(handle.attached_shards),
                    "shards_failed": {
                        str(s): e.to_dict()
                        for s, e in handle.failed_shards.items()},
                    "documents_verified": sweep["documents"],
                    "checksum_failures": sweep["failures"],
                }
                for shard, exc in handle.failed_shards.items():
                    issue("base-shard", f"shard {shard}: {exc}",
                          fatal=True)
                for failure in sweep["failures"]:
                    issue("base-checksum", failure["message"],
                          fatal=True)
            finally:
                handle.close()

    orphans = {"manifests": [], "generations": [], "wals": [],
               "tmp": []}
    if manifest is not None:
        referenced = {manifest.get("base"), manifest.get("wal")}
        for entry in sorted(os.listdir(path)):
            match = ep._MANIFEST_RE.match(entry)
            if match is not None and int(match.group(1)) != epoch:
                orphans["manifests"].append(entry)
            elif ep._WAL_RE.match(entry) and entry not in referenced:
                orphans["wals"].append(entry)
            elif ep._GENERATION_RE.match(entry) \
                    and entry not in referenced:
                orphans["generations"].append(entry)
            elif entry.endswith(".tmp"):
                orphans["tmp"].append(entry)
        total = sum(len(v) for v in orphans.values())
        if total:
            issue("orphans", f"{total} orphaned files "
                  f"(crashed commit or pending GC)")
            if repair:
                manager = ep.EpochManager(path)
                removed = manager.collect()
                repairs.append(
                    f"swept {removed['manifests']} manifests, "
                    f"{removed['generations']} generations, "
                    f"{removed['wals']} WAL files")

    healthy = manifest is not None \
        and not any(i["fatal"] for i in issues)
    return {"path": path, "healthy": healthy, "epoch": epoch,
            "repaired": bool(repairs), "issues": issues,
            "repairs": repairs, "wal": wal_report, "base": base_report,
            "orphans": orphans}
