"""Write-ahead log for live index mutation.

Every mutation of a :class:`~repro.storage.mutation.MutableIndex` is
appended here *before* it is applied anywhere else.  One WAL file is an
append-only sequence of checksummed records::

    record := u32 body_len | u32 crc32(body) | body
    body   := u32 meta_len | meta JSON | section payloads

``meta`` carries ``{seq, op, name, sections}`` where ``sections`` maps
each of the nine shard-format section names (see
:data:`repro.storage.shards.format.SECTION_NAMES`) to ``[offset,
length]`` pairs relative to the end of the JSON — the payload bytes are
exactly what :func:`repro.storage.shards.writer.encode_document`
produces, so a record folds into a compacted shard file without
re-encoding.  ``remove`` records carry no sections.

Torn tails are first-class: :func:`read_records` stops at the first
record whose length or CRC does not check out and reports the byte
offset of the last *good* record, so recovery can replay the intact
prefix and truncate the garbage (a crashed append or a torn sector can
only ever damage the tail — records are never rewritten in place).
"""

from __future__ import annotations

import os
import struct
from typing import Optional

from ...errors import WALError
from ..shards import format as fmt

__all__ = ["WriteAheadLog", "read_records", "wal_file_name",
           "OP_ADD", "OP_REPLACE", "OP_REMOVE", "WAL_OPS"]

OP_ADD = "add"
OP_REPLACE = "replace"
OP_REMOVE = "remove"
WAL_OPS = frozenset({OP_ADD, OP_REPLACE, OP_REMOVE})

_U32 = struct.Struct("<I")
_HEADER = struct.Struct("<II")  # body_len, crc32(body)

#: Refuse to believe a single record is larger than this (a corrupt
#: length field must not trigger a multi-gigabyte read attempt).
MAX_RECORD_BYTES = 1 << 30


def wal_file_name(generation: int) -> str:
    """Canonical WAL file name for one compaction generation."""
    return f"wal-{generation:06d}.log"


def encode_record(seq: int, op: str, name: str,
                  sections: Optional[dict] = None) -> bytes:
    """Serialise one mutation into record bytes (header + body)."""
    if op not in WAL_OPS:
        raise WALError(f"unknown WAL op {op!r}", reason="bad-op")
    layout = {}
    payloads = []
    cursor = 0
    if sections is not None:
        for section in fmt.SECTION_NAMES:
            data = sections[section]
            layout[section] = [cursor, len(data)]
            payloads.append(data)
            cursor += len(data)
    meta = fmt.dump_json({"seq": seq, "op": op, "name": name,
                          "sections": layout})
    body = b"".join([_U32.pack(len(meta)), meta, *payloads])
    return _HEADER.pack(len(body), fmt.crc32(body)) + body


def decode_body(body: bytes) -> tuple[int, str, str, Optional[dict]]:
    """Inverse of :func:`encode_record` for one verified body.

    Returns ``(seq, op, name, sections)`` where ``sections`` maps
    section names to ``bytes`` (``None`` for ``remove`` records).
    """
    import json
    (meta_len,) = _U32.unpack_from(body, 0)
    meta = json.loads(body[4:4 + meta_len])
    payload_start = 4 + meta_len
    layout = meta.get("sections") or {}
    sections: Optional[dict] = None
    if layout:
        sections = {}
        for section, (off, length) in layout.items():
            start = payload_start + off
            sections[section] = bytes(body[start:start + length])
    return meta["seq"], meta["op"], meta["name"], sections


def read_records(path: str, limit_records: Optional[int] = None) -> dict:
    """Read a WAL file, stopping at the first damaged record.

    Returns ``{"records": [(seq, op, name, sections), ...],
    "offsets": [end_of_record_0, ...], "good_bytes": N, "torn": bool,
    "torn_reason": str | None}`` — ``good_bytes`` is the file offset
    just past the last intact record (the truncation point for repair)
    and ``offsets[i]`` the offset just past record ``i`` (so the
    committed prefix of *k* records ends at ``offsets[k-1]``).
    ``limit_records`` stops the replay after that many records (the
    committed prefix), leaving the remainder unexamined.
    """
    records = []
    offsets = []
    good = 0
    torn = False
    torn_reason = None
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except FileNotFoundError:
        raise WALError(f"no WAL file at {path}", reason="missing",
                       path=path) from None
    size = len(data)
    offset = 0
    while offset < size:
        if limit_records is not None and len(records) >= limit_records:
            break
        if offset + _HEADER.size > size:
            torn, torn_reason = True, "truncated-header"
            break
        body_len, crc = _HEADER.unpack_from(data, offset)
        if body_len > MAX_RECORD_BYTES:
            torn, torn_reason = True, "bad-length"
            break
        body_end = offset + _HEADER.size + body_len
        if body_end > size:
            torn, torn_reason = True, "truncated-body"
            break
        body = data[offset + _HEADER.size:body_end]
        if fmt.crc32(body) != crc:
            torn, torn_reason = True, "checksum"
            break
        try:
            records.append(decode_body(body))
        except (ValueError, KeyError, struct.error):
            torn, torn_reason = True, "bad-body"
            break
        offset = body_end
        offsets.append(offset)
        good = offset
    return {"records": records, "offsets": offsets, "good_bytes": good,
            "torn": torn, "torn_reason": torn_reason,
            "file_bytes": size}


class WriteAheadLog:
    """Append-side handle on one WAL file (single writer).

    ``faults`` is an optional
    :class:`~repro.exec.faults.CrashPlan` consulted at the
    ``wal-write`` / ``wal-fsync`` commit points (torn writes supported
    at ``wal-write``).
    """

    def __init__(self, path: str, *, records: int = 0,
                 start_bytes: Optional[int] = None,
                 faults=None) -> None:
        self.path = path
        self.records = records
        self._faults = faults
        # Open for append-or-create without ever truncating: "a" mode
        # positions every write at EOF, but we manage the offset with
        # explicit seeks so recovery-time truncation stays exact.
        self._fh = open(path, "ab", buffering=0)
        if start_bytes is not None and self._fh.tell() != start_bytes:
            # A previous crash left a torn tail past the committed
            # prefix: cut it before the next append lands on top.
            self._fh.close()
            with open(path, "r+b") as fh:
                fh.truncate(start_bytes)
                fh.flush()
                os.fsync(fh.fileno())
            self._fh = open(path, "ab", buffering=0)
        self.bytes = self._fh.tell()
        self._synced_bytes = self.bytes

    def _check(self, point: str) -> None:
        if self._faults is not None:
            self._faults.check(point)

    def append(self, op: str, name: str,
               sections: Optional[dict] = None) -> int:
        """Append one record; returns its sequence number (1-based).

        The record is written (unbuffered) but **not** fsynced —
        durability is the commit protocol's job (:meth:`sync`).
        """
        seq = self.records + 1
        data = encode_record(seq, op, name, sections)
        if self._faults is not None:
            self._check("before-wal-write")
            torn = self._faults.torn_write("wal-write", data)
            if torn is not data:
                self._fh.write(torn)
                self.bytes += len(torn)
                self._check("wal-write")
                # An armed torn write always crashes; falling through
                # would mean the plan silently corrupted a live WAL.
                raise AssertionError(
                    "torn wal-write did not crash")  # pragma: no cover
        self._fh.write(data)
        self.bytes += len(data)
        self.records = seq
        self._check("wal-write")
        return seq

    def sync(self) -> None:
        """fsync the appended records (commit point ``wal-fsync``)."""
        self._check("before-wal-fsync")
        os.fsync(self._fh.fileno())
        self._synced_bytes = self.bytes
        self._check("wal-fsync")

    def close(self) -> None:
        try:
            self._fh.close()
        except (OSError, ValueError):  # pragma: no cover
            pass

    def __repr__(self) -> str:
        return (f"WriteAheadLog(path={self.path!r}, "
                f"records={self.records}, bytes={self.bytes})")
