"""In-memory delta segment: WAL records made queryable.

A :class:`DeltaView` is the immutable overlay one epoch adds on top of
its base generation: the documents added or replaced since the last
compaction (held as their encoded shard-format sections, materialised
lazily) plus the tombstone set of removed names.  Views are built by
replaying a committed WAL prefix — the writer keeps the live one and
publishes a new view at each epoch commit; pool workers rebuild the
same view from the on-disk WAL, so both sides serve byte-identical
documents.
"""

from __future__ import annotations

from ...errors import WALError
from ..shards import format as fmt
from ..shards.reader import build_document
from .wal import OP_REMOVE

__all__ = ["DeltaView", "replay"]


def replay(records) -> tuple[dict, frozenset]:
    """Apply WAL records in order; returns ``(sections_by_name,
    tombstones)``.

    ``add`` / ``replace`` install the document's encoded sections and
    clear any tombstone; ``remove`` drops the sections and tombstones
    the name (shadowing the base even if the base still holds it).
    """
    sections_by_name: dict[str, dict] = {}
    tombstones: set[str] = set()
    for seq, op, name, sections in records:
        if op == OP_REMOVE:
            sections_by_name.pop(name, None)
            tombstones.add(name)
        else:
            if sections is None:
                raise WALError(
                    f"WAL record {seq} ({op} {name!r}) carries no "
                    f"sections", reason="corrupt")
            sections_by_name[name] = sections
            tombstones.discard(name)
    return sections_by_name, frozenset(tombstones)


class DeltaView:
    """One epoch's immutable delta overlay.

    Documents materialise lazily (and are cached): the encoded sections
    are plain ``bytes``, so — unlike the mmap path — a materialised
    delta document never pins an on-disk buffer.
    """

    __slots__ = ("_sections", "tombstones", "wal_records", "_documents",
                 "_postings")

    def __init__(self, sections_by_name: dict, tombstones: frozenset,
                 wal_records: int) -> None:
        self._sections = sections_by_name
        self.tombstones = tombstones
        self.wal_records = wal_records
        self._documents: dict = {}
        self._postings: dict = {}

    @classmethod
    def from_records(cls, records) -> "DeltaView":
        sections_by_name, tombstones = replay(records)
        return cls(sections_by_name, tombstones, len(records))

    @classmethod
    def empty(cls) -> "DeltaView":
        return cls({}, frozenset(), 0)

    # -- corpus surface -------------------------------------------------

    def names(self) -> list[str]:
        return sorted(self._sections)

    def __contains__(self, name: object) -> bool:
        return name in self._sections

    def __len__(self) -> int:
        return len(self._sections)

    def node_count(self, name: str) -> int:
        return len(self._sections[name]["parents"]) // 8

    def contains(self, name: str, term: str) -> bool:
        """Postings probe against the encoded blob (no materialise)."""
        if name in self._postings:
            return term in self._postings[name]
        return fmt.postings_lookup(
            self._sections[name]["postings"], term) is not None

    def document(self, name: str):
        doc = self._documents.get(name)
        if doc is not None:
            return doc
        try:
            sections = self._sections[name]
        except KeyError:
            raise WALError(f"unknown delta document {name!r}",
                           reason="unknown-document") from None
        doc, postings = build_document(
            name, self.node_count(name),
            lambda section: sections[section])
        self._documents[name] = doc
        self._postings[name] = postings
        return doc

    def postings(self, name: str) -> dict:
        if name not in self._postings:
            self.document(name)
        return self._postings[name]

    @property
    def bytes(self) -> int:
        return sum(len(data) for sections in self._sections.values()
                   for data in sections.values())

    def stats(self) -> dict:
        return {"documents": len(self._sections),
                "tombstones": len(self.tombstones),
                "wal_records": self.wal_records,
                "bytes": self.bytes,
                "materialized": len(self._documents)}

    def __repr__(self) -> str:
        return (f"DeltaView(documents={len(self._sections)}, "
                f"tombstones={len(self.tombstones)}, "
                f"wal_records={self.wal_records})")
